//! Property tests for the compiled solver kernel: on random constraint
//! systems — fractional coefficients, duplicate variables within a
//! constraint, duplicate constraints across the system, pinned variables
//! — the CSR lowering must agree with a naive per-constraint walk on the
//! objective and the gradient, and a full solve must be bitwise
//! identical at 1 and 4 worker threads.
//!
//! The offline proptest stand-in only generates scalars, so each case
//! draws a `u64` seed and expands it into a full system with the rand
//! compat RNG — same depth of coverage, deterministic per seed.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use seldon_constraints::{ConstraintSystem, FlowConstraint, Term, VarId};
use seldon_solver::{solve, solve_compiled, CompiledSystem, EarlyStop, SolveOptions, StopReason};
use seldon_specs::Role;

const COEFFS: [f64; 5] = [0.1, 0.25, 0.5, 0.75, 1.0];

/// Expands a seed into a random system: 2–11 vars, 1–20 constraints of
/// 1–5 terms each (either side, palette coefficients, repeated vars),
/// up to two pins, and every third constraint duplicated verbatim so the
/// compiler's cross-row combining is always exercised.
fn random_system(seed: u64) -> ConstraintSystem {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n_vars = rng.gen_range(2usize..12);
    let c = COEFFS[rng.gen_range(0usize..COEFFS.len())] * 0.9 + 0.05;
    let mut sys = ConstraintSystem::new(c);
    let vars: Vec<VarId> = (0..n_vars)
        .map(|i| {
            let rep = sys.rep(&format!("api{i}()"));
            sys.var(rep, Role::Source)
        })
        .collect();
    for _ in 0..rng.gen_range(0usize..3) {
        let v = vars[rng.gen_range(0..n_vars)];
        sys.pin(v, 1.0);
    }
    for ci in 0..rng.gen_range(1usize..21) {
        let mut con = FlowConstraint::default();
        for _ in 0..rng.gen_range(1usize..6) {
            let t = Term {
                var: vars[rng.gen_range(0..n_vars)],
                coeff: COEFFS[rng.gen_range(0usize..COEFFS.len())],
            };
            if rng.gen_bool(0.6) {
                con.lhs.push(t);
            } else {
                con.rhs.push(t);
            }
        }
        sys.add_constraint(con);
        if ci % 3 == 2 {
            let again = sys.constraints.last().unwrap().clone();
            sys.add_constraint(again);
        }
    }
    sys
}

fn random_point(seed: u64, n: usize) -> Vec<f64> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    (0..n).map(|_| rng.gen::<f64>()).collect()
}

/// The reference the kernel is checked against: the objective and
/// gradient computed the way the pre-compilation solver did, one
/// constraint at a time with separate lhs/rhs sums.
fn naive_objective_gradient(
    sys: &ConstraintSystem,
    x: &[f64],
    lambda: f64,
) -> (f64, Vec<f64>) {
    let mut violation = 0.0;
    let mut grad = vec![lambda; sys.var_count()];
    for c in &sys.constraints {
        let lhs: f64 = c.lhs.iter().map(|t| t.coeff * x[t.var.index()]).sum();
        let rhs: f64 = c.rhs.iter().map(|t| t.coeff * x[t.var.index()]).sum();
        let gap = lhs - rhs - sys.c;
        if gap > 0.0 {
            violation += gap;
            for t in &c.lhs {
                grad[t.var.index()] += t.coeff;
            }
            for t in &c.rhs {
                grad[t.var.index()] -= t.coeff;
            }
        }
    }
    let objective = violation + lambda * x.iter().sum::<f64>();
    (objective, grad)
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-12 * (1.0 + a.abs().max(b.abs()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Compiled objective and gradient agree with the naive walk to
    /// 1e-12 on arbitrary systems and points.
    #[test]
    fn compiled_matches_naive_walk(seed in any::<u64>(), li in 0usize..5) {
        let sys = random_system(seed);
        let lambda = [0.0, 0.05, 0.1, 0.25, 0.5][li];
        let cs = CompiledSystem::compile(&sys);
        prop_assert_eq!(cs.constraint_count(), sys.constraint_count());
        prop_assert!(cs.row_count() <= cs.constraint_count());
        let x = random_point(seed, sys.var_count());
        let (naive_obj, naive_grad) = naive_objective_gradient(&sys, &x, lambda);
        let (violation, obj) = cs.objective(&x, lambda);
        prop_assert!(violation >= 0.0);
        prop_assert!(close(obj, naive_obj), "objective {} vs naive {}", obj, naive_obj);
        let (grad, gviol, _) = cs.gradient(&x, lambda);
        prop_assert!(close(gviol, violation));
        for (i, (g, ng)) in grad.iter().zip(&naive_grad).enumerate() {
            prop_assert!(close(*g, *ng), "grad[{}] {} vs naive {}", i, g, ng);
        }
    }

    /// A full solve is bitwise identical at 1 and 4 worker threads —
    /// scores, objective, and convergence history.
    #[test]
    fn solve_is_bitwise_thread_invariant(seed in any::<u64>()) {
        let sys = random_system(seed);
        let opts1 = SolveOptions { max_iters: 120, ..Default::default() };
        let opts4 = SolveOptions { threads: 4, ..opts1.clone() };
        let s1 = solve(&sys, &opts1);
        let s4 = solve(&sys, &opts4);
        prop_assert_eq!(s1.iterations, s4.iterations);
        prop_assert_eq!(s1.objective.to_bits(), s4.objective.to_bits());
        for (a, b) in s1.scores.iter().zip(&s4.scores) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in s1.history.iter().zip(&s4.history) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// With the plateau detector enabled, the stop epoch, stop reason,
    /// and scores are bitwise identical at 1 and 4 worker threads: the
    /// detector reads only the thread-invariant objective series at
    /// fixed stride boundaries, so early exit adds no thread sensitivity.
    #[test]
    fn early_stop_is_bitwise_thread_invariant(
        seed in any::<u64>(),
        patience in 1usize..7,
        min_iters in 0usize..90,
    ) {
        let sys = random_system(seed);
        let es = EarlyStop { patience, rel_tol: 1e-4, min_iters };
        let opts1 = SolveOptions {
            max_iters: 120,
            early_stop: Some(es),
            ..Default::default()
        };
        let opts4 = SolveOptions { threads: 4, ..opts1.clone() };
        let s1 = solve(&sys, &opts1);
        let s4 = solve(&sys, &opts4);
        prop_assert_eq!(s1.stop, s4.stop, "stop reason must be thread-invariant");
        prop_assert_eq!(s1.iterations, s4.iterations, "stop epoch must be thread-invariant");
        prop_assert_eq!(s1.epochs_saved, s4.epochs_saved);
        prop_assert_eq!(s1.objective.to_bits(), s4.objective.to_bits());
        for (a, b) in s1.scores.iter().zip(&s4.scores) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// No convergence exit — stall window or plateau — ever fires before
    /// `min_iters`, whatever the system looks like.
    #[test]
    fn min_iters_is_always_respected(
        seed in any::<u64>(),
        patience in 1usize..4,
        min_iters in 0usize..100,
    ) {
        let sys = random_system(seed);
        let opts = SolveOptions {
            max_iters: 120,
            early_stop: Some(EarlyStop { patience, rel_tol: 1e-3, min_iters }),
            ..Default::default()
        };
        let sol = solve(&sys, &opts);
        if matches!(sol.stop, StopReason::Stall | StopReason::Plateau) {
            prop_assert!(
                sol.iterations >= min_iters,
                "{:?} fired at {} < min_iters {}",
                sol.stop, sol.iterations, min_iters
            );
        }
    }

    /// `solve` and `solve_compiled` are the same computation: compiling
    /// once and solving the compiled form matches the convenience entry
    /// point bit-for-bit.
    #[test]
    fn solve_compiled_matches_solve(seed in any::<u64>()) {
        let sys = random_system(seed);
        let opts = SolveOptions { max_iters: 60, ..Default::default() };
        let direct = solve(&sys, &opts);
        let cs = CompiledSystem::compile(&sys);
        let via_compiled = solve_compiled(&cs, &opts);
        prop_assert_eq!(direct.objective.to_bits(), via_compiled.objective.to_bits());
        for (a, b) in direct.scores.iter().zip(&via_compiled.scores) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
