//! Fault-tolerance integration tests: the fault-injection harness corrupts
//! a fraction of a generated corpus, and the pipeline under
//! [`FaultPolicy::Skip`] must complete, quarantine exactly the corrupted
//! files, and still learn a specification meeting the clean-corpus quality
//! floor on the remainder.

use proptest::prelude::*;
use seldon_core::{
    analyze_corpus, analyze_corpus_with, evaluate_spec, run_seldon, AnalyzeOptions,
    FaultPolicy, GroundTruth, SeldonOptions,
};
use seldon_corpus::{generate_corpus, Corpus, CorpusOptions, Project, SourceFile, Universe};
use seldon_propgraph::Budget;
use std::collections::BTreeSet;

/// Same corpus as `end_to_end::learning_meets_quality_floor`, with 20% of
/// files corrupted.
fn faulted_corpus_opts() -> CorpusOptions {
    CorpusOptions { projects: 60, rng_seed: 1234, fault_rate: 0.2, ..Default::default() }
}

fn harness_opts() -> AnalyzeOptions {
    AnalyzeOptions {
        policy: FaultPolicy::Skip,
        budget: Some(Budget::default()),
        threads: 4,
        fault_markers: true,
        ..Default::default()
    }
}

#[test]
fn skip_quarantines_exactly_the_injected_faults() {
    let universe = Universe::new();
    let corpus = generate_corpus(&universe, &faulted_corpus_opts());
    assert!(!corpus.faults.is_empty(), "20% fault rate must corrupt some files");

    let (analyzed, report) = analyze_corpus_with(&corpus, &harness_opts()).unwrap();
    assert_eq!(analyzed.files.len(), corpus.file_count());
    assert_eq!(report.files.len(), corpus.file_count());

    let injected: BTreeSet<(usize, &str)> =
        corpus.faults.iter().map(|f| (f.project, f.path.as_str())).collect();
    let quarantined: BTreeSet<(usize, &str)> =
        report.quarantined().map(|f| (f.project, f.path.as_str())).collect();
    assert_eq!(quarantined, injected, "quarantine exactly the corrupted files");

    // The acceptance scenario includes panic-inducing and over-budget
    // files; the round-robin injector guarantees both kinds are present.
    assert!(report.panicked() >= 1, "no panic-inducing file was exercised");
    assert!(report.over_budget() >= 1, "no over-budget file was exercised");
    assert!(report.skipped() >= 1, "no parse-breaking file was exercised");
    assert!(report.is_degraded());
}

#[test]
fn learning_on_faulted_corpus_meets_quality_floor() {
    let universe = Universe::new();
    let corpus = generate_corpus(&universe, &faulted_corpus_opts());
    let (analyzed, report) = analyze_corpus_with(&corpus, &harness_opts()).unwrap();
    assert!(report.is_degraded());

    let run = run_seldon(&analyzed.graph, &universe.seed_spec(), &SeldonOptions::default());
    let truth = GroundTruth::new(&universe, &corpus);
    let eval = evaluate_spec(&run.extraction.spec, &truth);
    // Same floor as the clean-corpus end-to-end test: losing 20% of the
    // files must not poison what is learned from the rest.
    assert!(
        eval.precision() > 0.55,
        "precision {:.2} over {} predictions on faulted corpus",
        eval.precision(),
        eval.predicted()
    );
    assert!(eval.predicted() >= 20, "too few learned entries: {}", eval.predicted());
}

#[test]
fn recover_matches_failfast_on_clean_corpus() {
    let universe = Universe::new();
    let corpus = generate_corpus(
        &universe,
        &CorpusOptions { projects: 20, rng_seed: 1234, ..Default::default() },
    );
    let strict = analyze_corpus(&corpus, 4).unwrap();
    let opts = AnalyzeOptions {
        policy: FaultPolicy::Recover,
        budget: Some(Budget::default()),
        threads: 4,
        ..Default::default()
    };
    let (lenient, report) = analyze_corpus_with(&corpus, &opts).unwrap();
    assert!(!report.is_degraded(), "clean corpus must not degrade: {report}");

    let seed = universe.seed_spec();
    let spec_a = run_seldon(&strict.graph, &seed, &SeldonOptions::default());
    let spec_b = run_seldon(&lenient.graph, &seed, &SeldonOptions::default());
    assert_eq!(
        spec_a.extraction.spec.to_text(),
        spec_b.extraction.spec.to_text(),
        "Recover must be a no-op on a fault-free corpus"
    );
}

// A corpus of arbitrary printable garbage: under `Skip` the pipeline must
// always complete — never panic, never return an error — and account for
// every file.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn skip_never_fails_on_arbitrary_files(
        contents in prop::collection::vec("\\PC{0,400}", 1..6)
    ) {
        let corpus = Corpus {
            projects: vec![Project {
                name: "fuzz".into(),
                files: contents
                    .iter()
                    .enumerate()
                    .map(|(i, c)| SourceFile {
                        path: format!("f{i}.py"),
                        content: c.clone(),
                    })
                    .collect(),
            }],
            ..Default::default()
        };
        let opts = AnalyzeOptions {
            policy: FaultPolicy::Skip,
            budget: Some(Budget::default()),
            ..Default::default()
        };
        let (analyzed, report) = analyze_corpus_with(&corpus, &opts).unwrap();
        prop_assert_eq!(analyzed.files.len(), contents.len());
        prop_assert_eq!(report.files.len(), contents.len());
    }
}
