//! Property-based integration tests: robustness of the front end on
//! arbitrary input, invariants of the propagation graph, monotonicity of
//! the constraint system, and determinism of corpus generation.

use proptest::prelude::*;
use seldon_constraints::{generate, GenOptions};
use seldon_corpus::{generate_corpus, CorpusOptions, Lang, Universe};
use seldon_propgraph::{build_source, FileId};
use seldon_pyast::{lexer, parser};
use seldon_solver::{solve, SolveOptions};
use seldon_specs::{Pattern, Role, RoleSet, TaintSpec};

proptest! {
    /// The lexer never panics, whatever bytes it is fed.
    #[test]
    fn lexer_total_on_arbitrary_input(src in "\\PC{0,200}") {
        let _ = lexer::lex(&src);
    }

    /// The parser never panics either (it may return an error).
    #[test]
    fn parser_total_on_arbitrary_input(src in "\\PC{0,200}") {
        let _ = parser::parse(&src);
    }

    /// Lexing structurally valid assignments always succeeds and the
    /// token stream is well-bracketed by Indent/Dedent.
    #[test]
    fn indent_dedent_balance(depth in 1usize..6) {
        let mut src = String::new();
        for d in 0..depth {
            src.push_str(&"    ".repeat(d));
            src.push_str(&format!("if x{d}:\n"));
        }
        src.push_str(&"    ".repeat(depth));
        src.push_str("pass\n");
        let toks = lexer::lex(&src).expect("valid nesting lexes");
        let indents = toks.iter().filter(|t| t.kind == seldon_pyast::token::TokenKind::Indent).count();
        let dedents = toks.iter().filter(|t| t.kind == seldon_pyast::token::TokenKind::Dedent).count();
        prop_assert_eq!(indents, dedents);
        prop_assert_eq!(indents, depth);
    }

    /// Graphs built from straight-line generated code are acyclic and all
    /// edges reference valid events.
    #[test]
    fn graph_edges_are_valid(nvars in 1usize..8) {
        let mut src = String::from("from m import f\nx0 = f()\n");
        for i in 1..nvars {
            src.push_str(&format!("x{i} = f(x{})\n", i - 1));
        }
        let g = build_source(&src, FileId(0)).expect("builds");
        for (from, to) in g.edges() {
            prop_assert!(from.index() < g.event_count());
            prop_assert!(to.index() < g.event_count());
            prop_assert_ne!(from, to);
        }
        // DAG check: no event reaches itself.
        for (id, _) in g.events() {
            prop_assert!(!g.reachable_from(id).contains(&id));
        }
    }

    /// Role sets behave like sets.
    #[test]
    fn roleset_algebra(bits_a in 0u8..8, bits_b in 0u8..8) {
        let from_bits = |bits: u8| -> RoleSet {
            Role::ALL
                .into_iter()
                .filter(|r| bits & (1 << r.index()) != 0)
                .collect()
        };
        let a = from_bits(bits_a);
        let b = from_bits(bits_b);
        prop_assert_eq!(a.union(b), b.union(a));
        prop_assert_eq!(a.intersection(b), b.intersection(a));
        prop_assert_eq!(a.union(a), a);
        prop_assert_eq!(a.intersection(a), a);
        for r in a.iter() {
            prop_assert!(a.union(b).contains(r));
        }
        prop_assert!(a.union(b).len() <= a.len() + b.len());
    }

    /// Glob patterns: a literal pattern matches exactly itself.
    #[test]
    fn literal_patterns_match_self(s in "[a-z_.()]{1,30}") {
        prop_assume!(!s.contains('*'));
        let p = Pattern::new(s.clone());
        prop_assert!(p.matches(&s));
        let extended = format!("{s}x");
        prop_assert!(!p.matches(&extended));
    }

    /// Wildcard-wrapped patterns match any superstring.
    #[test]
    fn infix_patterns_match_superstrings(
        core in "[a-z]{1,10}",
        prefix in "[a-z]{0,5}",
        suffix in "[a-z]{0,5}",
    ) {
        let p = Pattern::new(format!("*{core}*"));
        let text = format!("{prefix}{core}{suffix}");
        prop_assert!(p.matches(&text));
    }

    /// Corpus generation is a pure function of its options.
    #[test]
    fn corpus_generation_deterministic(seed in 0u64..1000, projects in 1usize..5) {
        let u = Universe::new();
        let opts = CorpusOptions { projects, rng_seed: seed, ..Default::default() };
        let a = generate_corpus(&u, &opts);
        let b = generate_corpus(&u, &opts);
        prop_assert_eq!(a.file_count(), b.file_count());
        let ta: Vec<String> = a.files().map(|(_, f)| f.content.clone()).collect();
        let tb: Vec<String> = b.files().map(|(_, f)| f.content.clone()).collect();
        prop_assert_eq!(ta, tb);
    }

    /// Every corpus file parses, whatever the generation seed.
    #[test]
    fn all_generated_files_parse(seed in 0u64..200) {
        let u = Universe::new();
        let corpus = generate_corpus(
            &u,
            &CorpusOptions { projects: 2, rng_seed: seed, ..Default::default() },
        );
        for (_, f) in corpus.files() {
            let parsed = parser::parse(&f.content);
            prop_assert!(parsed.is_ok(), "file {} fails: {:?}\n{}", f.path, parsed.err(), f.content);
        }
    }

    /// Unparse round-trip: printing a parsed corpus file and reparsing it
    /// reaches a fixpoint (the printer and parser agree on the language).
    #[test]
    fn unparse_round_trip_on_corpus(seed in 0u64..100) {
        let u = Universe::new();
        let corpus = generate_corpus(
            &u,
            &CorpusOptions { projects: 1, rng_seed: seed, ..Default::default() },
        );
        for (_, f) in corpus.files() {
            let m1 = parser::parse(&f.content).expect("corpus parses");
            let printed = seldon_pyast::unparse(&m1);
            let m2 = parser::parse(&printed)
                .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
            let printed2 = seldon_pyast::unparse(&m2);
            prop_assert_eq!(&printed, &printed2, "printer not a fixpoint");
        }
    }

    /// Lenient parsing never loses statements on well-formed input and
    /// never reports errors for it.
    #[test]
    fn lenient_equals_strict_on_valid(seed in 0u64..100) {
        let u = Universe::new();
        let corpus = generate_corpus(
            &u,
            &CorpusOptions { projects: 1, rng_seed: seed, ..Default::default() },
        );
        for (_, f) in corpus.files() {
            let strict = parser::parse(&f.content).expect("corpus parses");
            let (lenient, errors) = parser::parse_lenient(&f.content);
            prop_assert!(errors.is_empty());
            prop_assert_eq!(&strict, &lenient);
        }
    }

    /// Parameter-sensitive analysis only ever removes reports, never adds.
    #[test]
    fn param_sensitivity_is_monotone(seed in 0u64..30) {
        use seldon_taint::{TaintAnalyzer, TaintOptions};
        let u = Universe::new();
        let corpus = generate_corpus(
            &u,
            &CorpusOptions { projects: 3, rng_seed: seed, ..Default::default() },
        );
        let mut graph = seldon_propgraph::PropagationGraph::new();
        for (i, (_, f)) in corpus.files().enumerate() {
            let g = build_source(&f.content, FileId(i as u32)).unwrap();
            graph.union(&g);
        }
        let spec = u.seed_spec_with_signatures();
        let base = TaintAnalyzer::new(&graph, &spec).find_violations();
        let strict = TaintAnalyzer::with_options(
            &graph,
            &spec,
            TaintOptions { param_sensitive: true },
        )
        .find_violations();
        prop_assert!(strict.len() <= base.len());
        for v in &strict {
            prop_assert!(
                base.iter().any(|b| b.source == v.source && b.sink == v.sink),
                "param-sensitive invented a report"
            );
        }
    }

    /// Solver scores always stay inside the [0, 1] box and pinned values
    /// are bit-exact in the solution.
    #[test]
    fn solver_respects_box_and_pins(seed in 0u64..50) {
        let u = Universe::new();
        let corpus = generate_corpus(
            &u,
            &CorpusOptions { projects: 3, rng_seed: seed, ..Default::default() },
        );
        let mut graph = seldon_propgraph::PropagationGraph::new();
        for (i, (_, f)) in corpus.files().enumerate() {
            let g = build_source(&f.content, FileId(i as u32)).unwrap();
            graph.union(&g);
        }
        let sys = generate(
            &graph,
            &u.seed_spec(),
            &GenOptions { rep_cutoff: 2, ..Default::default() },
        );
        let sol = solve(&sys, &SolveOptions { max_iters: 50, ..Default::default() });
        for &s in &sol.scores {
            prop_assert!((0.0..=1.0).contains(&s), "score out of box: {s}");
        }
        for (v, val) in sys.pinned_vars() {
            prop_assert_eq!(sol.score(v), val);
        }
    }

    /// More constraints never make the hinge violation of the all-zeros
    /// assignment negative, and the objective is non-negative everywhere.
    #[test]
    fn objective_nonnegative(seed in 0u64..50) {
        let u = Universe::new();
        let corpus = generate_corpus(
            &u,
            &CorpusOptions { projects: 2, rng_seed: seed, ..Default::default() },
        );
        let mut graph = seldon_propgraph::PropagationGraph::new();
        for (i, (_, f)) in corpus.files().enumerate() {
            let g = build_source(&f.content, FileId(i as u32)).unwrap();
            graph.union(&g);
        }
        let sys = generate(
            &graph,
            &u.seed_spec(),
            &GenOptions { rep_cutoff: 2, ..Default::default() },
        );
        let sol = solve(&sys, &SolveOptions { max_iters: 30, ..Default::default() });
        prop_assert!(sol.objective >= 0.0);
        prop_assert!(sol.violation >= 0.0);
        prop_assert!(sol.violation <= sol.objective + 1e-9);
    }

    /// Staged lowering (source → IrProgram → build_ir) is exactly the
    /// composed builder, for BOTH frontends, on generated corpora: same
    /// events (kind, reps, span), same adjacency. This is the contract
    /// that makes the IR layer a real seam — a frontend only has to get
    /// its lowering right; everything downstream is shared and blind to
    /// the source language.
    #[test]
    fn staged_ir_build_equals_composed(seed in 0u64..60) {
        let u = Universe::new();
        for lang in [Lang::Py, Lang::Js] {
            let corpus = generate_corpus(
                &u,
                &CorpusOptions { projects: 2, rng_seed: seed, lang, ..Default::default() },
            );
            for (i, (_, f)) in corpus.files().enumerate() {
                let file = FileId(i as u32);
                let composed = match lang {
                    Lang::Py => build_source(&f.content, file).expect("composed build"),
                    Lang::Js => {
                        seldon_jsfront::build_js_source(&f.content, file).expect("composed build")
                    }
                };
                let ir = match lang {
                    Lang::Py => seldon_propgraph::lower_source(&f.content).expect("lowering"),
                    Lang::Js => seldon_jsfront::lower_js_source(&f.content).expect("lowering"),
                };
                let staged = seldon_propgraph::build_ir(&ir, file);
                prop_assert_eq!(staged.event_count(), composed.event_count());
                prop_assert_eq!(staged.edge_count(), composed.edge_count());
                for ((id, s), (_, c)) in staged.events().zip(composed.events()) {
                    prop_assert_eq!(s.kind, c.kind);
                    prop_assert_eq!(&s.reps, &c.reps);
                    prop_assert_eq!(s.span, c.span);
                    prop_assert_eq!(s.file, c.file);
                    prop_assert_eq!(staged.successors(id), composed.successors(id));
                    prop_assert_eq!(staged.predecessors(id), composed.predecessors(id));
                }
            }
        }
    }

    /// Spec round-trip: any spec assembled from valid entries survives
    /// serialize → parse.
    #[test]
    fn spec_text_round_trip(entries in prop::collection::vec(("[a-z][a-z.]{0,15}\\(\\)", 0usize..3), 0..10)) {
        let mut spec = TaintSpec::new();
        for (api, role_idx) in &entries {
            spec.add(api.clone(), Role::from_index(*role_idx));
        }
        let text = spec.to_text();
        let reparsed = TaintSpec::parse(&text).expect("round-trip parses");
        prop_assert_eq!(spec, reparsed);
    }
}

#[test]
fn union_of_contracted_equals_contracted_union_size() {
    // Contracting after union merges same representations across files;
    // the collapsed node count equals the number of distinct reps.
    let u = Universe::new();
    let corpus = generate_corpus(&u, &CorpusOptions { projects: 3, ..Default::default() });
    let mut graph = seldon_propgraph::PropagationGraph::new();
    for (i, (_, f)) in corpus.files().enumerate() {
        let g = build_source(&f.content, FileId(i as u32)).unwrap();
        graph.union(&g);
    }
    let (collapsed, mapping) = graph.contract();
    let distinct: std::collections::HashSet<&str> =
        graph.events().map(|(_, e)| e.rep()).collect();
    assert_eq!(collapsed.event_count(), distinct.len());
    assert_eq!(mapping.len(), graph.event_count());
}
