//! Golden telemetry tests: a fixed seeded corpus through [`run_full`]
//! must yield a [`RunManifest`] with the eight pipeline stages in order,
//! a monotone solver convergence curve, per-template constraint counts
//! that add up, a lossless JSON round-trip, and — once wall-clock fields
//! are redacted — byte-identical output across repeated runs.

use seldon_core::{run_full, AnalyzeOptions, FaultPolicy, SeldonOptions};
use seldon_corpus::{generate_corpus, Corpus, CorpusOptions, Universe};
use seldon_specs::TaintSpec;
use seldon_telemetry::{stage, RunManifest, Telemetry};

fn fixture() -> (Corpus, TaintSpec) {
    let universe = Universe::new();
    let corpus = generate_corpus(
        &universe,
        &CorpusOptions { projects: 8, rng_seed: 7, ..Default::default() },
    );
    (corpus, universe.seed_spec())
}

fn recording_opts() -> AnalyzeOptions {
    AnalyzeOptions {
        policy: FaultPolicy::Recover,
        threads: 2,
        telemetry: Telemetry::recording(),
        ..Default::default()
    }
}

fn run_manifest(corpus: &Corpus, seed: &TaintSpec) -> RunManifest {
    run_full(corpus, seed, "learn", &recording_opts(), &SeldonOptions::default())
        .expect("fixture corpus analyzes")
        .manifest
        .expect("recording handle yields a manifest")
}

#[test]
fn stages_appear_exactly_once_in_pipeline_order() {
    let (corpus, seed) = fixture();
    let m = run_manifest(&corpus, &seed);
    let top_level: Vec<&str> = m
        .stages
        .iter()
        .filter(|s| s.depth == 0)
        .map(|s| s.name.as_str())
        .collect();
    assert_eq!(top_level, stage::ALL, "one span per stage, in pipeline order");
    for s in m.stages.iter().filter(|s| s.depth == 0) {
        assert_eq!(s.parent, None, "driver stages are top-level: {}", s.name);
    }
    // Child spans: per-project parse shares under `parse`, per-shard union
    // folds under `union`, and the CSR lowering under `solve`.
    let nested: Vec<&seldon_telemetry::StageSpan> =
        m.stages.iter().filter(|s| s.depth > 0).collect();
    assert!(
        nested.iter().all(|s| s.depth == 1 && s.parent.is_some()),
        "every nested span is a direct child of a stage"
    );
    let parent_name = |s: &seldon_telemetry::StageSpan| {
        m.stages[s.parent.unwrap() as usize].name.as_str()
    };
    let projects: Vec<&&seldon_telemetry::StageSpan> =
        nested.iter().filter(|s| s.name == stage::PARSE_PROJECT).collect();
    assert_eq!(projects.len(), 8, "one parse child per fixture project");
    for p in &projects {
        assert_eq!(parent_name(p), stage::PARSE, "parse.project nests under parse");
        assert!(
            p.counters.iter().any(|(k, v)| k == "files" && *v >= 1.0),
            "parse.project carries its file count: {:?}",
            p.counters
        );
    }
    let shards: Vec<&&seldon_telemetry::StageSpan> =
        nested.iter().filter(|s| s.name == stage::UNION_SHARD).collect();
    assert_eq!(shards.len(), 2, "one union child per worker shard (threads=2)");
    for s in &shards {
        assert_eq!(parent_name(s), stage::UNION, "union.shard nests under union");
    }
    let compiles: Vec<&&seldon_telemetry::StageSpan> =
        nested.iter().filter(|s| s.name == stage::COMPILE).collect();
    assert_eq!(compiles.len(), 1, "exactly one compile child");
    let compile = *compiles[0];
    assert_eq!(parent_name(compile), stage::SOLVE, "compile nests under solve");
    let counters: Vec<&str> = compile.counters.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(counters, ["constraints", "rows", "terms", "lanes"]);
    assert_eq!(
        nested.len(),
        projects.len() + shards.len() + compiles.len(),
        "no unexpected child spans: {:?}",
        nested.iter().map(|s| s.name.as_str()).collect::<Vec<_>>()
    );
    // The solve span records the worker-thread count alongside outcome.
    let solve = m.stage(stage::SOLVE).unwrap();
    assert!(
        solve.counters.iter().any(|(k, v)| k == "threads" && *v >= 1.0),
        "solve span carries the thread count: {:?}",
        solve.counters
    );
}

#[test]
fn solver_curve_is_monotone_and_reaches_the_final_epoch() {
    let (corpus, seed) = fixture();
    let m = run_manifest(&corpus, &seed);
    let curve = &m.solver.curve;
    assert!(!curve.is_empty(), "default stride samples the solver");
    assert!(
        curve.windows(2).all(|w| w[0].epoch < w[1].epoch),
        "epoch indices strictly increase: {:?}",
        curve.iter().map(|e| e.epoch).collect::<Vec<_>>()
    );
    assert_eq!(
        curve.last().unwrap().epoch,
        m.solver.iterations - 1,
        "the final epoch is always sampled"
    );
    for e in curve {
        assert!(e.lr > 0.0 && e.objective.is_finite() && e.grad_norm.is_finite());
        assert!(e.hinge_loss >= 0.0);
    }
}

#[test]
fn template_counts_add_up_and_manifest_round_trips() {
    let (corpus, seed) = fixture();
    let m = run_manifest(&corpus, &seed);
    assert_eq!(m.constraints.by_template.iter().sum::<u64>(), m.constraints.total);
    assert!(m.constraints.vars >= m.constraints.pinned);
    let outcomes = &m.outcomes;
    assert_eq!(
        outcomes.ok + outcomes.recovered + outcomes.skipped + outcomes.over_budget
            + outcomes.panicked,
        m.corpus.files,
        "every corpus file has exactly one outcome"
    );
    let back = RunManifest::from_json(&m.to_json()).expect("manifest JSON parses back");
    assert_eq!(back, m, "JSON round-trip is lossless");
}

#[test]
fn repeated_runs_are_identical_after_timing_redaction() {
    let (corpus, seed) = fixture();
    let mut a = run_manifest(&corpus, &seed);
    let mut b = run_manifest(&corpus, &seed);
    a.redact_timings();
    b.redact_timings();
    // The interner is process-global: concurrent tests may grow it between
    // the two runs, so the symbol count is not part of the golden surface.
    a.corpus.symbols = 0;
    b.corpus.symbols = 0;
    assert_eq!(a, b, "redacted manifests are deterministic");
    assert_eq!(a.to_json(), b.to_json(), "and so is their JSON");
}
