//! Golden telemetry tests: a fixed seeded corpus through [`run_full`]
//! must yield a [`RunManifest`] with the eight pipeline stages in order,
//! a monotone solver convergence curve, per-template constraint counts
//! that add up, a lossless JSON round-trip, and — once wall-clock fields
//! are redacted — byte-identical output across repeated runs.

use seldon_core::{run_full, AnalyzeOptions, FaultPolicy, SeldonOptions};
use seldon_corpus::{generate_corpus, Corpus, CorpusOptions, Universe};
use seldon_specs::TaintSpec;
use seldon_telemetry::{stage, MetricValue, RunManifest, Telemetry};

fn fixture() -> (Corpus, TaintSpec) {
    let universe = Universe::new();
    let corpus = generate_corpus(
        &universe,
        &CorpusOptions { projects: 8, rng_seed: 7, ..Default::default() },
    );
    (corpus, universe.seed_spec())
}

fn recording_opts() -> AnalyzeOptions {
    AnalyzeOptions {
        policy: FaultPolicy::Recover,
        threads: 2,
        telemetry: Telemetry::recording(),
        ..Default::default()
    }
}

fn run_manifest(corpus: &Corpus, seed: &TaintSpec) -> RunManifest {
    run_full(corpus, seed, "learn", &recording_opts(), &SeldonOptions::default())
        .expect("fixture corpus analyzes")
        .manifest
        .expect("recording handle yields a manifest")
}

#[test]
fn stages_appear_exactly_once_in_pipeline_order() {
    let (corpus, seed) = fixture();
    let m = run_manifest(&corpus, &seed);
    let top_level: Vec<&str> = m
        .stages
        .iter()
        .filter(|s| s.depth == 0)
        .map(|s| s.name.as_str())
        .collect();
    assert_eq!(top_level, stage::ALL, "one span per stage, in pipeline order");
    for s in m.stages.iter().filter(|s| s.depth == 0) {
        assert_eq!(s.parent, None, "driver stages are top-level: {}", s.name);
    }
    // Child spans: per-project parse shares under `parse`, per-shard union
    // folds under `union`, and the CSR lowering under `solve`.
    let nested: Vec<&seldon_telemetry::StageSpan> =
        m.stages.iter().filter(|s| s.depth > 0).collect();
    assert!(
        nested.iter().all(|s| s.depth == 1 && s.parent.is_some()),
        "every nested span is a direct child of a stage"
    );
    let parent_name = |s: &seldon_telemetry::StageSpan| {
        m.stages[s.parent.unwrap() as usize].name.as_str()
    };
    let projects: Vec<&&seldon_telemetry::StageSpan> =
        nested.iter().filter(|s| s.name == stage::PARSE_PROJECT).collect();
    assert_eq!(projects.len(), 8, "one parse child per fixture project");
    for p in &projects {
        assert_eq!(parent_name(p), stage::PARSE, "parse.project nests under parse");
        assert!(
            p.counters.iter().any(|(k, v)| k == "files" && *v >= 1.0),
            "parse.project carries its file count: {:?}",
            p.counters
        );
    }
    let shards: Vec<&&seldon_telemetry::StageSpan> =
        nested.iter().filter(|s| s.name == stage::UNION_SHARD).collect();
    assert_eq!(shards.len(), 2, "one union child per worker shard (threads=2)");
    for s in &shards {
        assert_eq!(parent_name(s), stage::UNION, "union.shard nests under union");
    }
    let compiles: Vec<&&seldon_telemetry::StageSpan> =
        nested.iter().filter(|s| s.name == stage::COMPILE).collect();
    assert_eq!(compiles.len(), 1, "exactly one compile child");
    let compile = *compiles[0];
    assert_eq!(parent_name(compile), stage::SOLVE, "compile nests under solve");
    let counters: Vec<&str> = compile.counters.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(counters, ["constraints", "rows", "terms", "lanes"]);
    assert_eq!(
        nested.len(),
        projects.len() + shards.len() + compiles.len(),
        "no unexpected child spans: {:?}",
        nested.iter().map(|s| s.name.as_str()).collect::<Vec<_>>()
    );
    // The solve span records the worker-thread count alongside outcome.
    let solve = m.stage(stage::SOLVE).unwrap();
    assert!(
        solve.counters.iter().any(|(k, v)| k == "threads" && *v >= 1.0),
        "solve span carries the thread count: {:?}",
        solve.counters
    );
}

#[test]
fn solver_curve_is_monotone_and_reaches_the_final_epoch() {
    let (corpus, seed) = fixture();
    let m = run_manifest(&corpus, &seed);
    let curve = &m.solver.curve;
    assert!(!curve.is_empty(), "default stride samples the solver");
    assert!(
        curve.windows(2).all(|w| w[0].epoch < w[1].epoch),
        "epoch indices strictly increase: {:?}",
        curve.iter().map(|e| e.epoch).collect::<Vec<_>>()
    );
    assert_eq!(
        curve.last().unwrap().epoch,
        m.solver.iterations - 1,
        "the final epoch is always sampled"
    );
    for e in curve {
        assert!(e.lr > 0.0 && e.objective.is_finite() && e.grad_norm.is_finite());
        assert!(e.hinge_loss >= 0.0);
    }
}

#[test]
fn template_counts_add_up_and_manifest_round_trips() {
    let (corpus, seed) = fixture();
    let m = run_manifest(&corpus, &seed);
    assert_eq!(m.constraints.by_template.iter().sum::<u64>(), m.constraints.total);
    assert!(m.constraints.vars >= m.constraints.pinned);
    let outcomes = &m.outcomes;
    assert_eq!(
        outcomes.ok + outcomes.recovered + outcomes.skipped + outcomes.over_budget
            + outcomes.panicked,
        m.corpus.files,
        "every corpus file has exactly one outcome"
    );
    let back = RunManifest::from_json(&m.to_json()).expect("manifest JSON parses back");
    assert_eq!(back, m, "JSON round-trip is lossless");
}

#[test]
fn manifest_v5_carries_memory_accounting_and_metrics() {
    let (corpus, seed) = fixture();
    let m = run_manifest(&corpus, &seed);
    assert!(m.memory.tracked, "in-process runs track the counting allocator");
    assert!(m.memory.peak_bytes > 0);
    assert!(m.memory.peak_bytes >= m.memory.current_bytes);
    let top: Vec<&seldon_telemetry::StageSpan> =
        m.stages.iter().filter(|s| s.depth == 0).collect();
    for s in &top {
        assert!(s.mem_peak_bytes > 0, "stage {} records its heap peak", s.name);
        assert!(s.mem_peak_bytes >= s.mem_now_bytes, "peak bounds live bytes: {}", s.name);
    }
    // The allocator peak is monotone, so stage peaks never decrease in
    // pipeline order.
    assert!(
        top.windows(2).all(|w| w[0].mem_peak_bytes <= w[1].mem_peak_bytes),
        "stage peaks are a running high-water mark"
    );
    let rep_freq = m.metrics.get("rep_frequency").expect("rep_frequency metric");
    assert!(!rep_freq.volatile, "rep frequency is a pipeline output");
    let MetricValue::Histogram(h) = &rep_freq.value else {
        panic!("rep_frequency is a histogram")
    };
    assert!(h.total() > 0, "the fixture graph has representations");
    let gap = m.metrics.get("constraint_gap").expect("constraint_gap metric");
    let MetricValue::Histogram(h) = &gap.value else {
        panic!("constraint_gap is a histogram")
    };
    assert_eq!(h.total(), m.constraints.total, "one gap observation per constraint");
    assert!(m.metrics.get("build_time_us").is_some(), "per-file build distribution");
    assert!(m.metrics.get("solver_epoch_us").is_some(), "solver epoch timing");
    assert!(m.metrics.get("solver_rows").is_some(), "CSR row occupancy");
    assert!(m.metrics.get("solver_lanes").is_some(), "CSR lane occupancy");
    assert!(m.score_dump.is_empty(), "the score dump is opt-in");
}

#[test]
fn score_dump_is_opt_in_sorted_and_round_trips() {
    let (corpus, seed) = fixture();
    let seldon = SeldonOptions { score_dump: true, ..Default::default() };
    let full = run_full(&corpus, &seed, "learn", &recording_opts(), &seldon)
        .expect("fixture corpus analyzes");
    let m = full.manifest.expect("recording handle yields a manifest");
    assert!(!m.score_dump.is_empty(), "the fixture learns entries");
    assert_eq!(
        m.score_dump.len(),
        full.run.extraction.scores.len(),
        "one dump entry per learned (rep, role)"
    );
    assert!(
        m.score_dump.windows(2).all(|w| {
            (w[0].rep.as_str(), w[0].role.as_str()) < (w[1].rep.as_str(), w[1].role.as_str())
        }),
        "entries are sorted by (rep, role)"
    );
    for e in &m.score_dump {
        assert!(
            ["src", "san", "snk"].contains(&e.role.as_str()),
            "role label: {}",
            e.role
        );
        assert!(e.score > 0.0 && e.score <= 1.0, "effective score in (0, 1]: {}", e.score);
        assert!(
            (e.backoff_level as usize) < m.extraction.backoff_hits.len().max(1),
            "level within the recorded sweep"
        );
    }
    let back = RunManifest::from_json(&m.to_json()).expect("manifest JSON parses back");
    assert_eq!(back, m, "score dump survives the round trip");
}

#[test]
fn repeated_runs_are_identical_after_timing_redaction() {
    let (corpus, seed) = fixture();
    let mut a = run_manifest(&corpus, &seed);
    let mut b = run_manifest(&corpus, &seed);
    a.redact_timings();
    b.redact_timings();
    // The interner is process-global: concurrent tests may grow it between
    // the two runs, so the symbol count is not part of the golden surface.
    a.corpus.symbols = 0;
    b.corpus.symbols = 0;
    assert_eq!(a, b, "redacted manifests are deterministic");
    assert_eq!(a.to_json(), b.to_json(), "and so is their JSON");
}
