//! Fidelity tests: scenarios lifted directly from the paper's figures,
//! examples, and appendix samples.

use seldon_propgraph::{build_source, describe_expr, FileId, ReprCtx};
use seldon_pyast::parse_expr;
use seldon_specs::{paper_seed, Role};
use seldon_taint::TaintAnalyzer;
use std::collections::HashMap;

/// §3.2 / Fig. 3: the ESCPOSDriver representation example, verbatim.
#[test]
fn fig3_representation_backoff_levels() {
    let src = "
from base_driver import ThreadDriver

class ESCPOSDriver(ThreadDriver):
    def status(self, eprint):
        self.receipt('<div>' + msg + '</div>')
";
    let g = build_source(src, FileId(0)).unwrap();
    let call = g
        .events()
        .find(|(_, e)| e.rep().contains("receipt"))
        .map(|(_, e)| e.clone())
        .expect("receipt call event");
    // The paper's four granularity levels, §3.2.
    assert_eq!(call.reps[0].as_str(), "ESCPOSDriver::status(param self).receipt()");
    assert!(call.has_rep("base_driver.ThreadDriver::status(param self).receipt()"));
    assert!(call.has_rep("status(param self).receipt()"));
    assert!(call.has_rep("self.receipt()"));
}

/// Fig. 2: the complete propagation graph of the worked example, with the
/// exact edges the paper draws.
#[test]
fn fig2_edges_exact() {
    let src = r#"
from yak.web import app
from flask import request
from werkzeug import secure_filename
import os

blog_dir = app.config['PATH']

@app.route('/media/', methods=['POST'])
def media():
    filename = request.files['f'].filename
    filename = secure_filename(filename)
    path = os.path.join(blog_dir, filename)
    if not os.path.exists(path):
        request.files['f'].save(path)
"#;
    let g = build_source(src, FileId(0)).unwrap();
    let find = |rep: &str| {
        g.events()
            .find(|(_, e)| e.has_rep(rep))
            .map(|(id, _)| id)
            .unwrap_or_else(|| panic!("missing event {rep}"))
    };
    let a = find("flask.request.files['f'].filename");
    let b = find("werkzeug.secure_filename()");
    let c = find("os.path.join()");
    let d = find("flask.request.files['f'].save()");
    let e = find("yak.web.app.config['PATH']");
    let f = find("os.path.exists()");
    // Direct edges of Fig. 2b.
    assert!(g.edge_kind(a, b).is_some(), "a -> b");
    assert!(g.edge_kind(b, c).is_some(), "b -> c");
    assert!(g.edge_kind(e, c).is_some(), "e -> c");
    assert!(g.edge_kind(c, d).is_some(), "c -> d");
    assert!(g.edge_kind(c, f).is_some(), "c -> f");
    // `request.files['f']` appears twice (lines 10 and 14); the second
    // occurrence is the receiver of save() — Fig. 2b's event g.
    let receiver_edge_exists = g
        .events()
        .filter(|(_, e)| e.rep() == "flask.request.files['f']")
        .any(|(id, _)| g.edge_kind(id, d).is_some());
    assert!(receiver_edge_exists, "g -> d");
}

/// App. A samples: representation strings Seldon's paper actually printed
/// must be derivable by our representation machinery.
#[test]
fn appendix_a_style_representations() {
    // `flask.request.form['srpValueM']`
    let mut ctx = ReprCtx::new();
    ctx.imports.insert("request".into(), vec!["flask".into(), "request".into()]);
    let reps = describe_expr(&parse_expr("request.form['srpValueM']").unwrap(), &ctx);
    assert_eq!(reps[0], "flask.request.form['srpValueM']");

    // `urlparse.urlparse().port`
    let mut ctx = ReprCtx::new();
    ctx.imports.insert("urlparse".into(), vec!["urlparse".into()]);
    let reps = describe_expr(&parse_expr("urlparse.urlparse(u).port").unwrap(), &ctx);
    assert_eq!(reps[0], "urlparse.urlparse().port");

    // `LoginForm().username.data`
    let mut ctx = ReprCtx::new();
    ctx.imports.insert("LoginForm".into(), vec!["forms".into(), "LoginForm".into()]);
    let reps = describe_expr(&parse_expr("LoginForm().username.data").unwrap(), &ctx);
    assert!(reps.contains(&"LoginForm().username.data".to_string()), "{reps:?}");

    // `media(param f).save()` — the §2 ambiguity example.
    let mut ctx = ReprCtx::new();
    ctx.func_name = Some("media".into());
    ctx.params = vec!["f".into()];
    let reps = describe_expr(&parse_expr("f.save(path)").unwrap(), &ctx);
    assert_eq!(reps, vec!["media(param f).save()", "f.save()"]);
}

/// The embedded App. B seed spec drives a real taint analysis end to end.
#[test]
fn paper_seed_spec_finds_owasp_vulnerabilities() {
    let seed = paper_seed();
    let src = r#"
from flask import request
import flask
import os
import subprocess

def sqli(cursor):
    q = request.args.get('id')
    cursor.execute("SELECT * FROM t WHERE id = " + q)

def xss():
    name = request.args.get('name')
    return flask.render_template_string('<h1>' + name + '</h1>')

def cmdi():
    os.system(request.form.get('cmd'))

def redirect():
    return flask.redirect(request.args.get('next'))

def safe_path():
    from werkzeug import utils
    fn = utils.secure_filename(request.args.get('f'))
    return flask.send_file(fn)
"#;
    let g = build_source(src, FileId(0)).unwrap();
    let analyzer = TaintAnalyzer::new(&g, &seed);
    let violations = analyzer.find_violations();
    let sinks: Vec<&str> = violations.iter().map(|v| v.sink_rep.as_str()).collect();
    assert!(sinks.iter().any(|s| s.contains("render_template_string")), "{sinks:?}");
    assert!(sinks.iter().any(|s| s.contains("os.system")), "{sinks:?}");
    assert!(sinks.iter().any(|s| s.contains("redirect")), "{sinks:?}");
    // The sanitized path-traversal flow is not reported.
    assert!(
        !sinks.iter().any(|s| s.contains("send_file")),
        "secure_filename must protect send_file: {sinks:?}"
    );
}

/// Fig. 8: the collapsed graph creates spurious flow, making it unsuitable
/// for taint analysis — while the uncollapsed graph stays precise.
#[test]
fn fig8_collapsed_graph_spurious_flow() {
    let src = "
from m import src, san, sink

def f():
    x = src()
    y = san(x)

def g():
    x = 1
    y = san(x)
    sink(y)
";
    let g = build_source(src, FileId(0)).unwrap();
    let find = |rep: &str| {
        g.events()
            .find(|(_, e)| e.rep() == rep)
            .map(|(id, _)| id)
            .unwrap()
    };
    let source = find("m.src()");
    let sink = find("m.sink()");
    assert!(!g.is_reachable(source, sink), "uncollapsed graph is precise");
    let (collapsed, mapping) = g.contract();
    assert!(
        collapsed.is_reachable(mapping[source.index()], mapping[sink.index()]),
        "collapsed graph conflates the two san() calls (Fig. 8)"
    );
}

/// §5.2: the `locals()` special case.
#[test]
fn locals_symbol_table_flow() {
    let seed = paper_seed();
    let src = "
from flask import request
import flask
def view():
    name = request.args.get('n')
    return flask.render_template_string('{x}'.join(locals()))
";
    let g = build_source(src, FileId(0)).unwrap();
    let analyzer = TaintAnalyzer::new(&g, &seed);
    // Flow: source -> name -> locals() -> join (blacklisted, pass-through
    // event is still created but plays no role) -> sink.
    let violations = analyzer.find_violations();
    assert!(
        violations.iter().any(|v| v.sink_rep.contains("render_template_string")),
        "locals() must propagate local variables: {violations:?}"
    );
}

/// The blacklist (App. B) keeps built-ins out of every role.
#[test]
fn blacklist_excludes_builtins_from_analysis() {
    let seed = paper_seed();
    let g = build_source(
        "from flask import request\nx = request.args.get('q')\ny = x.strip()\nz = len(y)\n",
        FileId(0),
    )
    .unwrap();
    let analyzer = TaintAnalyzer::new(&g, &seed);
    for (id, event) in g.events() {
        if event.reps.iter().any(|r| r.as_str().ends_with(".strip()") || r.as_str() == "len()") {
            assert!(analyzer.roles(id).is_empty(), "{:?} got a role", event.rep());
        }
    }
}

/// DOT export renders the Fig. 2 graph with role colors.
#[test]
fn fig2_dot_rendering() {
    let src = "from flask import request\nimport os\nos.system(request.args.get('c'))\n";
    let g = build_source(src, FileId(0)).unwrap();
    let seed = paper_seed();
    let analyzer = TaintAnalyzer::new(&g, &seed);
    let mut roles = HashMap::new();
    for (id, _) in g.events() {
        let r = analyzer.roles(id);
        if !r.is_empty() {
            roles.insert(id, r);
        }
    }
    let dot = seldon_propgraph::to_dot(&g, &roles);
    assert!(dot.contains("lightblue"), "source colored");
    assert!(dot.contains("lightcoral"), "sink colored");
}

/// The paper's seed spec counts (§7.2): 28 sources, 30 sanitizers, 48
/// sinks, 106 total.
#[test]
fn seed_spec_counts_match_paper() {
    let seed = paper_seed();
    assert_eq!(seed.count_role(Role::Source), 28);
    assert_eq!(seed.count_role(Role::Sanitizer), 30);
    assert_eq!(seed.count_role(Role::Sink), 48);
    assert_eq!(seed.role_count(), 106);
}
