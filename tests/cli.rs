//! Integration tests for the `seldon` command-line tool, driving the real
//! binary against Python files on disk.

use std::path::PathBuf;
use std::process::Command;

fn seldon() -> Command {
    Command::new(env!("CARGO_BIN_EXE_seldon"))
}

fn write_app(dir: &std::path::Path) -> PathBuf {
    let app = dir.join("app.py");
    std::fs::write(
        &app,
        "from flask import request\nimport os\n\ndef run():\n    cmd = request.args.get('c')\n    os.system(cmd)\n",
    )
    .expect("write temp app");
    app
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("seldon-cli-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn check_reports_command_injection() {
    let dir = temp_dir("check");
    write_app(&dir);
    let out = seldon().arg("check").arg(&dir).output().expect("runs");
    // Findings exit with code 1 (0 is reserved for clean runs).
    assert_eq!(out.status.code(), Some(1), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Command Injection"), "{stdout}");
    assert!(stdout.contains("os.system()"), "{stdout}");
    assert!(stdout.contains("violation(s) total"), "{stdout}");
}

#[test]
fn check_clean_file_reports_nothing() {
    let dir = temp_dir("clean");
    std::fs::write(dir.join("ok.py"), "import os\nprint(os.getcwd())\n").unwrap();
    let out = seldon().arg("check").arg(&dir).output().expect("runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("no violations found"), "{stdout}");
}

#[test]
fn graph_lists_events_and_dot() {
    let dir = temp_dir("graph");
    let app = write_app(&dir);
    let out = seldon().arg("graph").arg(&app).output().expect("runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("events"), "{stdout}");
    assert!(stdout.contains("os.system()"), "{stdout}");

    let out = seldon().arg("graph").arg(&app).arg("--dot").output().expect("runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("digraph propagation"), "{stdout}");
}

#[test]
fn learn_writes_spec_file() {
    let dir = temp_dir("learn");
    // Several files using the same unknown wrapper so the cutoff keeps it.
    for i in 0..6 {
        std::fs::write(
            dir.join(format!("m{i}.py")),
            "from flask import request\nimport webresp, htmlutils\n\ndef page():\n    q = request.args.get('x')\n    return webresp.render_page(htmlutils.sanitize(q))\n",
        )
        .unwrap();
    }
    let out_path = dir.join("learned.txt");
    let out = seldon()
        .arg("learn")
        .arg(&dir)
        .arg("--out")
        .arg(&out_path)
        .output()
        .expect("runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = std::fs::read_to_string(&out_path).expect("spec written");
    // The learned spec parses in the App. B format.
    let spec = seldon_specs::TaintSpec::parse(&text).expect("learned spec parses");
    let _ = spec.role_count();
}

#[test]
fn learn_solver_threads_is_output_invariant() {
    // The same learn run at 1 and 4 solver threads must write identical
    // spec files (the compiled kernel's summation order is fixed), and a
    // malformed thread count is a usage error.
    let dir = temp_dir("threads");
    for i in 0..6 {
        std::fs::write(
            dir.join(format!("m{i}.py")),
            "from flask import request\nimport webresp, htmlutils\n\ndef page():\n    q = request.args.get('x')\n    return webresp.render_page(htmlutils.sanitize(q))\n",
        )
        .unwrap();
    }
    let spec_at = |threads: &str| {
        let out_path = dir.join(format!("learned-{threads}.txt"));
        let out = seldon()
            .arg("learn")
            .arg(&dir)
            .arg("--solver-threads")
            .arg(threads)
            .arg("--out")
            .arg(&out_path)
            .output()
            .expect("runs");
        assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
        std::fs::read_to_string(&out_path).expect("spec written")
    };
    assert_eq!(spec_at("1"), spec_at("4"), "spec must not depend on --solver-threads");

    let out = seldon()
        .arg("learn")
        .arg(&dir)
        .arg("--solver-threads")
        .arg("lots")
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2), "bad thread count is a usage error");
}

#[test]
fn check_with_custom_spec_and_param_sensitivity() {
    let dir = temp_dir("custom");
    std::fs::write(
        dir.join("app.py"),
        "from flask import request\nimport subprocess\nx = request.args.get('p')\nsubprocess.call(['ls'], env=x)\n",
    )
    .unwrap();
    let spec_path = dir.join("spec.txt");
    std::fs::write(
        &spec_path,
        "o: flask.request.args.get()\ni: subprocess.call()\np: subprocess.call() 0\n",
    )
    .unwrap();
    // Baseline: reported.
    let out = seldon()
        .arg("check")
        .arg(&dir)
        .arg("--spec")
        .arg(&spec_path)
        .output()
        .expect("runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("1 violation(s) total"), "{stdout}");
    // Param-sensitive: env= is harmless.
    let out = seldon()
        .arg("check")
        .arg(&dir)
        .arg("--spec")
        .arg(&spec_path)
        .arg("--param-sensitive")
        .output()
        .expect("runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("no violations found"), "{stdout}");
}

#[test]
fn malformed_file_degrades_gracefully() {
    let dir = temp_dir("broken");
    std::fs::write(
        dir.join("broken.py"),
        "from flask import request\nimport os\nx = = broken = =\nos.system(request.args.get('c'))\n",
    )
    .unwrap();
    let out = seldon().arg("check").arg(&dir).output().expect("runs");
    // Degraded analysis (and findings) exit with code 1.
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("warning"), "lenient parse warns: {stderr}");
    assert!(stderr.contains("degraded analysis"), "summary printed: {stderr}");
    assert!(stdout.contains("Command Injection"), "analysis continues: {stdout}");
}

#[test]
fn strict_mode_aborts_on_malformed_file() {
    let dir = temp_dir("strict");
    std::fs::write(dir.join("broken.py"), "x = = broken\n").unwrap();
    let out = seldon().arg("check").arg(&dir).arg("--strict").output().expect("runs");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error"), "{stderr}");
    // Mutually exclusive flags are a usage error.
    let out = seldon()
        .arg("check")
        .arg(&dir)
        .arg("--strict")
        .arg("--lenient")
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn missing_inputs_are_usage_errors() {
    let dir = temp_dir("empty");
    let out = seldon().arg("check").arg(&dir).output().expect("runs");
    assert_eq!(out.status.code(), Some(2), "no .py files is a usage error");
    let out = seldon().arg("check").arg(dir.join("nope")).output().expect("runs");
    assert_eq!(out.status.code(), Some(2), "missing path is a usage error");
}

#[cfg(unix)]
#[test]
fn symlink_cycle_terminates() {
    let dir = temp_dir("cycle");
    let sub = dir.join("sub");
    std::fs::create_dir_all(&sub).unwrap();
    write_app(&sub);
    // sub/loop -> dir: walking dir would recurse forever without the guard.
    std::os::unix::fs::symlink(&dir, sub.join("loop")).expect("symlink");
    let out = seldon().arg("check").arg(&dir).output().expect("runs");
    // Terminates and still finds the vulnerable app exactly once.
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Command Injection"), "{stdout}");
}

#[test]
fn check_json_format() {
    let dir = temp_dir("json");
    write_app(&dir);
    let out = seldon()
        .arg("check")
        .arg(&dir)
        .arg("--format")
        .arg("json")
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(1), "findings exit 1 in json mode too");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let trimmed = stdout.trim();
    assert!(trimmed.starts_with('[') && trimmed.ends_with(']'), "{stdout}");
    assert!(trimmed.contains("\"class\":\"Command Injection\""), "{stdout}");
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = seldon().arg("frobnicate").output().expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn learn_telemetry_writes_manifest_and_trace() {
    let dir = temp_dir("telemetry");
    write_app(&dir);
    let manifest_path = dir.join("run.json");
    let trace_path = dir.join("run.trace.json");
    let out = seldon()
        .arg("learn")
        .arg(&dir)
        .arg("--telemetry")
        .arg(&manifest_path)
        .arg("--trace")
        .arg(&trace_path)
        .output()
        .expect("runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("wrote run manifest"), "{stderr}");
    assert!(stderr.contains("wrote Chrome trace"), "{stderr}");

    let json = std::fs::read_to_string(&manifest_path).expect("manifest written");
    let m = seldon_telemetry::RunManifest::from_json(&json).expect("manifest parses");
    assert!(m.has_all_stages(), "all eight stages recorded");
    assert_eq!(m.command, "learn");
    assert_eq!(m.corpus.files, 1);
    assert!(!m.solver.curve.is_empty(), "convergence curve sampled");

    // Chrome's JSON-array trace format: one complete "X" event per stage.
    let trace = std::fs::read_to_string(&trace_path).expect("trace written");
    assert!(trace.trim_start().starts_with('['), "{trace}");
    assert!(trace.contains("\"ph\": \"X\"") && trace.contains("\"solve\""), "{trace}");
}

#[test]
fn log_level_controls_stage_lines() {
    let dir = temp_dir("loglevel");
    write_app(&dir);
    let out = seldon().arg("check").arg(&dir).arg("--log-level").arg("info").output().expect("runs");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("[seldon] parse:"), "{stderr}");
    assert!(stderr.contains("[seldon] union:"), "{stderr}");

    // Default stays silent about stages.
    let out = seldon().arg("check").arg(&dir).output().expect("runs");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.contains("[seldon]"), "{stderr}");

    // An unknown level is a usage error.
    let out = seldon().arg("check").arg(&dir).arg("--log-level").arg("loud").output().expect("runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown log level"), "{stderr}");
}

#[test]
fn learn_empty_corpus_is_a_clean_run() {
    // No .py files is a vacuous but legitimate corpus for `learn`: the
    // empty specification is learned and the run exits 0 (unlike `check`,
    // where nothing to check is a usage error).
    let dir = temp_dir("learnempty");
    let out_path = dir.join("spec.txt");
    let out = seldon()
        .arg("learn")
        .arg(&dir)
        .arg("--out")
        .arg(&out_path)
        .output()
        .expect("runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no .py or .js files found"), "{stderr}");
    assert_eq!(
        std::fs::read_to_string(&out_path).expect("spec written"),
        "",
        "the empty spec is the empty file"
    );
}

#[test]
fn learn_exit_codes_are_pinned() {
    // 0 = clean (empty corpus, above), 1 = degraded-but-complete analysis,
    // 1 = strict abort, 2 = usage error. Scripts depend on these.
    let dir = temp_dir("learncodes");
    std::fs::write(
        dir.join("broken.py"),
        "from flask import request\nimport os\nx = = broken = =\nos.system(request.args.get('c'))\n",
    )
    .unwrap();
    let lenient = seldon().arg("learn").arg(&dir).output().expect("runs");
    assert_eq!(lenient.status.code(), Some(1), "lenient run over faults is degraded");
    let stderr = String::from_utf8_lossy(&lenient.stderr);
    assert!(stderr.contains("degraded analysis"), "{stderr}");

    let strict = seldon().arg("learn").arg(&dir).arg("--strict").output().expect("runs");
    assert_eq!(strict.status.code(), Some(1), "strict run aborts on the first fault");

    let usage = seldon()
        .arg("learn")
        .arg(&dir)
        .arg("--cache-dir")
        .arg(dir.join("cache"))
        .arg("--no-cache")
        .output()
        .expect("runs");
    assert_eq!(usage.status.code(), Some(2), "contradictory cache flags are a usage error");
    let stderr = String::from_utf8_lossy(&usage.stderr);
    assert!(stderr.contains("mutually exclusive"), "{stderr}");
}

#[test]
fn cache_dir_warms_across_processes() {
    // Two separate `seldon` processes sharing a cache directory: the
    // second must reuse the first's artifacts and checkpoint (a true
    // cross-process re-intern of every stored representation string) and
    // print a byte-identical specification.
    let dir = temp_dir("cachewarm");
    for i in 0..6 {
        // Distinct contents per file: identical files would share one
        // content-keyed entry and turn cold misses into same-run hits.
        std::fs::write(
            dir.join(format!("m{i}.py")),
            format!("from flask import request\nimport webresp, htmlutils\n\ndef page{i}():\n    q = request.args.get('x{i}')\n    return webresp.render_page(htmlutils.sanitize(q))\n"),
        )
        .unwrap();
    }
    let cache = dir.join("cache");
    // The cache/checkpoint summary lines go through the stage logger, so
    // the assertions below need `--log-level info`.
    let learn = || {
        seldon()
            .arg("learn")
            .arg(&dir)
            .arg("--cache-dir")
            .arg(&cache)
            .arg("--log-level")
            .arg("info")
            .output()
            .expect("runs")
    };
    let cold = learn();
    assert!(cold.status.success(), "stderr: {}", String::from_utf8_lossy(&cold.stderr));
    let cold_err = String::from_utf8_lossy(&cold.stderr);
    assert!(cold_err.contains("6 miss(es)"), "cold run misses everything: {cold_err}");
    assert!(cold_err.contains("checkpoint: cold"), "{cold_err}");

    let warm = learn();
    assert!(warm.status.success(), "stderr: {}", String::from_utf8_lossy(&warm.stderr));
    let warm_err = String::from_utf8_lossy(&warm.stderr);
    assert!(warm_err.contains("6 hit(s)"), "warm run reuses every artifact: {warm_err}");
    assert!(warm_err.contains("checkpoint: full"), "{warm_err}");
    assert!(warm_err.contains("checkpoint full hit"), "{warm_err}");
    assert_eq!(
        String::from_utf8_lossy(&warm.stdout),
        String::from_utf8_lossy(&cold.stdout),
        "specs from cold and warm processes are byte-identical"
    );

    // A damaged cache never poisons the output: corrupt every entry and
    // re-run — faults are warned, contained, and the spec is unchanged.
    let injected = seldon_cache::inject_cache_faults(&cache, 1.0, 7);
    assert!(!injected.is_empty());
    let hurt = learn();
    assert!(hurt.status.success(), "stderr: {}", String::from_utf8_lossy(&hurt.stderr));
    let hurt_err = String::from_utf8_lossy(&hurt.stderr);
    assert!(hurt_err.contains("warning: cache fault"), "{hurt_err}");
    assert!(hurt_err.contains("fault(s) contained"), "{hurt_err}");
    assert_eq!(
        String::from_utf8_lossy(&hurt.stdout),
        String::from_utf8_lossy(&cold.stdout),
        "spec survives a fully corrupted cache"
    );

    // At the default log level (off) the cache summary stays silent.
    let quiet = seldon()
        .arg("learn")
        .arg(&dir)
        .arg("--cache-dir")
        .arg(&cache)
        .output()
        .expect("runs");
    assert!(quiet.status.success(), "stderr: {}", String::from_utf8_lossy(&quiet.stderr));
    let quiet_err = String::from_utf8_lossy(&quiet.stderr);
    assert!(!quiet_err.contains("cache:"), "silent by default: {quiet_err}");
    assert!(!quiet_err.contains("checkpoint"), "silent by default: {quiet_err}");
}

#[test]
fn score_dump_flag_requires_telemetry() {
    let dir = temp_dir("scoredumpflag");
    write_app(&dir);
    let out = seldon().arg("learn").arg(&dir).arg("--score-dump").output().expect("runs");
    assert_eq!(out.status.code(), Some(2), "score dump without a manifest is a usage error");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--score-dump needs --telemetry"), "{stderr}");
}

/// Writes a seeded synthetic corpus (the same fixture the telemetry
/// tests use, so it demonstrably learns entries) to disk, runs
/// `learn --seed --telemetry --score-dump`, and returns the manifest path.
fn learn_manifest(dir: &std::path::Path, name: &str) -> PathBuf {
    use seldon_corpus::{generate_corpus, CorpusOptions, Universe};
    let universe = Universe::new();
    let corpus = generate_corpus(
        &universe,
        &CorpusOptions { projects: 8, rng_seed: 7, ..Default::default() },
    );
    let tree = dir.join("corpus");
    for project in &corpus.projects {
        for file in &project.files {
            let path = tree.join(&project.name).join(&file.path);
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &file.content).unwrap();
        }
    }
    let spec = dir.join("seed_spec.txt");
    std::fs::write(&spec, universe.seed_spec().to_text()).unwrap();
    let manifest = dir.join(name);
    let out = seldon()
        .arg("learn")
        .arg(&tree)
        .arg("--seed")
        .arg(&spec)
        .arg("--telemetry")
        .arg(&manifest)
        .arg("--score-dump")
        .output()
        .expect("runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    manifest
}

#[test]
fn report_renders_the_fig11_summary() {
    let dir = temp_dir("report");
    let manifest = learn_manifest(&dir, "run.json");
    let out = seldon().arg("report").arg(&manifest).arg("--top").arg("5").output().expect("runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("stage breakdown"), "{stdout}");
    assert!(stdout.contains("score vs backoff (Fig. 11)"), "{stdout}");
    assert!(stdout.contains("learned representations by score"), "{stdout}");
    assert!(stdout.contains("memory"), "{stdout}");
    assert!(stdout.contains(" src  "), "learned rep rows carry a role label: {stdout}");
    // A missing manifest is a usage error.
    let out = seldon().arg("report").arg(dir.join("nope.json")).output().expect("runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn metrics_dump_emits_prometheus_text() {
    let dir = temp_dir("metricsdump");
    let manifest = learn_manifest(&dir, "run.json");
    let out = seldon().arg("metrics-dump").arg(&manifest).output().expect("runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("# TYPE seldon_rep_frequency histogram"), "{stdout}");
    assert!(stdout.contains("seldon_stage_duration_us{stage=\"solve\"}"), "{stdout}");
    assert!(stdout.contains("seldon_mem_peak_bytes"), "{stdout}");
    assert!(stdout.contains("le=\"+Inf\""), "{stdout}");
}

#[test]
fn diff_runs_exit_codes_are_pinned() {
    let dir = temp_dir("diffruns");
    let a = learn_manifest(&dir, "a.json");
    let b = dir.join("b.json");
    std::fs::copy(&a, &b).unwrap();

    // Identical manifests: exit 0.
    let same = seldon().arg("diff-runs").arg(&a).arg(&b).output().expect("runs");
    assert_eq!(
        same.status.code(),
        Some(0),
        "stdout: {}",
        String::from_utf8_lossy(&same.stdout)
    );
    assert!(String::from_utf8_lossy(&same.stdout).contains("0 regression(s)"));

    // Perturb an identity field (taint violation count): exit 1. The last
    // `"violations"` key is the taint section's; the first is a stage-span
    // counter, which diff-runs deliberately does not gate on.
    let text = std::fs::read_to_string(&a).unwrap();
    let needle = "\"violations\": ";
    let at = text.rfind(needle).expect("manifest has a taint section") + needle.len();
    let end = at + text[at..].find(|c: char| !c.is_ascii_digit()).unwrap();
    let bumped: u64 = text[at..end].parse::<u64>().unwrap() + 1;
    std::fs::write(&b, format!("{}{bumped}{}", &text[..at], &text[end..])).unwrap();
    let regressed = seldon().arg("diff-runs").arg(&a).arg(&b).output().expect("runs");
    assert_eq!(
        regressed.status.code(),
        Some(1),
        "stdout: {}",
        String::from_utf8_lossy(&regressed.stdout)
    );
    assert!(
        String::from_utf8_lossy(&regressed.stdout).contains("REGRESSION"),
        "{}",
        String::from_utf8_lossy(&regressed.stdout)
    );

    // One path is a usage error.
    let usage = seldon().arg("diff-runs").arg(&a).output().expect("runs");
    assert_eq!(usage.status.code(), Some(2));
}

#[test]
fn strict_learn_reports_solver_restarts() {
    let dir = temp_dir("strictlearn");
    write_app(&dir);
    let out = seldon().arg("learn").arg(&dir).arg("--strict").output().expect("runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("restart(s), final learning rate"), "{stderr}");
}
