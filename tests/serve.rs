//! Integration suite for the incremental analysis daemon (`seldon
//! serve`): the determinism gate (every served spec is byte-identical to
//! a cold batch run over the same corpus state, at 1 and 4 solver
//! threads), the delta fast paths (no-op, fingerprint-unchanged,
//! replay), remove-with-eviction, interner stability under repeated
//! deltas, warm-start byte-identity from perturbed checkpoints, and
//! daemon survival of malformed requests and mid-delta cache faults.

use proptest::prelude::*;
use seldon_cache::{inject_cache_faults, ArtifactCache, CheckpointLookup};
use seldon_constraints::GenOptions;
use seldon_core::{
    run_full, run_seldon_cached, AnalyzeOptions, FaultPolicy, SeldonOptions, WarmStartOptions,
};
use seldon_corpus::{generate_corpus, Corpus, CorpusOptions, Project, SourceFile, Universe};
use seldon_serve::{client_request, run_daemon, Delta, EngineConfig, ServeDaemon, ServeEngine};
use seldon_solver::{EarlyStop, SolveOptions};
use seldon_specs::TaintSpec;
use seldon_telemetry::{json, MetricsRegistry, MetricValue, Telemetry};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn temp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("seldon-serve-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// A generated corpus flattened to `(path, content)` pairs in the sorted
/// order both the `learn` CLI and the engine's file table use.
fn fixture(projects: usize, rng_seed: u64) -> (Vec<(PathBuf, String)>, TaintSpec) {
    let universe = Universe::new();
    let corpus = generate_corpus(
        &universe,
        &CorpusOptions { projects, rng_seed, ..Default::default() },
    );
    let mut files: Vec<(PathBuf, String)> = corpus
        .projects
        .iter()
        .flat_map(|p| {
            // Paths repeat across generated projects; qualify them the way
            // a checkout would, with the project directory.
            p.files
                .iter()
                .map(|f| (PathBuf::from(format!("{}/{}", p.name, f.path)), f.content.clone()))
        })
        .collect();
    files.sort_by(|a, b| a.0.cmp(&b.0));
    (files, universe.seed_spec())
}

/// The same file set as a single-project batch corpus, preserving the
/// sorted order so [`seldon_propgraph::FileId`]s agree with the engine.
fn batch_corpus(files: &[(PathBuf, String)]) -> Corpus {
    Corpus {
        projects: vec![Project {
            name: "cli".into(),
            files: files
                .iter()
                .map(|(p, c)| SourceFile { path: p.display().to_string(), content: c.clone() })
                .collect(),
        }],
        ..Default::default()
    }
}

fn seldon_opts(threads: usize) -> SeldonOptions {
    SeldonOptions {
        gen: GenOptions { rep_cutoff: 2, ..Default::default() },
        solve: SolveOptions { threads, ..Default::default() },
        warm_start: Some(WarmStartOptions::default()),
        ..Default::default()
    }
}

fn analyze_opts(cache: Option<Arc<ArtifactCache>>) -> AnalyzeOptions {
    AnalyzeOptions { policy: FaultPolicy::Recover, cache, ..Default::default() }
}

/// The spec a cold batch run (`seldon learn`, no cache) prints over
/// `files`.
fn cold_batch_spec(files: &[(PathBuf, String)], seed: &TaintSpec, threads: usize) -> String {
    let full = run_full(
        &batch_corpus(files),
        seed,
        "learn",
        &analyze_opts(None),
        &seldon_opts(threads),
    )
    .expect("batch run succeeds");
    full.run.extraction.spec.to_text()
}

fn engine_with(
    files: &[(PathBuf, String)],
    seed: &TaintSpec,
    threads: usize,
    cache_dir: Option<&Path>,
) -> ServeEngine {
    let cache =
        cache_dir.map(|d| Arc::new(ArtifactCache::open(d).expect("cache opens").0));
    let cfg = EngineConfig {
        seed: seed.clone(),
        analyze: analyze_opts(cache),
        seldon: seldon_opts(threads),
        dynamic_cutoff: false,
    };
    let mut engine = ServeEngine::new(cfg);
    let delta = Delta { add: files.to_vec(), ..Default::default() };
    engine.apply_delta(&delta).expect("initial load");
    engine
}

/// A syntactically valid handler appended as a *structural* edit: it
/// adds events, so the file's graph fingerprint must change.
const STRUCTURAL_EDIT: &str = "
@app.route('/handler_added', methods=['GET', 'POST'])
def handler_added():
    z0 = bottle_request.query.get('added')
    z1 = flask.make_response(z0)
    return z1
";

/// A comment-only edit: the frontend drops it, so the graph fingerprint
/// is unchanged.
const COMMENT_EDIT: &str = "# serve-test incremental edit\n";

/// The core determinism gate: after every delta — initial load, a
/// structural edit, an added file, a removed file — the served spec is
/// byte-identical to a cold batch run over the same corpus state.
fn delta_sequence_matches_cold_batch(threads: usize) {
    let dir = temp_dir(&format!("gate-{threads}"));
    let (mut files, seed) = fixture(8, 42);
    let mut engine = engine_with(&files, &seed, threads, Some(&dir));
    assert_eq!(engine.spec().unwrap(), cold_batch_spec(&files, &seed, threads), "initial build");

    // Structural edit of one file.
    files[3].1.push_str(STRUCTURAL_EDIT);
    let delta = Delta { change: vec![files[3].clone()], ..Default::default() };
    let out = engine.apply_delta(&delta).expect("edit delta");
    assert!(
        matches!(out.solve, "scores" | "warm" | "cold"),
        "structural edit must re-solve, got {}",
        out.solve
    );
    assert!(out.fragments_reused > 0, "untouched files reuse their fragments");
    assert_eq!(out.spec, cold_batch_spec(&files, &seed, threads), "after edit");

    // Added file.
    let added = (
        PathBuf::from("zz_added/extra.py"),
        format!("from bottle import request as bottle_request\nimport flask\n{STRUCTURAL_EDIT}"),
    );
    files.push(added.clone());
    files.sort_by(|a, b| a.0.cmp(&b.0));
    let out = engine
        .apply_delta(&Delta { add: vec![added], ..Default::default() })
        .expect("add delta");
    assert_eq!(out.spec, cold_batch_spec(&files, &seed, threads), "after add");

    // Removed file.
    let victim = files.remove(1);
    let out = engine
        .apply_delta(&Delta { remove: vec![victim.0], ..Default::default() })
        .expect("remove delta");
    assert_eq!(out.spec, cold_batch_spec(&files, &seed, threads), "after remove");
}

#[test]
fn delta_sequence_matches_cold_batch_one_thread() {
    delta_sequence_matches_cold_batch(1);
}

#[test]
fn delta_sequence_matches_cold_batch_four_threads() {
    delta_sequence_matches_cold_batch(4);
}

#[test]
fn empty_delta_is_a_true_noop() {
    let dir = temp_dir("noop");
    let (files, seed) = fixture(4, 7);
    let mut engine = engine_with(&files, &seed, 1, Some(&dir));
    let spec_before = engine.spec().unwrap().to_string();
    let stats_before = engine.config().analyze.cache.as_deref().unwrap().stats();
    let counters_before = engine.counters();

    let out = engine.apply_delta(&Delta::default()).expect("empty delta");
    assert_eq!(out.solve, "noop");
    assert_eq!(out.spec, spec_before);
    assert_eq!(out.reparsed, 0);
    let stats_after = engine.config().analyze.cache.as_deref().unwrap().stats();
    assert_eq!(stats_after.stores, stats_before.stores, "no-op writes nothing");
    assert_eq!(stats_after.misses, stats_before.misses, "no-op reads nothing");
    assert_eq!(engine.counters().noops, counters_before.noops + 1);
    assert_eq!(engine.counters().rebuilds, counters_before.rebuilds);
}

#[test]
fn comment_edit_skips_rebuild_entirely() {
    let dir = temp_dir("unchanged");
    let (mut files, seed) = fixture(4, 9);
    let mut engine = engine_with(&files, &seed, 1, Some(&dir));
    let rebuilds_before = engine.counters().rebuilds;

    files[0].1.push_str(COMMENT_EDIT);
    let out = engine
        .apply_delta(&Delta { change: vec![files[0].clone()], ..Default::default() })
        .expect("comment delta");
    assert_eq!(out.solve, "unchanged", "fingerprint-identical edit skips the rebuild");
    assert_eq!(out.reparsed, 1);
    assert_eq!(engine.counters().rebuilds, rebuilds_before);
    // ... and it still matches a cold batch run of the commented corpus.
    assert_eq!(out.spec, cold_batch_spec(&files, &seed, 1));
}

#[test]
fn remove_only_delta_evicts_artifacts_and_matches_cold() {
    let dir = temp_dir("remove");
    let (mut files, seed) = fixture(5, 13);
    let mut engine = engine_with(&files, &seed, 1, Some(&dir));

    let removed: Vec<PathBuf> = vec![files.remove(0).0, files.remove(0).0];
    let out = engine
        .apply_delta(&Delta { remove: removed, ..Default::default() })
        .expect("remove delta");
    assert_eq!(out.removed, 2);
    assert_eq!(out.evicted, 2, "each dropped file's artifact is evicted");
    assert_eq!(out.files, files.len());
    assert_eq!(out.spec, cold_batch_spec(&files, &seed, 1));
}

#[test]
fn invalid_deltas_are_rejected_without_state_changes() {
    let (files, seed) = fixture(3, 21);
    let mut engine = engine_with(&files, &seed, 1, None);
    let spec_before = engine.spec().unwrap().to_string();
    let counters_before = engine.counters();

    // Adding a tracked file, changing/removing an untracked one, and a
    // duplicated path must all be rejected atomically.
    let bad: Vec<Delta> = vec![
        Delta { add: vec![files[0].clone()], ..Default::default() },
        Delta { change: vec![(PathBuf::from("nope.py"), String::new())], ..Default::default() },
        Delta { remove: vec![PathBuf::from("nope.py")], ..Default::default() },
        Delta {
            remove: vec![files[0].0.clone(), files[0].0.clone()],
            ..Default::default()
        },
    ];
    for delta in bad {
        engine.apply_delta(&delta).expect_err("delta must be rejected");
    }
    assert_eq!(engine.spec().unwrap(), spec_before);
    assert_eq!(engine.counters(), counters_before, "rejected deltas leave no trace");
    assert_eq!(engine.file_count(), files.len());
}

#[test]
fn repeated_identical_deltas_do_not_grow_the_interner() {
    let dir = temp_dir("intern");
    let (mut files, seed) = fixture(4, 31);
    let mut engine = engine_with(&files, &seed, 1, Some(&dir));

    // One full edit cycle interns whatever the edited content mentions…
    let original = files[1].1.clone();
    files[1].1.push_str(STRUCTURAL_EDIT);
    let edited = files[1].1.clone();
    for content in [&edited, &original, &edited] {
        let delta = Delta {
            change: vec![(files[1].0.clone(), content.clone())],
            ..Default::default()
        };
        engine.apply_delta(&delta).expect("edit cycle");
    }
    let symbols_after_cycle = seldon_intern::len();

    // …after which repeating the identical cycle must not intern anything.
    for _ in 0..3 {
        for content in [&original, &edited] {
            let delta = Delta {
                change: vec![(files[1].0.clone(), content.clone())],
                ..Default::default()
            };
            engine.apply_delta(&delta).expect("repeat cycle");
        }
    }
    assert_eq!(
        seldon_intern::len(),
        symbols_after_cycle,
        "repeated identical deltas grew the interner"
    );

    // The non-volatile gauge reports the same figure.
    let mut reg = MetricsRegistry::default();
    engine.fill_metrics(&mut reg);
    let gauge = reg.get("intern_symbols").expect("gauge present");
    assert!(!gauge.volatile, "intern_symbols must be non-volatile");
    match gauge.value {
        MetricValue::Gauge(v) => assert_eq!(v as usize, seldon_intern::len()),
        ref other => panic!("intern_symbols is {other:?}, not a gauge"),
    }
}

#[test]
fn daemon_restart_replays_from_the_persisted_checkpoint() {
    let dir = temp_dir("restart");
    let (files, seed) = fixture(4, 55);
    let engine = engine_with(&files, &seed, 1, Some(&dir));
    let spec = engine.spec().unwrap().to_string();
    drop(engine);

    // A new engine over the same cache dir: the initial load re-unions
    // but the input fingerprint matches the stored checkpoint, so no
    // selection/solve runs and the identical spec is served.
    let cache = Arc::new(ArtifactCache::open(&dir).expect("cache reopens").0);
    let cfg = EngineConfig {
        seed: seed.clone(),
        analyze: analyze_opts(Some(cache)),
        seldon: seldon_opts(1),
        dynamic_cutoff: false,
    };
    let mut engine = ServeEngine::new(cfg);
    let out = engine
        .apply_delta(&Delta { add: files.clone(), ..Default::default() })
        .expect("restart load");
    assert_eq!(out.solve, "replayed", "restart over an unchanged corpus replays");
    assert_eq!(out.spec, spec);
}

#[test]
fn mid_delta_cache_faults_are_contained_and_spec_stays_correct() {
    let dir = temp_dir("faults");
    let (mut files, seed) = fixture(5, 77);
    let mut engine = engine_with(&files, &seed, 1, Some(&dir));

    // Damage every cache entry (artifacts and the checkpoint), then
    // apply a structural delta: the engine must neither crash nor serve
    // a stale or corrupt spec.
    let injected = inject_cache_faults(&dir, 1.0, 99);
    assert!(!injected.is_empty(), "fixture stored cache entries to damage");
    files[2].1.push_str(STRUCTURAL_EDIT);
    let out = engine
        .apply_delta(&Delta { change: vec![files[2].clone()], ..Default::default() })
        .expect("faulted delta");
    assert_eq!(out.spec, cold_batch_spec(&files, &seed, 1), "spec correct despite faults");

    // And the next delta still works (the damaged checkpoint slot was
    // quarantined and rewritten).
    files[0].1.push_str(STRUCTURAL_EDIT);
    let out = engine
        .apply_delta(&Delta { change: vec![files[0].clone()], ..Default::default() })
        .expect("post-fault delta");
    assert_eq!(out.spec, cold_batch_spec(&files, &seed, 1));
}

#[test]
fn daemon_survives_malformed_requests_and_mid_delta_failures() {
    let dir = temp_dir("daemon");
    let sock = dir.join("seldon.sock");
    let (files, seed) = fixture(3, 101);
    // The daemon reads delta contents from disk; materialize the corpus.
    let mut disk_files = Vec::new();
    for (path, content) in &files {
        let flat = path.display().to_string().replace('/', "_");
        let on_disk = dir.join(flat);
        std::fs::write(&on_disk, content).unwrap();
        disk_files.push((on_disk, content.clone()));
    }
    disk_files.sort_by(|a, b| a.0.cmp(&b.0));
    let engine = engine_with(&disk_files, &seed, 1, None);
    let spec = engine.spec().unwrap().to_string();
    let mut daemon = ServeDaemon::new(engine);
    let sock_for_daemon = sock.clone();
    let handle = std::thread::spawn(move || {
        run_daemon(&mut daemon, &sock_for_daemon).expect("daemon runs");
        daemon
    });

    let wait = Duration::from_secs(10);
    let ask = |line: &str| client_request(&sock, line, wait).expect("request answered");

    // Garbage, unknown ops, and unreadable delta paths all get error
    // responses — and the daemon keeps serving.
    for bad in [
        "this is not json",
        "{\"op\": 12}",
        "{\"op\": \"explode\"}",
        "{\"op\": \"delta\", \"add\": 7}",
        "{\"op\": \"delta\", \"add\": [\"/definitely/not/a/file.py\"]}",
        "{\"op\": \"delta\", \"remove\": [\"untracked.py\"]}",
    ] {
        let response = json::parse(&ask(bad)).expect("response is JSON");
        assert_eq!(response.get("ok").and_then(|v| v.as_bool()), Some(false), "{bad}");
    }

    // Still alive, still serving the same spec.
    let pong = json::parse(&ask("{\"op\": \"ping\"}")).unwrap();
    assert_eq!(pong.get("ok").and_then(|v| v.as_bool()), Some(true));
    let spec_resp = json::parse(&ask("{\"op\": \"spec\"}")).unwrap();
    assert_eq!(spec_resp.get("spec").and_then(|v| v.as_str()), Some(spec.as_str()));

    // A real delta over the socket: edit one on-disk file.
    let edited = &disk_files[0].0;
    let mut content = std::fs::read_to_string(edited).unwrap();
    content.push_str(STRUCTURAL_EDIT);
    std::fs::write(edited, &content).unwrap();
    let delta_line = format!(
        "{{\"op\": \"delta\", \"change\": [\"{}\"]}}",
        edited.display().to_string().replace('\\', "\\\\")
    );
    let delta_resp = json::parse(&ask(&delta_line)).unwrap();
    assert_eq!(delta_resp.get("ok").and_then(|v| v.as_bool()), Some(true));
    let mut expected = disk_files.clone();
    expected[0].1 = content;
    assert_eq!(
        delta_resp.get("spec").and_then(|v| v.as_str()),
        Some(cold_batch_spec(&expected, &seed, 1).as_str()),
        "socket-served spec matches a cold batch run"
    );

    let bye = json::parse(&ask("{\"op\": \"shutdown\"}")).unwrap();
    assert_eq!(bye.get("ok").and_then(|v| v.as_bool()), Some(true));
    let daemon = handle.join().expect("daemon thread exits cleanly");
    assert!(daemon.errors >= 6, "protocol errors were counted");
    assert!(!sock.exists(), "socket file removed on shutdown");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Warm-started solves from *perturbed* checkpoints still produce a
    /// spec byte-identical to an uncached cold run: the extraction-margin
    /// guard either accepts a warm solution far enough from every
    /// threshold to agree with cold, or falls back to the cold solve
    /// itself. Covers 1 and 4 solver threads and the early-stop path.
    #[test]
    fn warm_start_from_perturbed_checkpoint_is_byte_identical(
        scale_milli in 0u32..600,
        threads_pick in 0usize..2,
        early_stop_pick in 0usize..2,
    ) {
        let scale = f64::from(scale_milli) / 1000.0;
        let threads = if threads_pick == 0 { 1 } else { 4 };
        let early_stop =
            if early_stop_pick == 0 { None } else { Some(EarlyStop::default()) };
        let dir = temp_dir(&format!("warmprop-{threads}-{early_stop_pick}"));
        let (mut files, seed) = fixture(4, 171);
        let mut opts = seldon_opts(threads);
        opts.solve.early_stop = early_stop;

        // Seed the cache with a checkpoint for the base corpus.
        let cache = Arc::new(ArtifactCache::open(&dir).expect("cache opens").0);
        run_full(&batch_corpus(&files), &seed, "learn", &analyze_opts(Some(cache.clone())), &opts)
            .expect("base run");

        // Perturb every stored score, then edit the corpus so the next
        // run is a system-fingerprint miss that warm-starts from the
        // damaged-but-plausible vector.
        let CheckpointLookup::Hit(mut ckpt) = cache.load_checkpoint() else {
            panic!("base run stored a checkpoint");
        };
        for (i, s) in ckpt.scores.iter_mut().enumerate() {
            let wiggle = ((i as f64 * 0.7371).sin()) * scale;
            *s = (*s + wiggle).clamp(0.0, 1.0);
        }
        prop_assert!(cache.store_checkpoint(&ckpt).is_none());

        files[1].1.push_str(STRUCTURAL_EDIT);
        let corpus = batch_corpus(&files);
        let (analyzed, _) = seldon_core::analyze_corpus_with(
            &corpus,
            &analyze_opts(Some(cache.clone())),
        )
        .expect("analyze");
        let (run, _use) = run_seldon_cached(
            &analyzed.graph,
            &seed,
            &opts,
            &Telemetry::disabled(),
            Some(&cache),
        );
        let mut cold_opts = opts.clone();
        cold_opts.warm_start = None;
        let expected = cold_batch_spec_with(&files, &seed, &cold_opts);
        prop_assert_eq!(run.extraction.spec.to_text(), expected);
    }
}

/// Cold uncached batch spec under explicit options.
fn cold_batch_spec_with(
    files: &[(PathBuf, String)],
    seed: &TaintSpec,
    opts: &SeldonOptions,
) -> String {
    let full = run_full(&batch_corpus(files), seed, "learn", &analyze_opts(None), opts)
        .expect("batch run succeeds");
    full.run.extraction.spec.to_text()
}
