//! Integration tests comparing the Merlin baseline's three inference
//! algorithms (belief propagation, max-product, Gibbs sampling) on shared
//! propagation graphs, plus the §7.4 head-to-head against Seldon.

use seldon_core::{analyze_project, evaluate_spec, run_seldon, GroundTruth, SeldonOptions};
use seldon_corpus::{generate_corpus, CorpusOptions, Universe};
use seldon_merlin::{run_merlin, Inference, MerlinOptions};
use seldon_specs::Role;

fn setup() -> (Universe, seldon_corpus::Corpus) {
    let u = Universe::new();
    let c = generate_corpus(&u, &CorpusOptions { projects: 8, rng_seed: 99, ..Default::default() });
    (u, c)
}

#[test]
fn all_three_inference_algorithms_agree_on_strong_signals() {
    let (u, c) = setup();
    let analyzed = analyze_project(&c, 0).unwrap();
    let seed = u.seed_spec();
    let bp = run_merlin(&analyzed.graph, &seed, &MerlinOptions::default());
    let mp = run_merlin(
        &analyzed.graph,
        &seed,
        &MerlinOptions { inference: Inference::MaxProduct, ..Default::default() },
    );
    let gibbs = run_merlin(
        &analyzed.graph,
        &seed,
        &MerlinOptions {
            inference: Inference::Gibbs { burn_in: 200, seed: 3 },
            max_iters: 2000,
            ..Default::default()
        },
    );
    // All three must produce marginals for the same candidate set.
    assert_eq!(bp.candidates, mp.candidates);
    assert_eq!(bp.candidates, gibbs.candidates);
    assert_eq!(bp.factors, gibbs.factors);
    // Strong signals (pinned-adjacent) should agree in direction: compare
    // the top BP sanitizer's score across algorithms.
    if let Some(((rep, _), &p_bp)) = bp
        .marginals
        .iter()
        .filter(|((_, r), _)| *r == Role::Sanitizer)
        .max_by(|a, b| a.1.total_cmp(b.1))
    {
        if p_bp > 0.8 {
            let key = (*rep, Role::Sanitizer);
            let p_mp = mp.marginals.get(&key).copied().unwrap_or(0.0);
            let p_g = gibbs.marginals.get(&key).copied().unwrap_or(0.0);
            assert!(p_mp > 0.5, "max-product disagrees on {rep}: {p_mp}");
            assert!(p_g > 0.4, "gibbs disagrees on {rep}: {p_g}");
        }
    }
}

#[test]
fn gibbs_is_deterministic_per_seed() {
    let (u, c) = setup();
    let analyzed = analyze_project(&c, 1).unwrap();
    let seed = u.seed_spec();
    let opts = |s: u64| MerlinOptions {
        inference: Inference::Gibbs { burn_in: 100, seed: s },
        max_iters: 500,
        ..Default::default()
    };
    let a = run_merlin(&analyzed.graph, &seed, &opts(7));
    let b = run_merlin(&analyzed.graph, &seed, &opts(7));
    assert_eq!(a.marginals, b.marginals, "same RNG seed ⇒ same marginals");
}

#[test]
fn seldon_beats_merlin_on_the_same_project() {
    // §7.4's qualitative claim, measured: Seldon's learned entries are at
    // least as precise as Merlin's equally-sized prediction set.
    let (u, c) = setup();
    let analyzed = analyze_project(&c, 2).unwrap();
    let seed = u.seed_spec();
    let truth = GroundTruth::new(&u, &c);

    let opts = SeldonOptions {
        gen: seldon_constraints::GenOptions { rep_cutoff: 2, ..Default::default() },
        ..Default::default()
    };
    let run = run_seldon(&analyzed.graph, &seed, &opts);
    let seldon_eval = evaluate_spec(&run.extraction.spec, &truth);

    let merlin = run_merlin(&analyzed.graph, &seed, &MerlinOptions::default());
    let n = seldon_eval.predicted().max(1);
    let mut merlin_preds = merlin.predictions(0.0, &seed);
    merlin_preds.truncate(n);
    let merlin_correct = merlin_preds
        .iter()
        .filter(|(rep, role, _)| truth.role_of(rep) == Some(*role))
        .count();
    let merlin_precision = merlin_correct as f64 / merlin_preds.len().max(1) as f64;
    assert!(
        seldon_eval.precision() >= merlin_precision - 1e-9,
        "Seldon {:.2} must not lose to Merlin {:.2} at equal prediction count",
        seldon_eval.precision(),
        merlin_precision
    );
}

#[test]
fn collapsed_inference_runs_on_multi_project_graph() {
    // Tab. 2's scalability shape on a mid-size union: completes and the
    // collapsed graph has more factors than the uncollapsed one.
    let (u, c) = setup();
    let mut graph = seldon_propgraph::PropagationGraph::new();
    for p in 0..4 {
        graph.union(&analyze_project(&c, p).unwrap().graph);
    }
    let seed = u.seed_spec();
    let fast = MerlinOptions { max_iters: 20, ..Default::default() };
    let collapsed = run_merlin(&graph, &seed, &MerlinOptions { collapsed: true, ..fast.clone() });
    let uncollapsed =
        run_merlin(&graph, &seed, &MerlinOptions { collapsed: false, ..fast });
    assert!(
        collapsed.factors >= uncollapsed.factors,
        "cross-project contraction inflates reachability: {} vs {}",
        collapsed.factors,
        uncollapsed.factors
    );
}
