//! Golden tests: realistic Python snippets (the kinds of code the paper's
//! GitHub corpus contains) must parse, round-trip through the unparser,
//! build propagation graphs, and yield the expected representations.

use seldon_propgraph::{build_source, FileId};
use seldon_pyast::{parse, unparse};

/// Each case: a realistic snippet and the representations its graph must
/// contain.
const GOLDEN: &[(&str, &str, &[&str])] = &[
    (
        "flask_login_view",
        r#"
from flask import request, session, redirect, url_for
import flask

@app.route('/login', methods=['GET', 'POST'])
def login():
    if request.method == 'POST':
        session['username'] = request.form['username']
        return redirect(url_for('index'))
    return flask.render_template_string('<form>...</form>')
"#,
        &["flask.request.form['username']", "flask.redirect()", "flask.render_template_string()"],
    ),
    (
        "django_orm_view",
        r#"
from django.shortcuts import render, get_object_or_404
from myapp.models import Post

def detail(request, post_id):
    post = get_object_or_404(Post, pk=post_id)
    comments = post.comments.filter(active=True)
    return render(request, 'detail.html', {'post': post, 'comments': comments})
"#,
        &["django.shortcuts.get_object_or_404()", "django.shortcuts.render()"],
    ),
    (
        "db_cursor_usage",
        r#"
import sqlite3

def lookup(user_id):
    conn = sqlite3.connect('app.db')
    cur = conn.cursor()
    cur.execute("SELECT * FROM users WHERE id = ?", (user_id,))
    rows = cur.fetchall()
    conn.close()
    return rows
"#,
        &["sqlite3.connect()", "sqlite3.connect().cursor()", "sqlite3.connect().cursor().execute()"],
    ),
    (
        "class_based_handler",
        r#"
from rest_framework.views import APIView
from rest_framework.response import Response

class UserList(APIView):
    def get(self, request, format=None):
        names = [u.username for u in self.queryset()]
        return Response(names)
"#,
        &["UserList::get(param request)", "rest_framework.response.Response()"],
    ),
    (
        "context_managers_and_exceptions",
        r#"
import json

def load_config(path):
    try:
        with open(path) as fh:
            return json.load(fh)
    except (IOError, ValueError) as e:
        return {}
    finally:
        audit('config-read')
"#,
        &["open()", "json.load()", "audit()"],
    ),
    (
        "decorators_and_defaults",
        r#"
from functools import wraps

def cached(ttl=300):
    def wrapper(fn):
        @wraps(fn)
        def inner(*args, **kwargs):
            return fn(*args, **kwargs)
        return inner
    return wrapper
"#,
        &["cached(param ttl)", "wrapper(param fn)"],
    ),
    (
        "py2_idioms",
        r#"
import sys

def main():
    try:
        count = int(sys.argv[1])
    except IndexError, e:
        print 'usage: prog count'
        return 1
    print >> sys.stderr, 'running', count
    return 0
"#,
        &["int()"],
    ),
    (
        "comprehensions_and_fstrings",
        r#"
from flask import request

def summary():
    fields = {k: v for k, v in request.args.items() if k != 'token'}
    parts = [f"{k}={v}" for k, v in fields.items()]
    return f"query: {', '.join(parts)}"
"#,
        &["flask.request.args.items()"],
    ),
];

#[test]
fn golden_snippets_parse_and_build() {
    for (name, src, expected_reps) in GOLDEN {
        let module =
            parse(src).unwrap_or_else(|e| panic!("{name}: parse failed: {e}\n{src}"));
        assert!(!module.body.is_empty(), "{name}: empty module");
        let graph = build_source(src, FileId(0))
            .unwrap_or_else(|e| panic!("{name}: graph build failed: {e}"));
        for rep in *expected_reps {
            assert!(
                graph.events().any(|(_, e)| e.has_rep(rep)),
                "{name}: missing representation {rep}; have: {:?}",
                graph.events().map(|(_, e)| e.rep().to_string()).collect::<Vec<_>>()
            );
        }
    }
}

#[test]
fn golden_snippets_round_trip_through_unparser() {
    for (name, src, _) in GOLDEN {
        if *name == "py2_idioms" {
            // Python 2 print statements unparse to py3 call form; the
            // fixpoint starts after one normalization pass.
        }
        let m1 = parse(src).unwrap_or_else(|e| panic!("{name}: parse: {e}"));
        let printed = unparse(&m1);
        let m2 = parse(&printed)
            .unwrap_or_else(|e| panic!("{name}: reparse: {e}\n--- printed ---\n{printed}"));
        let printed2 = unparse(&m2);
        assert_eq!(printed, printed2, "{name}: unparser not a fixpoint");
    }
}

#[test]
fn golden_snippets_graph_shapes_are_stable() {
    // Event and edge counts are deterministic; pin them so that analysis
    // regressions surface loudly (update deliberately when the analysis
    // changes).
    for (name, src, _) in GOLDEN {
        let g1 = build_source(src, FileId(0)).unwrap();
        let g2 = build_source(src, FileId(0)).unwrap();
        assert_eq!(g1.event_count(), g2.event_count(), "{name}: nondeterministic events");
        assert_eq!(g1.edge_count(), g2.edge_count(), "{name}: nondeterministic edges");
        // Every graph here has at least one flow edge except pure-def ones.
        if !matches!(*name, "decorators_and_defaults") {
            assert!(g1.edge_count() > 0, "{name}: no flow at all");
        }
    }
}
