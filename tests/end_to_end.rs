//! Cross-crate integration tests: the full corpus → learning → taint
//! analysis pipeline, its determinism, and the paper's headline claims.

use seldon_core::{
    analyze_corpus, classify_all, evaluate_spec, run_seldon, GroundTruth, ReportClass,
    SeldonOptions,
};
use seldon_corpus::{generate_corpus, CorpusOptions, Lang, Universe};
use seldon_specs::{Role, TaintSpec};
use seldon_taint::TaintAnalyzer;

fn small_corpus_opts() -> CorpusOptions {
    CorpusOptions { projects: 60, rng_seed: 1234, ..Default::default() }
}

#[test]
fn pipeline_is_deterministic() {
    let universe = Universe::new();
    let corpus = generate_corpus(&universe, &small_corpus_opts());
    let seed = universe.seed_spec();
    let run_once = || {
        let analyzed = analyze_corpus(&corpus, 4).unwrap();
        let run = run_seldon(&analyzed.graph, &seed, &SeldonOptions::default());
        run.extraction.spec.to_text()
    };
    assert_eq!(run_once(), run_once(), "two runs must produce identical specs");
}

#[test]
fn learned_spec_matches_golden_output() {
    // Pins the exact learned specification for the standard small corpus.
    // The golden file was captured before the Symbol-interning refactor, so
    // this test proves the interned pipeline (Symbol-keyed constraint
    // system, memoized blacklist matcher, sharded union) is byte-identical
    // to the original String-keyed implementation — not merely similar.
    // It is also the thread-determinism gate: the compiled solver kernel
    // must reproduce the golden byte-for-byte at 1 and at 4 worker
    // threads, since its lane partition (the floating-point summation
    // order) is a function of the system alone, never the thread count.
    let universe = Universe::new();
    let corpus = generate_corpus(&universe, &small_corpus_opts());
    let analyzed = analyze_corpus(&corpus, 4).unwrap();
    let golden = include_str!("golden/end_to_end_spec.txt");
    for threads in [1, 4] {
        let opts = SeldonOptions {
            solve: seldon_solver::SolveOptions { threads, ..Default::default() },
            ..Default::default()
        };
        let run = run_seldon(&analyzed.graph, &universe.seed_spec(), &opts);
        assert_eq!(
            run.extraction.spec.to_text(),
            golden,
            "learned spec diverged from tests/golden/end_to_end_spec.txt \
             at {threads} solver threads"
        );
    }
}

#[test]
fn js_learned_spec_matches_golden_output() {
    // The JS-like frontend drives the identical language-blind pipeline:
    // same corpus plan (the generator's RNG draws are language-independent),
    // rendered as JS and analyzed through the shared IR layer. Pinning the
    // learned spec proves the whole path — lexer, parser, lowering,
    // build_ir, constraint generation, solver, extraction — is
    // deterministic for the second frontend too, at 1 and 4 solver threads.
    let universe = Universe::new();
    let corpus = generate_corpus(
        &universe,
        &CorpusOptions { lang: Lang::Js, ..small_corpus_opts() },
    );
    let analyzed = analyze_corpus(&corpus, 4).unwrap();
    let golden = include_str!("golden/end_to_end_spec_js.txt");
    for threads in [1, 4] {
        let opts = SeldonOptions {
            solve: seldon_solver::SolveOptions { threads, ..Default::default() },
            ..Default::default()
        };
        let run = run_seldon(&analyzed.graph, &universe.seed_spec_js(), &opts);
        assert_eq!(
            run.extraction.spec.to_text(),
            golden,
            "JS-frontend spec diverged from tests/golden/end_to_end_spec_js.txt \
             at {threads} solver threads"
        );
    }
}

#[test]
fn learning_meets_quality_floor() {
    let universe = Universe::new();
    let corpus = generate_corpus(&universe, &small_corpus_opts());
    let analyzed = analyze_corpus(&corpus, 4).unwrap();
    let run = run_seldon(&analyzed.graph, &universe.seed_spec(), &SeldonOptions::default());
    let truth = GroundTruth::new(&universe, &corpus);
    let eval = evaluate_spec(&run.extraction.spec, &truth);
    // The paper reports 66.6% overall precision; our exact ground truth
    // should keep us comfortably above a 55% floor at any seed.
    assert!(
        eval.precision() > 0.55,
        "overall precision too low: {:.2} over {} predictions",
        eval.precision(),
        eval.predicted()
    );
    assert!(eval.predicted() >= 20, "too few learned entries: {}", eval.predicted());
    // Sources are the strongest role in the paper; same here.
    let src = eval.by_role[&Role::Source];
    assert!(src.precision() > 0.8, "source precision {:.2}", src.precision());
}

#[test]
fn key_learnable_apis_are_discovered() {
    let universe = Universe::new();
    let corpus = generate_corpus(&universe, &small_corpus_opts());
    let analyzed = analyze_corpus(&corpus, 4).unwrap();
    let run = run_seldon(&analyzed.graph, &universe.seed_spec(), &SeldonOptions::default());
    let spec = &run.extraction.spec;
    // The flagship learnables of each role must be found.
    assert!(
        spec.has_role("htmlutils.sanitize()", Role::Sanitizer),
        "htmlutils.sanitize() not learned; spec:\n{spec}"
    );
    assert!(
        spec.has_role("webapi.params.fetch()", Role::Source)
            || spec.has_role("reqlib.get_field()", Role::Source),
        "no learnable source discovered"
    );
    assert!(
        spec.has_role("dblib.query.run()", Role::Sink)
            || spec.has_role("webresp.render_page()", Role::Sink),
        "no learnable sink discovered"
    );
}

#[test]
fn inferred_spec_multiplies_reports() {
    let universe = Universe::new();
    let corpus = generate_corpus(&universe, &small_corpus_opts());
    let analyzed = analyze_corpus(&corpus, 4).unwrap();
    let seed = universe.seed_spec();
    let run = run_seldon(&analyzed.graph, &seed, &SeldonOptions::default());

    let seed_reports = TaintAnalyzer::new(&analyzed.graph, &seed).find_violations();
    let mut combined = seed.clone();
    combined.merge(&run.extraction.spec);
    let full_reports = TaintAnalyzer::new(&analyzed.graph, &combined).find_violations();
    assert!(
        full_reports.len() as f64 > seed_reports.len() as f64 * 2.0,
        "inferred spec must multiply reports: {} -> {}",
        seed_reports.len(),
        full_reports.len()
    );
}

#[test]
fn report_classification_total_matches() {
    let universe = Universe::new();
    let corpus = generate_corpus(&universe, &small_corpus_opts());
    let analyzed = analyze_corpus(&corpus, 4).unwrap();
    let truth = GroundTruth::new(&universe, &corpus);
    let seed = universe.seed_spec();
    let reports = TaintAnalyzer::new(&analyzed.graph, &seed).find_violations();
    let (classes, summary) = classify_all(&reports, &analyzed, &corpus, &truth);
    assert_eq!(classes.len(), reports.len());
    let counted: usize = summary.counts.values().sum();
    assert_eq!(counted, reports.len());
    // The seed spec cannot produce incorrect endpoints (all its entries are
    // real APIs).
    assert_eq!(summary.fraction(ReportClass::IncorrectSink), 0.0);
    assert_eq!(summary.fraction(ReportClass::IncorrectSource), 0.0);
}

#[test]
fn empty_seed_infers_nothing_and_finds_nothing() {
    let universe = Universe::new();
    let corpus = generate_corpus(&universe, &small_corpus_opts());
    let analyzed = analyze_corpus(&corpus, 4).unwrap();
    let run = run_seldon(&analyzed.graph, &TaintSpec::new(), &SeldonOptions::default());
    assert_eq!(run.extraction.spec.role_count(), 0);
    let reports =
        TaintAnalyzer::new(&analyzed.graph, &run.extraction.spec).find_violations();
    assert!(reports.is_empty());
}

#[test]
fn vulnerable_ground_truth_is_recalled_by_oracle() {
    // Every generated vulnerable flow must be discoverable by taint
    // analysis when the full (oracle) spec is used — i.e. the propagation
    // graph preserves the generated flows.
    let universe = Universe::new();
    let corpus = generate_corpus(&universe, &small_corpus_opts());
    let analyzed = analyze_corpus(&corpus, 4).unwrap();
    let mut oracle = TaintSpec::new();
    for a in universe.apis() {
        if let Some(role) = a.role {
            oracle.add(a.rep, role);
        }
    }
    for (rep, role) in &corpus.derived_roles {
        oracle.add(rep.clone(), *role);
    }
    let reports = TaintAnalyzer::new(&analyzed.graph, &oracle).find_violations();
    let vulnerable_truths = corpus
        .flows
        .iter()
        .filter(|f| matches!(f.kind, seldon_corpus::FlowKind::Vulnerable { .. }))
        .count();
    // Each vulnerable truth yields at least one report (often more, since
    // prefix reads also match as sources).
    assert!(
        reports.len() >= vulnerable_truths,
        "{} reports for {} vulnerable flows",
        reports.len(),
        vulnerable_truths
    );
}

#[test]
fn merlin_and_seldon_run_on_identical_inputs() {
    use seldon_merlin::{run_merlin, MerlinOptions};
    let universe = Universe::new();
    let corpus = generate_corpus(&universe, &small_corpus_opts());
    let project = seldon_core::analyze_project(&corpus, 0).unwrap();
    let seed = universe.seed_spec();
    let merlin = run_merlin(&project.graph, &seed, &MerlinOptions::default());
    let opts = SeldonOptions {
        gen: seldon_constraints::GenOptions { rep_cutoff: 2, ..Default::default() },
        ..Default::default()
    };
    let seldon = run_seldon(&project.graph, &seed, &opts);
    // Same candidate universe: Merlin's candidate count bounds Seldon's.
    assert!(merlin.candidates.0 > 0);
    assert!(seldon.candidate_count() > 0);
}
