//! Robustness suite for the crash-safe artifact cache: cold, warm, and
//! fault-injected runs over the same corpus must produce byte-identical
//! specifications, every injected damage kind must be detected and
//! contained (never propagated, never degrading the run), and artifact
//! serialization must survive the process boundary — representation
//! strings re-intern on load to the same graph content.

use seldon_cache::{
    encode_entry, graph_fingerprint, inject_cache_faults, ArtifactCache, CacheStats,
    FileArtifact, INDEX_NAME,
};
use seldon_core::{
    run_full, run_seldon, AnalyzeOptions, CheckpointOutcome, FaultPolicy, FullRun,
    SeldonOptions,
};
use seldon_corpus::{generate_corpus, Corpus, CorpusOptions, Universe};
use seldon_propgraph::{build_source, FileId};
use seldon_specs::TaintSpec;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn temp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("seldon-cache-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn fixture() -> (Corpus, TaintSpec) {
    let universe = Universe::new();
    let corpus = generate_corpus(
        &universe,
        &CorpusOptions { projects: 10, rng_seed: 11, ..Default::default() },
    );
    (corpus, universe.seed_spec())
}

fn opts_with(cache: Option<Arc<ArtifactCache>>) -> AnalyzeOptions {
    AnalyzeOptions { policy: FaultPolicy::Recover, threads: 2, cache, ..Default::default() }
}

/// One full pipeline run, optionally over a cache rooted at `dir`. Each
/// call opens a fresh [`ArtifactCache`] handle, so counters reflect only
/// that run — exactly what a new process would see.
fn run_with(corpus: &Corpus, seed: &TaintSpec, dir: Option<&Path>) -> (FullRun, CacheStats) {
    let cache = dir.map(|d| Arc::new(ArtifactCache::open(d).expect("cache opens").0));
    let full = run_full(corpus, seed, "learn", &opts_with(cache.clone()), &SeldonOptions::default())
        .expect("fixture corpus analyzes");
    let stats = cache.map(|c| c.stats()).unwrap_or_default();
    (full, stats)
}

#[test]
fn warm_run_is_byte_identical_and_takes_the_full_checkpoint_path() {
    let dir = temp_dir("warm");
    let (corpus, seed) = fixture();

    let (cold, cold_stats) = run_with(&corpus, &seed, Some(&dir));
    assert_eq!(cold.checkpoint.outcome, CheckpointOutcome::MissCold);
    assert!(cold.report.cache_faults.is_empty(), "{:?}", cold.report.cache_faults);
    assert_eq!(cold_stats.hits, 0);
    assert_eq!(cold_stats.misses, corpus.file_count() as u64);
    assert!(cold_stats.stores > 0, "artifacts and checkpoint stored");

    let (warm, warm_stats) = run_with(&corpus, &seed, Some(&dir));
    assert_eq!(warm.checkpoint.outcome, CheckpointOutcome::HitFull);
    assert!(warm.report.cache_faults.is_empty(), "{:?}", warm.report.cache_faults);
    assert_eq!(warm_stats.hits, corpus.file_count() as u64, "every artifact served");
    assert_eq!(warm_stats.misses, 0);

    // Byte-identical outputs: the learned spec, the score vector (to the
    // bit), and the taint verdict.
    assert_eq!(warm.run.extraction.spec.to_text(), cold.run.extraction.spec.to_text());
    assert_eq!(warm.run.solution.scores.len(), cold.run.solution.scores.len());
    for (a, b) in cold.run.solution.scores.iter().zip(&warm.run.solution.scores) {
        assert_eq!(a.to_bits(), b.to_bits(), "scores replay bit-for-bit");
    }
    assert_eq!(warm.violations.len(), cold.violations.len());

    // And both match the entirely uncached pipeline.
    let (uncached, _) = run_with(&corpus, &seed, None);
    assert_eq!(uncached.checkpoint.outcome, CheckpointOutcome::Disabled);
    assert_eq!(uncached.run.extraction.spec.to_text(), cold.run.extraction.spec.to_text());
}

#[test]
fn injected_faults_are_contained_and_never_change_the_spec() {
    let dir = temp_dir("inject");
    let (corpus, seed) = fixture();
    let (cold, _) = run_with(&corpus, &seed, Some(&dir));
    let spec = cold.run.extraction.spec.to_text();

    // Damage every cache file; the kind rotation covers torn writes,
    // truncations, bit flips, stale schema stamps, and the missing index.
    let injected = inject_cache_faults(&dir, 1.0, 0xFA01);
    assert!(injected.len() > 1, "all entries + checkpoint damaged: {injected:?}");

    let (hurt, hurt_stats) = run_with(&corpus, &seed, Some(&dir));
    assert_eq!(hurt.run.extraction.spec.to_text(), spec, "damage never reaches the spec");
    assert!(
        !hurt.report.cache_faults.is_empty(),
        "damage is detected and reported, not hidden"
    );
    assert!(
        !hurt.report.is_degraded(),
        "cache faults recompute; they do not degrade the run"
    );
    assert!(hurt_stats.corrupt + hurt_stats.stale > 0, "{hurt_stats:?}");

    // Damaged entries were quarantined and rebuilt: the next run is warm
    // and clean again.
    let (healed, healed_stats) = run_with(&corpus, &seed, Some(&dir));
    assert_eq!(healed.checkpoint.outcome, CheckpointOutcome::HitFull);
    assert_eq!(healed.run.extraction.spec.to_text(), spec);
    assert!(healed.report.cache_faults.is_empty(), "{:?}", healed.report.cache_faults);
    assert_eq!(healed_stats.hits, corpus.file_count() as u64);
    assert!(dir.join("quarantine").is_dir(), "damaged entries kept as evidence");
}

#[test]
fn partial_damage_plans_never_change_the_spec() {
    let (corpus, seed) = fixture();
    // Different seeds pick different subsets and different damage bytes;
    // every plan must leave the learned specification untouched.
    for round in 0..3u64 {
        let dir = temp_dir(&format!("plan{round}"));
        let (cold, _) = run_with(&corpus, &seed, Some(&dir));
        let spec = cold.run.extraction.spec.to_text();
        let injected = inject_cache_faults(&dir, 0.4, round);
        assert!(!injected.is_empty(), "rate 0.4 damages something (round {round})");
        let (hurt, _) = run_with(&corpus, &seed, Some(&dir));
        assert_eq!(hurt.run.extraction.spec.to_text(), spec, "round {round}");
        assert!(!hurt.report.is_degraded(), "round {round}");
    }
}

#[test]
fn stale_index_version_clears_entries_and_recovers() {
    let dir = temp_dir("stale-index");
    let (corpus, seed) = fixture();
    run_with(&corpus, &seed, Some(&dir));

    // A future (or past) format version in the index stamp invalidates the
    // whole directory: every entry is cleared on open.
    std::fs::write(dir.join(INDEX_NAME), encode_entry(br#"{"entry_version":999}"#))
        .expect("overwrite index");
    let (cache, faults) = ArtifactCache::open(&dir).expect("open survives stale index");
    assert!(
        faults.iter().any(|f| f.entry == INDEX_NAME),
        "stale index reported: {faults:?}"
    );
    drop(cache);
    let leftover = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .filter(|e| e.file_name().to_string_lossy().ends_with(".entry"))
        .count();
    assert_eq!(leftover, 0, "stale-format entries are cleared, not trusted");

    // The next run recomputes everything and the cache heals.
    let (rebuilt, stats) = run_with(&corpus, &seed, Some(&dir));
    assert!(!rebuilt.report.is_degraded());
    assert_eq!(stats.hits, 0);
    assert!(stats.stores > 0);
}

#[test]
fn extract_option_change_still_reuses_scores() {
    let dir = temp_dir("scores");
    let (corpus, seed) = fixture();
    let (cold, _) = run_with(&corpus, &seed, Some(&dir));

    // Changing an extraction threshold misses the input fingerprint but
    // leaves the constraint system (and thus the score vector) intact.
    let seldon = {
        let mut s = SeldonOptions::default();
        s.extract.decay *= 0.5;
        s
    };
    let open = |d: &Path| Some(Arc::new(ArtifactCache::open(d).expect("cache opens").0));
    let warm = run_full(&corpus, &seed, "learn", &opts_with(open(&dir)), &seldon).expect("runs");
    assert_eq!(warm.checkpoint.outcome, CheckpointOutcome::HitScores);
    for (a, b) in cold.run.solution.scores.iter().zip(&warm.run.solution.scores) {
        assert_eq!(a.to_bits(), b.to_bits(), "score vector reused bit-for-bit");
    }
    // The reused scores feed a real extraction over the regenerated
    // system: identical to what a cold run under the new options produces.
    let cold_again =
        run_full(&corpus, &seed, "learn", &opts_with(None), &seldon).expect("runs");
    assert_eq!(
        warm.run.extraction.spec.to_text(),
        cold_again.run.extraction.spec.to_text()
    );

    // The checkpoint was re-keyed: the same options now take the full path.
    let warm2 = run_full(&corpus, &seed, "learn", &opts_with(open(&dir)), &seldon).expect("runs");
    assert_eq!(warm2.checkpoint.outcome, CheckpointOutcome::HitFull);
    assert_eq!(
        warm2.run.extraction.spec.to_text(),
        warm.run.extraction.spec.to_text()
    );
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Builds a small Python module wiring `pairs` into a call chain, so
    /// the graph carries calls, edges, and argument positions.
    fn source_for(pairs: &[(String, String)]) -> String {
        let mut src = String::new();
        for (module, _) in pairs {
            src.push_str(&format!("import {module}\n"));
        }
        src.push_str("v0 = stdinutil.read_line()\n");
        for (i, (module, func)) in pairs.iter().enumerate() {
            src.push_str(&format!("v{} = {module}.{func}(v{})\n", i + 1, i));
        }
        src
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Satellite of the crash-safety guarantee: serializing an
        /// artifact, dropping every process-local `Symbol`, and
        /// re-interning the stored representation *strings* reconstructs
        /// the same graph content — same fingerprint, same learned spec,
        /// byte for byte. The `m_`/`f_` prefixes keep generated names
        /// clear of Python keywords.
        #[test]
        fn artifact_round_trip_reinterns_to_the_same_spec(
            pairs in prop::collection::vec(
                ("m_[a-z0-9]{0,6}", "f_[a-z0-9]{0,6}"),
                1..6,
            ),
            recovered in 0usize..3,
        ) {
            let src = source_for(&pairs);
            let graph = build_source(&src, FileId(3)).expect("generated source parses");
            let artifact = FileArtifact::from_graph(&graph, recovered);
            let payload = artifact.to_payload();

            // Cross-process boundary: only bytes survive.
            let back = FileArtifact::from_payload(&payload).expect("payload decodes");
            prop_assert_eq!(&back, &artifact);
            let rebuilt = back.to_graph(FileId(3)).expect("artifact validates");

            prop_assert_eq!(rebuilt.event_count(), graph.event_count());
            prop_assert_eq!(rebuilt.edge_count(), graph.edge_count());
            prop_assert_eq!(
                graph_fingerprint(&rebuilt),
                graph_fingerprint(&graph),
                "content-level fingerprint survives re-interning"
            );

            // The spec learned from the rebuilt graph is byte-identical.
            let universe = Universe::new();
            let seed = universe.seed_spec();
            let opts = SeldonOptions::default();
            let a = run_seldon(&graph, &seed, &opts);
            let b = run_seldon(&rebuilt, &seed, &opts);
            prop_assert_eq!(
                a.extraction.spec.to_text().into_bytes(),
                b.extraction.spec.to_text().into_bytes()
            );
        }
    }
}
