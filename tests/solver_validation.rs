//! Cross-validation of the two solvers: projected Adam (the paper's
//! method) against the exact two-phase simplex, over randomly generated
//! constraint systems.

use proptest::prelude::*;
use seldon_constraints::{ConstraintSystem, FlowConstraint, Term};
use seldon_solver::{evaluate, solve, solve_exact, SolveOptions};
use seldon_specs::Role;

/// Builds a random constraint system from a compact description:
/// `n_reps` representations, a list of constraints given as index pairs,
/// and pins on the first few variables.
fn build_system(
    n_reps: usize,
    constraints: &[(usize, usize, usize)],
    pins: &[(usize, bool)],
) -> ConstraintSystem {
    let mut sys = ConstraintSystem::new(0.75);
    let reps: Vec<_> = (0..n_reps).map(|i| sys.rep(&format!("api_{i}()"))).collect();
    let vars: Vec<_> = reps
        .iter()
        .map(|&r| {
            (
                sys.var(r, Role::Source),
                sys.var(r, Role::Sanitizer),
                sys.var(r, Role::Sink),
            )
        })
        .collect();
    for &(a, b, c) in constraints {
        let (src, _, _) = vars[a % n_reps];
        let (_, san, _) = vars[b % n_reps];
        let (_, _, snk) = vars[c % n_reps];
        // A Fig. 4c-shaped constraint: src + snk ≤ san + C.
        sys.add_constraint(FlowConstraint {
            lhs: vec![Term { var: src, coeff: 1.0 }, Term { var: snk, coeff: 1.0 }],
            rhs: vec![Term { var: san, coeff: 1.0 }],
            ..Default::default()
        });
    }
    for &(i, positive) in pins {
        let (src, _, snk) = vars[i % n_reps];
        sys.pin(src, if positive { 1.0 } else { 0.0 });
        sys.pin(snk, if positive { 1.0 } else { 0.0 });
    }
    sys
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Adam's objective is never more than a small gap above the exact LP
    /// optimum, and never (meaningfully) below it.
    #[test]
    fn adam_tracks_exact_optimum(
        n_reps in 2usize..6,
        constraints in prop::collection::vec((0usize..6, 0usize..6, 0usize..6), 1..8),
        pins in prop::collection::vec((0usize..6, any::<bool>()), 0..3),
    ) {
        let sys = build_system(n_reps, &constraints, &pins);
        let Some(exact) = solve_exact(&sys, 0.1, 5_000) else {
            return Ok(()); // size guard — cannot happen at these sizes
        };
        let approx = solve(&sys, &SolveOptions { max_iters: 4000, ..Default::default() });
        prop_assert!(
            approx.objective >= exact.objective - 1e-6,
            "approx {} below exact {} — exact solver is wrong",
            approx.objective,
            exact.objective
        );
        prop_assert!(
            approx.objective <= exact.objective + 0.1,
            "approx {} too far above exact {}",
            approx.objective,
            exact.objective
        );
    }

    /// The exact solution is feasible: inside the box and honoring pins.
    #[test]
    fn exact_solution_is_feasible(
        n_reps in 2usize..6,
        constraints in prop::collection::vec((0usize..6, 0usize..6, 0usize..6), 1..8),
        pins in prop::collection::vec((0usize..6, any::<bool>()), 0..3),
    ) {
        let sys = build_system(n_reps, &constraints, &pins);
        let Some(exact) = solve_exact(&sys, 0.1, 5_000) else { return Ok(()) };
        for &s in &exact.scores {
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&s), "score {s} out of box");
        }
        for (v, val) in sys.pinned_vars() {
            prop_assert!((exact.scores[v.index()] - val).abs() < 1e-9);
        }
        // Reported objective matches an independent evaluation.
        let (_, obj) = evaluate(&sys, &exact.scores, 0.1);
        prop_assert!((obj - exact.objective).abs() < 1e-9);
    }

    /// Scaling λ up never increases the L1 mass of the exact solution.
    #[test]
    fn lambda_monotone_in_exact_l1(
        n_reps in 2usize..5,
        constraints in prop::collection::vec((0usize..5, 0usize..5, 0usize..5), 1..6),
    ) {
        let sys = build_system(n_reps, &constraints, &[(0, true)]);
        let lo = solve_exact(&sys, 0.05, 5_000);
        let hi = solve_exact(&sys, 1.5, 5_000);
        if let (Some(lo), Some(hi)) = (lo, hi) {
            let mass = |s: &[f64]| -> f64 { s.iter().sum() };
            prop_assert!(
                mass(&hi.scores) <= mass(&lo.scores) + 1e-6,
                "higher λ must not increase L1 mass: {} vs {}",
                mass(&hi.scores),
                mass(&lo.scores)
            );
        }
    }
}

/// Deterministic regression: a chain of overlapping constraints where the
/// optimal solution shares one sanitizer among several violated flows.
#[test]
fn shared_sanitizer_is_cheaper_than_two() {
    let mut sys = ConstraintSystem::new(0.75);
    let s1 = sys.rep("src1()");
    let s2 = sys.rep("src2()");
    let m = sys.rep("shared_san()");
    let t = sys.rep("snk()");
    let v_s1 = sys.var(s1, Role::Source);
    let v_s2 = sys.var(s2, Role::Source);
    let v_m = sys.var(m, Role::Sanitizer);
    let v_t = sys.var(t, Role::Sink);
    sys.pin(v_s1, 1.0);
    sys.pin(v_s2, 1.0);
    sys.pin(v_t, 1.0);
    for src in [v_s1, v_s2] {
        sys.add_constraint(FlowConstraint {
            lhs: vec![Term { var: src, coeff: 1.0 }, Term { var: v_t, coeff: 1.0 }],
            rhs: vec![Term { var: v_m, coeff: 1.0 }],
            ..Default::default()
        });
    }
    let exact = solve_exact(&sys, 0.1, 5_000).unwrap();
    // Both constraints are satisfied by the single shared sanitizer at 1.0.
    assert!((exact.scores[v_m.index()] - 1.0).abs() < 1e-6);
    // objective = 2 × residual 0.25 + λ × (3 pins + 1 sanitizer).
    assert!((exact.objective - (0.5 + 0.4)).abs() < 1e-6, "obj {}", exact.objective);
}
