//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Generates values of `Value` from a deterministic RNG.
///
/// Upstream proptest strategies also carry shrinking machinery; this
/// offline stand-in only generates.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// String patterns (a regex subset, see [`crate::string`]) are strategies.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Types with a canonical "anything" strategy, via [`any`].
pub trait Arbitrary {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy for an [`Arbitrary`] type; see [`any`].
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T`: `any::<bool>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
