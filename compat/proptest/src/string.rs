//! String generation from a regex subset.
//!
//! Supports exactly the pattern language this workspace's properties use:
//! literal characters, `\`-escaped metacharacters, character classes
//! (`[a-z_.()]`, ranges and literals, no negation), the `\PC` Unicode
//! "printable" class, and `{m}` / `{m,n}` repetition suffixes. Anything
//! else panics at generation time — patterns are test-authored constants,
//! so an unsupported pattern is a bug in the test, not user input.

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    /// A fixed character.
    Literal(char),
    /// One uniformly chosen character from the set.
    Class(Vec<char>),
    /// Any printable character (`\PC`): ASCII plus a few multibyte
    /// code points to exercise UTF-8 handling.
    Printable,
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for p in &pieces {
        let n = p.min + rng.below((p.max - p.min + 1) as u64) as usize;
        for _ in 0..n {
            out.push(sample_atom(&p.atom, rng));
        }
    }
    out
}

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Class(set) => set[rng.below(set.len() as u64) as usize],
        Atom::Printable => {
            // Mostly ASCII printable; occasionally multibyte.
            const EXOTIC: [char; 6] = ['é', 'λ', '中', '🦀', 'ß', '→'];
            if rng.below(16) == 0 {
                EXOTIC[rng.below(EXOTIC.len() as u64) as usize]
            } else {
                char::from_u32(0x20 + rng.below(0x7F - 0x20) as u32)
                    .expect("printable ASCII range")
            }
        }
    }
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '\\' => {
                i += 1;
                match chars.get(i) {
                    Some('P') => {
                        // \PC — complement of Unicode category C (control):
                        // printable characters.
                        i += 1;
                        assert_eq!(
                            chars.get(i),
                            Some(&'C'),
                            "unsupported Unicode class in pattern {pattern:?}"
                        );
                        i += 1;
                        Atom::Printable
                    }
                    Some(&c) => {
                        i += 1;
                        Atom::Literal(c)
                    }
                    None => panic!("dangling backslash in pattern {pattern:?}"),
                }
            }
            '[' => {
                i += 1;
                let mut set = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let lo = chars[i];
                    if chars.get(i + 1) == Some(&'-')
                        && chars.get(i + 2).is_some_and(|&c| c != ']')
                    {
                        let hi = chars[i + 2];
                        assert!(lo <= hi, "descending class range in {pattern:?}");
                        for c in lo..=hi {
                            set.push(c);
                        }
                        i += 3;
                    } else {
                        set.push(lo);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in pattern {pattern:?}");
                i += 1; // closing ]
                assert!(!set.is_empty(), "empty class in pattern {pattern:?}");
                Atom::Class(set)
            }
            c if !"{}*+?|".contains(c) => {
                i += 1;
                Atom::Literal(c)
            }
            c => panic!("unsupported regex construct {c:?} in pattern {pattern:?}"),
        };
        // Optional {m} / {m,n} quantifier.
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated quantifier in {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("quantifier min"),
                    n.trim().parse().expect("quantifier max"),
                ),
                None => {
                    let m: usize = body.trim().parse().expect("quantifier count");
                    (m, m)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted quantifier in pattern {pattern:?}");
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_test("string-tests")
    }

    #[test]
    fn literal_and_class_patterns() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate("[a-z]{1,10}", &mut r);
            assert!((1..=10).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
        assert_eq!(generate("abc", &mut r), "abc");
    }

    #[test]
    fn escapes_and_mixed_pattern() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate("[a-z][a-z.]{0,15}\\(\\)", &mut r);
            assert!(s.ends_with("()"), "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
        }
    }

    #[test]
    fn printable_class_bounds() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate("\\PC{0,200}", &mut r);
            assert!(s.chars().count() <= 200);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn zero_width_possible() {
        let mut r = rng();
        let mut saw_empty = false;
        for _ in 0..200 {
            if generate("[a-z]{0,5}", &mut r).is_empty() {
                saw_empty = true;
            }
        }
        assert!(saw_empty, "empty output must be reachable");
    }
}
