//! Run configuration, per-test RNG, and case-level error types.

use std::fmt;

/// Number of generated cases per property (and future knobs).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many cases to generate per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps corpus-generating properties
        // fast while still exploring a meaningful input space.
        ProptestConfig { cases: 64 }
    }
}

/// Failure of one generated case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failed assertion with a message.
    pub fn fail(message: String) -> Self {
        TestCaseError(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result of one generated case; `Err` fails the whole property.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic per-test generator (xorshift64*), seeded from the test
/// name so every run of a given property replays the same cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test name (FNV-1a hash).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xCBF29CE484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001B3);
        }
        TestRng { state: h | 1 }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state ^= self.state >> 12;
        self.state ^= self.state << 25;
        self.state ^= self.state >> 27;
        self.state.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// A uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}
