//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy producing `Vec`s of another strategy's values; see [`vec`].
pub struct VecStrategy<S> {
    elem: S,
    size: Range<usize>,
}

/// A `Vec` strategy with a length drawn from `size` (half-open).
pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { elem, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        assert!(self.size.start < self.size.end, "empty size range");
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}
