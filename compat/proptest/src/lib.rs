//! Offline drop-in for the subset of `proptest` 1.x this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a miniature property-testing harness with the same surface the tests
//! are written against: the [`proptest!`] macro (with an optional
//! `#![proptest_config(...)]` header), `prop_assert*` / `prop_assume!`,
//! string-pattern strategies for a regex subset, integer-range strategies,
//! tuples, `prop::collection::vec`, and `any::<T>()`.
//!
//! Unlike real proptest there is no shrinking and no persisted regression
//! corpus: failures report the failing case number, and runs are
//! deterministic per test name, so a failure always reproduces.

pub mod collection;
pub mod string;
pub mod strategy;
pub mod test_runner;

/// Namespace mirror of the upstream `prop` re-export module.
pub mod prop {
    pub use crate::collection;
}

/// Prelude mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Any, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...)` body runs
/// for `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    { ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident
        ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* } => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    let mut one_case = || -> $crate::test_runner::TestCaseResult {
                        $(
                            let $arg =
                                $crate::strategy::Strategy::generate(&$strat, &mut rng);
                        )+
                        $body
                        Ok(())
                    };
                    if let Err(e) = one_case() {
                        panic!("proptest {} failed at case {case}: {e}", stringify!($name));
                    }
                }
            }
        )*
    };
}

/// Fails the current case with a message unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert!` for equality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)+);
    }};
}

/// `prop_assert!` for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: both sides equal {:?}", a);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, $($fmt)+);
    }};
}

/// Silently discards the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Ok(());
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Ok(());
        }
    };
}
