//! Offline drop-in for the subset of `criterion` 0.5 this workspace uses.
//!
//! Provides the structural API the benches are written against —
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Throughput`],
//! [`Bencher::iter`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros — with a simple wall-clock measurement loop instead of
//! criterion's statistical machinery. Output is one `name ... time/iter`
//! line per benchmark.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard optimizer barrier.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &mut f, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.to_string(), throughput: None }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the volume of work per iteration (reported as rate).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the stub's iteration count is
    /// time-boxed rather than sample-count driven.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, &mut f, self.throughput);
        self
    }

    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_one(&full, &mut |b: &mut Bencher| f(b, input), self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier for one parameterized benchmark instance.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendering just the parameter value.
    pub fn from_parameter<D: Display>(param: D) -> Self {
        BenchmarkId(param.to_string())
    }

    /// An id with a function name and a parameter value.
    pub fn new<D: Display>(name: &str, param: D) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }
}

/// Work volume per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Measures `f` over a time-boxed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warmup iteration, then measure until ~200ms or 30 iters.
        black_box(f());
        let budget = Duration::from_millis(200);
        let started = Instant::now();
        while self.iters < 30 && started.elapsed() < budget {
            let t0 = Instant::now();
            black_box(f());
            self.total += t0.elapsed();
            self.iters += 1;
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, f: &mut F, throughput: Option<Throughput>) {
    let mut b = Bencher { total: Duration::ZERO, iters: 0 };
    f(&mut b);
    if b.iters == 0 {
        println!("bench {name:<50} (no iterations)");
        return;
    }
    let per_iter = b.total / b.iters as u32;
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) => {
            format!(" ({:.1} MiB/s)", n as f64 / per_iter.as_secs_f64() / (1024.0 * 1024.0))
        }
        Throughput::Elements(n) => {
            format!(" ({:.0} elem/s)", n as f64 / per_iter.as_secs_f64())
        }
    });
    println!(
        "bench {name:<50} {:>12.3?}/iter over {} iters{}",
        per_iter,
        b.iters,
        rate.unwrap_or_default()
    );
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
