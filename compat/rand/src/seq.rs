//! Sequence-related sampling helpers.

use crate::{RngCore, SampleRange};

/// Random selection and permutation over slices.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// A uniformly random element, or `None` for an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(0..self.len()).sample_single(rng)])
        }
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (0..=i).sample_single(rng);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn choose_and_shuffle() {
        let mut rng = SmallRng::seed_from_u64(3);
        let xs = [1, 2, 3];
        assert!(xs.choose(&mut rng).is_some());
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle must be a permutation");
    }
}
