//! Offline drop-in for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, deterministic implementation of the APIs it calls:
//! [`rngs::SmallRng`] (xoshiro256** seeded via splitmix64), the [`Rng`] /
//! [`SeedableRng`] traits with `gen`, `gen_bool` and `gen_range`, and
//! [`seq::SliceRandom`] with `choose` and `shuffle`.
//!
//! The streams differ from upstream `rand`, but every consumer in this
//! repository only relies on determinism-for-a-fixed-seed, never on the
//! exact upstream byte stream.

pub mod rngs;
pub mod seq;

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an RNG (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A half-open or inclusive range a value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} outside [0,1]");
        f64::sample(self) < p
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(2u8..=5);
            assert!((2..=5).contains(&w));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}
