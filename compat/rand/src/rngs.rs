//! Small, fast generators.

use crate::{RngCore, SeedableRng};

/// A small-state xoshiro256** generator, seeded via splitmix64.
///
/// Not cryptographically secure — statistical quality only, matching the
/// contract of upstream `rand::rngs::SmallRng`.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        // splitmix64 expansion of the seed into the full state, as
        // recommended by the xoshiro authors.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}
