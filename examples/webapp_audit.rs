//! Auditing a hand-written web application with seed and inferred specs.
//!
//! Mimics the paper's bug-finding client (§7.5 Q4/Q7): a small Flask blog
//! app with several intentional vulnerabilities is audited first with the
//! hand-written seed specification, then with a specification learned from
//! a corpus — showing the learned entries surface bugs the seed misses.
//!
//! Run with: `cargo run --release -p seldon-core --example webapp_audit`

use seldon_core::{analyze_corpus, run_seldon, SeldonOptions};
use seldon_corpus::{generate_corpus, CorpusOptions, Universe};
use seldon_propgraph::{build_source, FileId};
use seldon_taint::TaintAnalyzer;

/// The application under audit. `webresp.render_page`, `dblib.query.run`
/// and `htmlutils.sanitize` are third-party APIs absent from the seed spec.
const APP: &str = r#"
from flask import request
import flask
import webresp
import htmlutils
from dblib import query

@app.route('/search')
def search():
    term = request.args.get('q')
    return query.run("SELECT * FROM posts WHERE title LIKE '%" + term + "%'")

@app.route('/profile')
def profile():
    name = request.args.get('name')
    safe = htmlutils.sanitize(name)
    return webresp.render_page(safe)

@app.route('/greet')
def greet():
    who = request.args.get('who')
    return webresp.render_page(who)

@app.route('/legacy')
def legacy():
    target = request.args.get('next')
    return flask.redirect(target)
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let universe = Universe::new();
    let seed = universe.seed_spec();
    let graph = build_source(APP, FileId(0))?;

    println!("=== Audit with the seed specification only ===");
    let analyzer = TaintAnalyzer::new(&graph, &seed);
    let seed_reports = analyzer.find_violations();
    print_reports(&seed_reports, &graph);

    // Learn a specification from a corpus that uses the same libraries.
    println!("\n=== Learning specifications from a 120-project corpus ... ===");
    let corpus = generate_corpus(
        &universe,
        &CorpusOptions { projects: 120, ..Default::default() },
    );
    let analyzed = analyze_corpus(&corpus, 4)?;
    let run = run_seldon(&analyzed.graph, &seed, &SeldonOptions::default());
    println!("learned {} new specification entries", run.extraction.spec.role_count());

    let mut combined = seed.clone();
    combined.merge(&run.extraction.spec);

    println!("\n=== Audit with seed + inferred specification ===");
    let analyzer = TaintAnalyzer::new(&graph, &combined);
    let full_reports = analyzer.find_violations();
    print_reports(&full_reports, &graph);

    let newly_found = full_reports.len() - seed_reports.len();
    println!(
        "\nThe inferred specification surfaced {newly_found} additional report(s) \
         (paper: 97% of reports were undetectable without inferred specs)."
    );
    assert!(full_reports.len() > seed_reports.len());
    Ok(())
}

fn print_reports(reports: &[seldon_taint::Violation], graph: &seldon_propgraph::PropagationGraph) {
    if reports.is_empty() {
        println!("  no violations found");
        return;
    }
    for v in reports {
        let sink_line = graph.event(v.sink).span.line;
        println!(
            "  line {:>3}: unsanitized flow {} -> {}",
            sink_line, v.source_rep, v.sink_rep
        );
    }
}
