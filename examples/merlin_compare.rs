//! Seldon vs the Merlin baseline on the same propagation graph (§6, §7.4).
//!
//! Runs both methods on one project with identical seed specifications and
//! compares their predictions and running times, on both the collapsed and
//! uncollapsed propagation graphs.
//!
//! Run with: `cargo run --release -p seldon-core --example merlin_compare`

use seldon_core::{analyze_project, evaluate_spec, run_seldon, GroundTruth, SeldonOptions};
use seldon_corpus::{generate_corpus, CorpusOptions, Universe};
use seldon_merlin::{run_merlin, MerlinOptions};
use seldon_specs::Role;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let universe = Universe::new();
    let corpus = generate_corpus(
        &universe,
        &CorpusOptions { projects: 12, ..Default::default() },
    );
    let analyzed = analyze_project(&corpus, 0)?;
    let seed = universe.seed_spec();
    let truth = GroundTruth::new(&universe, &corpus);
    println!(
        "project 0: {} files, {} events, {} edges\n",
        corpus.projects[0].files.len(),
        analyzed.graph.event_count(),
        analyzed.graph.edge_count()
    );

    // --- Merlin, collapsed and uncollapsed --------------------------------
    for collapsed in [true, false] {
        let opts = MerlinOptions { collapsed, ..Default::default() };
        let res = run_merlin(&analyzed.graph, &seed, &opts);
        let (s, a, k) = res.candidates;
        println!(
            "Merlin ({}): candidates {s}/{a}/{k}, {} factors, inference {:?}",
            if collapsed { "collapsed" } else { "uncollapsed" },
            res.factors,
            res.inference_time
        );
        for role in Role::ALL {
            let top = res.top_n(5, role, &seed);
            let correct = top
                .iter()
                .filter(|(rep, _)| truth.role_of(rep) == Some(role))
                .count();
            println!("  top-5 {role}s ({correct}/{} correct):", top.len());
            for (rep, p) in top {
                let mark = if truth.role_of(&rep) == Some(role) { "✓" } else { "✗" };
                println!("    {mark} {p:.2} {rep}");
            }
        }
        println!();
    }

    // --- Seldon on the same project ----------------------------------------
    let started = Instant::now();
    let opts = SeldonOptions {
        gen: seldon_constraints::GenOptions { rep_cutoff: 2, ..Default::default() },
        ..Default::default()
    };
    let run = run_seldon(&analyzed.graph, &seed, &opts);
    let eval = evaluate_spec(&run.extraction.spec, &truth);
    println!(
        "Seldon: {} constraints solved in {:?} (total {:?})",
        run.system.constraint_count(),
        run.solve_time,
        started.elapsed()
    );
    println!(
        "  learned {} entries, precision {:.0}%:",
        eval.predicted(),
        eval.precision() * 100.0
    );
    for (rep, roles) in run.extraction.spec.iter() {
        let verdict = roles
            .iter()
            .map(|r| if truth.is_correct(rep, r) { "✓" } else { "✗" })
            .collect::<Vec<_>>()
            .join("");
        println!("    {verdict} {rep}: {roles}");
    }
    Ok(())
}
