//! Quickstart: the paper's Fig. 2 walkthrough.
//!
//! Parses the Flask upload snippet from the paper, builds its propagation
//! graph, prints the events and flow edges, and runs the taint analyzer
//! twice — once on the sanitized original and once with the sanitizer
//! removed.
//!
//! Run with: `cargo run -p seldon-core --example quickstart`

use seldon_propgraph::{build_source, FileId};
use seldon_specs::TaintSpec;
use seldon_taint::TaintAnalyzer;

const SANITIZED: &str = r#"
from yak.web import app
from flask import request
from werkzeug import secure_filename
import os

blog_dir = app.config['PATH']

@app.route('/media/', methods=['POST'])
def media():
    filename = request.files['f'].filename
    filename = secure_filename(filename)
    path = os.path.join(blog_dir, filename)
    if not os.path.exists(path):
        request.files['f'].save(path)
"#;

const VULNERABLE: &str = r#"
from yak.web import app
from flask import request
import os

blog_dir = app.config['PATH']

@app.route('/media/', methods=['POST'])
def media():
    filename = request.files['f'].filename
    path = os.path.join(blog_dir, filename)
    request.files['f'].save(path)
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The taint specification for the snippet (Fig. 2's colors).
    let spec = TaintSpec::parse(
        "o: flask.request.files['f'].filename\n\
         a: werkzeug.secure_filename()\n\
         i: flask.request.files['f'].save()\n",
    )?;

    println!("=== Propagation graph of the paper's Fig. 2 snippet ===\n");
    let graph = build_source(SANITIZED, FileId(0))?;
    for (id, event) in graph.events() {
        println!(
            "  {id}  [{}] {} (line {})",
            event.kind,
            event.rep(),
            event.span.line
        );
    }
    println!("\n  flow edges:");
    for (from, to) in graph.edges() {
        println!(
            "    {} -> {}",
            graph.event(from).rep(),
            graph.event(to).rep()
        );
    }

    println!("\n=== Taint analysis, original (sanitized) snippet ===");
    let analyzer = TaintAnalyzer::new(&graph, &spec);
    let violations = analyzer.find_violations();
    println!("  violations: {}", violations.len());
    assert!(violations.is_empty(), "the original snippet is safe");

    println!("\n=== Taint analysis, sanitizer removed ===");
    let bad_graph = build_source(VULNERABLE, FileId(0))?;
    let analyzer = TaintAnalyzer::new(&bad_graph, &spec);
    let violations = analyzer.find_violations();
    for v in &violations {
        println!(
            "  VULNERABILITY: {} -> {} (path length {})",
            v.source_rep,
            v.sink_rep,
            v.path.len()
        );
    }
    assert_eq!(violations.len(), 1, "removing the sanitizer exposes the flaw");
    println!("\nDone: the paper's worked example reproduces.");
    Ok(())
}
