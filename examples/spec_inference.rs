//! End-to-end specification inference on a synthetic big-code corpus.
//!
//! Generates a corpus of web applications, runs the full Seldon pipeline
//! (parse → propagation graphs → linear constraints → projected Adam →
//! extraction), and prints the learned specification with its exact
//! precision against the corpus ground truth.
//!
//! Run with: `cargo run --release -p seldon-core --example spec_inference`

use seldon_core::{analyze_corpus, evaluate_spec, run_seldon, GroundTruth, SeldonOptions};
use seldon_corpus::{generate_corpus, CorpusOptions, Universe};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let universe = Universe::new();
    let corpus = generate_corpus(
        &universe,
        &CorpusOptions { projects: 120, ..Default::default() },
    );
    println!(
        "corpus: {} projects, {} files, {} known flows",
        corpus.projects.len(),
        corpus.file_count(),
        corpus.flows.len()
    );

    let analyzed = analyze_corpus(&corpus, 4)?;
    println!(
        "global graph: {} events, {} edges (built in {:?})",
        analyzed.graph.event_count(),
        analyzed.graph.edge_count(),
        analyzed.build_time
    );

    let seed = universe.seed_spec();
    println!(
        "seed spec: {} roles, {} blacklist patterns",
        seed.role_count(),
        seed.blacklist_len()
    );

    let run = run_seldon(&analyzed.graph, &seed, &SeldonOptions::default());
    println!(
        "constraint system: {} variables, {} constraints, {} pinned (gen {:?}, solve {:?}, {} iterations)",
        run.system.var_count(),
        run.system.constraint_count(),
        run.system.pinned_count(),
        run.gen_time,
        run.solve_time,
        run.solution.iterations
    );

    let truth = GroundTruth::new(&universe, &corpus);
    let eval = evaluate_spec(&run.extraction.spec, &truth);
    println!("\nlearned specification ({} entries):", eval.predicted());
    for (rep, roles) in run.extraction.spec.iter() {
        let verdict = roles
            .iter()
            .map(|r| if truth.is_correct(rep, r) { "✓" } else { "✗" })
            .collect::<Vec<_>>()
            .join("");
        println!("  {verdict} {rep}: {roles}");
    }
    println!("\nprecision per role:");
    for (role, e) in &eval.by_role {
        println!(
            "  {role:<10} predicted {:>3}  correct {:>3}  precision {:>5.1}%",
            e.predicted,
            e.correct,
            e.precision() * 100.0
        );
    }
    println!(
        "  overall    predicted {:>3}  correct {:>3}  precision {:>5.1}%",
        eval.predicted(),
        eval.correct(),
        eval.precision() * 100.0
    );
    Ok(())
}
