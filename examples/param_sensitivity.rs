//! The §3.3 future-work extension in action: parameter-sensitive sinks.
//!
//! The paper notes "a function may act as a source or a sink depending on
//! its arguments, however, we leave this differentiation for future work."
//! This example audits code where tainted data reaches (a) the dangerous
//! and (b) a harmless parameter of the same sink, with and without sink
//! signatures.
//!
//! Run with: `cargo run -p seldon-core --example param_sensitivity`

use seldon_propgraph::{build_source, FileId};
use seldon_specs::{SinkSignature, TaintSpec};
use seldon_taint::{render_reports, TaintAnalyzer, TaintOptions};

const APP: &str = r#"
from flask import request
import subprocess

def dangerous():
    cmd = request.args.get('cmd')
    subprocess.call(cmd)

def harmless():
    tag = request.args.get('tag')
    subprocess.call(['ls', '-l'], env=tag)
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = build_source(APP, FileId(0))?;
    let mut spec = TaintSpec::parse(
        "o: flask.request.args.get()\n\
         i: subprocess.call()\n",
    )?;

    println!("=== Baseline (the paper's analyzer): both flows reported ===\n");
    let analyzer = TaintAnalyzer::new(&graph, &spec);
    let baseline = analyzer.find_violations();
    print!("{}", render_reports(&baseline, &graph));
    assert_eq!(baseline.len(), 2);

    // Declare that only positional argument 0 of subprocess.call is
    // security-critical (`p: subprocess.call() 0` in the spec format).
    spec.set_signature("subprocess.call()", SinkSignature::positional([0]));

    println!("=== Parameter-sensitive: only the dangerous flow remains ===\n");
    let analyzer = TaintAnalyzer::with_options(
        &graph,
        &spec,
        TaintOptions { param_sensitive: true },
    );
    let sensitive = analyzer.find_violations();
    print!("{}", render_reports(&sensitive, &graph));
    assert_eq!(sensitive.len(), 1);
    assert_eq!(sensitive[0].sink_rep, "subprocess.call()");
    println!(
        "\nSuppressed {} wrong-parameter report(s) while keeping the true one.",
        baseline.len() - sensitive.len()
    );
    Ok(())
}
