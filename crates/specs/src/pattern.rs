//! Glob-style patterns used by the paper's blacklist (App. B).
//!
//! A pattern is a literal string where `*` matches any (possibly empty)
//! substring — e.g. `*tensorflow*`, `*.all()`, `np.*`.

use std::fmt;

/// A compiled blacklist pattern.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Pattern {
    raw: String,
    /// Literal segments between `*` wildcards.
    segments: Vec<String>,
    /// Whether the pattern starts with `*`.
    open_start: bool,
    /// Whether the pattern ends with `*`.
    open_end: bool,
}

impl Pattern {
    /// Compiles a pattern.
    pub fn new(raw: impl Into<String>) -> Pattern {
        let raw = raw.into();
        let open_start = raw.starts_with('*');
        let open_end = raw.ends_with('*');
        let segments: Vec<String> = raw
            .split('*')
            .filter(|s| !s.is_empty())
            .map(|s| s.to_string())
            .collect();
        Pattern { raw, segments, open_start, open_end }
    }

    /// The original pattern text.
    pub fn as_str(&self) -> &str {
        &self.raw
    }

    /// Tests whether `text` matches this pattern.
    pub fn matches(&self, text: &str) -> bool {
        if self.segments.is_empty() {
            // "", "*", "**", ...
            return self.open_start || self.open_end || text.is_empty();
        }
        // Fully anchored, wildcard-free pattern: exact match only.
        if !self.open_start && !self.open_end && self.segments.len() == 1 {
            return text == self.segments[0];
        }
        let mut pos = 0usize;
        for (i, seg) in self.segments.iter().enumerate() {
            if i == 0 && !self.open_start {
                if !text.starts_with(seg.as_str()) {
                    return false;
                }
                pos = seg.len();
            } else {
                match text[pos..].find(seg.as_str()) {
                    Some(off) => pos = pos + off + seg.len(),
                    None => return false,
                }
            }
        }
        if !self.open_end {
            // Last segment must align with the end of text. If it matched
            // earlier we need to retry matching it at the very end.
            let last = self.segments.last().expect("segments nonempty");
            if pos == text.len() && text.ends_with(last.as_str()) {
                return true;
            }
            // Allow the final segment to slide to the end as long as the
            // preceding match position permits it.
            if text.len() >= last.len() && text.ends_with(last.as_str()) {
                let tail_start = text.len() - last.len();
                return tail_start + last.len() >= pos;
            }
            return false;
        }
        true
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.raw)
    }
}

/// An ordered list of patterns; matching means *any* pattern matches.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PatternList {
    patterns: Vec<Pattern>,
}

impl PatternList {
    /// Creates an empty list.
    pub fn new() -> Self {
        PatternList::default()
    }

    /// Adds a pattern.
    pub fn push(&mut self, pattern: Pattern) {
        self.patterns.push(pattern);
    }

    /// Whether any pattern matches `text`.
    pub fn matches(&self, text: &str) -> bool {
        self.patterns.iter().any(|p| p.matches(text))
    }

    /// Number of patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Iterates over the patterns.
    pub fn iter(&self) -> impl Iterator<Item = &Pattern> {
        self.patterns.iter()
    }
}

impl FromIterator<Pattern> for PatternList {
    fn from_iter<I: IntoIterator<Item = Pattern>>(iter: I) -> Self {
        PatternList { patterns: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, text: &str) -> bool {
        Pattern::new(pat).matches(text)
    }

    #[test]
    fn literal_patterns() {
        assert!(m("flask.redirect()", "flask.redirect()"));
        assert!(!m("flask.redirect()", "flask.redirect2()"));
        assert!(!m("flask.redirect()", "x.flask.redirect()"));
        // A wildcard-free pattern is an exact match (proptest-found bug:
        // the slide-to-end logic must not apply without a `*`).
        assert!(!m("x", "xx"));
        assert!(!m("abc", "abcabc"));
    }

    #[test]
    fn prefix_suffix_infix() {
        assert!(m("*tensorflow*", "import tensorflow as tf"));
        assert!(m("*tensorflow*", "tensorflow"));
        assert!(!m("*tensorflow*", "torch"));
        assert!(m("np.*", "np.zeros()"));
        assert!(!m("np.*", "numpy.zeros()"));
        assert!(m("*.all()", "queryset.all()"));
        assert!(!m("*.all()", "queryset.all().filter()"));
    }

    #[test]
    fn multiple_wildcards() {
        assert!(m("*django*settings*", "from django.conf import settings"));
        assert!(!m("*django*settings*", "django only"));
        assert!(m("*_()*", "gettext_().render"));
    }

    #[test]
    fn star_only() {
        assert!(m("*", "anything"));
        assert!(m("*", ""));
    }

    #[test]
    fn end_anchored_with_internal_star() {
        assert!(m("a*c", "abc"));
        assert!(m("a*c", "ac"));
        assert!(m("a*c", "abcc"));
        assert!(!m("a*c", "ab"));
        assert!(!m("a*c", "cab"));
    }

    #[test]
    fn paper_blacklist_samples() {
        assert!(m("*__name__*", "type().__name__"));
        assert!(m("*.append()", "result.append()"));
        assert!(m("*.split()*", "key.split()"));
        assert!(m("*.split()*", "key.split()[0]"));
        assert!(m("*test*", "unittest.TestCase"));
        assert!(!m("*.append()", "appendix"));
    }

    #[test]
    fn pattern_list_any_semantics() {
        let list: PatternList =
            ["np.*", "*.all()"].into_iter().map(Pattern::new).collect();
        assert!(list.matches("np.sum()"));
        assert!(list.matches("x.all()"));
        assert!(!list.matches("pd.sum()"));
        assert_eq!(list.len(), 2);
        assert!(!list.is_empty());
        assert!(PatternList::new().is_empty());
        assert!(!PatternList::new().matches("anything"));
    }

    #[test]
    fn display_round_trips() {
        assert_eq!(Pattern::new("*.all()").to_string(), "*.all()");
    }
}
