//! A compiled view of a [`TaintSpec`] that memoizes pattern matching and
//! role lookup per interned [`Symbol`].
//!
//! Blacklist patterns are globs (App. B), so `TaintSpec::is_blacklisted`
//! walks every pattern for every query — once per *event* representation
//! on the constraint-generation hot path. With interned representations
//! the distinct query strings are a tiny fraction of the queries, so a
//! [`CompiledSpec`] resolves each symbol against the glob list and the
//! entry map exactly once per corpus and answers repeats from a
//! symbol-keyed cache.

use crate::role::{Role, RoleSet};
use crate::spec::TaintSpec;
use seldon_intern::Symbol;
use std::cell::RefCell;
use std::collections::HashMap;

/// A memoizing matcher over a borrowed [`TaintSpec`].
///
/// Intended for single-threaded analysis passes (constraint generation,
/// taint-role resolution, Merlin seeding): build one per pass, query by
/// [`Symbol`]. Not `Sync` — each worker thread builds its own.
#[derive(Debug)]
pub struct CompiledSpec<'a> {
    spec: &'a TaintSpec,
    /// Blacklist verdict per symbol, resolved on first query.
    blacklisted: RefCell<HashMap<Symbol, bool>>,
    /// Role set per symbol (blacklist already applied), resolved on first
    /// query.
    roles: RefCell<HashMap<Symbol, RoleSet>>,
}

impl<'a> CompiledSpec<'a> {
    /// Wraps `spec` with empty memo tables.
    pub fn new(spec: &'a TaintSpec) -> Self {
        CompiledSpec {
            spec,
            blacklisted: RefCell::new(HashMap::new()),
            roles: RefCell::new(HashMap::new()),
        }
    }

    /// The underlying specification.
    pub fn spec(&self) -> &'a TaintSpec {
        self.spec
    }

    /// Whether the representation matches a blacklist pattern; glob
    /// matching runs once per distinct symbol.
    pub fn is_blacklisted(&self, rep: Symbol) -> bool {
        *self
            .blacklisted
            .borrow_mut()
            .entry(rep)
            .or_insert_with(|| self.spec.is_blacklisted(rep.as_str()))
    }

    /// The roles of the representation (empty if blacklisted or unknown),
    /// memoized per symbol.
    pub fn roles(&self, rep: Symbol) -> RoleSet {
        *self
            .roles
            .borrow_mut()
            .entry(rep)
            .or_insert_with(|| self.spec.roles(rep.as_str()))
    }

    /// Whether the representation has `role`.
    pub fn has_role(&self, rep: Symbol, role: Role) -> bool {
        self.roles(rep).contains(role)
    }

    /// Number of distinct symbols resolved so far (for diagnostics).
    pub fn memoized(&self) -> usize {
        self.blacklisted.borrow().len().max(self.roles.borrow().len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seldon_intern::intern;

    #[test]
    fn memoized_answers_match_spec() {
        let mut spec = TaintSpec::new();
        spec.add("flask.request.args.get()", Role::Source);
        spec.add("os.system()", Role::Sink);
        spec.blacklist("np.*");
        let compiled = CompiledSpec::new(&spec);
        for rep in ["flask.request.args.get()", "os.system()", "np.zeros()", "other()"] {
            let sym = intern(rep);
            // Query twice: first resolves, second hits the memo.
            for _ in 0..2 {
                assert_eq!(compiled.is_blacklisted(sym), spec.is_blacklisted(rep), "{rep}");
                assert_eq!(compiled.roles(sym), spec.roles(rep), "{rep}");
            }
        }
        assert!(compiled.has_role(intern("os.system()"), Role::Sink));
        assert!(!compiled.has_role(intern("np.zeros()"), Role::Source));
        assert_eq!(compiled.memoized(), 4);
        assert_eq!(compiled.spec().role_count(), spec.role_count());
    }

    #[test]
    fn blacklist_wins_over_roles() {
        let mut spec = TaintSpec::new();
        spec.add("np.loadtxt()", Role::Source);
        spec.blacklist("np.*");
        let compiled = CompiledSpec::new(&spec);
        let sym = intern("np.loadtxt()");
        assert!(compiled.is_blacklisted(sym));
        assert!(compiled.roles(sym).is_empty());
    }
}
