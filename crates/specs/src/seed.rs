//! The paper's seed specification (App. B), embedded verbatim.
//!
//! 106 labelled events (28 sources, 30 sanitizers, 48 sinks) plus 192
//! blacklist patterns, exactly as listed in Appendix B of the paper.

use crate::spec::TaintSpec;

/// Raw text of the App. B seed specification.
pub const PAPER_SEED_TEXT: &str = r#"
# Sources
o: User.objects.get()
o: cms.apps.pages.models.Page.objects.get()
o: django.core.extensions.get_object_or_404()
o: django.http.QueryDict()
o: django.shortcuts.get_object_or_404()
o: example.util.models.Link.objects.get()
o: flask.request.form.get()
o: inviteme.forms.ContactMailForm()
o: live_support.forms.ChatMessageForm()
o: model_class.objects.get()
o: req.form.get()
o: request.GET.copy()
o: request.GET.get()
o: request.POST.copy()
o: request.POST.get()
o: request.args.get()
o: request.form.get()
o: request.pages.get()
o: self.get_query_string()
o: self.get_user_or_404()
o: self.queryset().get()
o: self.request.FILES.get()
o: self.request.get()
o: self.request.headers.get()
o: textpress.models.Page.objects.get()
o: textpress.models.Tag.objects.get()
o: textpress.models.User()
o: textpress.models.User.objects.get()

# SQL injection
i: MySQLdb.connect().cursor().execute()
i: MySQLdb.connect().execute()
a: MySQLdb.connect().cursor().mogrify()
a: MySQLdb.escape_string()
i: pymysql.connect().cursor().execute()
i: pymysql.connect().execute()
a: pymysql.connect().cursor().mogrify()
a: pymysql.escape_string()
i: pyPgSQL.connect().cursor().execute()
i: pyPgSQL.connect().execute()
a: pyPgSQL.connect().cursor().mogrify()
a: pyPgSQL.escape_string()
i: psycopg2.connect().cursor().execute()
i: psycopg2.connect().execute()
a: psycopg2.connect().cursor().mogrify()
a: psycopg2.escape_string()
i: sqlite3.connect().cursor().execute()
i: sqlite3.connect().execute()
a: sqlite3.connect().cursor().mogrify()
a: sqlite3.escape_string()
i: flask.SQLAlchemy().session.execute()
i: SQLAlchemy().session.execute()
i: db.session().execute()
i: flask.SQLAlchemy().engine.execute()
i: SQLAlchemy().engine.execute()
i: db.engine.execute()
i: django.db.models.Model::objects.raw()
i: django.db.models.expressions.RawSQL()
i: django.db.connection.cursor().execute()

# XPath Injection
i: lxml.html.fromstring().xpath()
i: lxml.etree.fromstring().xpath()
i: lxml.etree.HTML().xpath()

# OS Command Injection
i: subprocess.call()
i: subprocess.check_call()
i: subprocess.check_output()
i: os.system()
i: os.spawn()
i: os.popen()
a: subprocess.Popen()

# XXE
i: lxml.etree.to_string()

# XSS
i: amo.utils.send_mail_jinja()
i: django.utils.html.mark_safe()
i: django.utils.safestring.mark_safe()
i: example.util.response.Response()
i: jinja2.Markup()
i: olympia.amo.utils.send_mail_jinja()
i: suds.sax.text.Raw()
i: swift.common.swob.Response()
i: webob.Response()
i: wtforms.widgets.HTMLString()
i: wtforms.widgets.core.HTMLString()
i: flask.Response()
i: flask.make_response()
i: flask.render_template_string()
a: bleach.clean()
a: cgi.escape()
a: django.forms.util.flatatt()
a: django.template.defaultfilters.escape()
a: django.utils.html.escape()
a: flask.escape()
a: jinja2.escape()
a: textpress.utils.escape()
a: werkzeug.escape()
a: werkzeug.html.input()
a: xml.sax.saxutils.escape()
a: flask.render_template()
a: django.shortcuts.render()
a: django.shortcuts.render_to_response()
a: django.template.Template().render()
a: django.template.loader.get_template().render()
a: werkzeug.exceptions.BadRequest()

# Path Traversal
i: flask.send_from_directory()
i: flask.send_file()
a: os.path.basename()
a: werkzeug.utils.secure_filename()

# Open Redirect
i: flask.redirect()
i: django.shortcuts.redirect()
i: django.http.HttpResponseRedirect()

# Black list
# Imports and related functions.
b: *tensorflow*
b: *tf*
b: *numpy*
b: *pandas*
b: np.*
b: plt.*
b: pyplot.*
b: os.path.*
b: uuid.*
b: sys.*
b: json.*
b: datetime.*
b: io.*
b: re.*
b: hashlib.*
b: struct.*
b: *String*
b: *Queue*
b: threading*
b: mutex*
b: dummy_threading*
b: multiprocessing*
b: *module*
b: math.*

# Flask
b: flask.Flask()*
b: app.*

# Django
b: *django*conf*
b: *django*settings*
b: *ugettext*
b: *lazy*
b: *RequestContext*

# Logs
b: *logging*
b: *logger*
b: tempfile.mkdtemp()
b: type().__name__
b: set_size(param n)
b: result.append()
b: str().encode()
b: ValueError()
b: logging.info()
b: key.split()
b: json.dump()

# Python built-ins.
b: False
b: None
b: True
b: *_()*
b: __import__()
b: *__name__*
b: *_str()*
b: *_unicode()*
b: abs()
b: *.all()
b: *.any()
b: *.append()
b: ascii()
b: *assert*
b: attr()
b: bin()
b: bool()
b: builtins.str()
b: bytearray()
b: bytes()
b: *.capitalize()
b: *.center()
b: chr()
b: classmethod()
b: cmp()
b: complex()
b: *.copy()
b: *.count()
b: *.decode()
b: dict()
b: *.difference()
b: *.difference_update()
b: dir()
b: *.encode()
b: *.endswith()
b: enumerate()
b: *.extend()
b: *.filter()
b: *.find()
b: *.findall()
b: *.finditer()
b: float()
b: *.format()
b: frozenset()
b: func()
b: future.builtins.str()
b: getattr()
b: globals()
b: hasattr()
b: hash()
b: help()
b: hex()
b: id()
b: *.index()
b: *.insert()
b: int()
b: *.intersection()
b: *.intersection_update()
b: *.isalnum()
b: *.isalpha()
b: *.isdecimal()
b: *.isdigit()
b: *.isdisjoint()
b: *.isidentifier()
b: *.isinstance()
b: *.islower()
b: *.isnumeric()
b: *.isprintable()
b: *.isspace()
b: *.issubclass()
b: *.issubset()
b: *.issuperset()
b: *.istitle()
b: *.isupper()
b: *.keys()
b: kwargs
b: *len()
b: list()
b: *.ljust()
b: locals()
b: *.lower()
b: *.lstrip()
b: *.maketrans()
b: *.map()
b: *.match()
b: *.match.group()
b: max()
b: meth()
b: min()
b: next()
b: object()
b: oct()
b: open()
b: ord()
b: *.pop()
b: *.popitem()
b: pow()
b: print()
b: *.purge()
b: *.quote()
b: *.quoted_url()
b: range()
b: reduce()
b: *.reload()
b: *.remove()
b: *.replace()*
b: *.repr()
b: *.reverse()
b: reversed()
b: *.rfind()
b: *.rindex()
b: *.rjust()
b: round()
b: *.rpartition()
b: *.rsplit()
b: *.rstrip()
b: *.search()
b: set()
b: setattr()
b: *.setdefault()
b: *.sort()
b: sorted()
b: *.split()*
b: *.splitlines()
b: *.startswith()
b: *.staticmethod()
b: str
b: str()
b: *.strip()
b: strip_date.strftime()
b: *.sub()
b: *.subn()
b: sum()
b: super()
b: *.symmetric_difference()
b: *.symmetric_difference_update()
b: *test*
b: *.translate()
b: *.trim_url()
b: *.truncate()
b: tuple()
b: *.type()
b: unichr()
b: unicode()
b: unknown()
b: *.update()
b: *.upper()
b: *.values()
b: *.vars()
b: zip()
"#;

/// One entry of the paper's App. C listing (Tab. 11): a real-world bug
/// report filed by the authors based on Seldon's output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReportedBug {
    /// The public pull request / issue URL.
    pub url: &'static str,
    /// Number of bugs covered by the report.
    pub bugs: usize,
    /// The vulnerability type as the paper names it.
    pub kind: &'static str,
}

/// The paper's App. C table of reported bugs (49 vulnerabilities across 21
/// reports in 17 projects: 25 XSS, 18 SQL injections, 3 path traversals,
/// 2 command injections, 1 code injection).
pub const REPORTED_BUGS: [ReportedBug; 21] = [
    ReportedBug { url: "https://github.com/anyaudio/anyaudio-server/pull/163", bugs: 2, kind: "XSS" },
    ReportedBug { url: "https://github.com/DataViva/dataviva-site/issues/1661", bugs: 2, kind: "Path Traversal" },
    ReportedBug { url: "https://github.com/DataViva/dataviva-site/issues/1662", bugs: 1, kind: "XSS" },
    ReportedBug { url: "https://github.com/earthgecko/skyline/issues/85", bugs: 1, kind: "XSS" },
    ReportedBug { url: "https://github.com/earthgecko/skyline/issues/86", bugs: 2, kind: "SQLi" },
    ReportedBug { url: "https://github.com/gestorpsi/gestorpsi/pull/75", bugs: 2, kind: "XSS" },
    ReportedBug { url: "https://github.com/HarshShah1997/Shopping-Cart/pull/2", bugs: 12, kind: "SQLi" },
    ReportedBug { url: "https://github.com/kylewm/silo.pub/issues/57", bugs: 1, kind: "XSS" },
    ReportedBug { url: "https://github.com/kylewm/woodwind/issues/77", bugs: 2, kind: "XSS" },
    ReportedBug { url: "https://github.com/LMFDB/lmfdb/pull/2695", bugs: 7, kind: "XSS" },
    ReportedBug { url: "https://github.com/LMFDB/lmfdb/pull/2696", bugs: 1, kind: "SQLi" },
    ReportedBug { url: "https://github.com/mgymrek/pybamview/issues/52", bugs: 1, kind: "Command Injection" },
    ReportedBug { url: "https://github.com/MinnPost/election-night-api/issues/1", bugs: 1, kind: "Command Injection" },
    ReportedBug { url: "https://github.com/mitre/multiscanner/issues/159", bugs: 1, kind: "Path Traversal" },
    ReportedBug { url: "https://github.com/MLTSHP/mltshp/pull/509", bugs: 1, kind: "XSS" },
    ReportedBug { url: "https://github.com/mozilla/pontoon/pull/1175", bugs: 5, kind: "XSS" },
    ReportedBug { url: "https://github.com/PadamSethia/shorty/pull/4", bugs: 1, kind: "SQLi" },
    ReportedBug { url: "https://github.com/sharadbhat/VideoHub/issues/3", bugs: 1, kind: "SQLi" },
    ReportedBug { url: "https://github.com/UDST/urbansim/issues/213", bugs: 1, kind: "Code Injection" },
    ReportedBug { url: "https://github.com/viaict/viaduct/pull/5", bugs: 3, kind: "XSS" },
    ReportedBug { url: "https://github.com/yashbidasaria/Harry-s-List-Friends/issues/1", bugs: 1, kind: "SQLi" },
];

/// Parses and returns the paper's seed specification.
///
/// # Panics
///
/// Never panics in practice: the embedded text is validated by tests.
pub fn paper_seed() -> TaintSpec {
    TaintSpec::parse(PAPER_SEED_TEXT).expect("embedded seed spec is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::role::Role;

    #[test]
    fn seed_parses() {
        let spec = paper_seed();
        // The paper reports 28 sources, 30 sanitizers, 48 sinks.
        assert_eq!(spec.count_role(Role::Source), 28);
        assert_eq!(spec.count_role(Role::Sanitizer), 30);
        assert_eq!(spec.count_role(Role::Sink), 48);
        assert_eq!(spec.role_count(), 106);
    }

    #[test]
    fn seed_contains_known_entries() {
        let spec = paper_seed();
        assert!(spec.has_role("request.args.get()", Role::Source));
        assert!(spec.has_role("werkzeug.utils.secure_filename()", Role::Sanitizer));
        assert!(spec.has_role("flask.send_file()", Role::Sink));
        assert!(spec.has_role("os.system()", Role::Sink));
    }

    #[test]
    fn seed_blacklist_behaves() {
        let spec = paper_seed();
        assert!(spec.is_blacklisted("np.zeros()"));
        assert!(spec.is_blacklisted("x.append()"));
        assert!(spec.is_blacklisted("unittest.test_foo"));
        assert!(!spec.is_blacklisted("cursor.execute()"));
    }

    #[test]
    fn reported_bugs_match_paper_totals() {
        // §7.5 Q7: 49 severe vulnerabilities in 17 projects — 25 XSS,
        // 18 SQLi, 3 path traversal, 2 command injection, 1 code injection.
        let total: usize = REPORTED_BUGS.iter().map(|b| b.bugs).sum();
        assert_eq!(total, 49);
        assert_eq!(REPORTED_BUGS.len(), 21);
        let count = |kind: &str| -> usize {
            REPORTED_BUGS.iter().filter(|b| b.kind == kind).map(|b| b.bugs).sum()
        };
        assert_eq!(count("XSS"), 25);
        assert_eq!(count("SQLi"), 18);
        assert_eq!(count("Path Traversal"), 3);
        assert_eq!(count("Command Injection"), 2);
        assert_eq!(count("Code Injection"), 1);
        // 17 distinct projects.
        let projects: std::collections::HashSet<&str> = REPORTED_BUGS
            .iter()
            .map(|b| {
                let rest = b.url.trim_start_matches("https://github.com/");
                &rest[..rest.match_indices('/').nth(1).map(|(i, _)| i).unwrap_or(rest.len())]
            })
            .collect();
        // The paper says "17 projects"; the App. C table actually lists 18
        // distinct repositories (the two kylewm/* projects share an owner,
        // which is presumably how the authors counted). Assert the table.
        assert_eq!(projects.len(), 18, "{projects:?}");
    }

    #[test]
    fn blacklist_count_matches_paper_scale() {
        let spec = paper_seed();
        // The paper cites 192 patterns; our transcription keeps the same
        // listing (small count drift tolerated for formatting artifacts).
        assert!(spec.blacklist_len() >= 180, "have {}", spec.blacklist_len());
    }
}
