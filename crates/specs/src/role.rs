//! Taint roles and role sets.

use std::fmt;

/// The role an API event can play in a taint specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Role {
    /// Introduces attacker-controlled data (e.g. `request.args.get()`).
    Source,
    /// Neutralizes attacker-controlled data (e.g. `escape()`).
    Sanitizer,
    /// Security-critical consumer that must not receive unsanitized data
    /// (e.g. `cursor.execute()`).
    Sink,
}

impl Role {
    /// All three roles, in the paper's canonical order (src, san, snk).
    pub const ALL: [Role; 3] = [Role::Source, Role::Sanitizer, Role::Sink];

    /// Short name used in variable subscripts: `src`, `san`, `snk`.
    pub fn short(self) -> &'static str {
        match self {
            Role::Source => "src",
            Role::Sanitizer => "san",
            Role::Sink => "snk",
        }
    }

    /// Index 0/1/2 for array-backed per-role storage.
    pub fn index(self) -> usize {
        match self {
            Role::Source => 0,
            Role::Sanitizer => 1,
            Role::Sink => 2,
        }
    }

    /// Inverse of [`Role::index`].
    ///
    /// # Panics
    ///
    /// Panics if `i > 2`.
    pub fn from_index(i: usize) -> Role {
        match i {
            0 => Role::Source,
            1 => Role::Sanitizer,
            2 => Role::Sink,
            _ => panic!("role index out of range: {i}"),
        }
    }
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Role::Source => write!(f, "source"),
            Role::Sanitizer => write!(f, "sanitizer"),
            Role::Sink => write!(f, "sink"),
        }
    }
}

/// A set of roles, packed into one byte.
///
/// Events may hold multiple roles simultaneously (§4 of the paper explicitly
/// allows e.g. source + sink) or none at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct RoleSet(u8);

impl RoleSet {
    /// The empty role set.
    pub const EMPTY: RoleSet = RoleSet(0);
    /// All three roles.
    pub const ALL: RoleSet = RoleSet(0b111);

    /// Creates a set containing exactly `role`.
    pub fn only(role: Role) -> RoleSet {
        RoleSet(1 << role.index())
    }

    /// Returns the set with `role` added.
    pub fn with(self, role: Role) -> RoleSet {
        RoleSet(self.0 | (1 << role.index()))
    }

    /// Returns the set with `role` removed.
    pub fn without(self, role: Role) -> RoleSet {
        RoleSet(self.0 & !(1 << role.index()))
    }

    /// Whether `role` is in the set.
    pub fn contains(self, role: Role) -> bool {
        self.0 & (1 << role.index()) != 0
    }

    /// Whether no role is present.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of roles present.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterates the contained roles in canonical order.
    pub fn iter(self) -> impl Iterator<Item = Role> {
        Role::ALL.into_iter().filter(move |r| self.contains(*r))
    }

    /// Union of two sets.
    pub fn union(self, other: RoleSet) -> RoleSet {
        RoleSet(self.0 | other.0)
    }

    /// Intersection of two sets.
    pub fn intersection(self, other: RoleSet) -> RoleSet {
        RoleSet(self.0 & other.0)
    }
}

impl FromIterator<Role> for RoleSet {
    fn from_iter<I: IntoIterator<Item = Role>>(iter: I) -> Self {
        iter.into_iter().fold(RoleSet::EMPTY, RoleSet::with)
    }
}

impl fmt::Display for RoleSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "none");
        }
        let mut first = true;
        for r in self.iter() {
            if !first {
                write!(f, "+")?;
            }
            write!(f, "{r}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_round_trip() {
        for r in Role::ALL {
            assert_eq!(Role::from_index(r.index()), r);
        }
    }

    #[test]
    fn roleset_ops() {
        let s = RoleSet::only(Role::Source).with(Role::Sink);
        assert!(s.contains(Role::Source));
        assert!(s.contains(Role::Sink));
        assert!(!s.contains(Role::Sanitizer));
        assert_eq!(s.len(), 2);
        assert_eq!(s.without(Role::Sink), RoleSet::only(Role::Source));
        assert_eq!(s.union(RoleSet::only(Role::Sanitizer)), RoleSet::ALL);
        assert_eq!(s.intersection(RoleSet::only(Role::Sink)), RoleSet::only(Role::Sink));
    }

    #[test]
    fn roleset_iter_order() {
        let s: RoleSet = [Role::Sink, Role::Source].into_iter().collect();
        let v: Vec<Role> = s.iter().collect();
        assert_eq!(v, vec![Role::Source, Role::Sink]);
    }

    #[test]
    fn display() {
        assert_eq!(RoleSet::EMPTY.to_string(), "none");
        assert_eq!(RoleSet::ALL.to_string(), "source+sanitizer+sink");
        assert_eq!(Role::Sanitizer.to_string(), "sanitizer");
    }

    #[test]
    #[should_panic(expected = "role index out of range")]
    fn from_index_panics() {
        let _ = Role::from_index(3);
    }
}
