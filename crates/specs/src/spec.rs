//! The taint specification container and its text format.
//!
//! The format mirrors the paper's App. B listing: one entry per line,
//! prefixed `o:` (source), `a:` (sanitizer), `i:` (sink), or `b:`
//! (blacklisted pattern). `#` starts a comment. As an extension, `p:`
//! declares a parameter-sensitive sink signature
//! (`p: subprocess.call() 0,cmd` — see [`crate::signature`]).

use crate::pattern::{Pattern, PatternList};
use crate::role::{Role, RoleSet};
use crate::signature::SinkSignature;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// A taint specification: representation strings mapped to role sets, plus a
/// blacklist of patterns excluded from every role.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TaintSpec {
    entries: BTreeMap<String, RoleSet>,
    blacklist: PatternList,
    signatures: BTreeMap<String, SinkSignature>,
}

impl TaintSpec {
    /// Creates an empty specification.
    pub fn new() -> Self {
        TaintSpec::default()
    }

    /// Assigns `role` to `api` (merging with any existing roles).
    pub fn add(&mut self, api: impl Into<String>, role: Role) {
        let e = self.entries.entry(api.into()).or_default();
        *e = e.with(role);
    }

    /// Assigns a whole role set to `api` (merging).
    pub fn add_set(&mut self, api: impl Into<String>, roles: RoleSet) {
        let e = self.entries.entry(api.into()).or_default();
        *e = e.union(roles);
    }

    /// Adds a blacklist pattern.
    pub fn blacklist(&mut self, pattern: impl Into<String>) {
        self.blacklist.push(Pattern::new(pattern.into()));
    }

    /// Records which parameters of a sink are dangerous (§3.3 extension).
    pub fn set_signature(&mut self, api: impl Into<String>, sig: SinkSignature) {
        self.signatures.insert(api.into(), sig);
    }

    /// The sink signature of `api`, if one was declared.
    pub fn signature(&self, api: &str) -> Option<&SinkSignature> {
        self.signatures.get(api)
    }

    /// Number of declared sink signatures.
    pub fn signature_count(&self) -> usize {
        self.signatures.len()
    }

    /// Returns the roles recorded for `api` (empty if unknown).
    pub fn roles(&self, api: &str) -> RoleSet {
        if self.blacklist.matches(api) {
            return RoleSet::EMPTY;
        }
        self.entries.get(api).copied().unwrap_or_default()
    }

    /// Whether `api` matches a blacklist pattern.
    pub fn is_blacklisted(&self, api: &str) -> bool {
        self.blacklist.matches(api)
    }

    /// Whether `api` has `role`.
    pub fn has_role(&self, api: &str, role: Role) -> bool {
        self.roles(api).contains(role)
    }

    /// Number of (api, role) pairs (an api with two roles counts twice).
    pub fn role_count(&self) -> usize {
        self.entries.values().map(|r| r.len()).sum()
    }

    /// Number of distinct APIs with at least one role.
    pub fn api_count(&self) -> usize {
        self.entries.values().filter(|r| !r.is_empty()).count()
    }

    /// Number of APIs holding `role`.
    pub fn count_role(&self, role: Role) -> usize {
        self.entries.values().filter(|r| r.contains(role)).count()
    }

    /// Number of blacklist patterns.
    pub fn blacklist_len(&self) -> usize {
        self.blacklist.len()
    }

    /// Iterates `(api, roles)` pairs in lexicographic API order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, RoleSet)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates APIs holding `role`.
    pub fn apis_with_role(&self, role: Role) -> impl Iterator<Item = &str> {
        self.entries
            .iter()
            .filter(move |(_, r)| r.contains(role))
            .map(|(k, _)| k.as_str())
    }

    /// Merges another specification into this one (union of roles and
    /// blacklists).
    pub fn merge(&mut self, other: &TaintSpec) {
        for (api, roles) in other.iter() {
            self.add_set(api, roles);
        }
        for p in other.blacklist.iter() {
            self.blacklist.push(p.clone());
        }
        for (api, sig) in &other.signatures {
            self.signatures.insert(api.clone(), sig.clone());
        }
    }

    /// Parses the App. B text format (plus the `p:` signature extension).
    ///
    /// # Errors
    ///
    /// Returns [`SpecParseError`] on lines that are neither empty, comments,
    /// nor `o:`/`a:`/`i:`/`b:`/`p:` entries.
    pub fn parse(text: &str) -> Result<TaintSpec, SpecParseError> {
        let mut spec = TaintSpec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (prefix, rest) = match line.split_once(':') {
                Some(parts) => parts,
                None => {
                    return Err(SpecParseError { line: lineno + 1, text: line.to_string() })
                }
            };
            let api = rest.trim().to_string();
            if api.is_empty() {
                return Err(SpecParseError { line: lineno + 1, text: line.to_string() });
            }
            match prefix.trim() {
                "o" => spec.add(api, Role::Source),
                "a" => spec.add(api, Role::Sanitizer),
                "i" => spec.add(api, Role::Sink),
                "b" => spec.blacklist(api),
                // `p: api() 0,env` — parameter-sensitive sink signature.
                "p" => match api.split_once(' ') {
                    Some((name, args)) => {
                        spec.set_signature(name.trim(), SinkSignature::parse(args))
                    }
                    None => {
                        return Err(SpecParseError {
                            line: lineno + 1,
                            text: line.to_string(),
                        })
                    }
                },
                _ => {
                    return Err(SpecParseError { line: lineno + 1, text: line.to_string() })
                }
            }
        }
        Ok(spec)
    }

    /// Serializes to the App. B text format (stable order).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for role in Role::ALL {
            let prefix = match role {
                Role::Source => "o",
                Role::Sanitizer => "a",
                Role::Sink => "i",
            };
            for api in self.apis_with_role(role) {
                out.push_str(prefix);
                out.push_str(": ");
                out.push_str(api);
                out.push('\n');
            }
        }
        for p in self.blacklist.iter() {
            out.push_str("b: ");
            out.push_str(p.as_str());
            out.push('\n');
        }
        for (api, sig) in &self.signatures {
            out.push_str(&format!("p: {api} {sig}\n"));
        }
        out
    }
}

impl fmt::Display for TaintSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

/// Error produced when parsing a malformed spec line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecParseError {
    /// 1-based line number.
    pub line: usize,
    /// The offending line text.
    pub text: String,
}

impl fmt::Display for SpecParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed spec entry on line {}: `{}`", self.line, self.text)
    }
}

impl Error for SpecParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_query() {
        let text = "\
# Sources
o: request.GET.get()
o: request.POST.get()
# Sinks
i: cursor.execute()
a: escape()
b: *test*
";
        let spec = TaintSpec::parse(text).unwrap();
        assert!(spec.has_role("request.GET.get()", Role::Source));
        assert!(spec.has_role("cursor.execute()", Role::Sink));
        assert!(spec.has_role("escape()", Role::Sanitizer));
        assert!(!spec.has_role("escape()", Role::Sink));
        assert_eq!(spec.count_role(Role::Source), 2);
        assert_eq!(spec.blacklist_len(), 1);
        assert!(spec.is_blacklisted("unittest.TestCase"));
    }

    #[test]
    fn blacklist_overrides_roles() {
        let mut spec = TaintSpec::new();
        spec.add("np.loadtxt()", Role::Source);
        spec.blacklist("np.*");
        assert!(spec.roles("np.loadtxt()").is_empty());
    }

    #[test]
    fn round_trip() {
        let mut spec = TaintSpec::new();
        spec.add("a()", Role::Source);
        spec.add("b()", Role::Sink);
        spec.add("b()", Role::Source);
        spec.add("c()", Role::Sanitizer);
        spec.blacklist("*x*");
        let text = spec.to_text();
        let spec2 = TaintSpec::parse(&text).unwrap();
        assert_eq!(spec, spec2);
    }

    #[test]
    fn multi_role_entries() {
        let mut spec = TaintSpec::new();
        spec.add("x()", Role::Source);
        spec.add("x()", Role::Sink);
        assert_eq!(spec.roles("x()").len(), 2);
        assert_eq!(spec.role_count(), 2);
        assert_eq!(spec.api_count(), 1);
    }

    #[test]
    fn parse_errors() {
        assert!(TaintSpec::parse("nonsense line").is_err());
        assert!(TaintSpec::parse("z: something()").is_err());
        assert!(TaintSpec::parse("o:").is_err());
        let err = TaintSpec::parse("x\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn merge_unions() {
        let mut a = TaintSpec::new();
        a.add("f()", Role::Source);
        let mut b = TaintSpec::new();
        b.add("f()", Role::Sink);
        b.add("g()", Role::Sanitizer);
        b.blacklist("*bl*");
        a.merge(&b);
        assert_eq!(a.roles("f()").len(), 2);
        assert!(a.has_role("g()", Role::Sanitizer));
        assert!(a.is_blacklisted("xbly"));
    }

    #[test]
    fn apis_with_role_sorted() {
        let mut spec = TaintSpec::new();
        spec.add("z()", Role::Source);
        spec.add("a()", Role::Source);
        let v: Vec<&str> = spec.apis_with_role(Role::Source).collect();
        assert_eq!(v, vec!["a()", "z()"]);
    }
}
