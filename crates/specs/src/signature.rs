//! Parameter-sensitive sink signatures — the paper's §3.3 future work.
//!
//! The paper notes that "a function may act as a source or a sink depending
//! on its arguments, however, we leave this differentiation for future
//! work". This module implements that differentiation for sinks: a
//! [`SinkSignature`] records which argument positions of an API are
//! security-critical, so a taint analyzer can suppress reports where taint
//! only reaches a harmless parameter (the Tab. 6 "flows into wrong
//! parameter" false positives).

use std::collections::BTreeSet;
use std::fmt;

/// Which parameters of a sink are dangerous.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SinkSignature {
    /// Dangerous positional argument indices (0-based).
    pub positions: BTreeSet<u8>,
    /// Dangerous keyword argument names.
    pub keywords: BTreeSet<String>,
    /// Whether taint arriving through the receiver chain is dangerous
    /// (e.g. `tainted_path.unlink()`); defaults to false.
    pub receiver: bool,
}

impl SinkSignature {
    /// A signature with the given dangerous positional indices.
    pub fn positional(positions: impl IntoIterator<Item = u8>) -> Self {
        SinkSignature { positions: positions.into_iter().collect(), ..Default::default() }
    }

    /// Adds a dangerous keyword name.
    pub fn with_keyword(mut self, name: impl Into<String>) -> Self {
        self.keywords.insert(name.into());
        self
    }

    /// Marks the receiver chain as dangerous.
    pub fn with_receiver(mut self) -> Self {
        self.receiver = true;
        self
    }

    /// Whether taint arriving at the given position triggers the sink.
    pub fn is_dangerous(&self, pos: &crate::signature::ArgRef) -> bool {
        match pos {
            ArgRef::Positional(i) => self.positions.contains(i),
            ArgRef::Keyword(k) => self.keywords.contains(k.as_str()),
            ArgRef::Receiver => self.receiver,
            // Flow whose entry position is unknown (assignments, aliasing
            // steps) is conservatively dangerous.
            ArgRef::Unknown => true,
        }
    }

    /// Parses the text form: whitespace-separated tokens, each either a
    /// positional index (`0`), a keyword name (`env`), or `self` for the
    /// receiver.
    ///
    /// # Errors
    ///
    /// Never fails: unknown tokens are treated as keyword names.
    pub fn parse(text: &str) -> SinkSignature {
        let mut sig = SinkSignature::default();
        for tok in text.split([' ', ',']).filter(|t| !t.is_empty()) {
            if tok == "self" {
                sig.receiver = true;
            } else if let Ok(i) = tok.parse::<u8>() {
                sig.positions.insert(i);
            } else {
                sig.keywords.insert(tok.to_string());
            }
        }
        sig
    }
}

impl fmt::Display for SinkSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<String> = self.positions.iter().map(u8::to_string).collect();
        parts.extend(self.keywords.iter().cloned());
        if self.receiver {
            parts.push("self".into());
        }
        f.write_str(&parts.join(","))
    }
}

/// A position reference used when querying a signature (mirrors the
/// propagation graph's `ArgPos` without depending on that crate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgRef {
    /// The `i`-th positional argument.
    Positional(u8),
    /// A keyword argument.
    Keyword(String),
    /// The receiver/base chain.
    Receiver,
    /// Position unknown (non-call edges).
    Unknown,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positional_signature() {
        let sig = SinkSignature::positional([0]);
        assert!(sig.is_dangerous(&ArgRef::Positional(0)));
        assert!(!sig.is_dangerous(&ArgRef::Positional(1)));
        assert!(!sig.is_dangerous(&ArgRef::Keyword("env".into())));
        assert!(!sig.is_dangerous(&ArgRef::Receiver));
        assert!(sig.is_dangerous(&ArgRef::Unknown));
    }

    #[test]
    fn keyword_and_receiver() {
        let sig = SinkSignature::positional([0]).with_keyword("cmd").with_receiver();
        assert!(sig.is_dangerous(&ArgRef::Keyword("cmd".into())));
        assert!(!sig.is_dangerous(&ArgRef::Keyword("env".into())));
        assert!(sig.is_dangerous(&ArgRef::Receiver));
    }

    #[test]
    fn parse_and_display() {
        let sig = SinkSignature::parse("0, 2 cmd self");
        assert!(sig.positions.contains(&0));
        assert!(sig.positions.contains(&2));
        assert!(sig.keywords.contains("cmd"));
        assert!(sig.receiver);
        let round = SinkSignature::parse(&sig.to_string());
        assert_eq!(sig, round);
    }

    #[test]
    fn default_is_all_safe_except_unknown() {
        let sig = SinkSignature::default();
        assert!(!sig.is_dangerous(&ArgRef::Positional(0)));
        assert!(sig.is_dangerous(&ArgRef::Unknown));
    }
}
