//! # seldon-specs
//!
//! Taint-specification types for the Seldon reproduction: roles (source /
//! sanitizer / sink), role sets, the App. B text format, glob blacklists,
//! and the paper's embedded seed specification.
//!
//! ## Example
//!
//! ```
//! use seldon_specs::{Role, TaintSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = TaintSpec::parse("o: request.args.get()\ni: os.system()\n")?;
//! assert!(spec.has_role("request.args.get()", Role::Source));
//! assert!(spec.has_role("os.system()", Role::Sink));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod compiled;
pub mod pattern;
pub mod role;
pub mod seed;
pub mod signature;
pub mod spec;

pub use compiled::CompiledSpec;
pub use pattern::{Pattern, PatternList};
pub use role::{Role, RoleSet};
pub use seed::{paper_seed, ReportedBug, PAPER_SEED_TEXT, REPORTED_BUGS};
pub use signature::{ArgRef, SinkSignature};
pub use spec::{SpecParseError, TaintSpec};
