//! Recursive-descent parser for the Python subset.
//!
//! Expression parsing uses precedence climbing mirroring the Python grammar;
//! statements follow CPython's `Grammar/python.gram` shape for the supported
//! subset.

use crate::ast::*;
use crate::error::ParseError;
use crate::lexer;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Parses a full module from source text.
///
/// # Errors
///
/// Returns a [`crate::error::FrontendError`] if the source fails to lex or
/// parse.
pub fn parse(source: &str) -> Result<Module, crate::error::FrontendError> {
    let tokens = lexer::lex(source)?;
    let module = Parser::new(tokens).parse_module()?;
    Ok(module)
}

/// Parses a module, recovering from statement-level errors.
///
/// Statements that fail to parse are skipped (the parser synchronizes to
/// the next logical line, balancing indentation) and reported in the error
/// list; everything else lands in the returned module. A file that fails to
/// *lex* returns an empty module plus the lexical error.
///
/// This is what an analysis over arbitrary repository code wants: one
/// malformed construct should cost one statement, not the whole file.
pub fn parse_lenient(source: &str) -> (Module, Vec<crate::error::FrontendError>) {
    let tokens = match lexer::lex(source) {
        Ok(t) => t,
        Err(e) => return (Module { body: Vec::new() }, vec![e.into()]),
    };
    let mut p = Parser::new(tokens);
    let mut body = Vec::new();
    let mut errors = Vec::new();
    loop {
        match p.peek() {
            TokenKind::EndOfFile => break,
            TokenKind::Newline | TokenKind::Indent | TokenKind::Dedent => {
                p.bump();
            }
            _ => match p.parse_statement() {
                Ok(stmts) => body.extend(stmts),
                Err(e) => {
                    errors.push(e.into());
                    p.synchronize();
                }
            },
        }
    }
    (Module { body }, errors)
}

/// Parses a single expression (used for f-string interpolations and tests).
///
/// # Errors
///
/// Returns a [`crate::error::FrontendError`] if `source` is not a single
/// well-formed expression.
pub fn parse_expr(source: &str) -> Result<Expr, crate::error::FrontendError> {
    let tokens = lexer::lex(source)?;
    let mut p = Parser::new(tokens);
    let e = p.parse_testlist()?;
    Ok(e)
}

/// Maximum expression nesting depth before the parser bails out instead of
/// risking a stack overflow on pathological input.
const MAX_EXPR_DEPTH: u32 = 100;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    expr_depth: u32,
}

type PResult<T> = Result<T, ParseError>;

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0, expr_depth: 0 }
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek_at(&self, off: usize) -> &TokenKind {
        &self.tokens[(self.pos + off).min(self.tokens.len() - 1)].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos.min(self.tokens.len() - 1)].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> PResult<Token> {
        if self.peek() == kind {
            Ok(self.bump())
        } else {
            Err(ParseError::new(what, self.peek().clone(), self.span()))
        }
    }

    fn expect_name(&mut self, what: &str) -> PResult<(String, Span)> {
        match self.peek().clone() {
            TokenKind::Name(n) => {
                let t = self.bump();
                Ok((n, t.span))
            }
            other => Err(ParseError::new(what, other, self.span())),
        }
    }

    fn err<T>(&self, what: &str) -> PResult<T> {
        Err(ParseError::new(what, self.peek().clone(), self.span()))
    }

    /// Error recovery: skips tokens to the start of the next logical line
    /// at the current indentation level (consuming any nested block the
    /// broken statement opened).
    fn synchronize(&mut self) {
        let mut depth = 0i32;
        loop {
            match self.peek() {
                TokenKind::EndOfFile => return,
                TokenKind::Indent => {
                    depth += 1;
                    self.bump();
                }
                TokenKind::Dedent => {
                    if depth == 0 {
                        // Leaving the enclosing suite: let the caller see it.
                        return;
                    }
                    depth -= 1;
                    self.bump();
                }
                TokenKind::Newline => {
                    self.bump();
                    if depth == 0 {
                        return;
                    }
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    // ----- module and statements -------------------------------------------

    fn parse_module(&mut self) -> PResult<Module> {
        let mut body = Vec::new();
        loop {
            match self.peek() {
                TokenKind::EndOfFile => break,
                TokenKind::Newline => {
                    self.bump();
                }
                _ => body.extend(self.parse_statement()?),
            }
        }
        Ok(Module { body })
    }

    /// Parses one logical statement line, which may contain several simple
    /// statements separated by `;`.
    fn parse_statement(&mut self) -> PResult<Vec<Stmt>> {
        match self.peek() {
            TokenKind::KwIf
            | TokenKind::KwWhile
            | TokenKind::KwFor
            | TokenKind::KwTry
            | TokenKind::KwWith
            | TokenKind::KwDef
            | TokenKind::KwClass
            | TokenKind::At
            | TokenKind::KwAsync => Ok(vec![self.parse_compound_statement()?]),
            _ => self.parse_simple_statement_line(),
        }
    }

    fn parse_simple_statement_line(&mut self) -> PResult<Vec<Stmt>> {
        let mut stmts = vec![self.parse_simple_statement()?];
        while self.eat(&TokenKind::Semicolon) {
            if self.peek().ends_line() {
                break;
            }
            stmts.push(self.parse_simple_statement()?);
        }
        if !self.eat(&TokenKind::Newline) && *self.peek() != TokenKind::EndOfFile {
            return self.err("newline after statement");
        }
        Ok(stmts)
    }

    fn parse_simple_statement(&mut self) -> PResult<Stmt> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::KwPass => {
                self.bump();
                Ok(Stmt::new(StmtKind::Pass, span))
            }
            TokenKind::KwBreak => {
                self.bump();
                Ok(Stmt::new(StmtKind::Break, span))
            }
            TokenKind::KwContinue => {
                self.bump();
                Ok(Stmt::new(StmtKind::Continue, span))
            }
            TokenKind::KwImport => self.parse_import(),
            TokenKind::KwFrom => self.parse_import_from(),
            TokenKind::KwReturn => {
                self.bump();
                let value = if self.peek().ends_line() || *self.peek() == TokenKind::Semicolon {
                    None
                } else {
                    Some(self.parse_testlist()?)
                };
                Ok(Stmt::new(StmtKind::Return(value), span))
            }
            TokenKind::KwRaise => {
                self.bump();
                let (exc, cause) =
                    if self.peek().ends_line() || *self.peek() == TokenKind::Semicolon {
                        (None, None)
                    } else {
                        let e = self.parse_test()?;
                        let c = if self.eat(&TokenKind::KwFrom) {
                            Some(self.parse_test()?)
                        } else {
                            None
                        };
                        (Some(e), c)
                    };
                Ok(Stmt::new(StmtKind::Raise { exc, cause }, span))
            }
            TokenKind::KwDel => {
                self.bump();
                let mut targets = vec![self.parse_test()?];
                while self.eat(&TokenKind::Comma) {
                    if self.peek().ends_line() {
                        break;
                    }
                    targets.push(self.parse_test()?);
                }
                Ok(Stmt::new(StmtKind::Delete(targets), span))
            }
            TokenKind::KwGlobal => {
                self.bump();
                let names = self.parse_name_list()?;
                Ok(Stmt::new(StmtKind::Global(names), span))
            }
            TokenKind::KwNonlocal => {
                self.bump();
                let names = self.parse_name_list()?;
                Ok(Stmt::new(StmtKind::Nonlocal(names), span))
            }
            TokenKind::KwAssert => {
                self.bump();
                let test = self.parse_test()?;
                let msg = if self.eat(&TokenKind::Comma) {
                    Some(self.parse_test()?)
                } else {
                    None
                };
                Ok(Stmt::new(StmtKind::Assert { test, msg }, span))
            }
            // Python 2 `print x` / `print >> f, x` statements, common in
            // 2019-era GitHub corpora: parse as a call to `print`.
            TokenKind::Name(n)
                if n == "print"
                    && !matches!(
                        self.peek_at(1),
                        TokenKind::LParen
                            | TokenKind::Assign
                            | TokenKind::Newline
                            | TokenKind::EndOfFile
                            | TokenKind::Dot
                            | TokenKind::Comma
                            | TokenKind::AugAssign(_)
                    ) =>
            {
                let t = self.bump();
                let func = Expr::new(ExprKind::Name("print".into()), t.span);
                if self.eat(&TokenKind::RShift) {
                    // `print >> stream, args`: the stream is an ordinary arg.
                    let _stream = self.parse_test()?;
                    let _ = self.eat(&TokenKind::Comma);
                }
                let mut args = Vec::new();
                if !self.peek().ends_line() && *self.peek() != TokenKind::Semicolon {
                    args.push(self.parse_test()?);
                    while self.eat(&TokenKind::Comma) {
                        if self.peek().ends_line() || *self.peek() == TokenKind::Semicolon {
                            break;
                        }
                        args.push(self.parse_test()?);
                    }
                }
                let call_span = span.merge(self.prev_span());
                let call = Expr::new(
                    ExprKind::Call { func: Box::new(func), args, keywords: vec![] },
                    call_span,
                );
                Ok(Stmt::new(StmtKind::Expr(call), span))
            }
            _ => self.parse_expr_or_assign(),
        }
    }

    fn parse_name_list(&mut self) -> PResult<Vec<String>> {
        let mut names = vec![self.expect_name("name")?.0];
        while self.eat(&TokenKind::Comma) {
            names.push(self.expect_name("name")?.0);
        }
        Ok(names)
    }

    fn parse_import(&mut self) -> PResult<Stmt> {
        let span = self.span();
        self.expect(&TokenKind::KwImport, "`import`")?;
        let mut aliases = vec![self.parse_dotted_alias()?];
        while self.eat(&TokenKind::Comma) {
            aliases.push(self.parse_dotted_alias()?);
        }
        Ok(Stmt::new(StmtKind::Import(aliases), span))
    }

    fn parse_dotted_alias(&mut self) -> PResult<ImportAlias> {
        let start = self.span();
        let mut name = vec![self.expect_name("module name")?.0];
        while *self.peek() == TokenKind::Dot {
            self.bump();
            name.push(self.expect_name("module name segment")?.0);
        }
        let asname = if self.eat(&TokenKind::KwAs) {
            Some(self.expect_name("alias name")?.0)
        } else {
            None
        };
        Ok(ImportAlias { name, asname, span: start.merge(self.prev_span()) })
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn parse_import_from(&mut self) -> PResult<Stmt> {
        let span = self.span();
        self.expect(&TokenKind::KwFrom, "`from`")?;
        let mut level = 0u32;
        loop {
            if self.eat(&TokenKind::Dot) {
                level += 1;
            } else if self.eat(&TokenKind::Ellipsis) {
                level += 3;
            } else {
                break;
            }
        }
        let mut module = Vec::new();
        if matches!(self.peek(), TokenKind::Name(_)) {
            module.push(self.expect_name("module name")?.0);
            while *self.peek() == TokenKind::Dot {
                self.bump();
                module.push(self.expect_name("module name segment")?.0);
            }
        }
        self.expect(&TokenKind::KwImport, "`import`")?;
        let mut names = Vec::new();
        if self.eat(&TokenKind::Star) {
            names.push(ImportAlias {
                name: vec!["*".to_string()],
                asname: None,
                span: self.prev_span(),
            });
        } else {
            let parenthesized = self.eat(&TokenKind::LParen);
            loop {
                let (n, nspan) = self.expect_name("imported name")?;
                let asname = if self.eat(&TokenKind::KwAs) {
                    Some(self.expect_name("alias name")?.0)
                } else {
                    None
                };
                names.push(ImportAlias { name: vec![n], asname, span: nspan });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
                if parenthesized && *self.peek() == TokenKind::RParen {
                    break;
                }
            }
            if parenthesized {
                self.expect(&TokenKind::RParen, "`)`")?;
            }
        }
        Ok(Stmt::new(StmtKind::ImportFrom { module, names, level }, span))
    }

    fn parse_expr_or_assign(&mut self) -> PResult<Stmt> {
        let span = self.span();
        let first = self.parse_testlist_star()?;
        match self.peek().clone() {
            TokenKind::Assign => {
                let mut targets = vec![first];
                let mut value;
                loop {
                    self.bump();
                    value = self.parse_testlist_star()?;
                    if *self.peek() != TokenKind::Assign {
                        break;
                    }
                    targets.push(value.clone());
                }
                Ok(Stmt::new(StmtKind::Assign { targets, value }, span))
            }
            TokenKind::AugAssign(op) => {
                self.bump();
                let value = self.parse_testlist()?;
                Ok(Stmt::new(
                    StmtKind::AugAssign { target: first, op: op.to_string(), value },
                    span,
                ))
            }
            TokenKind::Colon => {
                self.bump();
                let annotation = self.parse_test()?;
                let value = if self.eat(&TokenKind::Assign) {
                    Some(self.parse_testlist_star()?)
                } else {
                    None
                };
                Ok(Stmt::new(StmtKind::AnnAssign { target: first, annotation, value }, span))
            }
            _ => Ok(Stmt::new(StmtKind::Expr(first), span)),
        }
    }

    // ----- compound statements ---------------------------------------------

    fn parse_compound_statement(&mut self) -> PResult<Stmt> {
        match self.peek() {
            TokenKind::KwIf => self.parse_if(),
            TokenKind::KwWhile => self.parse_while(),
            TokenKind::KwFor => self.parse_for(false),
            TokenKind::KwTry => self.parse_try(),
            TokenKind::KwWith => self.parse_with(false),
            TokenKind::KwDef => self.parse_def(Vec::new(), false),
            TokenKind::KwClass => self.parse_class(Vec::new()),
            TokenKind::At => self.parse_decorated(),
            TokenKind::KwAsync => {
                let span = self.span();
                self.bump();
                match self.peek() {
                    TokenKind::KwDef => self.parse_def(Vec::new(), true),
                    TokenKind::KwFor => self.parse_for(true),
                    TokenKind::KwWith => self.parse_with(true),
                    _ => Err(ParseError::new(
                        "`def`, `for` or `with` after `async`",
                        self.peek().clone(),
                        span,
                    )),
                }
            }
            _ => self.err("compound statement"),
        }
    }

    fn parse_decorated(&mut self) -> PResult<Stmt> {
        let mut decorators = Vec::new();
        while self.eat(&TokenKind::At) {
            decorators.push(self.parse_test()?);
            self.expect(&TokenKind::Newline, "newline after decorator")?;
            // Blank logical lines between decorators are swallowed by the lexer.
        }
        match self.peek() {
            TokenKind::KwDef => self.parse_def(decorators, false),
            TokenKind::KwClass => self.parse_class(decorators),
            TokenKind::KwAsync => {
                self.bump();
                self.parse_def(decorators, true)
            }
            _ => self.err("`def` or `class` after decorators"),
        }
    }

    fn parse_suite(&mut self) -> PResult<Vec<Stmt>> {
        self.expect(&TokenKind::Colon, "`:`")?;
        if self.eat(&TokenKind::Newline) {
            self.expect(&TokenKind::Indent, "indented block")?;
            let mut body = Vec::new();
            loop {
                match self.peek() {
                    TokenKind::Dedent => {
                        self.bump();
                        break;
                    }
                    TokenKind::EndOfFile => break,
                    TokenKind::Newline => {
                        self.bump();
                    }
                    _ => body.extend(self.parse_statement()?),
                }
            }
            Ok(body)
        } else {
            // Inline suite: simple statements on the same line.
            self.parse_simple_statement_line()
        }
    }

    fn parse_if(&mut self) -> PResult<Stmt> {
        let span = self.span();
        self.expect(&TokenKind::KwIf, "`if`")?;
        let test = self.parse_namedexpr_test()?;
        let body = self.parse_suite()?;
        let orelse = self.parse_else_tail()?;
        Ok(Stmt::new(StmtKind::If { test, body, orelse }, span))
    }

    fn parse_else_tail(&mut self) -> PResult<Vec<Stmt>> {
        if *self.peek() == TokenKind::KwElif {
            let span = self.span();
            self.bump();
            let test = self.parse_namedexpr_test()?;
            let body = self.parse_suite()?;
            let orelse = self.parse_else_tail()?;
            Ok(vec![Stmt::new(StmtKind::If { test, body, orelse }, span)])
        } else if self.eat(&TokenKind::KwElse) {
            self.parse_suite()
        } else {
            Ok(Vec::new())
        }
    }

    fn parse_while(&mut self) -> PResult<Stmt> {
        let span = self.span();
        self.expect(&TokenKind::KwWhile, "`while`")?;
        let test = self.parse_namedexpr_test()?;
        let body = self.parse_suite()?;
        let orelse = if self.eat(&TokenKind::KwElse) { self.parse_suite()? } else { Vec::new() };
        Ok(Stmt::new(StmtKind::While { test, body, orelse }, span))
    }

    fn parse_for(&mut self, _is_async: bool) -> PResult<Stmt> {
        let span = self.span();
        self.expect(&TokenKind::KwFor, "`for`")?;
        let target = self.parse_target_list()?;
        self.expect(&TokenKind::KwIn, "`in`")?;
        let iter = self.parse_testlist()?;
        let body = self.parse_suite()?;
        let orelse = if self.eat(&TokenKind::KwElse) { self.parse_suite()? } else { Vec::new() };
        Ok(Stmt::new(StmtKind::For { target, iter, body, orelse }, span))
    }

    fn parse_try(&mut self) -> PResult<Stmt> {
        let span = self.span();
        self.expect(&TokenKind::KwTry, "`try`")?;
        let body = self.parse_suite()?;
        let mut handlers = Vec::new();
        while *self.peek() == TokenKind::KwExcept {
            let hspan = self.span();
            self.bump();
            let (typ, name) = if *self.peek() == TokenKind::Colon {
                (None, None)
            } else {
                let t = self.parse_test()?;
                let n = if self.eat(&TokenKind::KwAs) {
                    Some(self.expect_name("exception binding")?.0)
                } else if self.eat(&TokenKind::Comma) {
                    // Python 2 form: `except ValueError, e:`.
                    Some(self.expect_name("exception binding")?.0)
                } else {
                    None
                };
                (Some(t), n)
            };
            let hbody = self.parse_suite()?;
            handlers.push(ExceptHandler { typ, name, body: hbody, span: hspan });
        }
        let orelse = if self.eat(&TokenKind::KwElse) { self.parse_suite()? } else { Vec::new() };
        let finalbody =
            if self.eat(&TokenKind::KwFinally) { self.parse_suite()? } else { Vec::new() };
        if handlers.is_empty() && finalbody.is_empty() {
            return self.err("`except` or `finally` clause");
        }
        Ok(Stmt::new(StmtKind::Try { body, handlers, orelse, finalbody }, span))
    }

    fn parse_with(&mut self, _is_async: bool) -> PResult<Stmt> {
        let span = self.span();
        self.expect(&TokenKind::KwWith, "`with`")?;
        let mut items = Vec::new();
        loop {
            let context = self.parse_test()?;
            let target = if self.eat(&TokenKind::KwAs) {
                Some(self.parse_primary_target()?)
            } else {
                None
            };
            items.push(WithItem { context, target });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        let body = self.parse_suite()?;
        Ok(Stmt::new(StmtKind::With { items, body }, span))
    }

    fn parse_def(&mut self, decorators: Vec<Expr>, is_async: bool) -> PResult<Stmt> {
        let span = self.span();
        self.expect(&TokenKind::KwDef, "`def`")?;
        let (name, _) = self.expect_name("function name")?;
        self.expect(&TokenKind::LParen, "`(`")?;
        let params = self.parse_param_list(&TokenKind::RParen)?;
        self.expect(&TokenKind::RParen, "`)`")?;
        let returns = if self.eat(&TokenKind::Arrow) { Some(self.parse_test()?) } else { None };
        let body = self.parse_suite()?;
        Ok(Stmt::new(
            StmtKind::FunctionDef(FunctionDef { name, params, decorators, returns, body, is_async }),
            span,
        ))
    }

    fn parse_param_list(&mut self, terminator: &TokenKind) -> PResult<Vec<Param>> {
        let mut params = Vec::new();
        while self.peek() != terminator {
            let pspan = self.span();
            let kind = if self.eat(&TokenKind::DoubleStar) {
                ParamKind::KwArgs
            } else if self.eat(&TokenKind::Star) {
                if matches!(self.peek(), TokenKind::Name(_)) {
                    ParamKind::VarArgs
                } else {
                    params.push(Param {
                        name: "*".into(),
                        annotation: None,
                        default: None,
                        kind: ParamKind::KwOnlyMarker,
                        span: pspan,
                    });
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                    continue;
                }
            } else if self.eat(&TokenKind::Slash) {
                // positional-only marker: ignore.
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
                continue;
            } else {
                ParamKind::Plain
            };
            let (name, nspan) = self.expect_name("parameter name")?;
            let annotation = if *terminator == TokenKind::RParen && self.eat(&TokenKind::Colon) {
                Some(self.parse_test()?)
            } else {
                None
            };
            let default =
                if self.eat(&TokenKind::Assign) { Some(self.parse_test()?) } else { None };
            params.push(Param { name, annotation, default, kind, span: nspan });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(params)
    }

    fn parse_class(&mut self, decorators: Vec<Expr>) -> PResult<Stmt> {
        let span = self.span();
        self.expect(&TokenKind::KwClass, "`class`")?;
        let (name, _) = self.expect_name("class name")?;
        let mut bases = Vec::new();
        let mut keywords = Vec::new();
        if self.eat(&TokenKind::LParen) {
            while *self.peek() != TokenKind::RParen {
                if matches!(self.peek(), TokenKind::Name(_))
                    && *self.peek_at(1) == TokenKind::Assign
                {
                    let (kwname, _) = self.expect_name("keyword name")?;
                    self.bump(); // `=`
                    let value = self.parse_test()?;
                    keywords.push(Keyword { name: Some(kwname), value });
                } else if self.eat(&TokenKind::DoubleStar) {
                    let value = self.parse_test()?;
                    keywords.push(Keyword { name: None, value });
                } else {
                    bases.push(self.parse_test()?);
                }
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen, "`)`")?;
        }
        let body = self.parse_suite()?;
        Ok(Stmt::new(StmtKind::ClassDef(ClassDef { name, bases, keywords, decorators, body }), span))
    }

    // ----- expressions -------------------------------------------------------

    /// `testlist`: one or more tests; a trailing/internal comma builds a tuple.
    fn parse_testlist(&mut self) -> PResult<Expr> {
        let start = self.span();
        let first = self.parse_test()?;
        if *self.peek() != TokenKind::Comma {
            return Ok(first);
        }
        let mut elems = vec![first];
        while self.eat(&TokenKind::Comma) {
            if self.testlist_end() {
                break;
            }
            elems.push(self.parse_test()?);
        }
        Ok(Expr::new(ExprKind::Tuple(elems), start.merge(self.prev_span())))
    }

    /// Like `parse_testlist` but allows starred elements (assignment RHS/LHS).
    fn parse_testlist_star(&mut self) -> PResult<Expr> {
        let start = self.span();
        let first = self.parse_test_or_starred()?;
        if *self.peek() != TokenKind::Comma {
            return Ok(first);
        }
        let mut elems = vec![first];
        while self.eat(&TokenKind::Comma) {
            if self.testlist_end() {
                break;
            }
            elems.push(self.parse_test_or_starred()?);
        }
        Ok(Expr::new(ExprKind::Tuple(elems), start.merge(self.prev_span())))
    }

    fn testlist_end(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::Newline
                | TokenKind::EndOfFile
                | TokenKind::Assign
                | TokenKind::Colon
                | TokenKind::Semicolon
                | TokenKind::RParen
                | TokenKind::RBracket
                | TokenKind::RBrace
        )
    }

    fn parse_test_or_starred(&mut self) -> PResult<Expr> {
        if *self.peek() == TokenKind::Star {
            let span = self.span();
            self.bump();
            let inner = self.parse_test()?;
            Ok(Expr::new(ExprKind::Starred(Box::new(inner)), span))
        } else {
            self.parse_test()
        }
    }

    /// `for` targets: comma-separated primary targets.
    fn parse_target_list(&mut self) -> PResult<Expr> {
        let start = self.span();
        let first = self.parse_primary_target()?;
        if *self.peek() != TokenKind::KwIn && *self.peek() == TokenKind::Comma {
            let mut elems = vec![first];
            while self.eat(&TokenKind::Comma) {
                if *self.peek() == TokenKind::KwIn {
                    break;
                }
                elems.push(self.parse_primary_target()?);
            }
            return Ok(Expr::new(ExprKind::Tuple(elems), start.merge(self.prev_span())));
        }
        Ok(first)
    }

    /// A single assignment/with/for target: name, attribute, subscript,
    /// starred, or a parenthesized/tuple/list pattern.
    fn parse_primary_target(&mut self) -> PResult<Expr> {
        if *self.peek() == TokenKind::Star {
            let span = self.span();
            self.bump();
            let inner = self.parse_primary_target()?;
            return Ok(Expr::new(ExprKind::Starred(Box::new(inner)), span));
        }
        // Targets share syntax with postfix expressions.
        self.parse_postfix()
    }

    /// `namedexpr_test`: test with optional walrus.
    fn parse_namedexpr_test(&mut self) -> PResult<Expr> {
        let e = self.parse_test()?;
        if *self.peek() == TokenKind::ColonAssign {
            let span = self.span();
            self.bump();
            let value = self.parse_test()?;
            return Ok(Expr::new(
                ExprKind::NamedExpr { target: Box::new(e), value: Box::new(value) },
                span,
            ));
        }
        Ok(e)
    }

    /// `test`: ternary conditional or lambda.
    fn parse_test(&mut self) -> PResult<Expr> {
        self.expr_depth += 1;
        let r = self.parse_test_inner();
        self.expr_depth -= 1;
        r
    }

    fn parse_test_inner(&mut self) -> PResult<Expr> {
        if self.expr_depth > MAX_EXPR_DEPTH {
            return self.err("expression nesting below the depth limit");
        }
        if *self.peek() == TokenKind::KwLambda {
            return self.parse_lambda();
        }
        let body = self.parse_or()?;
        if *self.peek() == TokenKind::KwIf {
            let span = self.span();
            self.bump();
            let test = self.parse_or()?;
            self.expect(&TokenKind::KwElse, "`else` in conditional expression")?;
            let orelse = self.parse_test()?;
            return Ok(Expr::new(
                ExprKind::IfExp {
                    test: Box::new(test),
                    body: Box::new(body),
                    orelse: Box::new(orelse),
                },
                span,
            ));
        }
        Ok(body)
    }

    fn parse_lambda(&mut self) -> PResult<Expr> {
        let span = self.span();
        self.expect(&TokenKind::KwLambda, "`lambda`")?;
        let params = self.parse_param_list(&TokenKind::Colon)?;
        self.expect(&TokenKind::Colon, "`:`")?;
        let body = self.parse_test()?;
        Ok(Expr::new(ExprKind::Lambda { params, body: Box::new(body) }, span))
    }

    fn parse_or(&mut self) -> PResult<Expr> {
        let first = self.parse_and()?;
        if *self.peek() != TokenKind::KwOr {
            return Ok(first);
        }
        let span = first.span;
        let mut values = vec![first];
        while self.eat(&TokenKind::KwOr) {
            values.push(self.parse_and()?);
        }
        Ok(Expr::new(ExprKind::BoolOp { op: "or".into(), values }, span))
    }

    fn parse_and(&mut self) -> PResult<Expr> {
        let first = self.parse_not()?;
        if *self.peek() != TokenKind::KwAnd {
            return Ok(first);
        }
        let span = first.span;
        let mut values = vec![first];
        while self.eat(&TokenKind::KwAnd) {
            values.push(self.parse_not()?);
        }
        Ok(Expr::new(ExprKind::BoolOp { op: "and".into(), values }, span))
    }

    fn parse_not(&mut self) -> PResult<Expr> {
        if *self.peek() == TokenKind::KwNot {
            let span = self.span();
            self.bump();
            let operand = self.parse_not()?;
            return Ok(Expr::new(
                ExprKind::UnaryOp { op: "not".into(), operand: Box::new(operand) },
                span,
            ));
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> PResult<Expr> {
        let left = self.parse_bitor()?;
        let mut ops = Vec::new();
        let mut comparators = Vec::new();
        loop {
            let op = match self.peek() {
                TokenKind::Lt => "<",
                TokenKind::Gt => ">",
                TokenKind::Le => "<=",
                TokenKind::Ge => ">=",
                TokenKind::EqEq => "==",
                TokenKind::NotEq => "!=",
                TokenKind::KwIn => "in",
                TokenKind::KwIs => "is",
                TokenKind::KwNot if *self.peek_at(1) == TokenKind::KwIn => "not in",
                _ => break,
            };
            if op == "not in" {
                self.bump();
                self.bump();
            } else if op == "is" {
                self.bump();
                if self.eat(&TokenKind::KwNot) {
                    ops.push("is not".to_string());
                    comparators.push(self.parse_bitor()?);
                    continue;
                }
            } else {
                self.bump();
            }
            ops.push(op.to_string());
            comparators.push(self.parse_bitor()?);
        }
        if ops.is_empty() {
            return Ok(left);
        }
        let span = left.span;
        Ok(Expr::new(ExprKind::Compare { left: Box::new(left), ops, comparators }, span))
    }

    fn parse_bitor(&mut self) -> PResult<Expr> {
        let mut left = self.parse_bitxor()?;
        while *self.peek() == TokenKind::Pipe {
            self.bump();
            let right = self.parse_bitxor()?;
            left = binop(left, "|", right);
        }
        Ok(left)
    }

    fn parse_bitxor(&mut self) -> PResult<Expr> {
        let mut left = self.parse_bitand()?;
        while *self.peek() == TokenKind::Caret {
            self.bump();
            let right = self.parse_bitand()?;
            left = binop(left, "^", right);
        }
        Ok(left)
    }

    fn parse_bitand(&mut self) -> PResult<Expr> {
        let mut left = self.parse_shift()?;
        while *self.peek() == TokenKind::Amp {
            self.bump();
            let right = self.parse_shift()?;
            left = binop(left, "&", right);
        }
        Ok(left)
    }

    fn parse_shift(&mut self) -> PResult<Expr> {
        let mut left = self.parse_arith()?;
        loop {
            let op = match self.peek() {
                TokenKind::LShift => "<<",
                TokenKind::RShift => ">>",
                _ => break,
            };
            self.bump();
            let right = self.parse_arith()?;
            left = binop(left, op, right);
        }
        Ok(left)
    }

    fn parse_arith(&mut self) -> PResult<Expr> {
        let mut left = self.parse_term()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => "+",
                TokenKind::Minus => "-",
                _ => break,
            };
            self.bump();
            let right = self.parse_term()?;
            left = binop(left, op, right);
        }
        Ok(left)
    }

    fn parse_term(&mut self) -> PResult<Expr> {
        let mut left = self.parse_factor()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => "*",
                TokenKind::Slash => "/",
                TokenKind::DoubleSlash => "//",
                TokenKind::Percent => "%",
                TokenKind::At => "@",
                _ => break,
            };
            self.bump();
            let right = self.parse_factor()?;
            left = binop(left, op, right);
        }
        Ok(left)
    }

    fn parse_factor(&mut self) -> PResult<Expr> {
        if self.expr_depth > MAX_EXPR_DEPTH {
            return self.err("expression nesting below the depth limit");
        }
        self.expr_depth += 1;
        let r = self.parse_factor_inner();
        self.expr_depth -= 1;
        r
    }

    fn parse_factor_inner(&mut self) -> PResult<Expr> {
        let op = match self.peek() {
            TokenKind::Plus => Some("+"),
            TokenKind::Minus => Some("-"),
            TokenKind::Tilde => Some("~"),
            _ => None,
        };
        if let Some(op) = op {
            let span = self.span();
            self.bump();
            let operand = self.parse_factor()?;
            return Ok(Expr::new(
                ExprKind::UnaryOp { op: op.into(), operand: Box::new(operand) },
                span,
            ));
        }
        self.parse_power()
    }

    fn parse_power(&mut self) -> PResult<Expr> {
        let base = self.parse_awaited()?;
        if *self.peek() == TokenKind::DoubleStar {
            self.bump();
            let exp = self.parse_factor()?; // right-associative
            return Ok(binop(base, "**", exp));
        }
        Ok(base)
    }

    fn parse_awaited(&mut self) -> PResult<Expr> {
        if *self.peek() == TokenKind::KwAwait {
            let span = self.span();
            self.bump();
            let inner = self.parse_awaited()?;
            return Ok(Expr::new(ExprKind::Await(Box::new(inner)), span));
        }
        self.parse_postfix()
    }

    /// Postfix chains: atoms followed by `.attr`, `[...]`, `(...)`.
    fn parse_postfix(&mut self) -> PResult<Expr> {
        let mut e = self.parse_atom()?;
        loop {
            match self.peek() {
                TokenKind::Dot => {
                    let span = self.span();
                    self.bump();
                    let (attr, aspan) = self.expect_name("attribute name")?;
                    e = Expr::new(
                        ExprKind::Attribute { value: Box::new(e), attr },
                        span.merge(aspan),
                    );
                }
                TokenKind::LParen => {
                    let span = self.span();
                    self.bump();
                    let (args, keywords) = self.parse_call_args()?;
                    let rspan = self.expect(&TokenKind::RParen, "`)`")?.span;
                    e = Expr::new(
                        ExprKind::Call { func: Box::new(e), args, keywords },
                        span.merge(rspan),
                    );
                }
                TokenKind::LBracket => {
                    let span = self.span();
                    self.bump();
                    let index = self.parse_subscript_index()?;
                    let rspan = self.expect(&TokenKind::RBracket, "`]`")?.span;
                    e = Expr::new(
                        ExprKind::Subscript { value: Box::new(e), index: Box::new(index) },
                        span.merge(rspan),
                    );
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn parse_call_args(&mut self) -> PResult<(Vec<Expr>, Vec<Keyword>)> {
        let mut args = Vec::new();
        let mut keywords = Vec::new();
        while *self.peek() != TokenKind::RParen {
            if self.eat(&TokenKind::DoubleStar) {
                let value = self.parse_test()?;
                keywords.push(Keyword { name: None, value });
            } else if *self.peek() == TokenKind::Star {
                let span = self.span();
                self.bump();
                let inner = self.parse_test()?;
                args.push(Expr::new(ExprKind::Starred(Box::new(inner)), span));
            } else if matches!(self.peek(), TokenKind::Name(_))
                && *self.peek_at(1) == TokenKind::Assign
            {
                let (kwname, _) = self.expect_name("keyword name")?;
                self.bump(); // `=`
                let value = self.parse_test()?;
                keywords.push(Keyword { name: Some(kwname), value });
            } else {
                let mut arg = self.parse_test()?;
                // Generator-expression argument: f(x for x in xs)
                if *self.peek() == TokenKind::KwFor {
                    let generators = self.parse_comp_clauses()?;
                    let span = arg.span;
                    arg = Expr::new(
                        ExprKind::Comp {
                            kind: CompKind::Generator,
                            element: Box::new(arg),
                            value: None,
                            generators,
                        },
                        span,
                    );
                }
                args.push(arg);
            }
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok((args, keywords))
    }

    fn parse_subscript_index(&mut self) -> PResult<Expr> {
        let start = self.span();
        let first = self.parse_slice_item()?;
        if *self.peek() != TokenKind::Comma {
            return Ok(first);
        }
        let mut elems = vec![first];
        while self.eat(&TokenKind::Comma) {
            if *self.peek() == TokenKind::RBracket {
                break;
            }
            elems.push(self.parse_slice_item()?);
        }
        Ok(Expr::new(ExprKind::Tuple(elems), start.merge(self.prev_span())))
    }

    fn parse_slice_item(&mut self) -> PResult<Expr> {
        let start = self.span();
        let lower = if matches!(self.peek(), TokenKind::Colon) {
            None
        } else {
            Some(Box::new(self.parse_test()?))
        };
        if !self.eat(&TokenKind::Colon) {
            // `lower` is Some here whenever the token stream is coherent
            // (a leading `:` was eaten above); report instead of panicking
            // so a lexer/parser desync can never abort a corpus run.
            return match lower {
                Some(expr) => Ok(*expr),
                None => self.err("expression or `:` in subscript"),
            };
        }
        let upper = if matches!(self.peek(), TokenKind::Colon | TokenKind::RBracket | TokenKind::Comma)
        {
            None
        } else {
            Some(Box::new(self.parse_test()?))
        };
        let step = if self.eat(&TokenKind::Colon) {
            if matches!(self.peek(), TokenKind::RBracket | TokenKind::Comma) {
                None
            } else {
                Some(Box::new(self.parse_test()?))
            }
        } else {
            None
        };
        Ok(Expr::new(ExprKind::Slice { lower, upper, step }, start.merge(self.prev_span())))
    }

    fn parse_comp_clauses(&mut self) -> PResult<Vec<Comprehension>> {
        let mut generators = Vec::new();
        while *self.peek() == TokenKind::KwFor || *self.peek() == TokenKind::KwAsync {
            if *self.peek() == TokenKind::KwAsync {
                self.bump();
            }
            self.expect(&TokenKind::KwFor, "`for`")?;
            let target = self.parse_target_list()?;
            self.expect(&TokenKind::KwIn, "`in`")?;
            let iter = self.parse_or()?;
            let mut ifs = Vec::new();
            while *self.peek() == TokenKind::KwIf {
                self.bump();
                ifs.push(self.parse_or()?);
            }
            generators.push(Comprehension { target, iter, ifs });
        }
        Ok(generators)
    }

    fn parse_atom(&mut self) -> PResult<Expr> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::Name(n) => {
                self.bump();
                Ok(Expr::new(ExprKind::Name(n), span))
            }
            TokenKind::Int(n) | TokenKind::Float(n) => {
                self.bump();
                Ok(Expr::new(ExprKind::Number(n), span))
            }
            TokenKind::Str(s) => {
                self.bump();
                // Implicit adjacent-literal concatenation.
                let mut text = s;
                loop {
                    match self.peek().clone() {
                        TokenKind::Str(more) => {
                            self.bump();
                            text.push_str(&more);
                        }
                        TokenKind::FStr(more) => {
                            self.bump();
                            return self.finish_fstring(format!("{text}{more}"), span);
                        }
                        _ => break,
                    }
                }
                Ok(Expr::new(ExprKind::Str(text), span))
            }
            TokenKind::FStr(s) => {
                self.bump();
                let mut text = s;
                while let TokenKind::Str(more) | TokenKind::FStr(more) = self.peek().clone() {
                    self.bump();
                    text.push_str(&more);
                }
                self.finish_fstring(text, span)
            }
            TokenKind::Bytes(s) => {
                self.bump();
                Ok(Expr::new(ExprKind::Bytes(s), span))
            }
            TokenKind::KwTrue => {
                self.bump();
                Ok(Expr::new(ExprKind::Bool(true), span))
            }
            TokenKind::KwFalse => {
                self.bump();
                Ok(Expr::new(ExprKind::Bool(false), span))
            }
            TokenKind::KwNone => {
                self.bump();
                Ok(Expr::new(ExprKind::NoneLit, span))
            }
            TokenKind::Ellipsis => {
                self.bump();
                Ok(Expr::new(ExprKind::EllipsisLit, span))
            }
            TokenKind::KwYield => {
                self.bump();
                let is_from = self.eat(&TokenKind::KwFrom);
                let value = if self.peek().ends_line()
                    || matches!(
                        self.peek(),
                        TokenKind::RParen | TokenKind::RBracket | TokenKind::Comma
                    ) {
                    None
                } else {
                    Some(Box::new(self.parse_testlist()?))
                };
                Ok(Expr::new(ExprKind::Yield { value, is_from }, span))
            }
            TokenKind::KwLambda => self.parse_lambda(),
            TokenKind::LParen => self.parse_paren_atom(),
            TokenKind::LBracket => self.parse_list_atom(),
            TokenKind::LBrace => self.parse_brace_atom(),
            other => Err(ParseError::new("expression", other, span)),
        }
    }

    fn parse_paren_atom(&mut self) -> PResult<Expr> {
        let span = self.span();
        self.expect(&TokenKind::LParen, "`(`")?;
        if self.eat(&TokenKind::RParen) {
            return Ok(Expr::new(ExprKind::Tuple(Vec::new()), span.merge(self.prev_span())));
        }
        let first = if *self.peek() == TokenKind::Star {
            self.parse_test_or_starred()?
        } else {
            self.parse_namedexpr_test()?
        };
        if *self.peek() == TokenKind::KwFor || *self.peek() == TokenKind::KwAsync {
            let generators = self.parse_comp_clauses()?;
            self.expect(&TokenKind::RParen, "`)`")?;
            return Ok(Expr::new(
                ExprKind::Comp {
                    kind: CompKind::Generator,
                    element: Box::new(first),
                    value: None,
                    generators,
                },
                span.merge(self.prev_span()),
            ));
        }
        if *self.peek() == TokenKind::Comma {
            let mut elems = vec![first];
            while self.eat(&TokenKind::Comma) {
                if *self.peek() == TokenKind::RParen {
                    break;
                }
                elems.push(self.parse_test_or_starred()?);
            }
            self.expect(&TokenKind::RParen, "`)`")?;
            return Ok(Expr::new(ExprKind::Tuple(elems), span.merge(self.prev_span())));
        }
        self.expect(&TokenKind::RParen, "`)`")?;
        Ok(first)
    }

    fn parse_list_atom(&mut self) -> PResult<Expr> {
        let span = self.span();
        self.expect(&TokenKind::LBracket, "`[`")?;
        if self.eat(&TokenKind::RBracket) {
            return Ok(Expr::new(ExprKind::List(Vec::new()), span.merge(self.prev_span())));
        }
        let first = self.parse_test_or_starred()?;
        if *self.peek() == TokenKind::KwFor || *self.peek() == TokenKind::KwAsync {
            let generators = self.parse_comp_clauses()?;
            self.expect(&TokenKind::RBracket, "`]`")?;
            return Ok(Expr::new(
                ExprKind::Comp {
                    kind: CompKind::List,
                    element: Box::new(first),
                    value: None,
                    generators,
                },
                span.merge(self.prev_span()),
            ));
        }
        let mut elems = vec![first];
        while self.eat(&TokenKind::Comma) {
            if *self.peek() == TokenKind::RBracket {
                break;
            }
            elems.push(self.parse_test_or_starred()?);
        }
        self.expect(&TokenKind::RBracket, "`]`")?;
        Ok(Expr::new(ExprKind::List(elems), span.merge(self.prev_span())))
    }

    fn parse_brace_atom(&mut self) -> PResult<Expr> {
        let span = self.span();
        self.expect(&TokenKind::LBrace, "`{`")?;
        if self.eat(&TokenKind::RBrace) {
            return Ok(Expr::new(
                ExprKind::Dict { keys: Vec::new(), values: Vec::new() },
                span.merge(self.prev_span()),
            ));
        }
        // `**expr` can only start a dict display.
        if self.eat(&TokenKind::DoubleStar) {
            let v = self.parse_or()?;
            let mut keys = vec![None];
            let mut values = vec![v];
            while self.eat(&TokenKind::Comma) {
                if *self.peek() == TokenKind::RBrace {
                    break;
                }
                self.parse_dict_entry(&mut keys, &mut values)?;
            }
            self.expect(&TokenKind::RBrace, "`}`")?;
            return Ok(Expr::new(
                ExprKind::Dict { keys, values },
                span.merge(self.prev_span()),
            ));
        }
        let first = self.parse_test_or_starred()?;
        if self.eat(&TokenKind::Colon) {
            // Dict display or dict comprehension.
            let value = self.parse_test()?;
            if *self.peek() == TokenKind::KwFor || *self.peek() == TokenKind::KwAsync {
                let generators = self.parse_comp_clauses()?;
                self.expect(&TokenKind::RBrace, "`}`")?;
                return Ok(Expr::new(
                    ExprKind::Comp {
                        kind: CompKind::Dict,
                        element: Box::new(first),
                        value: Some(Box::new(value)),
                        generators,
                    },
                    span.merge(self.prev_span()),
                ));
            }
            let mut keys = vec![Some(first)];
            let mut values = vec![value];
            while self.eat(&TokenKind::Comma) {
                if *self.peek() == TokenKind::RBrace {
                    break;
                }
                self.parse_dict_entry(&mut keys, &mut values)?;
            }
            self.expect(&TokenKind::RBrace, "`}`")?;
            return Ok(Expr::new(
                ExprKind::Dict { keys, values },
                span.merge(self.prev_span()),
            ));
        }
        if *self.peek() == TokenKind::KwFor || *self.peek() == TokenKind::KwAsync {
            let generators = self.parse_comp_clauses()?;
            self.expect(&TokenKind::RBrace, "`}`")?;
            return Ok(Expr::new(
                ExprKind::Comp {
                    kind: CompKind::Set,
                    element: Box::new(first),
                    value: None,
                    generators,
                },
                span.merge(self.prev_span()),
            ));
        }
        // Set display.
        let mut elems = vec![first];
        while self.eat(&TokenKind::Comma) {
            if *self.peek() == TokenKind::RBrace {
                break;
            }
            elems.push(self.parse_test_or_starred()?);
        }
        self.expect(&TokenKind::RBrace, "`}`")?;
        Ok(Expr::new(ExprKind::Set(elems), span.merge(self.prev_span())))
    }

    fn parse_dict_entry(
        &mut self,
        keys: &mut Vec<Option<Expr>>,
        values: &mut Vec<Expr>,
    ) -> PResult<()> {
        if self.eat(&TokenKind::DoubleStar) {
            keys.push(None);
            values.push(self.parse_or()?);
            return Ok(());
        }
        let k = self.parse_test()?;
        self.expect(&TokenKind::Colon, "`:` in dict entry")?;
        let v = self.parse_test()?;
        keys.push(Some(k));
        values.push(v);
        Ok(())
    }

    /// Builds an [`ExprKind::FString`], parsing the `{...}` interpolations.
    fn finish_fstring(&mut self, text: String, span: Span) -> PResult<Expr> {
        let parts = parse_fstring_parts(&text);
        Ok(Expr::new(ExprKind::FString { text, parts }, span))
    }
}

fn binop(left: Expr, op: &str, right: Expr) -> Expr {
    let span = left.span.merge(right.span);
    Expr::new(
        ExprKind::BinOp { left: Box::new(left), op: op.to_string(), right: Box::new(right) },
        span,
    )
}

/// Extracts and parses the `{...}` interpolation expressions of an f-string
/// body. Malformed interpolations are skipped (the analysis treats the
/// remaining text as opaque).
pub fn parse_fstring_parts(text: &str) -> Vec<Expr> {
    let bytes = text.as_bytes();
    let mut parts = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'{' if bytes.get(i + 1) == Some(&b'{') => i += 2,
            b'{' => {
                let start = i + 1;
                let mut depth = 1u32;
                let mut j = start;
                let mut quote: Option<u8> = None;
                while j < bytes.len() && depth > 0 {
                    let b = bytes[j];
                    match quote {
                        Some(q) => {
                            if b == q {
                                quote = None;
                            }
                        }
                        None => match b {
                            b'{' | b'[' | b'(' => depth += 1,
                            b'}' | b']' | b')' => depth -= 1,
                            b'\'' | b'"' => quote = Some(b),
                            _ => {}
                        },
                    }
                    if depth > 0 {
                        j += 1;
                    }
                }
                let inner = &text[start..j.min(text.len())];
                // Strip `!r`-style conversions and `:fmt` specs.
                let expr_src = strip_fstring_suffix(inner);
                if !expr_src.trim().is_empty() {
                    if let Ok(e) = parse_expr(expr_src.trim()) {
                        parts.push(e);
                    }
                }
                i = j + 1;
            }
            b'}' if bytes.get(i + 1) == Some(&b'}') => i += 2,
            _ => i += 1,
        }
    }
    parts
}

/// Removes a trailing `!conversion` and/or `:format-spec` from an f-string
/// interpolation body, respecting nesting and string quotes.
fn strip_fstring_suffix(inner: &str) -> &str {
    let bytes = inner.as_bytes();
    let mut depth = 0u32;
    let mut quote: Option<u8> = None;
    for (i, &b) in bytes.iter().enumerate() {
        match quote {
            Some(q) => {
                if b == q {
                    quote = None;
                }
            }
            None => match b {
                b'(' | b'[' | b'{' => depth += 1,
                b')' | b']' | b'}' => depth = depth.saturating_sub(1),
                b'\'' | b'"' => quote = Some(b),
                b':' if depth == 0 => return &inner[..i],
                b'!' if depth == 0
                    && bytes.get(i + 1) != Some(&b'=')
                    && i + 1 < bytes.len() =>
                {
                    return &inner[..i];
                }
                _ => {}
            },
        }
    }
    inner
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Module {
        match parse(src) {
            Ok(m) => m,
            Err(e) => panic!("parse failed for {src:?}: {e}"),
        }
    }

    fn first_stmt(src: &str) -> StmtKind {
        parse_ok(src).body.into_iter().next().expect("statement").kind
    }

    #[test]
    fn parse_assignment() {
        match first_stmt("x = f(1)\n") {
            StmtKind::Assign { targets, value } => {
                assert_eq!(targets.len(), 1);
                assert!(matches!(value.kind, ExprKind::Call { .. }));
            }
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn parse_chained_assignment() {
        match first_stmt("a = b = c\n") {
            StmtKind::Assign { targets, value } => {
                assert_eq!(targets.len(), 2);
                assert!(matches!(value.kind, ExprKind::Name(ref n) if n == "c"));
            }
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn parse_aug_assignment() {
        match first_stmt("x += 1\n") {
            StmtKind::AugAssign { op, .. } => assert_eq!(op, "+"),
            other => panic!("expected augassign, got {other:?}"),
        }
    }

    #[test]
    fn parse_annotated_assignment() {
        match first_stmt("x: int = 3\n") {
            StmtKind::AnnAssign { value, .. } => assert!(value.is_some()),
            other => panic!("expected annassign, got {other:?}"),
        }
    }

    #[test]
    fn parse_function_def() {
        let src = "def f(a, b=1, *args, **kwargs):\n    return a\n";
        match first_stmt(src) {
            StmtKind::FunctionDef(f) => {
                assert_eq!(f.name, "f");
                assert_eq!(f.params.len(), 4);
                assert_eq!(f.params[2].kind, ParamKind::VarArgs);
                assert_eq!(f.params[3].kind, ParamKind::KwArgs);
                assert_eq!(f.body.len(), 1);
            }
            other => panic!("expected def, got {other:?}"),
        }
    }

    #[test]
    fn parse_decorated_function() {
        let src = "@app.route('/x', methods=['POST'])\ndef media():\n    pass\n";
        match first_stmt(src) {
            StmtKind::FunctionDef(f) => {
                assert_eq!(f.decorators.len(), 1);
                assert!(matches!(f.decorators[0].kind, ExprKind::Call { .. }));
            }
            other => panic!("expected def, got {other:?}"),
        }
    }

    #[test]
    fn parse_class_with_base() {
        let src = "class ESCPOSDriver(ThreadDriver):\n    def status(self, eprint):\n        pass\n";
        match first_stmt(src) {
            StmtKind::ClassDef(c) => {
                assert_eq!(c.name, "ESCPOSDriver");
                assert_eq!(c.bases.len(), 1);
                assert_eq!(c.body.len(), 1);
            }
            other => panic!("expected class, got {other:?}"),
        }
    }

    #[test]
    fn parse_imports() {
        match first_stmt("import os.path as p, sys\n") {
            StmtKind::Import(aliases) => {
                assert_eq!(aliases[0].name, vec!["os", "path"]);
                assert_eq!(aliases[0].asname.as_deref(), Some("p"));
                assert_eq!(aliases[1].name, vec!["sys"]);
            }
            other => panic!("expected import, got {other:?}"),
        }
        match first_stmt("from flask import request, session as s\n") {
            StmtKind::ImportFrom { module, names, level } => {
                assert_eq!(module, vec!["flask"]);
                assert_eq!(names.len(), 2);
                assert_eq!(level, 0);
            }
            other => panic!("expected from-import, got {other:?}"),
        }
        match first_stmt("from ..pkg import thing\n") {
            StmtKind::ImportFrom { level, .. } => assert_eq!(level, 2),
            other => panic!("expected from-import, got {other:?}"),
        }
        assert!(matches!(
            first_stmt("from mod import *\n"),
            StmtKind::ImportFrom { .. }
        ));
    }

    #[test]
    fn parse_if_elif_else() {
        let src = "if a:\n    x\nelif b:\n    y\nelse:\n    z\n";
        match first_stmt(src) {
            StmtKind::If { orelse, .. } => {
                assert_eq!(orelse.len(), 1);
                match &orelse[0].kind {
                    StmtKind::If { orelse: inner_else, .. } => {
                        assert_eq!(inner_else.len(), 1);
                    }
                    other => panic!("expected nested if, got {other:?}"),
                }
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn parse_for_while_with_try() {
        let src = "for i, v in enumerate(xs):\n    pass\n";
        assert!(matches!(first_stmt(src), StmtKind::For { .. }));
        assert!(matches!(first_stmt("while x:\n    pass\n"), StmtKind::While { .. }));
        let src = "with open(p) as f, lock:\n    pass\n";
        match first_stmt(src) {
            StmtKind::With { items, .. } => {
                assert_eq!(items.len(), 2);
                assert!(items[0].target.is_some());
                assert!(items[1].target.is_none());
            }
            other => panic!("expected with, got {other:?}"),
        }
        let src = "try:\n    x\nexcept ValueError as e:\n    y\nfinally:\n    z\n";
        match first_stmt(src) {
            StmtKind::Try { handlers, finalbody, .. } => {
                assert_eq!(handlers.len(), 1);
                assert_eq!(handlers[0].name.as_deref(), Some("e"));
                assert_eq!(finalbody.len(), 1);
            }
            other => panic!("expected try, got {other:?}"),
        }
    }

    #[test]
    fn try_requires_handler_or_finally() {
        assert!(parse("try:\n    x\n").is_err());
    }

    #[test]
    fn parse_expression_precedence() {
        match parse_expr("1 + 2 * 3").unwrap().kind {
            ExprKind::BinOp { op, right, .. } => {
                assert_eq!(op, "+");
                assert!(matches!(right.kind, ExprKind::BinOp { ref op, .. } if op == "*"));
            }
            other => panic!("expected binop, got {other:?}"),
        }
        // ** is right-associative
        match parse_expr("2 ** 3 ** 4").unwrap().kind {
            ExprKind::BinOp { op, right, .. } => {
                assert_eq!(op, "**");
                assert!(matches!(right.kind, ExprKind::BinOp { ref op, .. } if op == "**"));
            }
            other => panic!("expected binop, got {other:?}"),
        }
    }

    #[test]
    fn parse_comparison_chain() {
        match parse_expr("a < b <= c").unwrap().kind {
            ExprKind::Compare { ops, comparators, .. } => {
                assert_eq!(ops, vec!["<", "<="]);
                assert_eq!(comparators.len(), 2);
            }
            other => panic!("expected compare, got {other:?}"),
        }
        match parse_expr("x not in ys").unwrap().kind {
            ExprKind::Compare { ops, .. } => assert_eq!(ops, vec!["not in"]),
            other => panic!("expected compare, got {other:?}"),
        }
        match parse_expr("x is not None").unwrap().kind {
            ExprKind::Compare { ops, .. } => assert_eq!(ops, vec!["is not"]),
            other => panic!("expected compare, got {other:?}"),
        }
    }

    #[test]
    fn parse_bool_chain_flattens() {
        match parse_expr("a and b and c").unwrap().kind {
            ExprKind::BoolOp { op, values } => {
                assert_eq!(op, "and");
                assert_eq!(values.len(), 3);
            }
            other => panic!("expected boolop, got {other:?}"),
        }
    }

    #[test]
    fn parse_call_forms() {
        match parse_expr("f(a, b=1, *rest, **kw)").unwrap().kind {
            ExprKind::Call { args, keywords, .. } => {
                assert_eq!(args.len(), 2); // a and *rest
                assert!(matches!(args[1].kind, ExprKind::Starred(_)));
                assert_eq!(keywords.len(), 2);
                assert_eq!(keywords[0].name.as_deref(), Some("b"));
                assert_eq!(keywords[1].name, None);
            }
            other => panic!("expected call, got {other:?}"),
        }
    }

    #[test]
    fn parse_method_chain() {
        let e = parse_expr("request.files['f'].save(path)").unwrap();
        match e.kind {
            ExprKind::Call { func, args, .. } => {
                assert_eq!(args.len(), 1);
                match func.kind {
                    ExprKind::Attribute { value, attr } => {
                        assert_eq!(attr, "save");
                        assert!(matches!(value.kind, ExprKind::Subscript { .. }));
                    }
                    other => panic!("expected attribute, got {other:?}"),
                }
            }
            other => panic!("expected call, got {other:?}"),
        }
    }

    #[test]
    fn parse_subscript_slices() {
        assert!(matches!(
            parse_expr("xs[1:2]").unwrap().kind,
            ExprKind::Subscript { ref index, .. } if matches!(index.kind, ExprKind::Slice { .. })
        ));
        assert!(matches!(
            parse_expr("xs[:]").unwrap().kind,
            ExprKind::Subscript { ref index, .. } if matches!(index.kind, ExprKind::Slice { .. })
        ));
        assert!(matches!(
            parse_expr("xs[::2]").unwrap().kind,
            ExprKind::Subscript { ref index, .. } if matches!(index.kind, ExprKind::Slice { .. })
        ));
        assert!(matches!(
            parse_expr("m[a, b]").unwrap().kind,
            ExprKind::Subscript { ref index, .. } if matches!(index.kind, ExprKind::Tuple(_))
        ));
    }

    #[test]
    fn parse_displays() {
        assert!(matches!(parse_expr("[1, 2]").unwrap().kind, ExprKind::List(v) if v.len() == 2));
        assert!(matches!(parse_expr("{1, 2}").unwrap().kind, ExprKind::Set(v) if v.len() == 2));
        assert!(matches!(parse_expr("()").unwrap().kind, ExprKind::Tuple(v) if v.is_empty()));
        assert!(matches!(parse_expr("(1,)").unwrap().kind, ExprKind::Tuple(v) if v.len() == 1));
        match parse_expr("{'a': 1, **rest}").unwrap().kind {
            ExprKind::Dict { keys, values } => {
                assert_eq!(keys.len(), 2);
                assert!(keys[0].is_some());
                assert!(keys[1].is_none());
                assert_eq!(values.len(), 2);
            }
            other => panic!("expected dict, got {other:?}"),
        }
    }

    #[test]
    fn parse_comprehensions() {
        match parse_expr("[x for x in xs if x]").unwrap().kind {
            ExprKind::Comp { kind, generators, .. } => {
                assert_eq!(kind, CompKind::List);
                assert_eq!(generators.len(), 1);
                assert_eq!(generators[0].ifs.len(), 1);
            }
            other => panic!("expected comp, got {other:?}"),
        }
        assert!(matches!(
            parse_expr("{k: v for k, v in items}").unwrap().kind,
            ExprKind::Comp { kind: CompKind::Dict, .. }
        ));
        assert!(matches!(
            parse_expr("{x for x in xs}").unwrap().kind,
            ExprKind::Comp { kind: CompKind::Set, .. }
        ));
        assert!(matches!(
            parse_expr("(x for x in xs)").unwrap().kind,
            ExprKind::Comp { kind: CompKind::Generator, .. }
        ));
        assert!(matches!(
            parse_expr("sum(x*x for x in xs)").unwrap().kind,
            ExprKind::Call { .. }
        ));
    }

    #[test]
    fn parse_lambda_and_ternary() {
        assert!(matches!(
            parse_expr("lambda a, b=2: a + b").unwrap().kind,
            ExprKind::Lambda { ref params, .. } if params.len() == 2
        ));
        assert!(matches!(parse_expr("a if c else b").unwrap().kind, ExprKind::IfExp { .. }));
    }

    #[test]
    fn parse_fstring_interpolations() {
        match parse_expr("f'<div>{msg}</div>'").unwrap().kind {
            ExprKind::FString { parts, .. } => {
                assert_eq!(parts.len(), 1);
                assert!(matches!(parts[0].kind, ExprKind::Name(ref n) if n == "msg"));
            }
            other => panic!("expected fstring, got {other:?}"),
        }
        match parse_expr("f'{a}{b.c(1)}'").unwrap().kind {
            ExprKind::FString { parts, .. } => assert_eq!(parts.len(), 2),
            other => panic!("expected fstring, got {other:?}"),
        }
        // Format spec and conversion are stripped.
        match parse_expr("f'{x:>10} {y!r}'").unwrap().kind {
            ExprKind::FString { parts, .. } => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(parts[0].kind, ExprKind::Name(ref n) if n == "x"));
                assert!(matches!(parts[1].kind, ExprKind::Name(ref n) if n == "y"));
            }
            other => panic!("expected fstring, got {other:?}"),
        }
        // Escaped braces produce no parts.
        match parse_expr("f'{{literal}}'").unwrap().kind {
            ExprKind::FString { parts, .. } => assert!(parts.is_empty()),
            other => panic!("expected fstring, got {other:?}"),
        }
    }

    #[test]
    fn implicit_string_concat() {
        assert!(matches!(
            parse_expr("'a' 'b'").unwrap().kind,
            ExprKind::Str(ref s) if s == "ab"
        ));
    }

    #[test]
    fn parse_paper_example() {
        // The Fig. 2 snippet from the paper.
        let src = r#"
from yak.web import app
from flask import request
from werkzeug import secure_filename
import os

blog_dir = app.config['PATH']

@app.route('/media/', methods=['POST'])
def media():
    filename = request.files['f'].filename
    filename = secure_filename(filename)
    path = os.path.join(blog_dir, filename)
    if not os.path.exists(path):
        request.files['f'].save(path)
"#;
        let m = parse_ok(src);
        assert_eq!(m.body.len(), 6);
        assert!(matches!(m.body[5].kind, StmtKind::FunctionDef(_)));
    }

    #[test]
    fn parse_walrus() {
        assert!(matches!(
            first_stmt("if (n := f()) > 0:\n    pass\n"),
            StmtKind::If { .. }
        ));
    }

    #[test]
    fn parse_yield_and_await() {
        let src = "def g():\n    yield 1\n    yield from xs\n";
        assert!(parse(src).is_ok());
        let src = "async def h():\n    await f()\n";
        match first_stmt(src) {
            StmtKind::FunctionDef(f) => assert!(f.is_async),
            other => panic!("expected def, got {other:?}"),
        }
    }

    #[test]
    fn parse_semicolon_statements() {
        let m = parse_ok("a = 1; b = 2; c = 3\n");
        assert_eq!(m.body.len(), 3);
    }

    #[test]
    fn parse_inline_suite() {
        match first_stmt("if x: a = 1; b = 2\n") {
            StmtKind::If { body, .. } => assert_eq!(body.len(), 2),
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn parse_global_nonlocal_assert_del() {
        assert!(matches!(first_stmt("global a, b\n"), StmtKind::Global(v) if v.len() == 2));
        assert!(matches!(first_stmt("nonlocal x\n"), StmtKind::Nonlocal(_)));
        assert!(matches!(first_stmt("assert x, 'msg'\n"), StmtKind::Assert { msg: Some(_), .. }));
        assert!(matches!(first_stmt("del xs[0], y\n"), StmtKind::Delete(v) if v.len() == 2));
    }

    #[test]
    fn parse_raise_from() {
        assert!(matches!(
            first_stmt("raise ValueError('x') from err\n"),
            StmtKind::Raise { exc: Some(_), cause: Some(_) }
        ));
        assert!(matches!(first_stmt("raise\n"), StmtKind::Raise { exc: None, cause: None }));
    }

    #[test]
    fn parse_star_assignment() {
        match first_stmt("a, *rest = xs\n") {
            StmtKind::Assign { targets, .. } => {
                assert!(matches!(targets[0].kind, ExprKind::Tuple(_)));
            }
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn error_reports_position() {
        let err = parse("def f(:\n    pass\n").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("expected"), "got: {msg}");
    }

    #[test]
    fn pathological_nesting_errors_instead_of_overflowing() {
        let deep = format!("x = {}1{}\n", "(".repeat(10_000), ")".repeat(10_000));
        assert!(parse(&deep).is_err(), "depth guard must trip");
        let deep_unary = format!("x = {}1\n", "-".repeat(10_000));
        assert!(parse(&deep_unary).is_err());
        // Reasonable nesting still parses.
        let ok = format!("x = {}1{}\n", "(".repeat(40), ")".repeat(40));
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn crlf_line_endings() {
        let src = "x = 1\r\nif x:\r\n    y = 2\r\n";
        let m = parse(src).expect("CRLF parses");
        assert_eq!(m.body.len(), 2);
    }

    #[test]
    fn python2_print_statement() {
        match first_stmt("print 'hello', x\n") {
            StmtKind::Expr(e) => match e.kind {
                ExprKind::Call { func, args, .. } => {
                    assert!(matches!(func.kind, ExprKind::Name(ref n) if n == "print"));
                    assert_eq!(args.len(), 2);
                }
                other => panic!("expected call, got {other:?}"),
            },
            other => panic!("expected expr stmt, got {other:?}"),
        }
        // `print >> sys.stderr, msg`
        assert!(parse("import sys\nprint >> sys.stderr, msg\n").is_ok());
        // Bare `print` and py3 call form still work.
        assert!(parse("print\n").is_ok());
        assert!(parse("print(x)\n").is_ok());
        // `print` as a name (assignment) still works.
        assert!(parse("print = 1\n").is_ok());
    }

    #[test]
    fn python2_except_comma() {
        let src = "try:\n    x\nexcept ValueError, e:\n    y\n";
        match first_stmt(src) {
            StmtKind::Try { handlers, .. } => {
                assert_eq!(handlers[0].name.as_deref(), Some("e"));
            }
            other => panic!("expected try, got {other:?}"),
        }
    }

    #[test]
    fn lenient_recovers_per_statement() {
        let src = "x = 1\ny = ((broken\nz = 3\n";
        let (m, errors) = parse_lenient(src);
        // The malformed middle line is dropped; only one error reported.
        // (The unterminated paren swallows the rest of the logical line.)
        assert!(!errors.is_empty());
        assert!(!m.body.is_empty(), "recovered statements: {}", m.body.len());
        assert!(matches!(m.body[0].kind, StmtKind::Assign { .. }));
    }

    #[test]
    fn lenient_recovers_inside_suites() {
        let src = "def f():\n    x = )bad\n    y = 2\ndef g():\n    return 1\n";
        let (m, errors) = parse_lenient(src);
        assert_eq!(errors.len(), 1, "{errors:?}");
        // g survives even though a statement inside f was malformed.
        assert!(m
            .body
            .iter()
            .any(|s| matches!(&s.kind, StmtKind::FunctionDef(d) if d.name == "g")));
    }

    #[test]
    fn lenient_on_clean_source_matches_strict() {
        let src = "a = 1\nif a:\n    b = 2\n";
        let (m, errors) = parse_lenient(src);
        assert!(errors.is_empty());
        assert_eq!(m, parse(src).unwrap());
    }

    #[test]
    fn lenient_lex_error_reports_and_returns_empty() {
        let (m, errors) = parse_lenient("'unterminated\n");
        assert!(m.body.is_empty());
        assert_eq!(errors.len(), 1);
    }

    #[test]
    fn keyword_only_params() {
        let src = "def f(a, *, b=1):\n    pass\n";
        match first_stmt(src) {
            StmtKind::FunctionDef(f) => {
                assert_eq!(f.params.len(), 3);
                assert_eq!(f.params[1].kind, ParamKind::KwOnlyMarker);
            }
            other => panic!("expected def, got {other:?}"),
        }
    }

    #[test]
    fn positional_only_marker_skipped() {
        let src = "def f(a, /, b):\n    pass\n";
        match first_stmt(src) {
            StmtKind::FunctionDef(f) => assert_eq!(f.params.len(), 2),
            other => panic!("expected def, got {other:?}"),
        }
    }

    #[test]
    fn return_annotation() {
        let src = "def f(x) -> int:\n    return x\n";
        match first_stmt(src) {
            StmtKind::FunctionDef(f) => assert!(f.returns.is_some()),
            other => panic!("expected def, got {other:?}"),
        }
    }
}
