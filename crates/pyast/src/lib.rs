//! # seldon-pyast
//!
//! A from-scratch lexer and parser for the Python subset consumed by the
//! Seldon taint-specification-inference reproduction.
//!
//! The front end follows the CPython tokenizer/grammar shape closely enough
//! that real-world web-application code (Flask/Django style) parses
//! faithfully: indentation-sensitive lexing, implicit line joining inside
//! brackets, string prefixes (`r`, `b`, `f`), comprehensions, decorators,
//! lambdas, and the full statement repertoire the analysis needs.
//!
//! ## Example
//!
//! ```
//! use seldon_pyast::{parse, ast::StmtKind};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let module = parse("from flask import request\nname = request.args.get('n')\n")?;
//! assert_eq!(module.body.len(), 2);
//! assert!(matches!(module.body[1].kind, StmtKind::Assign { .. }));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod span;
pub mod token;
pub mod unparse;
pub mod visit;

pub use ast::{Expr, ExprKind, Module, Stmt, StmtKind};
pub use error::FrontendError;
pub use parser::{parse, parse_expr, parse_lenient};
pub use span::Span;
pub use unparse::{unparse, unparse_expr};
