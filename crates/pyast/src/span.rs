//! Source locations and spans.
//!
//! The [`Span`] type now lives in `seldon-ir` (it is shared by every
//! language frontend); this module re-exports it for compatibility.

pub use seldon_ir::Span;
