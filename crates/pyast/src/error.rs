//! Lexer and parser error types.
//!
//! The concrete types now live in `seldon-ir` so every frontend shares one
//! error surface; this module re-exports them for compatibility. The only
//! observable change is that [`ParseError::found`] is the token rendered to
//! a `String` (via `Display`) instead of a `TokenKind` — `Display` output
//! is byte-identical.

pub use seldon_ir::{FrontendError, LexError, LexErrorKind, ParseError};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Span;
    use crate::token::TokenKind;

    // Pins that the shared error types render exactly what the
    // Python-specific originals rendered, constructed from TokenKind.
    #[test]
    fn display_messages() {
        let e = LexError::new(LexErrorKind::UnexpectedChar('$'), Span::new(0, 1, 3, 7));
        assert_eq!(e.to_string(), "unexpected character `$` at 3:7");
        let p = ParseError::new("`:`", TokenKind::Newline, Span::new(0, 1, 1, 5));
        assert_eq!(p.to_string(), "expected `:` but found newline at 1:5");
    }

    #[test]
    fn frontend_error_sources() {
        let e: FrontendError =
            LexError::new(LexErrorKind::UnterminatedString, Span::dummy()).into();
        assert!(std::error::Error::source(&e).is_some());
        let p: FrontendError =
            ParseError::new("x", TokenKind::EndOfFile, Span::dummy()).into();
        assert!(p.to_string().contains("expected"));
    }
}
