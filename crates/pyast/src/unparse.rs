//! AST → Python source text (an "unparser").
//!
//! Produces canonical source for any AST this crate can represent. The
//! round-trip property `parse(unparse(parse(src))) == parse(src)` (modulo
//! spans) is enforced by property tests and makes the printer a strong
//! cross-check of the parser.

use crate::ast::*;

/// Renders a module as Python source.
pub fn unparse(module: &Module) -> String {
    let mut p = Printer::new();
    for stmt in &module.body {
        p.stmt(stmt);
    }
    p.out
}

/// Renders a single expression.
pub fn unparse_expr(expr: &Expr) -> String {
    let mut p = Printer::new();
    p.expr(expr, 0);
    p.out
}

struct Printer {
    out: String,
    indent: usize,
}

// Precedence levels, loosest to tightest (mirrors the parser).
const P_TEST: u8 = 0; // lambda, ternary
const P_OR: u8 = 1;
const P_AND: u8 = 2;
const P_NOT: u8 = 3;
const P_CMP: u8 = 4;
const P_BITOR: u8 = 5;
const P_BITXOR: u8 = 6;
const P_BITAND: u8 = 7;
const P_SHIFT: u8 = 8;
const P_ARITH: u8 = 9;
const P_TERM: u8 = 10;
const P_UNARY: u8 = 11;
const P_POWER: u8 = 12;
const P_POSTFIX: u8 = 13;

fn binop_prec(op: &str) -> (u8, bool) {
    // (precedence, right-associative)
    match op {
        "|" => (P_BITOR, false),
        "^" => (P_BITXOR, false),
        "&" => (P_BITAND, false),
        "<<" | ">>" => (P_SHIFT, false),
        "+" | "-" => (P_ARITH, false),
        "*" | "/" | "//" | "%" | "@" => (P_TERM, false),
        "**" => (P_POWER, true),
        _ => (P_ARITH, false),
    }
}

impl Printer {
    fn new() -> Self {
        Printer { out: String::new(), indent: 0 }
    }

    fn line(&mut self, text: &str) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    fn suite(&mut self, body: &[Stmt]) {
        self.indent += 1;
        if body.is_empty() {
            self.line("pass");
        } else {
            for s in body {
                self.stmt(s);
            }
        }
        self.indent -= 1;
    }

    fn stmt(&mut self, stmt: &Stmt) {
        match &stmt.kind {
            StmtKind::Import(aliases) => {
                let list = aliases
                    .iter()
                    .map(|a| match &a.asname {
                        Some(n) => format!("{} as {n}", a.name.join(".")),
                        None => a.name.join("."),
                    })
                    .collect::<Vec<_>>()
                    .join(", ");
                self.line(&format!("import {list}"));
            }
            StmtKind::ImportFrom { module, names, level } => {
                let dots = ".".repeat(*level as usize);
                let list = names
                    .iter()
                    .map(|a| match &a.asname {
                        Some(n) => format!("{} as {n}", a.name.join(".")),
                        None => a.name.join("."),
                    })
                    .collect::<Vec<_>>()
                    .join(", ");
                self.line(&format!("from {dots}{} import {list}", module.join(".")));
            }
            StmtKind::FunctionDef(def) => self.function_def(def),
            StmtKind::ClassDef(def) => self.class_def(def),
            StmtKind::Return(value) => match value {
                Some(e) => {
                    let e = self.render(e, P_TEST);
                    self.line(&format!("return {e}"));
                }
                None => self.line("return"),
            },
            StmtKind::Delete(targets) => {
                let list = targets
                    .iter()
                    .map(|t| self.render(t, P_TEST))
                    .collect::<Vec<_>>()
                    .join(", ");
                self.line(&format!("del {list}"));
            }
            StmtKind::Assign { targets, value } => {
                let lhs = targets
                    .iter()
                    .map(|t| self.render(t, P_TEST))
                    .collect::<Vec<_>>()
                    .join(" = ");
                let rhs = self.render(value, P_TEST);
                self.line(&format!("{lhs} = {rhs}"));
            }
            StmtKind::AugAssign { target, op, value } => {
                let t = self.render(target, P_POSTFIX);
                let v = self.render(value, P_TEST);
                self.line(&format!("{t} {op}= {v}"));
            }
            StmtKind::AnnAssign { target, annotation, value } => {
                let t = self.render(target, P_POSTFIX);
                let a = self.render(annotation, P_TEST);
                match value {
                    Some(v) => {
                        let v = self.render(v, P_TEST);
                        self.line(&format!("{t}: {a} = {v}"));
                    }
                    None => self.line(&format!("{t}: {a}")),
                }
            }
            StmtKind::For { target, iter, body, orelse } => {
                let t = self.render(target, P_TEST);
                let i = self.render(iter, P_TEST);
                self.line(&format!("for {t} in {i}:"));
                self.suite(body);
                if !orelse.is_empty() {
                    self.line("else:");
                    self.suite(orelse);
                }
            }
            StmtKind::While { test, body, orelse } => {
                let t = self.render(test, P_TEST);
                self.line(&format!("while {t}:"));
                self.suite(body);
                if !orelse.is_empty() {
                    self.line("else:");
                    self.suite(orelse);
                }
            }
            StmtKind::If { test, body, orelse } => {
                let t = self.render(test, P_TEST);
                self.line(&format!("if {t}:"));
                self.suite(body);
                if !orelse.is_empty() {
                    self.line("else:");
                    self.suite(orelse);
                }
            }
            StmtKind::With { items, body } => {
                let list = items
                    .iter()
                    .map(|i| {
                        let c = self.render(&i.context, P_TEST);
                        match &i.target {
                            Some(t) => {
                                let t = self.render(t, P_POSTFIX);
                                format!("{c} as {t}")
                            }
                            None => c,
                        }
                    })
                    .collect::<Vec<_>>()
                    .join(", ");
                self.line(&format!("with {list}:"));
                self.suite(body);
            }
            StmtKind::Raise { exc, cause } => match (exc, cause) {
                (None, _) => self.line("raise"),
                (Some(e), None) => {
                    let e = self.render(e, P_TEST);
                    self.line(&format!("raise {e}"));
                }
                (Some(e), Some(c)) => {
                    let e = self.render(e, P_TEST);
                    let c = self.render(c, P_TEST);
                    self.line(&format!("raise {e} from {c}"));
                }
            },
            StmtKind::Try { body, handlers, orelse, finalbody } => {
                self.line("try:");
                self.suite(body);
                for h in handlers {
                    match (&h.typ, &h.name) {
                        (None, _) => self.line("except:"),
                        (Some(t), None) => {
                            let t = self.render(t, P_TEST);
                            self.line(&format!("except {t}:"));
                        }
                        (Some(t), Some(n)) => {
                            let t = self.render(t, P_TEST);
                            self.line(&format!("except {t} as {n}:"));
                        }
                    }
                    self.suite(&h.body);
                }
                if !orelse.is_empty() {
                    self.line("else:");
                    self.suite(orelse);
                }
                if !finalbody.is_empty() {
                    self.line("finally:");
                    self.suite(finalbody);
                }
            }
            StmtKind::Assert { test, msg } => {
                let t = self.render(test, P_TEST);
                match msg {
                    Some(m) => {
                        let m = self.render(m, P_TEST);
                        self.line(&format!("assert {t}, {m}"));
                    }
                    None => self.line(&format!("assert {t}")),
                }
            }
            StmtKind::Global(names) => self.line(&format!("global {}", names.join(", "))),
            StmtKind::Nonlocal(names) => self.line(&format!("nonlocal {}", names.join(", "))),
            StmtKind::Expr(e) => {
                let e = self.render(e, P_TEST);
                self.line(&e);
            }
            StmtKind::Pass => self.line("pass"),
            StmtKind::Break => self.line("break"),
            StmtKind::Continue => self.line("continue"),
        }
    }

    fn function_def(&mut self, def: &FunctionDef) {
        for d in &def.decorators {
            let d = self.render(d, P_TEST);
            self.line(&format!("@{d}"));
        }
        let params = self.param_list(&def.params);
        let arrow = match &def.returns {
            Some(r) => format!(" -> {}", self.render(r, P_TEST)),
            None => String::new(),
        };
        let prefix = if def.is_async { "async def" } else { "def" };
        self.line(&format!("{prefix} {}({params}){arrow}:", def.name));
        self.suite(&def.body);
    }

    fn class_def(&mut self, def: &ClassDef) {
        for d in &def.decorators {
            let d = self.render(d, P_TEST);
            self.line(&format!("@{d}"));
        }
        let mut headers: Vec<String> =
            def.bases.iter().map(|b| self.render(b, P_TEST)).collect();
        for k in &def.keywords {
            let v = self.render(&k.value, P_TEST);
            match &k.name {
                Some(n) => headers.push(format!("{n}={v}")),
                None => headers.push(format!("**{v}")),
            }
        }
        if headers.is_empty() {
            self.line(&format!("class {}:", def.name));
        } else {
            self.line(&format!("class {}({}):", def.name, headers.join(", ")));
        }
        self.suite(&def.body);
    }

    fn param_list(&mut self, params: &[Param]) -> String {
        params
            .iter()
            .map(|p| {
                let mut s = match p.kind {
                    ParamKind::VarArgs => format!("*{}", p.name),
                    ParamKind::KwArgs => format!("**{}", p.name),
                    ParamKind::KwOnlyMarker => return "*".to_string(),
                    ParamKind::Plain => p.name.clone(),
                };
                if let Some(a) = &p.annotation {
                    s.push_str(": ");
                    s.push_str(&self.render(a, P_TEST));
                }
                if let Some(d) = &p.default {
                    s.push('=');
                    s.push_str(&self.render(d, P_TEST));
                }
                s
            })
            .collect::<Vec<_>>()
            .join(", ")
    }

    fn expr(&mut self, e: &Expr, min_prec: u8) {
        let s = self.render(e, min_prec);
        self.out.push_str(&s);
    }

    /// Renders `e`, parenthesizing when its precedence is below `min_prec`.
    fn render(&mut self, e: &Expr, min_prec: u8) -> String {
        let (text, prec) = self.render_raw(e);
        if prec < min_prec {
            format!("({text})")
        } else {
            text
        }
    }

    fn render_raw(&mut self, e: &Expr) -> (String, u8) {
        match &e.kind {
            ExprKind::Name(n) => (n.clone(), P_POSTFIX),
            ExprKind::Number(n) => (n.clone(), P_POSTFIX),
            ExprKind::Str(s) => (format!("'{}'", escape_str(s)), P_POSTFIX),
            ExprKind::FString { text, .. } => (format!("f'{}'", escape_fstr(text)), P_POSTFIX),
            ExprKind::Bytes(s) => (format!("b'{}'", escape_str(s)), P_POSTFIX),
            ExprKind::Bool(true) => ("True".into(), P_POSTFIX),
            ExprKind::Bool(false) => ("False".into(), P_POSTFIX),
            ExprKind::NoneLit => ("None".into(), P_POSTFIX),
            ExprKind::EllipsisLit => ("...".into(), P_POSTFIX),
            ExprKind::Attribute { value, attr } => {
                let v = self.render(value, P_POSTFIX);
                (format!("{v}.{attr}"), P_POSTFIX)
            }
            ExprKind::Subscript { value, index } => {
                let v = self.render(value, P_POSTFIX);
                let i = self.render(index, P_TEST);
                (format!("{v}[{i}]"), P_POSTFIX)
            }
            ExprKind::Slice { lower, upper, step } => {
                let part = |p: &Option<Box<Expr>>, this: &mut Self| match p {
                    Some(e) => this.render(e, P_TEST),
                    None => String::new(),
                };
                let lo = part(lower, self);
                let hi = part(upper, self);
                let text = match step {
                    Some(s) => {
                        let s = self.render(s, P_TEST);
                        format!("{lo}:{hi}:{s}")
                    }
                    None => format!("{lo}:{hi}"),
                };
                (text, P_TEST)
            }
            ExprKind::Call { func, args, keywords } => {
                let f = self.render(func, P_POSTFIX);
                let mut parts: Vec<String> =
                    args.iter().map(|a| self.render(a, P_TEST)).collect();
                for k in keywords {
                    let v = self.render(&k.value, P_TEST);
                    match &k.name {
                        Some(n) => parts.push(format!("{n}={v}")),
                        None => parts.push(format!("**{v}")),
                    }
                }
                (format!("{f}({})", parts.join(", ")), P_POSTFIX)
            }
            ExprKind::BinOp { left, op, right } => {
                let (prec, right_assoc) = binop_prec(op);
                let l = self.render(left, if right_assoc { prec + 1 } else { prec });
                let r = self.render(right, if right_assoc { prec } else { prec + 1 });
                (format!("{l} {op} {r}"), prec)
            }
            ExprKind::UnaryOp { op, operand } => {
                if op == "not" {
                    let v = self.render(operand, P_NOT);
                    (format!("not {v}"), P_NOT)
                } else {
                    let v = self.render(operand, P_UNARY);
                    (format!("{op}{v}"), P_UNARY)
                }
            }
            ExprKind::BoolOp { op, values } => {
                let prec = if op == "or" { P_OR } else { P_AND };
                let parts: Vec<String> =
                    values.iter().map(|v| self.render(v, prec + 1)).collect();
                (parts.join(&format!(" {op} ")), prec)
            }
            ExprKind::Compare { left, ops, comparators } => {
                let mut s = self.render(left, P_CMP + 1);
                for (op, c) in ops.iter().zip(comparators) {
                    let c = self.render(c, P_CMP + 1);
                    s.push_str(&format!(" {op} {c}"));
                }
                (s, P_CMP)
            }
            ExprKind::IfExp { test, body, orelse } => {
                let b = self.render(body, P_OR);
                let t = self.render(test, P_OR);
                let o = self.render(orelse, P_TEST);
                (format!("{b} if {t} else {o}"), P_TEST)
            }
            ExprKind::Lambda { params, body } => {
                let p = self.param_list(params);
                let b = self.render(body, P_TEST);
                let text = if p.is_empty() {
                    format!("lambda: {b}")
                } else {
                    format!("lambda {p}: {b}")
                };
                (text, P_TEST)
            }
            ExprKind::Tuple(elems) => {
                let parts: Vec<String> =
                    elems.iter().map(|e| self.render(e, P_TEST)).collect();
                let text = match parts.len() {
                    0 => "()".to_string(),
                    1 => format!("({},)", parts[0]),
                    _ => format!("({})", parts.join(", ")),
                };
                (text, P_POSTFIX)
            }
            ExprKind::List(elems) => {
                let parts: Vec<String> =
                    elems.iter().map(|e| self.render(e, P_TEST)).collect();
                (format!("[{}]", parts.join(", ")), P_POSTFIX)
            }
            ExprKind::Set(elems) => {
                let parts: Vec<String> =
                    elems.iter().map(|e| self.render(e, P_TEST)).collect();
                (format!("{{{}}}", parts.join(", ")), P_POSTFIX)
            }
            ExprKind::Dict { keys, values } => {
                let parts: Vec<String> = keys
                    .iter()
                    .zip(values)
                    .map(|(k, v)| {
                        let v = self.render(v, P_TEST);
                        match k {
                            Some(k) => {
                                let k = self.render(k, P_TEST);
                                format!("{k}: {v}")
                            }
                            None => format!("**{v}"),
                        }
                    })
                    .collect();
                (format!("{{{}}}", parts.join(", ")), P_POSTFIX)
            }
            ExprKind::Comp { kind, element, value, generators } => {
                let elem = self.render(element, P_TEST);
                let mut clauses = String::new();
                for g in generators {
                    let t = self.render(&g.target, P_TEST);
                    let i = self.render(&g.iter, P_OR);
                    clauses.push_str(&format!(" for {t} in {i}"));
                    for cond in &g.ifs {
                        let c = self.render(cond, P_OR);
                        clauses.push_str(&format!(" if {c}"));
                    }
                }
                let text = match kind {
                    CompKind::List => format!("[{elem}{clauses}]"),
                    CompKind::Set => format!("{{{elem}{clauses}}}"),
                    CompKind::Dict => {
                        let v = value
                            .as_ref()
                            .map(|v| self.render(v, P_TEST))
                            .unwrap_or_default();
                        format!("{{{elem}: {v}{clauses}}}")
                    }
                    CompKind::Generator => format!("({elem}{clauses})"),
                };
                (text, P_POSTFIX)
            }
            ExprKind::Yield { value, is_from } => {
                let text = match (value, is_from) {
                    (Some(v), true) => {
                        let v = self.render(v, P_TEST);
                        format!("yield from {v}")
                    }
                    (Some(v), false) => {
                        let v = self.render(v, P_TEST);
                        format!("yield {v}")
                    }
                    (None, _) => "yield".to_string(),
                };
                (format!("({text})"), P_POSTFIX)
            }
            ExprKind::Await(inner) => {
                let v = self.render(inner, P_UNARY);
                (format!("await {v}"), P_UNARY)
            }
            ExprKind::Starred(inner) => {
                let v = self.render(inner, P_UNARY);
                (format!("*{v}"), P_TEST)
            }
            ExprKind::NamedExpr { target, value } => {
                let t = self.render(target, P_POSTFIX);
                let v = self.render(value, P_TEST);
                (format!("({t} := {v})"), P_POSTFIX)
            }
        }
    }
}

/// Escapes a string body for single-quoted output. The lexer keeps escape
/// sequences verbatim, so only bare single quotes and newlines need care.
fn escape_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '\\' => {
                out.push('\\');
                if let Some(&n) = chars.peek() {
                    out.push(n);
                    chars.next();
                }
            }
            '\'' => out.push_str("\\'"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// F-string bodies keep `{`/`}` meaningful; escape quotes/newlines only.
fn escape_fstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '\\' => {
                out.push('\\');
                if let Some(&n) = chars.peek() {
                    out.push(n);
                    chars.next();
                }
            }
            '\'' => out.push_str("\\'"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// Strips spans for comparison.
    fn round_trip(src: &str) {
        let m1 = parse(src).unwrap_or_else(|e| panic!("first parse of {src:?}: {e}"));
        let printed = unparse(&m1);
        let m2 = parse(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n--- printed ---\n{printed}"));
        let p2 = unparse(&m2);
        assert_eq!(printed, p2, "unparse not a fixpoint for {src:?}");
    }

    #[test]
    fn round_trip_statements() {
        for src in [
            "x = 1\n",
            "a = b = c\n",
            "x += 2\n",
            "x: int = 3\n",
            "import os.path as p, sys\n",
            "from flask import request, session as s\n",
            "from ..pkg import thing\n",
            "del xs[0], y\n",
            "global a, b\n",
            "assert x, 'msg'\n",
            "raise ValueError('x') from err\n",
            "pass\n",
        ] {
            round_trip(src);
        }
    }

    #[test]
    fn round_trip_compound() {
        round_trip("if a:\n    x = 1\nelif b:\n    y = 2\nelse:\n    z = 3\n");
        round_trip("for i, v in enumerate(xs):\n    print(v)\nelse:\n    done()\n");
        round_trip("while cond():\n    step()\n");
        round_trip("with open(p) as f, lock:\n    f.read()\n");
        round_trip(
            "try:\n    go()\nexcept ValueError as e:\n    handle(e)\nexcept:\n    pass\nfinally:\n    cleanup()\n",
        );
    }

    #[test]
    fn round_trip_functions_and_classes() {
        round_trip("def f(a, b=1, *args, **kwargs):\n    return a + b\n");
        round_trip("def g(x: int, *, y=2) -> int:\n    return x\n");
        round_trip("@app.route('/x', methods=['POST'])\ndef h():\n    pass\n");
        round_trip("class C(Base, metaclass=M):\n    x = 1\n    def m(self):\n        return self.x\n");
        round_trip("async def i():\n    await j()\n");
    }

    #[test]
    fn round_trip_expressions() {
        for src in [
            "y = 1 + 2 * 3 - 4 / 5\n",
            "y = 2 ** 3 ** 4\n",
            "y = (1 + 2) * 3\n",
            "y = a < b <= c != d\n",
            "y = a and b or not c\n",
            "y = x if c else z\n",
            "y = lambda a, b=2: a + b\n",
            "y = [1, 2, 3]\n",
            "y = {1, 2}\n",
            "y = {'a': 1, **rest}\n",
            "y = (1,)\n",
            "y = ()\n",
            "y = xs[1:2]\n",
            "y = xs[::2]\n",
            "y = m[a, b]\n",
            "y = f(a, b=1, *rest, **kw)\n",
            "y = [x for x in xs if x]\n",
            "y = {k: v for k, v in items}\n",
            "y = (x * x for x in xs)\n",
            "y = a.b.c().d['k']\n",
            "y = -x + ~z\n",
            "y = x is not None\n",
            "y = x not in ys\n",
            "y = *a, *b\n",
        ] {
            round_trip(src);
        }
    }

    #[test]
    fn round_trip_strings() {
        round_trip("s = 'hello'\n");
        round_trip("s = 'it\\'s'\n");
        round_trip("s = b'bytes'\n");
        round_trip("s = f'<div>{msg}</div>'\n");
        round_trip("s = 'line\\nbreak'\n");
    }

    #[test]
    fn round_trip_paper_example() {
        round_trip(
            r#"
from yak.web import app
from flask import request
from werkzeug import secure_filename
import os

blog_dir = app.config['PATH']

@app.route('/media/', methods=['POST'])
def media():
    filename = request.files['f'].filename
    filename = secure_filename(filename)
    path = os.path.join(blog_dir, filename)
    if not os.path.exists(path):
        request.files['f'].save(path)
"#,
        );
    }

    #[test]
    fn unparse_expr_precedence_parens() {
        let e = crate::parser::parse_expr("(a + b) * c").unwrap();
        assert_eq!(unparse_expr(&e), "(a + b) * c");
        let e = crate::parser::parse_expr("a + b * c").unwrap();
        assert_eq!(unparse_expr(&e), "a + b * c");
        let e = crate::parser::parse_expr("-(a + b)").unwrap();
        assert_eq!(unparse_expr(&e), "-(a + b)");
    }

    #[test]
    fn empty_suites_get_pass() {
        let m = parse("if x:\n    pass\n").unwrap();
        let printed = unparse(&m);
        assert!(printed.contains("pass"));
    }

    #[test]
    fn walrus_and_yield() {
        round_trip("if (n := f()) > 0:\n    pass\n");
        round_trip("def g():\n    yield 1\n    yield from xs\n    x = (yield)\n");
    }
}
