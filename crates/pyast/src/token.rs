//! Token definitions for the Python lexer.

use crate::span::Span;
use std::fmt;

/// The kind of a lexical token.
///
/// The lexer produces logical-line structure tokens (`Newline`, `Indent`,
/// `Dedent`, `EndOfFile`) in addition to ordinary lexemes, following the
/// CPython tokenizer model.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or non-keyword name.
    Name(String),
    /// Integer literal (value kept as text; the analysis never needs it).
    Int(String),
    /// Floating point literal (kept as text).
    Float(String),
    /// String literal with quotes and prefixes stripped.
    Str(String),
    /// F-string literal; interpolated expressions are kept as raw text
    /// inside `{...}` and re-lexed by the parser.
    FStr(String),
    /// Bytes literal with quotes stripped.
    Bytes(String),

    // Keywords.
    /// The `false` keyword.
    KwFalse,
    /// The `none` keyword.
    KwNone,
    /// The `true` keyword.
    KwTrue,
    /// The `and` keyword.
    KwAnd,
    /// The `as` keyword.
    KwAs,
    /// The `assert` keyword.
    KwAssert,
    /// The `async` keyword.
    KwAsync,
    /// The `await` keyword.
    KwAwait,
    /// The `break` keyword.
    KwBreak,
    /// The `class` keyword.
    KwClass,
    /// The `continue` keyword.
    KwContinue,
    /// The `def` keyword.
    KwDef,
    /// The `del` keyword.
    KwDel,
    /// The `elif` keyword.
    KwElif,
    /// The `else` keyword.
    KwElse,
    /// The `except` keyword.
    KwExcept,
    /// The `finally` keyword.
    KwFinally,
    /// The `for` keyword.
    KwFor,
    /// The `from` keyword.
    KwFrom,
    /// The `global` keyword.
    KwGlobal,
    /// The `if` keyword.
    KwIf,
    /// The `import` keyword.
    KwImport,
    /// The `in` keyword.
    KwIn,
    /// The `is` keyword.
    KwIs,
    /// The `lambda` keyword.
    KwLambda,
    /// The `nonlocal` keyword.
    KwNonlocal,
    /// The `not` keyword.
    KwNot,
    /// The `or` keyword.
    KwOr,
    /// The `pass` keyword.
    KwPass,
    /// The `raise` keyword.
    KwRaise,
    /// The `return` keyword.
    KwReturn,
    /// The `try` keyword.
    KwTry,
    /// The `while` keyword.
    KwWhile,
    /// The `with` keyword.
    KwWith,
    /// The `yield` keyword.
    KwYield,

    // Punctuation and operators.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `;`
    Semicolon,
    /// `.`
    Dot,
    /// `->`
    Arrow,
    /// `@`
    At,
    /// `=`
    Assign,
    /// The walrus operator `:=`.
    ColonAssign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `**`
    DoubleStar,
    /// `/`
    Slash,
    /// `//`
    DoubleSlash,
    /// `%`
    Percent,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `~`
    Tilde,
    /// `<<`
    LShift,
    /// `>>`
    RShift,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// Augmented assignment, e.g. `+=`; the inner operator text is kept.
    AugAssign(&'static str),
    /// `...`
    Ellipsis,

    // Structure.
    /// end of a logical line
    Newline,
    /// increase of indentation
    Indent,
    /// decrease of indentation
    Dedent,
    /// end of input
    EndOfFile,
}

impl TokenKind {
    /// Returns the keyword token for `name`, if `name` is a Python keyword.
    pub fn keyword(name: &str) -> Option<TokenKind> {
        use TokenKind::*;
        Some(match name {
            "False" => KwFalse,
            "None" => KwNone,
            "True" => KwTrue,
            "and" => KwAnd,
            "as" => KwAs,
            "assert" => KwAssert,
            "async" => KwAsync,
            "await" => KwAwait,
            "break" => KwBreak,
            "class" => KwClass,
            "continue" => KwContinue,
            "def" => KwDef,
            "del" => KwDel,
            "elif" => KwElif,
            "else" => KwElse,
            "except" => KwExcept,
            "finally" => KwFinally,
            "for" => KwFor,
            "from" => KwFrom,
            "global" => KwGlobal,
            "if" => KwIf,
            "import" => KwImport,
            "in" => KwIn,
            "is" => KwIs,
            "lambda" => KwLambda,
            "nonlocal" => KwNonlocal,
            "not" => KwNot,
            "or" => KwOr,
            "pass" => KwPass,
            "raise" => KwRaise,
            "return" => KwReturn,
            "try" => KwTry,
            "while" => KwWhile,
            "with" => KwWith,
            "yield" => KwYield,
            _ => return None,
        })
    }

    /// True for tokens that terminate a logical line.
    pub fn ends_line(&self) -> bool {
        matches!(self, TokenKind::Newline | TokenKind::EndOfFile)
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use TokenKind::*;
        match self {
            Name(s) => write!(f, "name `{s}`"),
            Int(s) => write!(f, "integer `{s}`"),
            Float(s) => write!(f, "float `{s}`"),
            Str(_) => write!(f, "string literal"),
            FStr(_) => write!(f, "f-string literal"),
            Bytes(_) => write!(f, "bytes literal"),
            KwFalse => write!(f, "`False`"),
            KwNone => write!(f, "`None`"),
            KwTrue => write!(f, "`True`"),
            KwAnd => write!(f, "`and`"),
            KwAs => write!(f, "`as`"),
            KwAssert => write!(f, "`assert`"),
            KwAsync => write!(f, "`async`"),
            KwAwait => write!(f, "`await`"),
            KwBreak => write!(f, "`break`"),
            KwClass => write!(f, "`class`"),
            KwContinue => write!(f, "`continue`"),
            KwDef => write!(f, "`def`"),
            KwDel => write!(f, "`del`"),
            KwElif => write!(f, "`elif`"),
            KwElse => write!(f, "`else`"),
            KwExcept => write!(f, "`except`"),
            KwFinally => write!(f, "`finally`"),
            KwFor => write!(f, "`for`"),
            KwFrom => write!(f, "`from`"),
            KwGlobal => write!(f, "`global`"),
            KwIf => write!(f, "`if`"),
            KwImport => write!(f, "`import`"),
            KwIn => write!(f, "`in`"),
            KwIs => write!(f, "`is`"),
            KwLambda => write!(f, "`lambda`"),
            KwNonlocal => write!(f, "`nonlocal`"),
            KwNot => write!(f, "`not`"),
            KwOr => write!(f, "`or`"),
            KwPass => write!(f, "`pass`"),
            KwRaise => write!(f, "`raise`"),
            KwReturn => write!(f, "`return`"),
            KwTry => write!(f, "`try`"),
            KwWhile => write!(f, "`while`"),
            KwWith => write!(f, "`with`"),
            KwYield => write!(f, "`yield`"),
            LParen => write!(f, "`(`"),
            RParen => write!(f, "`)`"),
            LBracket => write!(f, "`[`"),
            RBracket => write!(f, "`]`"),
            LBrace => write!(f, "`{{`"),
            RBrace => write!(f, "`}}`"),
            Comma => write!(f, "`,`"),
            Colon => write!(f, "`:`"),
            Semicolon => write!(f, "`;`"),
            Dot => write!(f, "`.`"),
            Arrow => write!(f, "`->`"),
            At => write!(f, "`@`"),
            Assign => write!(f, "`=`"),
            ColonAssign => write!(f, "`:=`"),
            Plus => write!(f, "`+`"),
            Minus => write!(f, "`-`"),
            Star => write!(f, "`*`"),
            DoubleStar => write!(f, "`**`"),
            Slash => write!(f, "`/`"),
            DoubleSlash => write!(f, "`//`"),
            Percent => write!(f, "`%`"),
            Amp => write!(f, "`&`"),
            Pipe => write!(f, "`|`"),
            Caret => write!(f, "`^`"),
            Tilde => write!(f, "`~`"),
            LShift => write!(f, "`<<`"),
            RShift => write!(f, "`>>`"),
            Lt => write!(f, "`<`"),
            Gt => write!(f, "`>`"),
            Le => write!(f, "`<=`"),
            Ge => write!(f, "`>=`"),
            EqEq => write!(f, "`==`"),
            NotEq => write!(f, "`!=`"),
            AugAssign(op) => write!(f, "`{op}=`"),
            Ellipsis => write!(f, "`...`"),
            Newline => write!(f, "newline"),
            Indent => write!(f, "indent"),
            Dedent => write!(f, "dedent"),
            EndOfFile => write!(f, "end of file"),
        }
    }
}

/// A lexical token: a [`TokenKind`] plus its [`Span`].
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where in the source it came from.
    pub span: Span,
}

impl Token {
    /// Creates a token.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup() {
        assert_eq!(TokenKind::keyword("def"), Some(TokenKind::KwDef));
        assert_eq!(TokenKind::keyword("lambda"), Some(TokenKind::KwLambda));
        assert_eq!(TokenKind::keyword("deff"), None);
        assert_eq!(TokenKind::keyword(""), None);
    }

    #[test]
    fn line_enders() {
        assert!(TokenKind::Newline.ends_line());
        assert!(TokenKind::EndOfFile.ends_line());
        assert!(!TokenKind::Colon.ends_line());
    }

    #[test]
    fn display_mentions_lexeme() {
        assert_eq!(TokenKind::Name("foo".into()).to_string(), "name `foo`");
        assert_eq!(TokenKind::AugAssign("+").to_string(), "`+=`");
    }
}
