//! Abstract syntax tree for the Python subset.
//!
//! The tree is deliberately close to CPython's `ast` module naming so the
//! analysis code reads like the paper's description. Every node carries a
//! [`Span`].

use crate::span::Span;

/// A parsed module: the top-level statement list of one source file.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Statements in source order.
    pub body: Vec<Stmt>,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// The statement payload.
    pub kind: StmtKind,
    /// Source location.
    pub span: Span,
}

/// Statement payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `import a.b as c, d`
    Import(Vec<ImportAlias>),
    /// `from a.b import c as d, e` (level counts leading dots).
    ImportFrom {
        /// Dotted module path (may be empty for `from . import x`).
        module: Vec<String>,
        /// Imported names.
        names: Vec<ImportAlias>,
        /// Number of leading dots (relative import level).
        level: u32,
    },
    /// Function definition.
    FunctionDef(FunctionDef),
    /// Class definition.
    ClassDef(ClassDef),
    /// `return value?`
    Return(Option<Expr>),
    /// `del targets`
    Delete(Vec<Expr>),
    /// `targets = value` (chained assignment keeps all targets).
    Assign {
        /// Assignment targets, left to right.
        targets: Vec<Expr>,
        /// Right-hand side.
        value: Expr,
    },
    /// `target op= value`
    AugAssign {
        /// The single target.
        target: Expr,
        /// Operator text, e.g. `+`.
        op: String,
        /// Right-hand side.
        value: Expr,
    },
    /// `target: annotation = value?`
    AnnAssign {
        /// The annotated target.
        target: Expr,
        /// The annotation expression.
        annotation: Expr,
        /// Optional initial value.
        value: Option<Expr>,
    },
    /// `for target in iter: body else: orelse`
    For {
        /// Loop variable pattern.
        target: Expr,
        /// Iterated expression.
        iter: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// `else` clause.
        orelse: Vec<Stmt>,
    },
    /// `while test: body else: orelse`
    While {
        /// Loop condition.
        test: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// `else` clause.
        orelse: Vec<Stmt>,
    },
    /// `if test: body elif.../else: orelse`
    If {
        /// Condition.
        test: Expr,
        /// Then branch.
        body: Vec<Stmt>,
        /// Else branch (an `elif` parses as a nested `If` here).
        orelse: Vec<Stmt>,
    },
    /// `with items: body`
    With {
        /// Context managers with optional `as` targets.
        items: Vec<WithItem>,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `raise exc from cause`
    Raise {
        /// Exception value.
        exc: Option<Expr>,
        /// `from` cause.
        cause: Option<Expr>,
    },
    /// `try: body except...: handlers else: orelse finally: finalbody`
    Try {
        /// Protected body.
        body: Vec<Stmt>,
        /// Exception handlers.
        handlers: Vec<ExceptHandler>,
        /// `else` clause.
        orelse: Vec<Stmt>,
        /// `finally` clause.
        finalbody: Vec<Stmt>,
    },
    /// `assert test, msg?`
    Assert {
        /// Asserted condition.
        test: Expr,
        /// Optional message.
        msg: Option<Expr>,
    },
    /// `global names`
    Global(Vec<String>),
    /// `nonlocal names`
    Nonlocal(Vec<String>),
    /// A bare expression statement.
    Expr(Expr),
    /// `pass`
    Pass,
    /// `break`
    Break,
    /// `continue`
    Continue,
}

/// One alias in an import list: `name as asname`.
#[derive(Debug, Clone, PartialEq)]
pub struct ImportAlias {
    /// Dotted path being imported (single segment for `from x import seg`).
    pub name: Vec<String>,
    /// Optional binding name.
    pub asname: Option<String>,
    /// Location of the alias.
    pub span: Span,
}

/// A function (or method) definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDef {
    /// Function name.
    pub name: String,
    /// Positional/keyword parameters in order.
    pub params: Vec<Param>,
    /// Decorator expressions, outermost first.
    pub decorators: Vec<Expr>,
    /// Optional return annotation.
    pub returns: Option<Expr>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// True for `async def`.
    pub is_async: bool,
}

/// A single formal parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Optional annotation.
    pub annotation: Option<Expr>,
    /// Optional default value.
    pub default: Option<Expr>,
    /// Kind of parameter (positional, `*args`, `**kwargs`).
    pub kind: ParamKind,
    /// Location of the parameter name.
    pub span: Span,
}

/// Parameter flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamKind {
    /// Ordinary positional-or-keyword parameter.
    Plain,
    /// `*args`
    VarArgs,
    /// `**kwargs`
    KwArgs,
    /// Bare `*` separator (keyword-only marker) — kept for fidelity.
    KwOnlyMarker,
}

/// A class definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDef {
    /// Class name.
    pub name: String,
    /// Base class expressions.
    pub bases: Vec<Expr>,
    /// Keyword arguments in the class header (e.g. `metaclass=`).
    pub keywords: Vec<Keyword>,
    /// Decorators, outermost first.
    pub decorators: Vec<Expr>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// One `with` item: `context as target?`.
#[derive(Debug, Clone, PartialEq)]
pub struct WithItem {
    /// The context-manager expression.
    pub context: Expr,
    /// Optional `as` target.
    pub target: Option<Expr>,
}

/// An `except` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct ExceptHandler {
    /// The matched exception type, if any.
    pub typ: Option<Expr>,
    /// The binding name after `as`, if any.
    pub name: Option<String>,
    /// Handler body.
    pub body: Vec<Stmt>,
    /// Location of the `except` keyword.
    pub span: Span,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The expression payload.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
}

/// Expression payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// A name reference.
    Name(String),
    /// Integer/float literal (textual).
    Number(String),
    /// String literal (implicitly concatenated literals are merged).
    Str(String),
    /// F-string literal: literal text plus the raw interpolation sources.
    FString {
        /// The raw body text.
        text: String,
        /// Parsed interpolated expressions, in order of appearance.
        parts: Vec<Expr>,
    },
    /// Bytes literal.
    Bytes(String),
    /// `True`/`False`.
    Bool(bool),
    /// `None`.
    NoneLit,
    /// `...`
    EllipsisLit,
    /// `obj.attr`
    Attribute {
        /// The object expression.
        value: Box<Expr>,
        /// The attribute name.
        attr: String,
    },
    /// `obj[index]`
    Subscript {
        /// The container expression.
        value: Box<Expr>,
        /// The index expression (a `Slice` for slice syntax).
        index: Box<Expr>,
    },
    /// `lo:hi:step` inside subscripts.
    Slice {
        /// Lower bound.
        lower: Option<Box<Expr>>,
        /// Upper bound.
        upper: Option<Box<Expr>>,
        /// Step.
        step: Option<Box<Expr>>,
    },
    /// `f(args, kw=v, *rest, **kwargs)`
    Call {
        /// The callee expression.
        func: Box<Expr>,
        /// Positional arguments (including starred ones).
        args: Vec<Expr>,
        /// Keyword arguments.
        keywords: Vec<Keyword>,
    },
    /// Binary arithmetic/bit operation; operator kept as text.
    BinOp {
        /// Left operand.
        left: Box<Expr>,
        /// Operator text, e.g. `+`.
        op: String,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary operation (`-x`, `+x`, `~x`, `not x`).
    UnaryOp {
        /// Operator text.
        op: String,
        /// Operand.
        operand: Box<Expr>,
    },
    /// `and`/`or` chains, flattened.
    BoolOp {
        /// `and` or `or`.
        op: String,
        /// Operands, two or more.
        values: Vec<Expr>,
    },
    /// Comparison chains `a < b <= c`.
    Compare {
        /// First operand.
        left: Box<Expr>,
        /// Operator texts (`<`, `in`, `is not`, ...), one per comparator.
        ops: Vec<String>,
        /// Remaining operands.
        comparators: Vec<Expr>,
    },
    /// `body if test else orelse`
    IfExp {
        /// Condition.
        test: Box<Expr>,
        /// Value when true.
        body: Box<Expr>,
        /// Value when false.
        orelse: Box<Expr>,
    },
    /// `lambda params: body`
    Lambda {
        /// Formal parameters.
        params: Vec<Param>,
        /// Body expression.
        body: Box<Expr>,
    },
    /// Tuple display `(a, b)` or bare `a, b`.
    Tuple(Vec<Expr>),
    /// List display `[a, b]`.
    List(Vec<Expr>),
    /// Set display `{a, b}`.
    Set(Vec<Expr>),
    /// Dict display `{k: v, **m}` (a `None` key means `**m` expansion).
    Dict {
        /// Keys, parallel to `values`; `None` marks a `**` expansion.
        keys: Vec<Option<Expr>>,
        /// Values.
        values: Vec<Expr>,
    },
    /// List/set/generator comprehension.
    Comp {
        /// Which display kind the comprehension builds.
        kind: CompKind,
        /// The element expression.
        element: Box<Expr>,
        /// For dict comprehensions, the value expression.
        value: Option<Box<Expr>>,
        /// Generator clauses.
        generators: Vec<Comprehension>,
    },
    /// `yield value?` / `yield from value`
    Yield {
        /// Yielded expression.
        value: Option<Box<Expr>>,
        /// True for `yield from`.
        is_from: bool,
    },
    /// `await value`
    Await(Box<Expr>),
    /// `*value` in calls/displays/assignment targets.
    Starred(Box<Expr>),
    /// `name := value`
    NamedExpr {
        /// Target name.
        target: Box<Expr>,
        /// Assigned value.
        value: Box<Expr>,
    },
}

/// Which collection a comprehension builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompKind {
    /// `[x for ...]`
    List,
    /// `{x for ...}`
    Set,
    /// `{k: v for ...}`
    Dict,
    /// `(x for ...)`
    Generator,
}

/// One `for ... in ... if ...` clause of a comprehension.
#[derive(Debug, Clone, PartialEq)]
pub struct Comprehension {
    /// The loop target.
    pub target: Expr,
    /// The iterated expression.
    pub iter: Expr,
    /// Zero or more `if` filters.
    pub ifs: Vec<Expr>,
}

/// A keyword argument `name=value`; `name` is `None` for `**value`.
#[derive(Debug, Clone, PartialEq)]
pub struct Keyword {
    /// Argument name (`None` for `**expr`).
    pub name: Option<String>,
    /// Argument value.
    pub value: Expr,
}

impl Expr {
    /// Creates an expression node.
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }

    /// Returns the dotted-name path if this expression is a chain of
    /// `Name`/`Attribute` accesses, e.g. `a.b.c` → `["a","b","c"]`.
    pub fn dotted_path(&self) -> Option<Vec<&str>> {
        match &self.kind {
            ExprKind::Name(n) => Some(vec![n.as_str()]),
            ExprKind::Attribute { value, attr } => {
                let mut path = value.dotted_path()?;
                path.push(attr.as_str());
                Some(path)
            }
            _ => None,
        }
    }

    /// True if the expression is a literal constant (string, number, bool,
    /// `None`, bytes, ellipsis).
    pub fn is_literal(&self) -> bool {
        matches!(
            self.kind,
            ExprKind::Number(_)
                | ExprKind::Str(_)
                | ExprKind::Bytes(_)
                | ExprKind::Bool(_)
                | ExprKind::NoneLit
                | ExprKind::EllipsisLit
        )
    }
}

impl Stmt {
    /// Creates a statement node.
    pub fn new(kind: StmtKind, span: Span) -> Self {
        Stmt { kind, span }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(n: &str) -> Expr {
        Expr::new(ExprKind::Name(n.into()), Span::dummy())
    }

    #[test]
    fn dotted_path_of_attribute_chain() {
        let e = Expr::new(
            ExprKind::Attribute {
                value: Box::new(Expr::new(
                    ExprKind::Attribute { value: Box::new(name("a")), attr: "b".into() },
                    Span::dummy(),
                )),
                attr: "c".into(),
            },
            Span::dummy(),
        );
        assert_eq!(e.dotted_path(), Some(vec!["a", "b", "c"]));
    }

    #[test]
    fn dotted_path_rejects_calls() {
        let call = Expr::new(
            ExprKind::Call { func: Box::new(name("f")), args: vec![], keywords: vec![] },
            Span::dummy(),
        );
        assert_eq!(call.dotted_path(), None);
    }

    #[test]
    fn literal_check() {
        assert!(Expr::new(ExprKind::Str("x".into()), Span::dummy()).is_literal());
        assert!(Expr::new(ExprKind::NoneLit, Span::dummy()).is_literal());
        assert!(!name("x").is_literal());
    }
}
