//! An indentation-aware lexer for the Python subset used by Seldon.
//!
//! Follows the CPython tokenizer model: physical lines are grouped into
//! logical lines; `Indent`/`Dedent` tokens are synthesized from leading
//! whitespace; newlines inside bracket pairs and after `\` continuations are
//! implicit-joined.

use crate::error::{LexError, LexErrorKind};
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Converts `source` to a token stream.
///
/// The returned stream always ends with [`TokenKind::EndOfFile`] and has
/// balanced `Indent`/`Dedent` tokens.
///
/// # Errors
///
/// Returns a [`LexError`] for unterminated strings, stray characters,
/// inconsistent dedents, or unbalanced brackets.
pub fn lex(source: &str) -> Result<Vec<Token>, LexError> {
    Lexer::new(source).run()
}

struct Lexer<'s> {
    src: &'s str,
    bytes: &'s [u8],
    pos: usize,
    line: u32,
    col: u32,
    /// Stack of active indentation widths; always starts with 0.
    indents: Vec<u32>,
    /// Nesting depth of `(`, `[`, `{`.
    paren_depth: u32,
    /// True when we are at the start of a logical line (indentation matters).
    at_line_start: bool,
    tokens: Vec<Token>,
}

impl<'s> Lexer<'s> {
    fn new(src: &'s str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            indents: vec![0],
            paren_depth: 0,
            at_line_start: true,
            tokens: Vec::new(),
        }
    }

    fn run(mut self) -> Result<Vec<Token>, LexError> {
        while self.pos < self.bytes.len() {
            if self.at_line_start && self.paren_depth == 0 {
                self.handle_indentation()?;
                if self.pos >= self.bytes.len() {
                    break;
                }
            }
            self.lex_token()?;
        }
        // Close the final logical line if any tokens were produced on it.
        if let Some(last) = self.tokens.last() {
            if !last.kind.ends_line()
                && !matches!(last.kind, TokenKind::Indent | TokenKind::Dedent)
            {
                let span = self.here(0);
                self.tokens.push(Token::new(TokenKind::Newline, span));
            }
        }
        // Unwind remaining indentation.
        while self.indents.len() > 1 {
            self.indents.pop();
            let span = self.here(0);
            self.tokens.push(Token::new(TokenKind::Dedent, span));
        }
        let span = self.here(0);
        self.tokens.push(Token::new(TokenKind::EndOfFile, span));
        Ok(self.tokens)
    }

    fn here(&self, len: usize) -> Span {
        Span::new(self.pos as u32, (self.pos + len) as u32, self.line, self.col)
    }

    fn peek(&self) -> u8 {
        self.bytes.get(self.pos).copied().unwrap_or(0)
    }

    fn peek_at(&self, off: usize) -> u8 {
        self.bytes.get(self.pos + off).copied().unwrap_or(0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.peek();
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        b
    }

    /// Measures indentation at a line start and emits Indent/Dedent tokens.
    /// Blank lines and comment-only lines produce no tokens.
    fn handle_indentation(&mut self) -> Result<(), LexError> {
        loop {
            let line_start = self.pos;
            let mut width = 0u32;
            while self.pos < self.bytes.len() {
                match self.peek() {
                    b' ' => {
                        width += 1;
                        self.bump();
                    }
                    b'\t' => {
                        // Tab advances to the next multiple of 8, like CPython.
                        width = (width / 8 + 1) * 8;
                        self.bump();
                    }
                    _ => break,
                }
            }
            match self.peek() {
                // Blank line or comment-only line: skip entirely.
                b'\n' | b'\r' => {
                    self.consume_newline_char();
                    continue;
                }
                b'#' => {
                    self.skip_comment();
                    if self.peek() == b'\n' || self.peek() == b'\r' {
                        self.consume_newline_char();
                    }
                    continue;
                }
                0 if self.pos >= self.bytes.len() => {
                    self.at_line_start = false;
                    return Ok(());
                }
                _ => {
                    let span =
                        Span::new(line_start as u32, self.pos as u32, self.line, 1);
                    let current = *self.indents.last().expect("indent stack nonempty");
                    if width > current {
                        self.indents.push(width);
                        self.tokens.push(Token::new(TokenKind::Indent, span));
                    } else if width < current {
                        while *self.indents.last().expect("indent stack nonempty") > width
                        {
                            self.indents.pop();
                            self.tokens.push(Token::new(TokenKind::Dedent, span));
                        }
                        if *self.indents.last().expect("indent stack nonempty") != width {
                            return Err(LexError::new(
                                LexErrorKind::InconsistentDedent,
                                span,
                            ));
                        }
                    }
                    self.at_line_start = false;
                    return Ok(());
                }
            }
        }
    }

    fn consume_newline_char(&mut self) {
        if self.peek() == b'\r' {
            self.bump();
        }
        if self.peek() == b'\n' {
            self.bump();
        }
    }

    fn skip_comment(&mut self) {
        while self.pos < self.bytes.len() && self.peek() != b'\n' {
            self.bump();
        }
    }

    fn lex_token(&mut self) -> Result<(), LexError> {
        let b = self.peek();
        match b {
            b' ' | b'\t' => {
                self.bump();
                Ok(())
            }
            b'#' => {
                self.skip_comment();
                Ok(())
            }
            b'\\' if matches!(self.peek_at(1), b'\n' | b'\r') => {
                // Explicit line continuation: skip backslash + newline.
                self.bump();
                self.consume_newline_char();
                Ok(())
            }
            b'\r' | b'\n' => {
                let span = self.here(1);
                self.consume_newline_char();
                if self.paren_depth == 0 {
                    // Suppress empty logical lines.
                    if self
                        .tokens
                        .last()
                        .is_some_and(|t| !t.kind.ends_line() && !matches!(t.kind, TokenKind::Indent | TokenKind::Dedent))
                    {
                        self.tokens.push(Token::new(TokenKind::Newline, span));
                    }
                    self.at_line_start = true;
                }
                Ok(())
            }
            b'\'' | b'"' => self.lex_string(StringPrefix::default()),
            b'0'..=b'9' => self.lex_number(),
            b'.' if self.peek_at(1).is_ascii_digit() => self.lex_number(),
            b if b.is_ascii_alphabetic() || b == b'_' || b >= 0x80 => self.lex_name(),
            _ => self.lex_operator(),
        }
    }

    fn lex_name(&mut self) -> Result<(), LexError> {
        let start = self.pos;
        let (line, col) = (self.line, self.col);
        while self.pos < self.bytes.len() {
            let b = self.peek();
            if b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80 {
                self.bump();
            } else {
                break;
            }
        }
        let text = &self.src[start..self.pos];
        // String prefix directly followed by a quote?
        if matches!(self.peek(), b'\'' | b'"') {
            if let Some(prefix) = StringPrefix::parse(text) {
                return self.lex_string_at(prefix, start, line, col);
            }
        }
        let span = Span::new(start as u32, self.pos as u32, line, col);
        let kind = TokenKind::keyword(text).unwrap_or_else(|| TokenKind::Name(text.to_string()));
        self.tokens.push(Token::new(kind, span));
        Ok(())
    }

    fn lex_number(&mut self) -> Result<(), LexError> {
        let start = self.pos;
        let (line, col) = (self.line, self.col);
        let mut is_float = false;
        // Hex/octal/binary forms.
        if self.peek() == b'0' && matches!(self.peek_at(1) | 0x20, b'x' | b'o' | b'b') {
            self.bump();
            self.bump();
            while self.peek().is_ascii_alphanumeric() || self.peek() == b'_' {
                self.bump();
            }
        } else {
            while self.peek().is_ascii_digit() || self.peek() == b'_' {
                self.bump();
            }
            if self.peek() == b'.' && self.peek_at(1) != b'.' {
                is_float = true;
                self.bump();
                while self.peek().is_ascii_digit() || self.peek() == b'_' {
                    self.bump();
                }
            }
            if matches!(self.peek() | 0x20, b'e') && self.pos > start {
                let save = (self.pos, self.line, self.col);
                self.bump();
                if matches!(self.peek(), b'+' | b'-') {
                    self.bump();
                }
                if self.peek().is_ascii_digit() {
                    is_float = true;
                    while self.peek().is_ascii_digit() {
                        self.bump();
                    }
                } else {
                    (self.pos, self.line, self.col) = save;
                }
            }
            // Imaginary suffix: treat as float-ish.
            if matches!(self.peek() | 0x20, b'j') {
                self.bump();
                is_float = true;
            }
        }
        let text = self.src[start..self.pos].to_string();
        let span = Span::new(start as u32, self.pos as u32, line, col);
        let kind = if is_float { TokenKind::Float(text) } else { TokenKind::Int(text) };
        self.tokens.push(Token::new(kind, span));
        Ok(())
    }

    fn lex_string(&mut self, prefix: StringPrefix) -> Result<(), LexError> {
        let start = self.pos;
        let (line, col) = (self.line, self.col);
        self.lex_string_at(prefix, start, line, col)
    }

    /// Lexes a string whose token began at `start` (which may include a
    /// prefix like `r` or `f`); the cursor sits on the opening quote.
    fn lex_string_at(
        &mut self,
        prefix: StringPrefix,
        start: usize,
        line: u32,
        col: u32,
    ) -> Result<(), LexError> {
        let quote = self.peek();
        debug_assert!(matches!(quote, b'\'' | b'"'));
        let triple = self.peek_at(1) == quote && self.peek_at(2) == quote;
        self.bump();
        if triple {
            self.bump();
            self.bump();
        }
        let body_start = self.pos;
        loop {
            if self.pos >= self.bytes.len() {
                return Err(LexError::new(
                    LexErrorKind::UnterminatedString,
                    Span::new(start as u32, self.pos as u32, line, col),
                ));
            }
            let b = self.peek();
            if b == b'\\' && !prefix.raw {
                self.bump();
                if self.pos < self.bytes.len() {
                    self.bump();
                }
                continue;
            }
            if b == b'\\' && prefix.raw {
                // Raw strings still cannot end on a lone backslash before quote.
                self.bump();
                if self.pos < self.bytes.len() {
                    self.bump();
                }
                continue;
            }
            if b == quote {
                if triple {
                    if self.peek_at(1) == quote && self.peek_at(2) == quote {
                        break;
                    }
                    self.bump();
                    continue;
                }
                break;
            }
            if b == b'\n' && !triple {
                return Err(LexError::new(
                    LexErrorKind::UnterminatedString,
                    Span::new(start as u32, self.pos as u32, line, col),
                ));
            }
            self.bump();
        }
        let body_end = self.pos;
        self.bump();
        if triple {
            self.bump();
            self.bump();
        }
        let body = self.src[body_start..body_end].to_string();
        let span = Span::new(start as u32, self.pos as u32, line, col);
        let kind = if prefix.bytes {
            TokenKind::Bytes(body)
        } else if prefix.fstring {
            TokenKind::FStr(body)
        } else {
            TokenKind::Str(body)
        };
        self.tokens.push(Token::new(kind, span));
        Ok(())
    }

    fn lex_operator(&mut self) -> Result<(), LexError> {
        use TokenKind::*;
        let start = self.pos;
        let (line, col) = (self.line, self.col);
        let b = self.bump();
        let mut kind = match b {
            b'(' => {
                self.paren_depth += 1;
                LParen
            }
            b')' => {
                self.paren_depth = self.paren_depth.saturating_sub(1);
                RParen
            }
            b'[' => {
                self.paren_depth += 1;
                LBracket
            }
            b']' => {
                self.paren_depth = self.paren_depth.saturating_sub(1);
                RBracket
            }
            b'{' => {
                self.paren_depth += 1;
                LBrace
            }
            b'}' => {
                self.paren_depth = self.paren_depth.saturating_sub(1);
                RBrace
            }
            b',' => Comma,
            b';' => Semicolon,
            b'~' => Tilde,
            b'.' => {
                if self.peek() == b'.' && self.peek_at(1) == b'.' {
                    self.bump();
                    self.bump();
                    Ellipsis
                } else {
                    Dot
                }
            }
            b':' => {
                if self.peek() == b'=' {
                    self.bump();
                    ColonAssign
                } else {
                    Colon
                }
            }
            b'@' => {
                if self.peek() == b'=' {
                    self.bump();
                    AugAssign("@")
                } else {
                    At
                }
            }
            b'=' => {
                if self.peek() == b'=' {
                    self.bump();
                    EqEq
                } else {
                    Assign
                }
            }
            b'!' => {
                if self.peek() == b'=' {
                    self.bump();
                    NotEq
                } else {
                    return Err(LexError::new(
                        LexErrorKind::UnexpectedChar('!'),
                        Span::new(start as u32, self.pos as u32, line, col),
                    ));
                }
            }
            b'+' => self.maybe_aug(Plus, "+"),
            b'-' => {
                if self.peek() == b'>' {
                    self.bump();
                    Arrow
                } else {
                    self.maybe_aug(Minus, "-")
                }
            }
            b'*' => {
                if self.peek() == b'*' {
                    self.bump();
                    self.maybe_aug(DoubleStar, "**")
                } else {
                    self.maybe_aug(Star, "*")
                }
            }
            b'/' => {
                if self.peek() == b'/' {
                    self.bump();
                    self.maybe_aug(DoubleSlash, "//")
                } else {
                    self.maybe_aug(Slash, "/")
                }
            }
            b'%' => self.maybe_aug(Percent, "%"),
            b'&' => self.maybe_aug(Amp, "&"),
            b'|' => self.maybe_aug(Pipe, "|"),
            b'^' => self.maybe_aug(Caret, "^"),
            b'<' => {
                if self.peek() == b'<' {
                    self.bump();
                    self.maybe_aug(LShift, "<<")
                } else if self.peek() == b'=' {
                    self.bump();
                    Le
                } else {
                    Lt
                }
            }
            b'>' => {
                if self.peek() == b'>' {
                    self.bump();
                    self.maybe_aug(RShift, ">>")
                } else if self.peek() == b'=' {
                    self.bump();
                    Ge
                } else {
                    Gt
                }
            }
            other => {
                return Err(LexError::new(
                    LexErrorKind::UnexpectedChar(other as char),
                    Span::new(start as u32, self.pos as u32, line, col),
                ));
            }
        };
        // `maybe_aug` helpers already consumed trailing `=`, but plain
        // single-char operators need the check here when helper not used.
        if let AugAssign(op) = kind {
            kind = AugAssign(op);
        }
        let span = Span::new(start as u32, self.pos as u32, line, col);
        self.tokens.push(Token::new(kind, span));
        Ok(())
    }

    /// If the next char is `=`, produces an augmented-assignment token for
    /// `op`; otherwise returns `plain`.
    fn maybe_aug(&mut self, plain: TokenKind, op: &'static str) -> TokenKind {
        if self.peek() == b'=' {
            self.bump();
            TokenKind::AugAssign(op)
        } else {
            plain
        }
    }
}

/// Parsed string-literal prefix flags (`r`, `b`, `f`, `u` in any order/case).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
struct StringPrefix {
    raw: bool,
    bytes: bool,
    fstring: bool,
}

impl StringPrefix {
    fn parse(text: &str) -> Option<StringPrefix> {
        if text.is_empty() || text.len() > 3 {
            return None;
        }
        let mut p = StringPrefix::default();
        for c in text.chars() {
            match c.to_ascii_lowercase() {
                'r' => p.raw = true,
                'b' => p.bytes = true,
                'f' => p.fstring = true,
                'u' => {}
                _ => return None,
            }
        }
        Some(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use TokenKind::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).expect("lex ok").into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn simple_assignment() {
        assert_eq!(
            kinds("x = 1\n"),
            vec![Name("x".into()), Assign, Int("1".into()), Newline, EndOfFile]
        );
    }

    #[test]
    fn indentation_block() {
        let src = "if x:\n    y = 1\nz = 2\n";
        let k = kinds(src);
        assert!(k.contains(&Indent));
        assert!(k.contains(&Dedent));
        let indent_pos = k.iter().position(|t| *t == Indent).unwrap();
        let dedent_pos = k.iter().position(|t| *t == Dedent).unwrap();
        assert!(indent_pos < dedent_pos);
    }

    #[test]
    fn nested_dedents_unwind_at_eof() {
        let src = "if a:\n  if b:\n    c\n";
        let k = kinds(src);
        assert_eq!(k.iter().filter(|t| **t == Indent).count(), 2);
        assert_eq!(k.iter().filter(|t| **t == Dedent).count(), 2);
    }

    #[test]
    fn blank_lines_and_comments_ignored() {
        let src = "x = 1\n\n# comment\n   # indented comment\ny = 2\n";
        let k = kinds(src);
        assert!(!k.contains(&Indent));
        assert_eq!(k.iter().filter(|t| matches!(t, Name(_))).count(), 2);
    }

    #[test]
    fn implicit_line_join_in_parens() {
        let src = "f(a,\n  b)\n";
        let k = kinds(src);
        assert!(!k.contains(&Indent));
        // only one Newline (the final one)
        assert_eq!(k.iter().filter(|t| **t == Newline).count(), 1);
    }

    #[test]
    fn explicit_continuation() {
        let src = "x = 1 + \\\n    2\n";
        let k = kinds(src);
        assert_eq!(k.iter().filter(|t| **t == Newline).count(), 1);
        assert!(!k.contains(&Indent));
    }

    #[test]
    fn string_kinds() {
        assert_eq!(kinds("'a'\n")[0], Str("a".into()));
        assert_eq!(kinds("\"a\"\n")[0], Str("a".into()));
        assert_eq!(kinds("b'a'\n")[0], Bytes("a".into()));
        assert_eq!(kinds("f'a{x}'\n")[0], FStr("a{x}".into()));
        assert_eq!(kinds("r'a\\n'\n")[0], Str("a\\n".into()));
        assert_eq!(kinds("'''multi\nline'''\n")[0], Str("multi\nline".into()));
    }

    #[test]
    fn escaped_quote_inside_string() {
        assert_eq!(kinds("'a\\'b'\n")[0], Str("a\\'b".into()));
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("'abc\n").is_err());
        assert!(lex("'''abc").is_err());
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42\n")[0], Int("42".into()));
        assert_eq!(kinds("3.14\n")[0], Float("3.14".into()));
        assert_eq!(kinds("1e5\n")[0], Float("1e5".into()));
        assert_eq!(kinds("0xff\n")[0], Int("0xff".into()));
        assert_eq!(kinds("1_000\n")[0], Int("1_000".into()));
        assert_eq!(kinds(".5\n")[0], Float(".5".into()));
    }

    #[test]
    fn dot_after_int_is_float_but_method_on_name_is_dot() {
        assert_eq!(kinds("x.y\n")[..3], [Name("x".into()), Dot, Name("y".into())]);
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("a ** b // c != d\n")[..7],
            [
                Name("a".into()),
                DoubleStar,
                Name("b".into()),
                DoubleSlash,
                Name("c".into()),
                NotEq,
                Name("d".into())
            ]
        );
        assert_eq!(kinds("x += 1\n")[1], AugAssign("+"));
        assert_eq!(kinds("x //= 1\n")[1], AugAssign("//"));
        assert_eq!(kinds("x := 1\n")[1], ColonAssign);
        assert_eq!(kinds("def f() -> int: pass\n")[3..5], [RParen, Arrow]);
    }

    #[test]
    fn ellipsis_token() {
        assert_eq!(kinds("...\n")[0], Ellipsis);
    }

    #[test]
    fn keywords_vs_names() {
        let k = kinds("for x in y: pass\n");
        assert_eq!(k[0], KwFor);
        assert_eq!(k[1], Name("x".into()));
        assert_eq!(k[2], KwIn);
    }

    #[test]
    fn inconsistent_dedent_is_error() {
        let src = "if a:\n        x\n   y\n  z\n";
        assert!(lex(src).is_err());
    }

    #[test]
    fn unexpected_char_is_error() {
        assert!(lex("a $ b\n").is_err());
        assert!(lex("a ! b\n").is_err());
    }

    #[test]
    fn spans_have_lines() {
        let toks = lex("x = 1\ny = 2\n").unwrap();
        let y = toks
            .iter()
            .find(|t| t.kind == Name("y".into()))
            .expect("y token");
        assert_eq!(y.span.line, 2);
        assert_eq!(y.span.col, 1);
    }

    #[test]
    fn eof_without_trailing_newline_still_closes_line() {
        let k = kinds("x = 1");
        assert_eq!(k.last(), Some(&EndOfFile));
        assert!(k.contains(&Newline));
    }

    #[test]
    fn tabs_expand_to_eight() {
        let src = "if a:\n\tx = 1\n\ty = 2\n";
        let k = kinds(src);
        assert_eq!(k.iter().filter(|t| **t == Indent).count(), 1);
        assert_eq!(k.iter().filter(|t| **t == Dedent).count(), 1);
    }
}
