//! A read-only AST visitor with default recursive traversal.
//!
//! Implementors override the `visit_*` hooks they care about and call the
//! matching `walk_*` free function to continue into children.

use crate::ast::*;

/// Visitor over the AST. All methods default to full traversal.
pub trait Visitor {
    /// Called for every statement.
    fn visit_stmt(&mut self, stmt: &Stmt) {
        walk_stmt(self, stmt);
    }

    /// Called for every expression.
    fn visit_expr(&mut self, expr: &Expr) {
        walk_expr(self, expr);
    }

    /// Called for every function definition (before its body is walked).
    fn visit_function_def(&mut self, def: &FunctionDef) {
        walk_function_def(self, def);
    }

    /// Called for every class definition (before its body is walked).
    fn visit_class_def(&mut self, def: &ClassDef) {
        walk_class_def(self, def);
    }
}

/// Walks every statement of a module.
pub fn walk_module<V: Visitor + ?Sized>(v: &mut V, module: &Module) {
    for stmt in &module.body {
        v.visit_stmt(stmt);
    }
}

/// Default traversal into a statement's children.
pub fn walk_stmt<V: Visitor + ?Sized>(v: &mut V, stmt: &Stmt) {
    match &stmt.kind {
        StmtKind::Import(_) | StmtKind::ImportFrom { .. } => {}
        StmtKind::FunctionDef(def) => v.visit_function_def(def),
        StmtKind::ClassDef(def) => v.visit_class_def(def),
        StmtKind::Return(value) => {
            if let Some(e) = value {
                v.visit_expr(e);
            }
        }
        StmtKind::Delete(targets) => {
            for t in targets {
                v.visit_expr(t);
            }
        }
        StmtKind::Assign { targets, value } => {
            for t in targets {
                v.visit_expr(t);
            }
            v.visit_expr(value);
        }
        StmtKind::AugAssign { target, value, .. } => {
            v.visit_expr(target);
            v.visit_expr(value);
        }
        StmtKind::AnnAssign { target, annotation, value } => {
            v.visit_expr(target);
            v.visit_expr(annotation);
            if let Some(e) = value {
                v.visit_expr(e);
            }
        }
        StmtKind::For { target, iter, body, orelse } => {
            v.visit_expr(target);
            v.visit_expr(iter);
            for s in body.iter().chain(orelse) {
                v.visit_stmt(s);
            }
        }
        StmtKind::While { test, body, orelse } => {
            v.visit_expr(test);
            for s in body.iter().chain(orelse) {
                v.visit_stmt(s);
            }
        }
        StmtKind::If { test, body, orelse } => {
            v.visit_expr(test);
            for s in body.iter().chain(orelse) {
                v.visit_stmt(s);
            }
        }
        StmtKind::With { items, body } => {
            for item in items {
                v.visit_expr(&item.context);
                if let Some(t) = &item.target {
                    v.visit_expr(t);
                }
            }
            for s in body {
                v.visit_stmt(s);
            }
        }
        StmtKind::Raise { exc, cause } => {
            if let Some(e) = exc {
                v.visit_expr(e);
            }
            if let Some(e) = cause {
                v.visit_expr(e);
            }
        }
        StmtKind::Try { body, handlers, orelse, finalbody } => {
            for s in body {
                v.visit_stmt(s);
            }
            for h in handlers {
                if let Some(t) = &h.typ {
                    v.visit_expr(t);
                }
                for s in &h.body {
                    v.visit_stmt(s);
                }
            }
            for s in orelse.iter().chain(finalbody) {
                v.visit_stmt(s);
            }
        }
        StmtKind::Assert { test, msg } => {
            v.visit_expr(test);
            if let Some(e) = msg {
                v.visit_expr(e);
            }
        }
        StmtKind::Expr(e) => v.visit_expr(e),
        StmtKind::Global(_)
        | StmtKind::Nonlocal(_)
        | StmtKind::Pass
        | StmtKind::Break
        | StmtKind::Continue => {}
    }
}

/// Default traversal into a function definition.
pub fn walk_function_def<V: Visitor + ?Sized>(v: &mut V, def: &FunctionDef) {
    for d in &def.decorators {
        v.visit_expr(d);
    }
    for p in &def.params {
        if let Some(a) = &p.annotation {
            v.visit_expr(a);
        }
        if let Some(d) = &p.default {
            v.visit_expr(d);
        }
    }
    if let Some(r) = &def.returns {
        v.visit_expr(r);
    }
    for s in &def.body {
        v.visit_stmt(s);
    }
}

/// Default traversal into a class definition.
pub fn walk_class_def<V: Visitor + ?Sized>(v: &mut V, def: &ClassDef) {
    for d in &def.decorators {
        v.visit_expr(d);
    }
    for b in &def.bases {
        v.visit_expr(b);
    }
    for k in &def.keywords {
        v.visit_expr(&k.value);
    }
    for s in &def.body {
        v.visit_stmt(s);
    }
}

/// Default traversal into an expression's children.
pub fn walk_expr<V: Visitor + ?Sized>(v: &mut V, expr: &Expr) {
    match &expr.kind {
        ExprKind::Name(_)
        | ExprKind::Number(_)
        | ExprKind::Str(_)
        | ExprKind::Bytes(_)
        | ExprKind::Bool(_)
        | ExprKind::NoneLit
        | ExprKind::EllipsisLit => {}
        ExprKind::FString { parts, .. } => {
            for p in parts {
                v.visit_expr(p);
            }
        }
        ExprKind::Attribute { value, .. } => v.visit_expr(value),
        ExprKind::Subscript { value, index } => {
            v.visit_expr(value);
            v.visit_expr(index);
        }
        ExprKind::Slice { lower, upper, step } => {
            for part in [lower, upper, step].into_iter().flatten() {
                v.visit_expr(part);
            }
        }
        ExprKind::Call { func, args, keywords } => {
            v.visit_expr(func);
            for a in args {
                v.visit_expr(a);
            }
            for k in keywords {
                v.visit_expr(&k.value);
            }
        }
        ExprKind::BinOp { left, right, .. } => {
            v.visit_expr(left);
            v.visit_expr(right);
        }
        ExprKind::UnaryOp { operand, .. } => v.visit_expr(operand),
        ExprKind::BoolOp { values, .. } => {
            for e in values {
                v.visit_expr(e);
            }
        }
        ExprKind::Compare { left, comparators, .. } => {
            v.visit_expr(left);
            for e in comparators {
                v.visit_expr(e);
            }
        }
        ExprKind::IfExp { test, body, orelse } => {
            v.visit_expr(test);
            v.visit_expr(body);
            v.visit_expr(orelse);
        }
        ExprKind::Lambda { params, body } => {
            for p in params {
                if let Some(d) = &p.default {
                    v.visit_expr(d);
                }
            }
            v.visit_expr(body);
        }
        ExprKind::Tuple(elems) | ExprKind::List(elems) | ExprKind::Set(elems) => {
            for e in elems {
                v.visit_expr(e);
            }
        }
        ExprKind::Dict { keys, values } => {
            for k in keys.iter().flatten() {
                v.visit_expr(k);
            }
            for e in values {
                v.visit_expr(e);
            }
        }
        ExprKind::Comp { element, value, generators, .. } => {
            v.visit_expr(element);
            if let Some(e) = value {
                v.visit_expr(e);
            }
            for g in generators {
                v.visit_expr(&g.target);
                v.visit_expr(&g.iter);
                for cond in &g.ifs {
                    v.visit_expr(cond);
                }
            }
        }
        ExprKind::Yield { value, .. } => {
            if let Some(e) = value {
                v.visit_expr(e);
            }
        }
        ExprKind::Await(inner) | ExprKind::Starred(inner) => v.visit_expr(inner),
        ExprKind::NamedExpr { target, value } => {
            v.visit_expr(target);
            v.visit_expr(value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    struct Counter {
        calls: usize,
        names: usize,
    }

    impl Visitor for Counter {
        fn visit_expr(&mut self, expr: &Expr) {
            match &expr.kind {
                ExprKind::Call { .. } => self.calls += 1,
                ExprKind::Name(_) => self.names += 1,
                _ => {}
            }
            walk_expr(self, expr);
        }
    }

    #[test]
    fn counts_nested_calls() {
        let m = parse("x = f(g(h(a)), b.m())\n").unwrap();
        let mut c = Counter { calls: 0, names: 0 };
        walk_module(&mut c, &m);
        assert_eq!(c.calls, 4);
        assert!(c.names >= 5); // f, g, h, a, b
    }

    #[test]
    fn visits_into_all_statement_kinds() {
        let src = r#"
import os
def f(a=g()):
    with open(p) as fh:
        try:
            return h(a)
        except E as e:
            raise E2() from e
        finally:
            cleanup()
class C(Base, metaclass=M):
    x: int = init()
for i in gen():
    assert check(i), msg(i)
while cond():
    del cache[k]
y = [go(e) for e in items if keep(e)]
"#;
        let m = parse(src).unwrap();
        let mut c = Counter { calls: 0, names: 0 };
        walk_module(&mut c, &m);
        // open, g, h, E2, cleanup, M?, init, gen, check, msg, cond, go, keep
        assert!(c.calls >= 12, "calls = {}", c.calls);
    }
}
