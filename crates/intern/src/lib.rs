//! # seldon-intern
//!
//! A global, thread-safe string interner for event representations.
//!
//! Seldon's scalability rests on representations being shared across
//! millions of events (§3.2, §7 of the paper). Carrying them as owned
//! `String`s makes every identity check a string hash and every graph
//! union an allocation storm. Interning maps each distinct representation
//! to a [`Symbol`] — a `u32` — once per process; identity becomes an
//! integer compare, cloning becomes a copy, and `Symbol`-indexed vectors
//! replace string-keyed hash maps on the hot path.
//!
//! Strings enter the interner at the parsing edge ([`intern`]) and leave
//! at the reporting edge ([`Symbol::as_str`]); everything between carries
//! `Symbol`s. Interned strings live for the process lifetime (they are
//! leaked), which is the right trade for a corpus analyzer: the set of
//! distinct representations grows sublinearly with corpus size.
//!
//! ## Example
//!
//! ```
//! use seldon_intern::{intern, Symbol};
//!
//! let a = intern("flask.request.args.get()");
//! let b = intern("flask.request.args.get()");
//! assert_eq!(a, b);
//! assert_eq!(a.as_str(), "flask.request.args.get()");
//! ```

#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// An interned string: a dense `u32` handle into the global [`Interner`].
///
/// Equality and hashing are integer operations. The derived `Ord` compares
/// handle order (first-interned first), *not* lexicographic order — resolve
/// with [`Symbol::as_str`] before sorting user-visible output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

impl Symbol {
    /// The index form of the handle, for `Symbol`-indexed vectors.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Resolves the symbol against the global interner.
    ///
    /// # Panics
    ///
    /// Panics if `self` was not produced by the global interner.
    pub fn as_str(self) -> &'static str {
        global().resolve(self)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A thread-safe string interner.
///
/// Lookups take a read lock; only the first interning of a string takes the
/// write lock. Interned strings are leaked so that [`Interner::resolve`]
/// can hand out `&'static str` without holding any lock.
#[derive(Debug, Default)]
pub struct Interner {
    inner: RwLock<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<&'static str, Symbol>,
    strings: Vec<&'static str>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Interns `text`, returning its [`Symbol`]. Idempotent: every call
    /// with an equal string — from any thread — returns the same symbol.
    pub fn intern(&self, text: &str) -> Symbol {
        if let Some(&sym) = self.inner.read().unwrap_or_else(|e| e.into_inner()).map.get(text)
        {
            return sym;
        }
        let mut inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        // Re-check: another thread may have interned between the locks.
        if let Some(&sym) = inner.map.get(text) {
            return sym;
        }
        let leaked: &'static str = Box::leak(text.to_owned().into_boxed_str());
        let sym = Symbol(inner.strings.len() as u32);
        inner.strings.push(leaked);
        inner.map.insert(leaked, sym);
        sym
    }

    /// Looks up `text` without interning it.
    pub fn get(&self, text: &str) -> Option<Symbol> {
        self.inner.read().unwrap_or_else(|e| e.into_inner()).map.get(text).copied()
    }

    /// The string of a symbol produced by this interner.
    ///
    /// # Panics
    ///
    /// Panics if `sym` is out of range for this interner.
    pub fn resolve(&self, sym: Symbol) -> &'static str {
        self.inner.read().unwrap_or_else(|e| e.into_inner()).strings[sym.index()]
    }

    /// Number of distinct strings interned so far.
    pub fn len(&self) -> usize {
        self.inner.read().unwrap_or_else(|e| e.into_inner()).strings.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

static GLOBAL: OnceLock<Interner> = OnceLock::new();

/// The process-wide interner behind [`intern`] / [`Symbol::as_str`].
pub fn global() -> &'static Interner {
    GLOBAL.get_or_init(Interner::new)
}

/// Interns `text` in the global interner.
pub fn intern(text: &str) -> Symbol {
    global().intern(text)
}

/// Looks up `text` in the global interner without interning it.
pub fn lookup(text: &str) -> Option<Symbol> {
    global().get(text)
}

/// Resolves a symbol of the global interner.
pub fn resolve(sym: Symbol) -> &'static str {
    global().resolve(sym)
}

/// Number of distinct strings in the global interner.
pub fn len() -> usize {
    global().len()
}

/// Interns every element of a slice of strings.
pub fn intern_all<S: AsRef<str>>(texts: &[S]) -> Vec<Symbol> {
    texts.iter().map(|t| intern(t.as_ref())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn intern_is_idempotent() {
        let i = Interner::new();
        let a = i.intern("a()");
        let b = i.intern("a()");
        let c = i.intern("b()");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let i = Interner::new();
        let s = i.intern("flask.request.args.get()");
        assert_eq!(i.resolve(s), "flask.request.args.get()");
        assert_eq!(i.get("flask.request.args.get()"), Some(s));
        assert_eq!(i.get("missing"), None);
    }

    #[test]
    fn symbols_are_dense() {
        let i = Interner::new();
        assert!(i.is_empty());
        for n in 0..100 {
            let s = i.intern(&format!("rep{n}()"));
            assert_eq!(s.index(), n);
        }
        assert_eq!(i.len(), 100);
    }

    #[test]
    fn global_interner_display() {
        let s = intern("seldon_intern::display_test()");
        assert_eq!(s.to_string(), "seldon_intern::display_test()");
        assert_eq!(resolve(s), "seldon_intern::display_test()");
        assert_eq!(lookup("seldon_intern::display_test()"), Some(s));
        assert!(len() > 0);
    }

    #[test]
    fn concurrent_intern_returns_identical_symbol() {
        let i = Interner::new();
        let symbols: Vec<Vec<Symbol>> = std::thread::scope(|scope| {
            (0..8)
                .map(|_| {
                    scope.spawn(|| {
                        (0..256).map(|n| i.intern(&format!("api{}()", n % 64))).collect()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(i.len(), 64);
        for per_thread in &symbols[1..] {
            assert_eq!(per_thread, &symbols[0]);
        }
        for (n, &sym) in symbols[0][..64].iter().enumerate() {
            assert_eq!(i.resolve(sym), format!("api{n}()"));
        }
    }

    proptest! {
        #[test]
        fn prop_round_trip(text in "[a-z.()\\[\\]']{0,40}") {
            let sym = intern(&text);
            prop_assert_eq!(resolve(sym), text.as_str());
            prop_assert_eq!(intern(&text), sym);
        }

        #[test]
        fn prop_distinct_strings_distinct_symbols(
            a in "[a-z.()]{1,20}",
            b in "[a-z.()]{1,20}",
        ) {
            let sa = intern(&a);
            let sb = intern(&b);
            prop_assert_eq!(sa == sb, a == b);
        }
    }
}
