//! The wire protocol of `seldon serve`: line-delimited JSON over a Unix
//! domain socket.
//!
//! Every request is one JSON object on one line with a string `op`
//! field; every response is one JSON object on one line with a boolean
//! `ok` field. Failures — malformed JSON, unknown ops, rejected deltas,
//! contained engine panics — are reported as `{"ok": false, "error":
//! "..."}` responses; they never terminate the daemon.
//!
//! Requests:
//!
//! | op         | extra fields                                | response payload |
//! |------------|---------------------------------------------|------------------|
//! | `ping`     | —                                           | `pong: true` |
//! | `spec`     | —                                           | `spec`, `solve` |
//! | `stats`    | —                                           | counters + corpus shape |
//! | `metrics`  | —                                           | `metrics` (registry JSON) |
//! | `delta`    | `add`, `change`, `remove`: path arrays      | `spec`, `solve`, delta counters |
//! | `shutdown` | —                                           | `shutdown: true` |
//!
//! `delta` paths are read by the **daemon** process (add/change contents
//! come from its filesystem view), mirroring how `seldon learn` reads a
//! corpus from disk.

use seldon_telemetry::json::{self, Json};

use crate::engine::DeltaOutcome;

/// A parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Return the current specification without touching the corpus.
    Spec,
    /// Return lifetime counters and the corpus shape.
    Stats,
    /// Return the serve metrics registry as JSON.
    Metrics,
    /// Apply a corpus delta (paths resolved by the daemon).
    Delta {
        /// Paths of files to start tracking.
        add: Vec<String>,
        /// Paths of tracked files whose contents changed.
        change: Vec<String>,
        /// Paths of tracked files to drop.
        remove: Vec<String>,
    },
    /// Respond, then exit the accept loop and remove the socket.
    Shutdown,
}

impl Request {
    /// Parses one request line. Errors are protocol-level and become
    /// `ok: false` responses.
    pub fn parse(line: &str) -> Result<Request, String> {
        let value = json::parse(line).map_err(|e| format!("malformed request JSON: {e}"))?;
        let op = value
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| "request must carry a string `op` field".to_string())?;
        match op {
            "ping" => Ok(Request::Ping),
            "spec" => Ok(Request::Spec),
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "shutdown" => Ok(Request::Shutdown),
            "delta" => Ok(Request::Delta {
                add: path_list(&value, "add")?,
                change: path_list(&value, "change")?,
                remove: path_list(&value, "remove")?,
            }),
            other => Err(format!("unknown op `{other}`")),
        }
    }
}

/// Reads an optional string-array field; absent means empty.
fn path_list(value: &Json, key: &str) -> Result<Vec<String>, String> {
    match value.get(key) {
        None | Some(Json::Null) => Ok(Vec::new()),
        Some(field) => {
            let arr = field.as_arr().ok_or_else(|| format!("`{key}` must be an array"))?;
            arr.iter()
                .map(|entry| {
                    entry
                        .as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("`{key}` entries must be path strings"))
                })
                .collect()
        }
    }
}

/// One-line `{"ok": false, "error": ...}` response.
pub fn error_response(message: &str) -> String {
    Json::Obj(vec![
        ("ok".to_string(), Json::Bool(false)),
        ("error".to_string(), Json::str(message)),
    ])
    .compact()
}

/// One-line `{"ok": true, ...fields}` response.
pub fn ok_response(fields: Vec<(String, Json)>) -> String {
    let mut obj = vec![("ok".to_string(), Json::Bool(true))];
    obj.extend(fields);
    Json::Obj(obj).compact()
}

/// The response payload for a served delta.
pub fn delta_response(outcome: &DeltaOutcome) -> String {
    let mut fields = vec![
        ("solve".to_string(), Json::str(outcome.solve)),
        ("files".to_string(), Json::num(outcome.files as f64)),
        ("events".to_string(), Json::num(outcome.events as f64)),
        ("edges".to_string(), Json::num(outcome.edges as f64)),
        ("reparsed".to_string(), Json::num(outcome.reparsed as f64)),
        ("removed".to_string(), Json::num(outcome.removed as f64)),
        ("evicted".to_string(), Json::num(outcome.evicted as f64)),
        ("fragments_reused".to_string(), Json::num(outcome.fragments_reused as f64)),
        ("fragments_collected".to_string(), Json::num(outcome.fragments_collected as f64)),
        ("learned_entries".to_string(), Json::num(outcome.learned_entries as f64)),
        ("elapsed_us".to_string(), Json::num(outcome.elapsed.as_micros() as f64)),
        ("spec".to_string(), Json::str(&outcome.spec)),
    ];
    if let Some(margin) = outcome.warm_margin {
        fields.push(("warm_margin".to_string(), Json::num(margin)));
    }
    if !outcome.faults.is_empty() {
        fields.push((
            "faults".to_string(),
            Json::Arr(outcome.faults.iter().map(Json::str).collect()),
        ));
    }
    ok_response(fields)
}
