//! The Unix-socket daemon loop and the matching client helper.
//!
//! [`run_daemon`] accepts connections one at a time (requests are
//! serialized through the single resident [`ServeEngine`] anyway) and
//! answers each request line with one response line. Request handling is
//! wrapped in `catch_unwind`: a panic inside the engine produces an
//! `ok: false` response and the daemon keeps serving — the engine clears
//! its `built` flag before mutating state, so the next delta rebuilds
//! instead of serving a spec that no longer matches the corpus.

use std::fs;
use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use seldon_telemetry::json::Json;

use crate::engine::{Delta, ServeEngine};
use crate::protocol::{delta_response, error_response, ok_response, Request};

/// The daemon: one resident engine plus its serving options.
pub struct ServeDaemon {
    /// The resident incremental engine.
    pub engine: ServeEngine,
    /// When set, a `mode: "served-incremental"` run manifest is written
    /// here after every applied delta.
    pub telemetry_path: Option<PathBuf>,
    /// Protocol errors answered (malformed requests, rejected deltas,
    /// contained panics).
    pub errors: usize,
}

impl ServeDaemon {
    /// Wraps an engine with no manifest sink.
    pub fn new(engine: ServeEngine) -> ServeDaemon {
        ServeDaemon { engine, telemetry_path: None, errors: 0 }
    }

    /// Handles one request line; returns the response line and whether
    /// the daemon should shut down.
    pub fn handle_line(&mut self, line: &str) -> (String, bool) {
        let request = match Request::parse(line) {
            Ok(request) => request,
            Err(message) => {
                self.errors += 1;
                return (error_response(&message), false);
            }
        };
        match request {
            Request::Ping => (ok_response(vec![("pong".to_string(), Json::Bool(true))]), false),
            Request::Shutdown => {
                (ok_response(vec![("shutdown".to_string(), Json::Bool(true))]), true)
            }
            Request::Spec => match self.engine.spec() {
                Some(spec) => (
                    ok_response(vec![
                        ("solve".to_string(), Json::str(self.engine.last_solve())),
                        ("spec".to_string(), Json::str(spec)),
                    ]),
                    false,
                ),
                None => {
                    self.errors += 1;
                    (error_response("no specification built yet"), false)
                }
            },
            Request::Stats => (self.stats_response(), false),
            Request::Metrics => {
                let mut reg = seldon_telemetry::MetricsRegistry::default();
                self.engine.fill_metrics(&mut reg);
                (ok_response(vec![("metrics".to_string(), reg.to_json())]), false)
            }
            Request::Delta { add, change, remove } => self.handle_delta(add, change, remove),
        }
    }

    fn stats_response(&self) -> String {
        let c = self.engine.counters();
        let num = |v: usize| Json::num(v as f64);
        ok_response(vec![
            ("files".to_string(), num(self.engine.file_count())),
            ("deltas".to_string(), num(c.deltas)),
            ("noops".to_string(), num(c.noops)),
            ("unchanged".to_string(), num(c.unchanged)),
            ("rebuilds".to_string(), num(c.rebuilds)),
            ("replays".to_string(), num(c.replays)),
            ("solves_scores".to_string(), num(c.solves_scores)),
            ("solves_warm".to_string(), num(c.solves_warm)),
            ("solves_cold".to_string(), num(c.solves_cold)),
            ("reparsed".to_string(), num(c.reparsed)),
            ("removed".to_string(), num(c.removed)),
            ("evicted".to_string(), num(c.evicted)),
            ("fragments_reused".to_string(), num(c.fragments_reused)),
            ("fragments_collected".to_string(), num(c.fragments_collected)),
            ("protocol_errors".to_string(), num(self.errors)),
            ("solve".to_string(), Json::str(self.engine.last_solve())),
        ])
    }

    /// Reads delta contents from disk, applies the delta with panics
    /// contained, and answers with the served spec or the failure.
    fn handle_delta(
        &mut self,
        add: Vec<String>,
        change: Vec<String>,
        remove: Vec<String>,
    ) -> (String, bool) {
        let mut delta = Delta::default();
        for (paths, slot) in
            [(add, &mut delta.add), (change, &mut delta.change)]
        {
            for path in paths {
                match fs::read_to_string(&path) {
                    Ok(content) => slot.push((PathBuf::from(path), content)),
                    Err(err) => {
                        self.errors += 1;
                        return (
                            error_response(&format!("cannot read `{path}`: {err}")),
                            false,
                        );
                    }
                }
            }
        }
        delta.remove = remove.into_iter().map(PathBuf::from).collect();
        let applied = catch_unwind(AssertUnwindSafe(|| self.engine.apply_delta(&delta)));
        match applied {
            Ok(Ok(outcome)) => {
                if let Some(path) = self.telemetry_path.as_deref() {
                    let manifest = self.engine.manifest("serve");
                    if let Err(err) = fs::write(path, manifest.to_json()) {
                        eprintln!(
                            "seldon serve: cannot write telemetry `{}`: {err}",
                            path.display()
                        );
                    }
                }
                (delta_response(&outcome), false)
            }
            Ok(Err(err)) => {
                self.errors += 1;
                (error_response(&err.to_string()), false)
            }
            Err(panic) => {
                self.errors += 1;
                let detail = panic_message(&panic);
                (
                    error_response(&format!(
                        "delta panicked (contained; state will rebuild on the next delta): {detail}"
                    )),
                    false,
                )
            }
        }
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Binds `socket` (replacing any stale socket file) and serves requests
/// until a `shutdown` request arrives. The socket file is removed on
/// exit. Prints one `listening on ...` line to stderr once ready — test
/// and CI harnesses wait for it.
pub fn run_daemon(daemon: &mut ServeDaemon, socket: &Path) -> io::Result<()> {
    if socket.exists() {
        fs::remove_file(socket)?;
    }
    let listener = UnixListener::bind(socket)?;
    eprintln!(
        "seldon serve: listening on {} ({} files tracked)",
        socket.display(),
        daemon.engine.file_count()
    );
    let mut shutdown = false;
    for stream in listener.incoming() {
        let stream = match stream {
            Ok(stream) => stream,
            Err(_) => continue,
        };
        let mut writer = match stream.try_clone() {
            Ok(clone) => clone,
            Err(_) => continue,
        };
        let reader = BufReader::new(stream);
        for line in reader.lines() {
            let line = match line {
                Ok(line) => line,
                Err(_) => break,
            };
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            let (response, stop) = daemon.handle_line(trimmed);
            if writeln!(writer, "{response}").and_then(|()| writer.flush()).is_err() {
                break;
            }
            if stop {
                shutdown = true;
                break;
            }
        }
        if shutdown {
            break;
        }
    }
    let _ = fs::remove_file(socket);
    Ok(())
}

/// Sends one request line to a daemon and returns its one response
/// line. Retries the connection until `wait` elapses, so callers can
/// race daemon startup (`--wait`).
pub fn client_request(socket: &Path, line: &str, wait: Duration) -> io::Result<String> {
    let deadline = Instant::now() + wait;
    let stream = loop {
        match UnixStream::connect(socket) {
            Ok(stream) => break stream,
            Err(err) => {
                if Instant::now() >= deadline {
                    return Err(err);
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    };
    let mut writer = stream.try_clone()?;
    writeln!(writer, "{line}")?;
    writer.flush()?;
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    reader.read_line(&mut response)?;
    if response.is_empty() {
        return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "daemon closed the connection"));
    }
    Ok(response.trim_end().to_string())
}
