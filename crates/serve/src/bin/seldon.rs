//! The `seldon` command-line tool: taint-check real source files and learn
//! taint specifications from a directory of code, end to end. Both the
//! Python frontend (`.py`) and the JS-like frontend (`.js`) feed the same
//! language-neutral pipeline; a mixed tree analyzes both side by side.
//!
//! ```text
//! seldon graph   <file.py|file.js> [--dot]
//! seldon ir-dump <file.py|file.js>
//! seldon check   <path...> [--spec <spec.txt>] [--param-sensitive]
//! seldon learn   <path...> [--seed <spec.txt>] [--out <learned.txt>]
//!                          [--cache-dir <dir>] [--no-cache]
//!                          [--telemetry <out.json>] [--trace <out.trace.json>]
//! ```
//!
//! `ir-dump` prints the lowered language-neutral IR event/op stream of one
//! file — the exact trace the graph builder replays — for diffing
//! frontends and debugging lowering changes.
//!
//! `--spec`/`--seed` files use the paper's App. B format (`o:`/`a:`/`i:`/
//! `b:`/`p:` lines); without one, the paper's embedded seed specification
//! is used.
//!
//! All commands accept `--lenient` (default: recover from per-statement
//! parse errors) or `--strict` (abort on the first unparseable file), and
//! `--log-level off|info|debug` for stage logging on stderr. `learn`
//! additionally accepts `--telemetry <file>` to write the machine-readable
//! run manifest and `--trace <file>` for a Chrome trace-event file
//! (loadable in `chrome://tracing` or Perfetto).
//!
//! `learn --cache-dir <dir>` attaches the crash-safe artifact cache: warm
//! re-runs serve unchanged files (and, when nothing relevant changed, the
//! whole solve) from validated on-disk entries, with byte-identical
//! output. Damaged entries are quarantined and recomputed — cache faults
//! warn but never change the exit code. `--no-cache` force-disables
//! caching and conflicts with `--cache-dir`.
//!
//! Exit codes: `0` — clean run, nothing found (including an empty input
//! set, which learns the empty specification); `1` — violations found or
//! the analysis degraded (recovered/quarantined files, runtime failures);
//! `2` — usage errors (bad arguments, unreadable spec, no input files for
//! `graph`/`check`).

use seldon_cache::ArtifactCache;
use seldon_constraints::GenOptions;
use seldon_core::{
    analyze_corpus_with, run_full, AnalysisReport, AnalyzeOptions, AnalyzedCorpus,
    CacheFaultReport, CheckpointOutcome, FaultPolicy, FileOutcome, Frontend, SeldonOptions,
    WarmStartOptions,
};
use seldon_corpus::{Corpus, Project, SourceFile};
use seldon_propgraph::{to_dot, Budget, FileId};
use seldon_solver::{EarlyStop, SolveOptions};
use seldon_specs::{paper_seed, TaintSpec};
use seldon_taint::{render_reports, reports_to_json, TaintAnalyzer, TaintOptions};
use seldon_serve::{client_request, run_daemon, Delta, EngineConfig, ServeDaemon, ServeEngine};
use seldon_telemetry::json::{self, Json};
use seldon_telemetry::{diff_manifests, DiffOptions, Level, RunManifest, Telemetry};
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

/// How a successfully completed command ends.
enum Outcome {
    /// Nothing found, nothing degraded: exit 0.
    Clean,
    /// Violations reported or the analysis degraded: exit 1.
    Findings,
}

/// How a failed command ends.
enum CliError {
    /// Bad invocation (arguments, missing inputs): exit 2.
    Usage(String),
    /// The run itself failed (strict-mode parse failure, I/O): exit 1.
    Runtime(String),
}

impl CliError {
    fn usage(msg: impl Into<String>) -> Self {
        CliError::Usage(msg.into())
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match cmd.as_str() {
        "graph" => cmd_graph(rest),
        "ir-dump" => cmd_ir_dump(rest),
        "check" => cmd_check(rest),
        "learn" => cmd_learn(rest),
        "serve" => cmd_serve(rest),
        "client" => cmd_client(rest),
        "report" => cmd_report(rest),
        "metrics-dump" => cmd_metrics_dump(rest),
        "diff-runs" => cmd_diff_runs(rest),
        "-h" | "--help" | "help" => {
            println!("{USAGE}");
            Ok(Outcome::Clean)
        }
        other => Err(CliError::usage(format!("unknown command `{other}`\n{USAGE}"))),
    };
    match result {
        Ok(Outcome::Clean) => ExitCode::SUCCESS,
        Ok(Outcome::Findings) => ExitCode::from(1),
        Err(CliError::Runtime(e)) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
        Err(CliError::Usage(e)) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  seldon graph   <file.py|file.js> [--dot] [--strict|--lenient] [--log-level off|info|debug]
  seldon ir-dump <file.py|file.js>
  seldon check   <path...> [--spec <spec.txt>] [--param-sensitive] [--format json] [--strict|--lenient] [--log-level off|info|debug]
  seldon learn   <path...> [--seed <spec.txt>] [--out <learned.txt>] [--strict|--lenient]
                 [--cache-dir <dir>] [--no-cache] [--solver-threads <n>]
                 [--early-stop|--no-early-stop]
                 [--telemetry <manifest.json>] [--trace <out.trace.json>]
                 [--score-dump] [--log-level off|info|debug]
  seldon serve   <path...> --socket <sock> [--seed <spec.txt>] [--cache-dir <dir>|--no-cache]
                 [--cutoff <n>] [--solver-threads <n>] [--no-warm-start]
                 [--telemetry <manifest.json>] [--strict|--lenient] [--log-level off|info|debug]
  seldon client  <ping|spec|stats|metrics|delta|shutdown> --socket <sock>
                 [--add <p,..>] [--change <p,..>] [--remove <p,..>] [--out <spec.txt>] [--wait <secs>]
  seldon report  <manifest.json> [--top <k>]
  seldon metrics-dump <manifest.json>
  seldon diff-runs <baseline.json> <candidate.json> [--tolerance <pct>]

paths may mix .py (Python frontend) and .js (JS-like frontend) files
exit codes: 0 clean; 1 violations found, degraded analysis, or run regression; 2 usage error";

/// Directory recursion bound; also caps how far a symlink chain can lead.
const MAX_WALK_DEPTH: usize = 64;

/// Recursively collects `.py` and `.js` files under each path. Unreadable
/// entries are skipped with a warning; symlink cycles are broken by a
/// visited set of canonical directory paths. An empty result is not an
/// error here — `graph`/`check` reject it ([`require_files`]) while
/// `learn` treats it as the empty corpus.
fn collect_source_files(paths: &[PathBuf]) -> Result<Vec<PathBuf>, CliError> {
    let mut out = Vec::new();
    let mut visited = HashSet::new();
    for p in paths {
        if !p.exists() {
            return Err(CliError::usage(format!("no such path: {}", p.display())));
        }
        walk(p, &mut out, &mut visited, 0);
    }
    out.sort();
    out.dedup();
    Ok(out)
}

/// Usage error when a command needs at least one input file.
fn require_files(files: Vec<PathBuf>) -> Result<Vec<PathBuf>, CliError> {
    if files.is_empty() {
        return Err(CliError::usage("no .py or .js files found"));
    }
    Ok(files)
}

fn walk(p: &Path, out: &mut Vec<PathBuf>, visited: &mut HashSet<PathBuf>, depth: usize) {
    if depth > MAX_WALK_DEPTH {
        eprintln!(
            "warning: skipping {}: nesting deeper than {MAX_WALK_DEPTH} levels",
            p.display()
        );
        return;
    }
    if p.is_file() {
        if p.extension().is_some_and(|e| e == "py" || e == "js") {
            out.push(p.to_path_buf());
        }
        return;
    }
    if p.is_dir() {
        match p.canonicalize() {
            Ok(canonical) => {
                if !visited.insert(canonical) {
                    // Second arrival at the same real directory: a symlink
                    // cycle or a diamond; either way, walking it again can
                    // only duplicate or loop.
                    return;
                }
            }
            Err(e) => {
                eprintln!("warning: skipping {}: {e}", p.display());
                return;
            }
        }
        let entries = match std::fs::read_dir(p) {
            Ok(entries) => entries,
            Err(e) => {
                eprintln!("warning: skipping {}: {e}", p.display());
                return;
            }
        };
        for entry in entries {
            match entry {
                Ok(entry) => walk(&entry.path(), out, visited, depth + 1),
                Err(e) => eprintln!("warning: skipping entry in {}: {e}", p.display()),
            }
        }
    }
}

fn load_spec(path: Option<&str>) -> Result<TaintSpec, CliError> {
    match path {
        Some(p) => {
            let text = std::fs::read_to_string(p)
                .map_err(|e| CliError::usage(format!("cannot read {p}: {e}")))?;
            TaintSpec::parse(&text).map_err(|e| CliError::usage(e.to_string()))
        }
        None => Ok(paper_seed()),
    }
}

/// Positional paths, `--opt value` pairs, and bare flags from one command line.
type ParsedArgs<'a> = (Vec<PathBuf>, HashMap<&'a str, &'a str>, Vec<&'a str>);

/// Parses paths + named options from `rest`.
fn split_args<'a>(
    rest: &'a [String],
    flags: &[&str],
    options: &[&str],
) -> Result<ParsedArgs<'a>, CliError> {
    let mut paths = Vec::new();
    let mut opts = HashMap::new();
    let mut set_flags = Vec::new();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        if flags.contains(&a.as_str()) {
            set_flags.push(a.as_str());
        } else if options.contains(&a.as_str()) {
            let v = it.next().ok_or_else(|| CliError::usage(format!("{a} needs a value")))?;
            opts.insert(a.as_str(), v.as_str());
        } else if a.starts_with('-') {
            return Err(CliError::usage(format!("unknown option `{a}`")));
        } else {
            paths.push(PathBuf::from(a));
        }
    }
    Ok((paths, opts, set_flags))
}

fn policy_from_flags(flags: &[&str]) -> Result<FaultPolicy, CliError> {
    match (flags.contains(&"--strict"), flags.contains(&"--lenient")) {
        (true, true) => Err(CliError::usage("--strict and --lenient are mutually exclusive")),
        (true, false) => Ok(FaultPolicy::FailFast),
        _ => Ok(FaultPolicy::Recover),
    }
}

/// The stderr log level from `--log-level` (default off).
fn level_from_opts(opts: &HashMap<&str, &str>) -> Result<Level, CliError> {
    match opts.get("--log-level") {
        Some(v) => v.parse::<Level>().map_err(CliError::usage),
        None => Ok(Level::Off),
    }
}

/// A set of on-disk files analyzed through the fault-tolerant pipeline.
struct Analysis {
    analyzed: AnalyzedCorpus,
    report: AnalysisReport,
    /// Display name per [`FileId`] index.
    names: Vec<String>,
    /// Files that could not even be read (skipped with a warning).
    io_skipped: usize,
}

impl Analysis {
    fn is_degraded(&self) -> bool {
        self.io_skipped > 0 || self.report.is_degraded()
    }
}

/// Reads `files` from disk into a single-project corpus. Unreadable files
/// are skipped with a warning and counted; returns the corpus, the display
/// name per [`FileId`] index, and the skip count.
fn read_corpus(files: &[PathBuf]) -> Result<(Corpus, Vec<String>, usize), CliError> {
    let mut sources = Vec::new();
    let mut names = Vec::new();
    let mut io_skipped = 0usize;
    for f in files {
        match std::fs::read_to_string(f) {
            Ok(content) => {
                names.push(f.display().to_string());
                sources.push(SourceFile { path: f.display().to_string(), content });
            }
            Err(e) => {
                eprintln!("warning: skipping {}: {e}", f.display());
                io_skipped += 1;
            }
        }
    }
    if sources.is_empty() {
        return Err(CliError::usage("no readable source files"));
    }
    let corpus = Corpus {
        projects: vec![Project { name: "cli".into(), files: sources }],
        ..Default::default()
    };
    Ok((corpus, names, io_skipped))
}

/// The [`AnalyzeOptions`] every command uses: `policy` plus default
/// budgets, with stage telemetry wired through.
fn cli_analyze_opts(policy: FaultPolicy, tele: &Telemetry) -> AnalyzeOptions {
    AnalyzeOptions {
        policy,
        budget: Some(Budget::default()),
        telemetry: tele.clone(),
        ..Default::default()
    }
}

/// Reads `files`, wraps them as a single-project corpus, and runs the
/// fault-tolerant pipeline over it under `policy` with default budgets.
fn analyze_files(
    files: &[PathBuf],
    policy: FaultPolicy,
    tele: &Telemetry,
) -> Result<Analysis, CliError> {
    let (corpus, names, io_skipped) = read_corpus(files)?;
    let opts = cli_analyze_opts(policy, tele);
    let (analyzed, report) = analyze_corpus_with(&corpus, &opts)
        .map_err(|e| CliError::Runtime(e.to_string()))?;
    Ok(Analysis { analyzed, report, names, io_skipped })
}

/// Prints per-file degradation warnings and the summary line to stderr.
fn print_degradation(analysis: &Analysis) {
    for f in &analysis.report.files {
        match &f.outcome {
            FileOutcome::Ok => {}
            FileOutcome::Recovered { errors } => {
                eprintln!("warning: recovered {} ({errors} parse error(s) skipped)", f.path)
            }
            FileOutcome::Skipped { error }
            | FileOutcome::OverBudget { error }
            | FileOutcome::Panicked { error } => {
                eprintln!("warning: quarantined {}: {error}", f.path)
            }
        }
    }
    // Cache faults were contained (the artifact was recomputed), so they
    // warn without degrading the run.
    for cf in &analysis.report.cache_faults {
        eprintln!("warning: cache fault ({}): {}", cf.path, cf.fault);
    }
    if analysis.is_degraded() {
        eprintln!("degraded analysis: {}", analysis.report.summary());
    }
}

fn cmd_graph(rest: &[String]) -> Result<Outcome, CliError> {
    let (paths, opts, flags) =
        split_args(rest, &["--dot", "--strict", "--lenient"], &["--log-level"])?;
    let policy = policy_from_flags(&flags)?;
    let tele = Telemetry::disabled().with_log_level(level_from_opts(&opts)?);
    let files = require_files(collect_source_files(&paths)?)?;
    let analysis = analyze_files(&files, policy, &tele)?;
    print_degradation(&analysis);
    let graph = &analysis.analyzed.graph;
    if flags.contains(&"--dot") {
        print!("{}", to_dot(graph, &HashMap::new()));
    } else {
        println!("{} events, {} edges", graph.event_count(), graph.edge_count());
        for (id, event) in graph.events() {
            println!("  {id} [{}] {} (line {})", event.kind, event.rep(), event.span.line);
        }
        for (from, to) in graph.edges() {
            println!("  {} -> {}", graph.event(from).rep(), graph.event(to).rep());
        }
    }
    Ok(if analysis.is_degraded() { Outcome::Findings } else { Outcome::Clean })
}

/// Prints the language-neutral IR trace one file lowers to — the exact
/// event/op stream the graph builder replays. Dispatches to the frontend
/// by extension ([`Frontend::of_path`]) and parses strictly: a lowering
/// dump of a file that does not parse would be misleading.
fn cmd_ir_dump(rest: &[String]) -> Result<Outcome, CliError> {
    let (paths, _, _) = split_args(rest, &[], &[])?;
    let [path] = paths.as_slice() else {
        return Err(CliError::usage("ir-dump expects exactly one file"));
    };
    let content = std::fs::read_to_string(path)
        .map_err(|e| CliError::usage(format!("cannot read {}: {e}", path.display())))?;
    let ir = match Frontend::of_path(&path.display().to_string()) {
        Frontend::Python => seldon_propgraph::lower_source(&content),
        Frontend::Js => seldon_jsfront::lower_js_source(&content),
    }
    .map_err(|e| CliError::Runtime(format!("{}: {e}", path.display())))?;
    print!("{}", ir.dump());
    Ok(Outcome::Clean)
}

fn cmd_check(rest: &[String]) -> Result<Outcome, CliError> {
    let (paths, opts, flags) = split_args(
        rest,
        &["--param-sensitive", "--strict", "--lenient"],
        &["--spec", "--format", "--log-level"],
    )?;
    let policy = policy_from_flags(&flags)?;
    let tele = Telemetry::disabled().with_log_level(level_from_opts(&opts)?);
    let spec = load_spec(opts.get("--spec").copied())?;
    let files = require_files(collect_source_files(&paths)?)?;
    let analysis = analyze_files(&files, policy, &tele)?;
    print_degradation(&analysis);
    let graph = &analysis.analyzed.graph;
    let analyzer = TaintAnalyzer::with_options(
        graph,
        &spec,
        TaintOptions { param_sensitive: flags.contains(&"--param-sensitive") },
    );
    let violations = analyzer.find_violations();
    let outcome = if violations.is_empty() && !analysis.is_degraded() {
        Outcome::Clean
    } else {
        Outcome::Findings
    };
    if opts.get("--format") == Some(&"json") {
        println!("{}", reports_to_json(&violations, graph));
        return Ok(outcome);
    }
    if violations.is_empty() {
        println!("no violations found in {} file(s)", analysis.names.len());
        return Ok(outcome);
    }
    // Group reports per file for readability.
    for (i, name) in analysis.names.iter().enumerate() {
        let of_file: Vec<_> = violations
            .iter()
            .filter(|v| v.file == FileId(i as u32))
            .cloned()
            .collect();
        if of_file.is_empty() {
            continue;
        }
        println!("== {name} ==");
        print!("{}", render_reports(&of_file, graph));
    }
    println!("{} violation(s) total", violations.len());
    Ok(outcome)
}

fn cmd_learn(rest: &[String]) -> Result<Outcome, CliError> {
    let (paths, opts, flags) = split_args(
        rest,
        &[
            "--strict",
            "--lenient",
            "--no-cache",
            "--score-dump",
            "--early-stop",
            "--no-early-stop",
        ],
        &[
            "--seed",
            "--out",
            "--cutoff",
            "--cache-dir",
            "--solver-threads",
            "--telemetry",
            "--trace",
            "--log-level",
        ],
    )?;
    let policy = policy_from_flags(&flags)?;
    let cache_dir = opts.get("--cache-dir").copied();
    if cache_dir.is_some() && flags.contains(&"--no-cache") {
        return Err(CliError::usage("--cache-dir and --no-cache are mutually exclusive"));
    }
    let manifest_path = opts.get("--telemetry").copied();
    let trace_path = opts.get("--trace").copied();
    let score_dump = flags.contains(&"--score-dump");
    if score_dump && manifest_path.is_none() {
        return Err(CliError::usage("--score-dump needs --telemetry <manifest.json>"));
    }
    // Either output file needs the recorder; `--log-level` alone only logs.
    let tele = if manifest_path.is_some() || trace_path.is_some() {
        Telemetry::recording()
    } else {
        Telemetry::disabled()
    }
    .with_log_level(level_from_opts(&opts)?);
    let seed = load_spec(opts.get("--seed").copied())?;
    let files = collect_source_files(&paths)?;
    if files.is_empty() {
        // An empty corpus is a legitimate (if vacuous) input: learn the
        // empty specification and exit clean.
        eprintln!("warning: no .py or .js files found; learned the empty specification");
        if let Some(path) = opts.get("--out") {
            std::fs::write(path, "")
                .map_err(|e| CliError::Runtime(format!("cannot write {path}: {e}")))?;
            eprintln!("wrote 0 learned entries to {path}");
        }
        return Ok(Outcome::Clean);
    }
    let (corpus, names, io_skipped) = read_corpus(&files)?;
    // A failed cache open degrades loudly to an uncached (but correct) run;
    // faults found while validating the cache directory are warned and
    // folded into the report below.
    let mut open_faults = Vec::new();
    let cache = match cache_dir {
        None => None,
        Some(dir) => match ArtifactCache::open(Path::new(dir)) {
            Ok((cache, faults)) => {
                open_faults = faults;
                Some(Arc::new(cache))
            }
            Err(e) => {
                eprintln!("warning: cannot open cache at {dir}: {e}; running uncached");
                None
            }
        },
    };
    let cutoff: usize = opts
        .get("--cutoff")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if names.len() < 50 { 2 } else { 5 });
    // `--solver-threads 0` means "all cores"; the learned spec is
    // byte-identical for any thread count, so this is purely a cost knob.
    let solver_threads = match opts.get("--solver-threads") {
        Some(v) => {
            let t: usize = v.parse().map_err(|_| {
                CliError::usage(format!("--solver-threads expects a number, got `{v}`"))
            })?;
            if t == 0 {
                std::thread::available_parallelism().map_or(1, |n| n.get())
            } else {
                t
            }
        }
        None => 1,
    };
    // Early-stop is on by default (SolveOptions::default()); the flags
    // force it either way, e.g. `--no-early-stop` to burn the full
    // `max_iters` budget for an exactly reproducible epoch count.
    if flags.contains(&"--early-stop") && flags.contains(&"--no-early-stop") {
        return Err(CliError::usage("--early-stop and --no-early-stop are mutually exclusive"));
    }
    let early_stop = if flags.contains(&"--no-early-stop") {
        None
    } else {
        Some(EarlyStop::default())
    };
    let options = SeldonOptions {
        gen: GenOptions { rep_cutoff: cutoff, ..Default::default() },
        solve: SolveOptions { threads: solver_threads, early_stop, ..Default::default() },
        score_dump,
        ..Default::default()
    };
    let mut analyze_opts = cli_analyze_opts(policy, &tele);
    analyze_opts.cache = cache.clone();
    let full = run_full(&corpus, &seed, "learn", &analyze_opts, &options)
        .map_err(|e| CliError::Runtime(e.to_string()))?;
    let mut report = full.report;
    for fault in open_faults {
        report
            .cache_faults
            .insert(0, CacheFaultReport { path: "<index>".to_string(), fault });
    }
    let analysis = Analysis { analyzed: full.analyzed, report, names, io_skipped };
    print_degradation(&analysis);
    let graph = &analysis.analyzed.graph;
    eprintln!(
        "analyzed {} files: {} events, {} edges",
        analysis.names.len(),
        graph.event_count(),
        graph.edge_count()
    );
    let run = &full.run;
    // Checkpoint-reuse and cache summaries go through the stage logger so
    // `--log-level off` (the default) silences them; the solved line stays
    // unconditional — it is the command's primary progress output.
    match full.checkpoint.outcome {
        CheckpointOutcome::HitFull => {
            let s = full.checkpoint.summary.unwrap_or_default();
            tele.info(|| {
                format!(
                    "checkpoint full hit: replayed {} constraints over {} variables ({} iterations, solve skipped)",
                    s.constraints, s.vars, run.solution.iterations
                )
            });
        }
        CheckpointOutcome::HitScores => tele.info(|| {
            format!(
                "{} constraints over {} variables; scores reused from checkpoint ({} iterations, solve skipped)",
                run.system.constraint_count(),
                run.system.var_count(),
                run.solution.iterations
            )
        }),
        CheckpointOutcome::HitWarm => tele.info(|| {
            format!(
                "{} constraints over {} variables; warm-started from checkpoint ({} iterations, stop: {})",
                run.system.constraint_count(),
                run.system.var_count(),
                run.solution.iterations,
                run.solution.stop
            )
        }),
        CheckpointOutcome::Disabled | CheckpointOutcome::MissCold => eprintln!(
            "{} constraints over {} variables solved in {:?} ({} iterations, stop: {})",
            run.system.constraint_count(),
            run.system.var_count(),
            run.solve_time,
            run.solution.iterations,
            run.solution.stop
        ),
    }
    if let Some(cache) = &cache {
        let s = cache.stats();
        tele.info(|| {
            format!(
                "cache: {} hit(s), {} miss(es), {} store(s), {} fault(s) contained (checkpoint: {})",
                s.hits,
                s.misses,
                s.stores,
                analysis.report.cache_faults.len(),
                full.checkpoint.outcome.label()
            )
        });
    }
    if run.solution.diverged {
        eprintln!("warning: solver diverged and restarted with a reduced learning rate");
    }
    if flags.contains(&"--strict") {
        eprintln!(
            "solver: {} restart(s), final learning rate {:.6}",
            run.solution.restarts, run.solution.final_lr
        );
    }
    if let Some(m) = &full.manifest {
        if let Some(path) = manifest_path {
            std::fs::write(path, m.to_json())
                .map_err(|e| CliError::Runtime(format!("cannot write {path}: {e}")))?;
            eprintln!("wrote run manifest to {path}");
        }
        if let Some(path) = trace_path {
            std::fs::write(path, m.chrome_trace())
                .map_err(|e| CliError::Runtime(format!("cannot write {path}: {e}")))?;
            eprintln!("wrote Chrome trace to {path}");
        }
    }
    let text = run.extraction.spec.to_text();
    match opts.get("--out") {
        Some(path) => {
            std::fs::write(path, &text)
                .map_err(|e| CliError::Runtime(format!("cannot write {path}: {e}")))?;
            eprintln!(
                "wrote {} learned entries to {path}",
                run.extraction.spec.role_count()
            );
        }
        None => print!("{text}"),
    }
    Ok(if analysis.is_degraded() || run.solution.diverged {
        Outcome::Findings
    } else {
        Outcome::Clean
    })
}

/// `seldon serve <path...> --socket <sock>` — analyzes the corpus once,
/// then serves corpus deltas over a Unix socket (see `seldon client`).
/// The served spec is always byte-identical to what `seldon learn` would
/// print over the same corpus state; only redundant work is skipped.
fn cmd_serve(rest: &[String]) -> Result<Outcome, CliError> {
    let (paths, opts, flags) = split_args(
        rest,
        &["--strict", "--lenient", "--no-cache", "--no-warm-start"],
        &[
            "--socket",
            "--seed",
            "--cutoff",
            "--cache-dir",
            "--solver-threads",
            "--telemetry",
            "--log-level",
        ],
    )?;
    let Some(socket) = opts.get("--socket").copied() else {
        return Err(CliError::usage("serve needs --socket <path>"));
    };
    let policy = policy_from_flags(&flags)?;
    let cache_dir = opts.get("--cache-dir").copied();
    if cache_dir.is_some() && flags.contains(&"--no-cache") {
        return Err(CliError::usage("--cache-dir and --no-cache are mutually exclusive"));
    }
    let manifest_path = opts.get("--telemetry").copied();
    let tele = if manifest_path.is_some() {
        Telemetry::recording()
    } else {
        Telemetry::disabled()
    }
    .with_log_level(level_from_opts(&opts)?);
    let seed = load_spec(opts.get("--seed").copied())?;
    let files = collect_source_files(&paths)?;
    let cache = match cache_dir {
        None => None,
        Some(dir) => match ArtifactCache::open(Path::new(dir)) {
            Ok((cache, faults)) => {
                for fault in faults {
                    eprintln!("warning: cache fault ({dir}): {fault}");
                }
                Some(Arc::new(cache))
            }
            Err(e) => {
                eprintln!("warning: cannot open cache at {dir}: {e}; running uncached");
                None
            }
        },
    };
    let explicit_cutoff: Option<usize> = match opts.get("--cutoff") {
        Some(v) => Some(v.parse().map_err(|_| {
            CliError::usage(format!("--cutoff expects a number, got `{v}`"))
        })?),
        None => None,
    };
    let solver_threads = match opts.get("--solver-threads") {
        Some(v) => {
            let t: usize = v.parse().map_err(|_| {
                CliError::usage(format!("--solver-threads expects a number, got `{v}`"))
            })?;
            if t == 0 {
                std::thread::available_parallelism().map_or(1, |n| n.get())
            } else {
                t
            }
        }
        None => 1,
    };
    let options = SeldonOptions {
        gen: GenOptions { rep_cutoff: explicit_cutoff.unwrap_or(5), ..Default::default() },
        solve: SolveOptions { threads: solver_threads, ..Default::default() },
        warm_start: if flags.contains(&"--no-warm-start") {
            None
        } else {
            Some(WarmStartOptions::default())
        },
        ..Default::default()
    };
    let mut analyze_opts = cli_analyze_opts(policy, &tele);
    analyze_opts.cache = cache;
    let cfg = EngineConfig {
        seed,
        analyze: analyze_opts,
        seldon: options,
        dynamic_cutoff: explicit_cutoff.is_none(),
    };
    let mut engine = ServeEngine::new(cfg);
    // Initial corpus load: one big `add` delta. Unreadable files are
    // skipped with a warning, mirroring `learn`.
    let mut delta = Delta::default();
    for f in &files {
        match std::fs::read_to_string(f) {
            Ok(content) => delta.add.push((f.clone(), content)),
            Err(e) => eprintln!("warning: skipping {}: {e}", f.display()),
        }
    }
    let initial = engine.apply_delta(&delta).map_err(|e| CliError::Runtime(e.to_string()))?;
    for fault in &initial.faults {
        eprintln!("warning: cache fault contained: {fault}");
    }
    eprintln!(
        "seldon serve: initial build over {} file(s): {} events, {} edges, {} learned entries ({})",
        initial.files, initial.events, initial.edges, initial.learned_entries, initial.solve
    );
    let mut daemon = ServeDaemon::new(engine);
    daemon.telemetry_path = manifest_path.map(PathBuf::from);
    run_daemon(&mut daemon, Path::new(socket))
        .map_err(|e| CliError::Runtime(format!("serve: {e}")))?;
    Ok(Outcome::Clean)
}

/// `seldon client <op> --socket <sock>` — sends one request to a running
/// daemon and prints its one-line JSON response. Exit 0 when the daemon
/// answered `ok: true`, 1 otherwise.
fn cmd_client(rest: &[String]) -> Result<Outcome, CliError> {
    let (paths, opts, _) = split_args(
        rest,
        &[],
        &["--socket", "--add", "--change", "--remove", "--out", "--wait"],
    )?;
    let [op] = paths.as_slice() else {
        return Err(CliError::usage(
            "client expects exactly one op: ping|spec|stats|metrics|delta|shutdown",
        ));
    };
    let op = op.display().to_string();
    let Some(socket) = opts.get("--socket").copied() else {
        return Err(CliError::usage("client needs --socket <path>"));
    };
    let wait: f64 = match opts.get("--wait") {
        Some(v) => v.parse().map_err(|_| {
            CliError::usage(format!("--wait expects seconds, got `{v}`"))
        })?,
        None => 5.0,
    };
    let mut obj = vec![("op".to_string(), Json::str(&op))];
    if op == "delta" {
        for (flag, key) in [("--add", "add"), ("--change", "change"), ("--remove", "remove")] {
            let items: Vec<Json> = opts
                .get(flag)
                .map(|v| v.split(',').filter(|s| !s.is_empty()).map(Json::str).collect())
                .unwrap_or_default();
            obj.push((key.to_string(), Json::Arr(items)));
        }
    } else if ["--add", "--change", "--remove"].iter().any(|f| opts.contains_key(f)) {
        return Err(CliError::usage("--add/--change/--remove only apply to the delta op"));
    }
    let line = Json::Obj(obj).compact();
    let response = client_request(Path::new(socket), &line, Duration::from_secs_f64(wait))
        .map_err(|e| CliError::Runtime(format!("client: {e}")))?;
    println!("{response}");
    let parsed = json::parse(&response)
        .map_err(|e| CliError::Runtime(format!("unparseable daemon response: {e}")))?;
    if let Some(path) = opts.get("--out") {
        if let Some(spec) = parsed.get("spec").and_then(Json::as_str) {
            std::fs::write(path, spec)
                .map_err(|e| CliError::Runtime(format!("cannot write {path}: {e}")))?;
            eprintln!("wrote served spec to {path}");
        }
    }
    let ok = parsed.get("ok").and_then(Json::as_bool) == Some(true);
    Ok(if ok { Outcome::Clean } else { Outcome::Findings })
}

/// Reads and validates a run manifest written by `learn --telemetry`.
fn load_manifest(path: &Path) -> Result<RunManifest, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::usage(format!("cannot read {}: {e}", path.display())))?;
    RunManifest::from_json(&text)
        .map_err(|e| CliError::usage(format!("{}: {e}", path.display())))
}

/// `1234567` → `"1.2 MiB"`; keeps small numbers exact.
fn fmt_bytes(b: u64) -> String {
    const UNITS: [(&str, u64); 3] =
        [("GiB", 1 << 30), ("MiB", 1 << 20), ("KiB", 1 << 10)];
    for (unit, scale) in UNITS {
        if b >= scale {
            return format!("{:.1} {unit}", b as f64 / scale as f64);
        }
    }
    format!("{b} B")
}

/// Microseconds → a human duration (`µs`, `ms`, or `s`).
fn fmt_us(us: u64) -> String {
    match us {
        0..=999 => format!("{us} µs"),
        1_000..=999_999 => format!("{:.1} ms", us as f64 / 1_000.0),
        _ => format!("{:.2} s", us as f64 / 1_000_000.0),
    }
}

/// `seldon report <manifest.json> [--top <k>]` — renders one run's
/// manifest as the paper's §7-style summary: corpus shape, per-stage
/// time/memory breakdown, solver and extraction outcomes, the Fig. 11
/// score-vs-backoff table, and the top-K learned representations.
fn cmd_report(rest: &[String]) -> Result<Outcome, CliError> {
    let (paths, opts, _) = split_args(rest, &[], &["--top"])?;
    let [path] = paths.as_slice() else {
        return Err(CliError::usage("report expects exactly one manifest file"));
    };
    let top: usize = match opts.get("--top") {
        Some(v) => v
            .parse()
            .map_err(|_| CliError::usage(format!("--top expects a number, got `{v}`")))?,
        None => 10,
    };
    let m = load_manifest(path)?;

    println!(
        "seldon run report — command `{}` mode `{}` (schema v{})",
        m.command, m.mode, m.schema_version
    );
    println!();
    println!(
        "corpus       {} file(s) / {} project(s) — {} events, {} edges, {} symbols",
        m.corpus.files, m.corpus.projects, m.corpus.events, m.corpus.edges, m.corpus.symbols
    );
    println!(
        "outcomes     ok {}, recovered {}, skipped {}, over-budget {}, panicked {}",
        m.outcomes.ok,
        m.outcomes.recovered,
        m.outcomes.skipped,
        m.outcomes.over_budget,
        m.outcomes.panicked
    );
    println!();
    println!("stage breakdown (top-level spans)");
    println!("  {:<16} {:>12} {:>12}", "stage", "time", "mem peak");
    for s in m.stages.iter().filter(|s| s.depth == 0) {
        println!(
            "  {:<16} {:>12} {:>12}",
            s.name,
            fmt_us(s.dur_us),
            fmt_bytes(s.mem_peak_bytes)
        );
    }
    println!();
    println!(
        "constraints  {} total (A {} / B {} / C {}), {} vars, {} pinned",
        m.constraints.total,
        m.constraints.by_template[0],
        m.constraints.by_template[1],
        m.constraints.by_template[2],
        m.constraints.vars,
        m.constraints.pinned
    );
    println!(
        "solver       {} iteration(s), {} restart(s), objective {:.6}, violation {:.6} ({} thread(s)){}{}",
        m.solver.iterations,
        m.solver.restarts,
        m.solver.objective,
        m.solver.violation,
        m.solver.threads,
        if m.solver.stop_reason.is_empty() {
            String::new()
        } else {
            format!(", stop {} (saved {} epochs)", m.solver.stop_reason, m.solver.epochs_saved)
        },
        if m.solver.diverged { " [diverged]" } else { "" }
    );
    println!(
        "extraction   learned {} src / {} san / {} snk (thresholds {}/{}/{}, decay {})",
        m.extraction.learned[0],
        m.extraction.learned[1],
        m.extraction.learned[2],
        m.extraction.thresholds[0],
        m.extraction.thresholds[1],
        m.extraction.thresholds[2],
        m.extraction.decay
    );
    println!();
    println!("score vs backoff (Fig. 11)");
    println!("  {:<6} {:>10} {:>15} {:>11}", "level", "selections", "learned entries", "mean score");
    let levels = m
        .extraction
        .backoff_hits
        .len()
        .max(m.score_dump.iter().map(|e| e.backoff_level as usize + 1).max().unwrap_or(0));
    for level in 0..levels {
        let selections = m.extraction.backoff_hits.get(level).copied().unwrap_or(0);
        let at_level: Vec<f64> = m
            .score_dump
            .iter()
            .filter(|e| e.backoff_level as usize == level)
            .map(|e| e.score)
            .collect();
        let mean = if at_level.is_empty() {
            "-".to_string()
        } else {
            format!("{:.4}", at_level.iter().sum::<f64>() / at_level.len() as f64)
        };
        println!("  {:<6} {:>10} {:>15} {:>11}", level, selections, at_level.len(), mean);
    }
    if m.score_dump.is_empty() {
        println!("  (per-representation scores absent; re-run `learn --telemetry --score-dump`)");
    } else {
        println!();
        println!("top {} learned representations by score", top.min(m.score_dump.len()));
        println!("  {:>8} {:>5}  {:<4} representation", "score", "level", "role");
        let mut ranked: Vec<_> = m.score_dump.iter().collect();
        ranked.sort_by(|a, b| {
            b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal)
        });
        for e in ranked.iter().take(top) {
            println!("  {:>8.4} {:>5}  {:<4} {}", e.score, e.backoff_level, e.role, e.rep);
        }
    }
    println!();
    if m.cache.enabled {
        println!(
            "cache        {} hit(s), {} miss(es), {} store(s), {} fault(s); checkpoint {}",
            m.cache.hits,
            m.cache.misses,
            m.cache.stores,
            m.cache.corrupt + m.cache.stale + m.cache.evicted,
            m.cache.checkpoint
        );
    }
    if m.memory.tracked {
        println!(
            "memory       current {}, peak {}, peak RSS {}",
            fmt_bytes(m.memory.current_bytes),
            fmt_bytes(m.memory.peak_bytes),
            fmt_bytes(m.memory.peak_rss_bytes)
        );
    }
    println!("taint        {} violation(s)", m.taint.violations);
    Ok(Outcome::Clean)
}

/// `seldon metrics-dump <manifest.json>` — Prometheus-style text
/// exposition of everything the manifest measured.
fn cmd_metrics_dump(rest: &[String]) -> Result<Outcome, CliError> {
    let (paths, _, _) = split_args(rest, &[], &[])?;
    let [path] = paths.as_slice() else {
        return Err(CliError::usage("metrics-dump expects exactly one manifest file"));
    };
    print!("{}", load_manifest(path)?.to_prometheus());
    Ok(Outcome::Clean)
}

/// `seldon diff-runs <baseline.json> <candidate.json>` — compares two run
/// manifests. Identity fields (counts, outcomes, learned entries) must
/// match exactly; cost fields (stage timings) gate at the tolerance;
/// machine-state fields (memory, cache temperature) only annotate.
/// Exits 0 when nothing regressed, 1 otherwise.
fn cmd_diff_runs(rest: &[String]) -> Result<Outcome, CliError> {
    let (paths, opts, _) = split_args(rest, &[], &["--tolerance"])?;
    let [a, b] = paths.as_slice() else {
        return Err(CliError::usage("diff-runs expects exactly two manifest files"));
    };
    let mut dopts = DiffOptions::default();
    if let Some(v) = opts.get("--tolerance") {
        dopts.tolerance_pct = v
            .parse()
            .map_err(|_| CliError::usage(format!("--tolerance expects a number, got `{v}`")))?;
    }
    let report = diff_manifests(&load_manifest(a)?, &load_manifest(b)?, &dopts);
    print!("{}", report.render());
    Ok(if report.regressed() { Outcome::Findings } else { Outcome::Clean })
}
