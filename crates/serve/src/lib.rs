//! # seldon-serve
//!
//! The incremental analysis service: a long-running daemon that keeps the
//! analyzed corpus, the unioned propagation graph, and the solved
//! constraint system resident, and re-learns the taint specification on
//! *corpus deltas* instead of from scratch.
//!
//! The paper's pipeline (parse → union → generate → solve → extract) is a
//! batch computation, but most of its cost is insensitive to a one-file
//! edit: the unioned graph is a disjoint concatenation of per-file graphs,
//! so per-file work — parsing, graph construction, and (because flow
//! constraints never cross file boundaries) constraint rows — can be
//! reused for every untouched file. Only the global pieces re-run each
//! delta: §4.3 backoff selection (corpus-wide frequency counts couple
//! files) and the solve, which is warm-started from the previous score
//! vector and guarded by an extraction-margin check so the served spec
//! stays byte-identical to a cold batch run over the same corpus state.
//!
//! Three layers:
//!
//! * [`ServeEngine`] — the resident state and the delta → spec pipeline
//!   ([`ServeEngine::apply_delta`]); pure library, no I/O besides the
//!   artifact cache.
//! * [`protocol`] — the line-delimited JSON request/response schema.
//! * [`daemon`] — the Unix-socket accept loop ([`daemon::run_daemon`])
//!   and the client helper ([`daemon::client_request`]).

#![warn(missing_docs)]

pub mod daemon;
pub mod engine;
pub mod protocol;

pub use daemon::{client_request, run_daemon, ServeDaemon};
pub use engine::{Delta, DeltaOutcome, EngineConfig, EngineError, ServeCounters, ServeEngine};
pub use protocol::Request;
