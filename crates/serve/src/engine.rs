//! The resident incremental analysis engine behind `seldon serve`.
//!
//! [`ServeEngine`] keeps the whole learned state of a corpus in memory —
//! one per-file slot (graph, fingerprint, constraint fragment) per
//! tracked file plus the last solver checkpoint — and exposes one
//! operation, [`ServeEngine::apply_delta`], that moves that state to a
//! new corpus version and returns the updated specification.
//!
//! # Determinism contract
//!
//! Every delta must serve the specification a **cold batch run** (`seldon
//! learn`) over the same corpus state would print. The engine earns its
//! speed only from work that provably cannot change the output:
//!
//! * Per-file reuse is keyed by the file's content-based graph
//!   fingerprint — an unchanged fingerprint means an identical per-file
//!   graph, so the union is identical by construction.
//! * Constraint fragments are reused only when the file's slice of the
//!   §4.3 selection (`event_reps`) is unchanged; Fig. 4 rows reference
//!   only events of their own file, so an identical slice over an
//!   identical graph reproduces identical rows.
//! * The solve is warm-started from the previous score vector but
//!   accepted only when the extraction margin clears
//!   [`WarmStartOptions::min_margin`]; below it the engine re-solves
//!   cold on the same compiled system, making the output byte-identical
//!   to a batch run by construction.
//!
//! # Failure semantics
//!
//! Cache faults are contained: a damaged artifact re-parses, a damaged
//! checkpoint cold-solves. A panic inside `apply_delta` (contained by the
//! daemon) may leave the per-file table updated while the checkpoint
//! still describes the previous corpus; the `built` flag is cleared
//! first, so the next delta rebuilds from the per-file slots instead of
//! serving the stale spec.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Range;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use seldon_cache::{
    graph_fingerprint, input_fingerprint, system_fingerprint, Checkpoint, CheckpointLookup,
    SystemSummary,
};
use seldon_constraints::{
    collect_rows, select, ConstraintSystem, FlowConstraint, GenStats, RepId, Selection, Template,
    Term,
};
use seldon_core::{
    analysis_cache_key, analyze_file, AnalyzeOptions, FileOutcome, SeldonOptions,
    DEFAULT_TRACE_STRIDE,
};
use seldon_propgraph::{FileId, PropagationGraph};
use seldon_solver::{
    extract, extraction_margin, solve_compiled, solve_compiled_warm, CompiledSystem, Extraction,
    Solution, StopReason,
};
use seldon_specs::Role;
use seldon_specs::TaintSpec;
use seldon_telemetry::manifest::{
    stage, CacheSummary, ConstraintSummary, CorpusShape, ExtractionSummary, MemorySummary,
    OutcomeCounts, RunManifest, SolverSummary, TaintSummary,
};
use seldon_telemetry::MemoryGauge;

/// Configuration fixed for the lifetime of a [`ServeEngine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// The seed specification pinning known roles (§3).
    pub seed: TaintSpec,
    /// Per-file analysis options; `cache` (when set) persists per-file
    /// artifacts and the solver checkpoint across daemon restarts.
    pub analyze: AnalyzeOptions,
    /// Learning options. `warm_start` should normally be `Some` — the
    /// engine falls back to cold solves without it.
    pub seldon: SeldonOptions,
    /// When true, the §4.3 cutoff follows the `seldon learn` CLI default
    /// (2 below 50 files, 5 at or above) as the corpus grows and
    /// shrinks; when false, `seldon.gen.rep_cutoff` is used as-is.
    pub dynamic_cutoff: bool,
}

/// One tracked corpus file.
#[derive(Debug)]
struct FileState {
    /// Artifact-cache key of the current content (for eviction).
    cache_key: u64,
    /// The per-file propagation graph; `None` when quarantined.
    graph: Option<PropagationGraph>,
    /// The [`FileId`] the graph's events currently carry. Graphs arrive
    /// stamped `FileId(0)` and are restamped in corpus order on rebuild.
    stamped: u32,
    /// Content-based fingerprint of the graph **at stamp `FileId(0)`**.
    /// [`graph_fingerprint`] hashes the stamp, so fingerprints are only
    /// comparable at the same stamp; the engine computes them once on
    /// the freshly analyzed graph and never after restamping.
    graph_fp: u64,
    /// Per-file verdict, kept for the served manifest.
    outcome: FileOutcome,
    /// Reusable constraint fragment from the last rebuild.
    frag: Option<Fragment>,
}

/// A constraint row with variables resolved to `(representation, role)`
/// keys instead of system-local [`seldon_constraints::VarId`]s, so it can
/// be re-anchored into a freshly selected system.
#[derive(Debug)]
struct SymRow {
    template: Template,
    lhs: Vec<(RepId, Role, f64)>,
    rhs: Vec<(RepId, Role, f64)>,
}

/// The per-file constraint fragment: the selection slice it was collected
/// under plus the symbolized Fig. 4a/4b and Fig. 4c rows.
#[derive(Debug)]
struct Fragment {
    /// The file's `event_reps` slice at collection time. Fragment reuse
    /// requires the current slice to compare equal.
    sel: Vec<Option<Vec<RepId>>>,
    ab: Vec<SymRow>,
    c: Vec<SymRow>,
}

impl Fragment {
    /// Symbolizes freshly collected rows against the system that
    /// collected them.
    fn capture(
        sel: &[Option<Vec<RepId>>],
        ab: &[FlowConstraint],
        c: &[FlowConstraint],
        sys: &ConstraintSystem,
    ) -> Fragment {
        let side = |terms: &[Term]| {
            terms
                .iter()
                .map(|t| {
                    let (rep, role) = sys.var_info(t.var);
                    (rep, role, t.coeff)
                })
                .collect()
        };
        let rows = |rows: &[FlowConstraint]| {
            rows.iter()
                .map(|r| SymRow { template: r.template, lhs: side(&r.lhs), rhs: side(&r.rhs) })
                .collect()
        };
        Fragment { sel: sel.to_vec(), ab: rows(ab), c: rows(c) }
    }

    /// Re-anchors the fragment's rows into `sys`. Returns `None` when any
    /// `(rep, role)` key is absent from the new system — the caller falls
    /// back to collecting the file's rows from scratch.
    fn remap(&self, sys: &ConstraintSystem) -> Option<(Vec<FlowConstraint>, Vec<FlowConstraint>)> {
        let side = |terms: &[(RepId, Role, f64)]| {
            terms
                .iter()
                .map(|&(rep, role, coeff)| {
                    sys.lookup_var(rep, role).map(|var| Term { var, coeff })
                })
                .collect::<Option<Vec<Term>>>()
        };
        let rows = |rows: &[SymRow]| {
            rows.iter()
                .map(|r| {
                    Some(FlowConstraint {
                        lhs: side(&r.lhs)?,
                        rhs: side(&r.rhs)?,
                        template: r.template,
                    })
                })
                .collect::<Option<Vec<FlowConstraint>>>()
        };
        Some((rows(&self.ab)?, rows(&self.c)?))
    }
}

/// A corpus delta: files to start tracking, re-analyze, or drop.
#[derive(Debug, Clone, Default)]
pub struct Delta {
    /// New files with their contents.
    pub add: Vec<(PathBuf, String)>,
    /// Tracked files with replacement contents.
    pub change: Vec<(PathBuf, String)>,
    /// Tracked files to drop (their cache artifacts are evicted).
    pub remove: Vec<PathBuf>,
}

impl Delta {
    /// Whether the delta names no files at all.
    pub fn is_empty(&self) -> bool {
        self.add.is_empty() && self.change.is_empty() && self.remove.is_empty()
    }
}

/// What one [`ServeEngine::apply_delta`] call did and served.
#[derive(Debug, Clone)]
pub struct DeltaOutcome {
    /// The served specification text (canonical [`TaintSpec::to_text`]).
    pub spec: String,
    /// How the spec was obtained: `"noop"` (empty delta), `"unchanged"`
    /// (edits left every graph fingerprint intact), `"replayed"` (input
    /// fingerprint matched the checkpoint), `"scores"` (system
    /// fingerprint matched; extraction re-ran on stored scores),
    /// `"warm"` (margin-accepted warm solve), or `"cold"`.
    pub solve: &'static str,
    /// Files tracked after the delta.
    pub files: usize,
    /// Events in the unioned graph after the delta.
    pub events: usize,
    /// Edges in the unioned graph after the delta.
    pub edges: usize,
    /// Files re-analyzed by this delta (adds + changes).
    pub reparsed: usize,
    /// Files dropped by this delta.
    pub removed: usize,
    /// Cache artifacts evicted for dropped files.
    pub evicted: usize,
    /// Per-file fragments reused structurally (no re-collection).
    pub fragments_reused: usize,
    /// Per-file fragments re-collected from the graph.
    pub fragments_collected: usize,
    /// Constraints in the solved system (0 on reuse fast paths).
    pub constraints: usize,
    /// Role variables in the solved system (0 on reuse fast paths).
    pub vars: usize,
    /// Entries in the served specification.
    pub learned_entries: usize,
    /// Extraction margin of the warm solution, when one was attempted.
    pub warm_margin: Option<f64>,
    /// Contained cache faults hit during the delta.
    pub faults: Vec<String>,
    /// Wall-clock of the whole delta.
    pub elapsed: Duration,
}

/// A rejected delta; the engine state is unchanged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The delta was internally inconsistent (duplicate path) or named
    /// files inconsistent with the tracked corpus (adding a tracked
    /// file, changing or removing an untracked one).
    Validation(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Validation(msg) => write!(f, "invalid delta: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Monotonic counters over a [`ServeEngine`]'s lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeCounters {
    /// Deltas accepted (including fast-path ones).
    pub deltas: usize,
    /// Empty deltas served from the cached spec.
    pub noops: usize,
    /// Change-only deltas whose graphs were fingerprint-identical.
    pub unchanged: usize,
    /// Full rebuilds (union + selection re-ran).
    pub rebuilds: usize,
    /// Rebuilds short-circuited by an input-fingerprint match.
    pub replays: usize,
    /// Solves skipped via a system-fingerprint score hit.
    pub solves_scores: usize,
    /// Warm solves accepted by the margin guard.
    pub solves_warm: usize,
    /// Cold solves (including margin-rejected warm attempts).
    pub solves_cold: usize,
    /// Files re-analyzed across all deltas.
    pub reparsed: usize,
    /// Files dropped across all deltas.
    pub removed: usize,
    /// Cache artifacts evicted across all deltas.
    pub evicted: usize,
    /// Fragments reused structurally across all rebuilds.
    pub fragments_reused: usize,
    /// Fragments re-collected across all rebuilds.
    pub fragments_collected: usize,
}

/// The resident incremental engine. See the module docs for the
/// determinism contract.
pub struct ServeEngine {
    cfg: EngineConfig,
    /// Tracked files in corpus order ([`PathBuf`] ordering matches the
    /// sorted file list `seldon learn` analyzes, so [`FileId`]s — and
    /// with them every fingerprint — agree with a batch run).
    files: BTreeMap<PathBuf, FileState>,
    /// The last finished build (also persisted via the artifact cache).
    ckpt: Option<Checkpoint>,
    /// Whether `ckpt` describes exactly the current `files` table.
    built: bool,
    last_events: usize,
    last_edges: usize,
    last_solve: &'static str,
    counters: ServeCounters,
}

impl ServeEngine {
    /// Creates an engine with no tracked files. When the config carries a
    /// cache, a persisted checkpoint is loaded eagerly so the first delta
    /// can replay or warm-start across a daemon restart.
    pub fn new(cfg: EngineConfig) -> ServeEngine {
        let ckpt = match cfg.analyze.cache.as_deref().map(|c| c.load_checkpoint()) {
            Some(CheckpointLookup::Hit(ckpt)) => Some(*ckpt),
            _ => None,
        };
        ServeEngine {
            cfg,
            files: BTreeMap::new(),
            ckpt,
            built: false,
            last_events: 0,
            last_edges: 0,
            last_solve: "cold",
            counters: ServeCounters::default(),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Files currently tracked.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// The current specification text, if a build has completed.
    pub fn spec(&self) -> Option<&str> {
        self.ckpt.as_ref().map(|c| c.spec_text.as_str())
    }

    /// Lifetime counters.
    pub fn counters(&self) -> ServeCounters {
        self.counters
    }

    /// How the last delta obtained its spec.
    pub fn last_solve(&self) -> &'static str {
        self.last_solve
    }

    /// Applies a corpus delta and returns the updated specification.
    /// On `Err` the engine state is untouched.
    pub fn apply_delta(&mut self, delta: &Delta) -> Result<DeltaOutcome, EngineError> {
        let t0 = Instant::now();
        self.validate(delta)?;
        self.counters.deltas += 1;
        let mut faults = Vec::new();

        // Empty delta against a finished build: true no-op.
        if delta.is_empty() && self.built {
            self.counters.noops += 1;
            return Ok(self.reuse_outcome("noop", t0, 0, 0, 0, faults));
        }

        // From here the corpus may change shape; a panic below must not
        // leave `built` claiming the checkpoint matches the file table.
        // (A checkpoint loaded from disk on startup starts with `built ==
        // false` — it only becomes servable through a rebuild, where the
        // input fingerprint proves it matches the tracked corpus.)
        let was_built = self.built;
        self.built = false;

        // Removes: drop the slot and evict its cache artifact.
        let removed = delta.remove.len();
        let mut evicted = 0usize;
        for path in &delta.remove {
            let state = self.files.remove(path).expect("validated remove");
            if let Some(cache) = self.cfg.analyze.cache.as_deref() {
                if cache.evict(state.cache_key) {
                    evicted += 1;
                }
            }
        }
        self.counters.removed += removed;
        self.counters.evicted += evicted;

        // Adds and changes: analyze at stamp FileId(0) and fingerprint
        // there (the stamp is part of the fingerprint, so per-file
        // fingerprints are always compared at stamp 0).
        let reparsed = delta.add.len() + delta.change.len();
        self.counters.reparsed += reparsed;
        let mut structural = removed > 0 || !delta.add.is_empty();
        for (path, content) in delta.add.iter().chain(delta.change.iter()) {
            let display = path.display().to_string();
            let analysis = analyze_file(&display, content, FileId(0), &self.cfg.analyze);
            for fault in &analysis.faults {
                faults.push(format!("{display}: {fault}"));
            }
            let graph_fp = analysis.graph.as_ref().map_or(0, graph_fingerprint);
            let cache_key = analysis_cache_key(&display, content, &self.cfg.analyze);
            match self.files.get_mut(path) {
                Some(slot) if slot.graph_fp == graph_fp => {
                    // The edit left the graph identical (e.g. a comment
                    // or formatting change): keep the restamped graph and
                    // its fragment, refresh the bookkeeping.
                    slot.cache_key = cache_key;
                    slot.outcome = analysis.outcome;
                }
                Some(slot) => {
                    structural = true;
                    *slot = FileState {
                        cache_key,
                        graph: analysis.graph,
                        stamped: 0,
                        graph_fp,
                        outcome: analysis.outcome,
                        frag: None,
                    };
                }
                None => {
                    self.files.insert(
                        path.clone(),
                        FileState {
                            cache_key,
                            graph: analysis.graph,
                            stamped: 0,
                            graph_fp,
                            outcome: analysis.outcome,
                            frag: None,
                        },
                    );
                }
            }
        }

        // Change-only delta with every fingerprint intact: the union —
        // and everything downstream — is unchanged by construction. Only
        // valid when the checkpoint was built (or replay-verified) against
        // this very file table.
        if !structural && was_built && self.ckpt.is_some() {
            self.built = true;
            self.counters.unchanged += 1;
            return Ok(self.reuse_outcome("unchanged", t0, reparsed, removed, evicted, faults));
        }

        self.rebuild(t0, reparsed, removed, evicted, faults)
    }

    /// Rejects inconsistent deltas before any state changes.
    fn validate(&self, delta: &Delta) -> Result<(), EngineError> {
        let mut seen: std::collections::BTreeSet<&std::path::Path> =
            std::collections::BTreeSet::new();
        fn claim<'a>(
            seen: &mut std::collections::BTreeSet<&'a std::path::Path>,
            path: &'a std::path::Path,
        ) -> Result<(), EngineError> {
            if !seen.insert(path) {
                return Err(EngineError::Validation(format!(
                    "path `{}` appears more than once in the delta",
                    path.display()
                )));
            }
            Ok(())
        }
        for (path, _) in &delta.add {
            claim(&mut seen, path)?;
            if self.files.contains_key(path) {
                return Err(EngineError::Validation(format!(
                    "cannot add `{}`: already tracked (use change)",
                    path.display()
                )));
            }
        }
        for (path, _) in &delta.change {
            claim(&mut seen, path)?;
            if !self.files.contains_key(path) {
                return Err(EngineError::Validation(format!(
                    "cannot change `{}`: not tracked (use add)",
                    path.display()
                )));
            }
        }
        for path in &delta.remove {
            claim(&mut seen, path)?;
            if !self.files.contains_key(path) {
                return Err(EngineError::Validation(format!(
                    "cannot remove `{}`: not tracked",
                    path.display()
                )));
            }
        }
        Ok(())
    }

    /// Serves the checkpointed spec without rebuilding anything.
    fn reuse_outcome(
        &mut self,
        label: &'static str,
        t0: Instant,
        reparsed: usize,
        removed: usize,
        evicted: usize,
        faults: Vec<String>,
    ) -> DeltaOutcome {
        let ckpt = self.ckpt.as_ref().expect("reuse requires a checkpoint");
        self.last_solve = label;
        DeltaOutcome {
            spec: ckpt.spec_text.clone(),
            solve: label,
            files: self.files.len(),
            events: self.last_events,
            edges: self.last_edges,
            reparsed,
            removed,
            evicted,
            fragments_reused: 0,
            fragments_collected: 0,
            constraints: ckpt.summary.constraints as usize,
            vars: ckpt.summary.vars as usize,
            learned_entries: TaintSpec::parse(&ckpt.spec_text)
                .map(|s| s.role_count())
                .unwrap_or(0),
            warm_margin: None,
            faults,
            elapsed: t0.elapsed(),
        }
    }

    /// The effective learning options for the current corpus size.
    fn effective_seldon(&self) -> SeldonOptions {
        let mut seldon = self.cfg.seldon.clone();
        if self.cfg.dynamic_cutoff {
            seldon.gen.rep_cutoff = if self.files.len() < 50 { 2 } else { 5 };
        }
        if self.cfg.analyze.telemetry.is_recording() && seldon.solve.trace_stride == 0 {
            seldon.solve.trace_stride = DEFAULT_TRACE_STRIDE;
        }
        seldon
    }

    /// Union → select → collect/remap → solve → extract → checkpoint.
    fn rebuild(
        &mut self,
        t0: Instant,
        reparsed: usize,
        removed: usize,
        evicted: usize,
        mut faults: Vec<String>,
    ) -> Result<DeltaOutcome, EngineError> {
        let tele = self.cfg.analyze.telemetry.clone();
        let seldon = self.effective_seldon();
        self.counters.rebuilds += 1;

        // Restamp per-file graphs to their corpus-order FileId, then
        // union by reference. Restamping happens before fingerprint use
        // ever again — per-file fingerprints were taken at stamp 0 and
        // are never recomputed here.
        let t_union = Instant::now();
        for (index, state) in self.files.values_mut().enumerate() {
            if let Some(graph) = state.graph.as_mut() {
                if state.stamped != index as u32 {
                    graph.restamp_file(FileId(index as u32));
                    state.stamped = index as u32;
                }
            }
        }
        let total_events: usize =
            self.files.values().map(|s| s.graph.as_ref().map_or(0, |g| g.event_count())).sum();
        let mut union = PropagationGraph::new();
        union.reserve_events(total_events);
        let mut ranges: Vec<Range<usize>> = Vec::with_capacity(self.files.len());
        for state in self.files.values() {
            let start = union.event_count();
            if let Some(graph) = state.graph.as_ref() {
                union.union(graph);
            }
            ranges.push(start..union.event_count());
        }
        self.last_events = union.event_count();
        self.last_edges = union.edge_count();
        tele.aggregate_span(
            stage::UNION,
            t_union.elapsed(),
            &[
                ("events", union.event_count() as f64),
                ("edges", union.edge_count() as f64),
                ("files", self.files.len() as f64),
            ],
        );

        // Full replay: the corpus state hashes to exactly what the
        // checkpoint was built from (e.g. an edit was reverted, or the
        // daemon restarted over an unchanged corpus).
        let union_fp = graph_fingerprint(&union);
        let input_fp =
            input_fingerprint(union_fp, &self.cfg.seed, &seldon.gen, &seldon.solve, &seldon.extract);
        if self.ckpt.as_ref().is_some_and(|c| c.input_fp == input_fp) {
            self.built = true;
            self.counters.replays += 1;
            return Ok(self.reuse_outcome("replayed", t0, reparsed, removed, evicted, faults));
        }

        // §4.3 selection is global (corpus-wide frequency counts) and
        // always re-runs; what it yields decides per-file row reuse.
        let Selection { sys: mut system, event_reps, stats } = select(&union, &self.cfg.seed, &seldon.gen);
        tele.aggregate_span(
            stage::REPRESENTATION,
            stats.select_time,
            &[
                ("candidate_events", stats.candidate_events as f64),
                ("surviving_reps", stats.surviving_reps as f64),
                ("dropped_by_cutoff", stats.dropped_by_cutoff as f64),
                ("dropped_by_blacklist", stats.dropped_by_blacklist as f64),
            ],
        );

        // Fig. 4 rows per file: reuse the stored fragment when the
        // file's selection slice is unchanged, re-collect otherwise.
        // Batch order is all 4a/4b rows file-ordered, then all 4c rows
        // file-ordered — exactly `generate`'s order.
        let t_collect = Instant::now();
        let mut ab_pool: Vec<FlowConstraint> = Vec::new();
        let mut c_pool: Vec<FlowConstraint> = Vec::new();
        let mut reused = 0usize;
        let mut collected = 0usize;
        for (state, range) in self.files.values_mut().zip(&ranges) {
            if range.is_empty() {
                state.frag = None;
                continue;
            }
            let slice = &event_reps[range.clone()];
            let remapped = state
                .frag
                .as_ref()
                .filter(|frag| frag.sel == slice)
                .and_then(|frag| frag.remap(&system));
            match remapped {
                Some((ab, c)) => {
                    reused += 1;
                    ab_pool.extend(ab);
                    c_pool.extend(c);
                }
                None => {
                    let (ab, c) =
                        collect_rows(&union, &system, &event_reps, &seldon.gen, range.clone());
                    state.frag = Some(Fragment::capture(slice, &ab, &c, &system));
                    collected += 1;
                    ab_pool.extend(ab);
                    c_pool.extend(c);
                }
            }
        }
        for row in ab_pool.into_iter().chain(c_pool) {
            system.add_constraint(row);
        }
        self.counters.fragments_reused += reused;
        self.counters.fragments_collected += collected;
        let by_template = system.template_counts();
        tele.aggregate_span(
            stage::CONSTRAINTS,
            t_collect.elapsed(),
            &[
                ("constraints", system.constraint_count() as f64),
                ("vars", system.var_count() as f64),
                ("pinned", system.pinned_count() as f64),
                ("template_a", by_template[0] as f64),
                ("template_b", by_template[1] as f64),
                ("template_c", by_template[2] as f64),
                ("fragments_reused", reused as f64),
                ("fragments_collected", collected as f64),
            ],
        );

        // Solve ladder: scores hit → warm attempt → cold.
        let system_fp = system_fingerprint(&system, &seldon.solve);
        let t_solve = Instant::now();
        let mut warm_margin = None;
        let (solution, label) = match self.ckpt.as_ref() {
            Some(ckpt) if ckpt.system_fp == system_fp => {
                self.counters.solves_scores += 1;
                (scores_solution(ckpt), "scores")
            }
            prior => {
                let compiled = CompiledSystem::compile(&system);
                let init = match (&seldon.warm_start, prior) {
                    (Some(_), Some(ckpt)) => ckpt.warm_init_for(&system),
                    _ => None,
                };
                match init {
                    Some(init) => {
                        let warm = solve_compiled_warm(&compiled, &seldon.solve, &init);
                        let margin = extraction_margin(&system, &warm, &seldon.extract);
                        warm_margin = Some(margin);
                        let policy = seldon.warm_start.as_ref().expect("init implies policy");
                        if margin >= policy.min_margin {
                            self.counters.solves_warm += 1;
                            (warm, "warm")
                        } else {
                            self.counters.solves_cold += 1;
                            (solve_compiled(&compiled, &seldon.solve), "cold")
                        }
                    }
                    None => {
                        self.counters.solves_cold += 1;
                        (solve_compiled(&compiled, &seldon.solve), "cold")
                    }
                }
            }
        };
        tele.aggregate_span(
            stage::SOLVE,
            t_solve.elapsed(),
            &[
                ("threads", seldon.solve.threads.max(1) as f64),
                ("iterations", solution.iterations as f64),
                ("restarts", solution.restarts as f64),
                ("objective", solution.objective),
                ("violation", solution.violation),
                ("stop_reason", solution.stop.code() as f64),
                ("epochs_saved", solution.epochs_saved as f64),
                ("warm_accepted", f64::from(label == "warm")),
            ],
        );

        let t_extract = Instant::now();
        let extraction = extract(&system, &solution, &seldon.extract);
        tele.aggregate_span(
            stage::EXTRACT,
            t_extract.elapsed(),
            &[
                ("learned_entries", extraction.spec.role_count() as f64),
                ("events_with_roles", extraction.event_roles.len() as f64),
            ],
        );

        let gen_stats = GenStats { collect_time: t_collect.elapsed(), ..stats };
        let ckpt = make_checkpoint(input_fp, system_fp, &system, &gen_stats, &solution, &extraction);
        if let Some(cache) = self.cfg.analyze.cache.as_deref() {
            if let Some(fault) = cache.store_checkpoint(&ckpt) {
                faults.push(format!("checkpoint store: {fault}"));
            }
        }
        let spec_text = ckpt.spec_text.clone();
        let learned_entries = extraction.spec.role_count();
        let (constraints, vars) = (system.constraint_count(), system.var_count());
        self.ckpt = Some(ckpt);
        self.built = true;
        self.last_solve = label;
        Ok(DeltaOutcome {
            spec: spec_text,
            solve: label,
            files: self.files.len(),
            events: self.last_events,
            edges: self.last_edges,
            reparsed,
            removed,
            evicted,
            fragments_reused: reused,
            fragments_collected: collected,
            constraints,
            vars,
            learned_entries,
            warm_margin,
            faults,
            elapsed: t0.elapsed(),
        })
    }

    /// Assembles a `mode: "served-incremental"` run manifest describing
    /// the engine's current state. Drains the telemetry recorder.
    pub fn manifest(&self, command: &str) -> RunManifest {
        let mut m = RunManifest::new(command);
        m.mode = "served-incremental".to_string();
        m.corpus = CorpusShape {
            files: self.files.len() as u64,
            projects: 1,
            events: self.last_events as u64,
            edges: self.last_edges as u64,
            symbols: seldon_intern::len() as u64,
        };
        let mut outcomes = OutcomeCounts::default();
        for state in self.files.values() {
            match state.outcome {
                FileOutcome::Ok => outcomes.ok += 1,
                FileOutcome::Recovered { .. } => outcomes.recovered += 1,
                FileOutcome::Skipped { .. } => outcomes.skipped += 1,
                FileOutcome::OverBudget { .. } => outcomes.over_budget += 1,
                FileOutcome::Panicked { .. } => outcomes.panicked += 1,
            }
        }
        m.outcomes = outcomes;
        m.stages = self.cfg.analyze.telemetry.take_spans().into_iter().map(Into::into).collect();
        if let Some(ckpt) = self.ckpt.as_ref() {
            let s = &ckpt.summary;
            m.constraints = ConstraintSummary {
                total: s.constraints,
                vars: s.vars,
                pinned: s.pinned,
                by_template: s.by_template,
            };
            m.solver = SolverSummary {
                iterations: ckpt.iterations as u64,
                restarts: ckpt.restarts as u64,
                diverged: ckpt.diverged,
                final_lr: ckpt.final_lr,
                objective: ckpt.objective,
                violation: ckpt.violation,
                threads: self.cfg.seldon.solve.threads.max(1) as u64,
                stop_reason: ckpt.stop_reason.clone(),
                epochs_saved: ckpt.epochs_saved as u64,
                curve: ckpt.curve.clone(),
            };
            let mut learned = [0u64; 3];
            if let Ok(spec) = TaintSpec::parse(&ckpt.spec_text) {
                for (_, roles) in spec.iter() {
                    for role in Role::ALL {
                        if roles.contains(role) {
                            learned[role.index()] += 1;
                        }
                    }
                }
            }
            m.extraction = ExtractionSummary {
                thresholds: self.cfg.seldon.extract.thresholds,
                decay: self.cfg.seldon.extract.decay,
                backoff_hits: ckpt.backoff_hits.iter().map(|&n| n as u64).collect(),
                learned,
            };
        }
        m.taint = TaintSummary { violations: 0 };
        m.cache = match self.cfg.analyze.cache.as_deref() {
            None => CacheSummary::default(),
            Some(cache) => {
                let s = cache.stats();
                CacheSummary {
                    enabled: true,
                    hits: s.hits,
                    misses: s.misses,
                    stores: s.stores,
                    corrupt: s.corrupt,
                    stale: s.stale,
                    evicted: s.evicted,
                    checkpoint: self.last_solve.to_string(),
                }
            }
        };
        m.memory = MemorySummary {
            tracked: true,
            current_bytes: MemoryGauge::current_bytes(),
            peak_bytes: MemoryGauge::peak_bytes(),
            peak_rss_bytes: MemoryGauge::peak_rss_bytes().unwrap_or(0),
        };
        self.fill_metrics(&mut m.metrics);
        m
    }

    /// Serve-specific metrics (plus the interner leak detector shared
    /// with batch manifests).
    pub fn fill_metrics(&self, reg: &mut seldon_telemetry::MetricsRegistry) {
        let c = &self.counters;
        let counter = |reg: &mut seldon_telemetry::MetricsRegistry, name, help, v: usize| {
            reg.inc_counter(name, help, false, v as f64);
        };
        counter(reg, "serve_deltas", "Corpus deltas accepted by the daemon.", c.deltas);
        counter(reg, "serve_noops", "Empty deltas served from the cached spec.", c.noops);
        counter(
            reg,
            "serve_unchanged",
            "Deltas whose edits left every graph fingerprint intact.",
            c.unchanged,
        );
        counter(reg, "serve_rebuilds", "Deltas that re-ran union and selection.", c.rebuilds);
        counter(reg, "serve_replays", "Rebuilds replayed from an input-fingerprint hit.", c.replays);
        counter(reg, "serve_solves_scores", "Solves skipped via a system-fingerprint hit.", c.solves_scores);
        counter(reg, "serve_solves_warm", "Warm solves accepted by the margin guard.", c.solves_warm);
        counter(reg, "serve_solves_cold", "Cold solves (including rejected warm attempts).", c.solves_cold);
        counter(reg, "serve_files_reparsed", "Files re-analyzed across all deltas.", c.reparsed);
        counter(reg, "serve_files_removed", "Files dropped across all deltas.", c.removed);
        counter(reg, "serve_artifacts_evicted", "Cache artifacts evicted for dropped files.", c.evicted);
        counter(reg, "serve_fragments_reused", "Constraint fragments reused structurally.", c.fragments_reused);
        counter(reg, "serve_fragments_collected", "Constraint fragments re-collected.", c.fragments_collected);
        reg.set_gauge(
            "serve_files_tracked",
            "Files tracked by the daemon after the last delta.",
            false,
            self.files.len() as f64,
        );
        // Non-volatile on purpose: repeated identical deltas must not
        // grow the interner — this gauge is the daemon's leak detector.
        reg.set_gauge(
            "intern_symbols",
            "Global interner size (symbols live for the process lifetime).",
            false,
            seldon_intern::len() as f64,
        );
    }
}

/// Rebuilds a [`Solution`] from checkpointed scores (the `"scores"` hit:
/// the system fingerprint matched, so the stored vector aligns
/// variable-for-variable with the freshly selected system).
fn scores_solution(ckpt: &Checkpoint) -> Solution {
    Solution {
        scores: ckpt.scores.clone(),
        objective: ckpt.objective,
        violation: ckpt.violation,
        iterations: ckpt.iterations,
        history: Vec::new(),
        diverged: ckpt.diverged,
        restarts: ckpt.restarts,
        final_lr: ckpt.final_lr,
        stop: StopReason::parse(&ckpt.stop_reason).unwrap_or_default(),
        epochs_saved: ckpt.epochs_saved,
        trace: ckpt.curve.clone(),
    }
}

/// Packs one finished build into the checkpoint the next delta (or a
/// batch `seldon learn` over the same cache) warm-starts from.
fn make_checkpoint(
    input_fp: u64,
    system_fp: u64,
    system: &ConstraintSystem,
    gen_stats: &GenStats,
    solution: &Solution,
    extraction: &Extraction,
) -> Checkpoint {
    let by_template = system.template_counts();
    let mut event_roles: Vec<(u32, u8)> = extraction
        .event_roles
        .iter()
        .map(|(&id, &roles)| (id.0, Checkpoint::role_bits(roles)))
        .collect();
    event_roles.sort_unstable();
    Checkpoint {
        input_fp,
        system_fp,
        scores: solution.scores.clone(),
        var_keys: Checkpoint::var_keys_of(system),
        objective: solution.objective,
        violation: solution.violation,
        iterations: solution.iterations,
        restarts: solution.restarts,
        final_lr: solution.final_lr,
        diverged: solution.diverged,
        stop_reason: solution.stop.as_str().to_string(),
        epochs_saved: solution.epochs_saved,
        curve: solution.trace.clone(),
        spec_text: extraction.spec.to_text(),
        event_roles,
        backoff_hits: extraction.backoff_hits.clone(),
        summary: SystemSummary {
            constraints: system.constraint_count() as u64,
            vars: system.var_count() as u64,
            pinned: system.pinned_count() as u64,
            by_template: [
                by_template[0] as u64,
                by_template[1] as u64,
                by_template[2] as u64,
            ],
            candidates: gen_stats.candidate_events as u64,
            surviving_reps: gen_stats.surviving_reps as u64,
            dropped_by_cutoff: gen_stats.dropped_by_cutoff as u64,
            dropped_by_blacklist: gen_stats.dropped_by_blacklist as u64,
        },
    }
}
