//! Crash-safe incremental artifact cache for the Seldon pipeline.
//!
//! The paper's inference loop (and every system built on it — continuous
//! re-inference over evolving corpora, active-learning re-solves) re-runs
//! far more often than its inputs change. This crate makes warm re-runs
//! cheap without ever letting persistence compromise correctness:
//!
//! * **Per-file artifacts** ([`FileArtifact`], [`ArtifactCache`]): the
//!   parse → propagation-graph → constraint-fragment work for one source
//!   file, keyed by [`file_key`] (a hash of the file bytes, the entry
//!   format version, and an analysis-option salt). Artifacts serialize
//!   representations by *string* and re-intern on load — raw
//!   `Symbol(u32)` values are process-local and never reach disk.
//! * **Solver checkpoint** ([`Checkpoint`]): the previous score vector and
//!   extracted spec, keyed by exact input/system fingerprints
//!   ([`input_fingerprint`], [`system_fingerprint`]). Reuse is
//!   all-or-nothing so warm results stay byte-identical to cold ones.
//! * **Crash safety** ([`entry`]): every file is a checksummed frame
//!   written via temp-file + atomic rename. Corrupt, truncated,
//!   bit-flipped, version-skewed, or torn entries are detected before
//!   use, quarantined, and recomputed — a cache fault can cost time,
//!   never correctness.
//! * **Fault injection** ([`inject_cache_faults`]): deterministic damage
//!   (torn write, truncation, bit flip, stale schema stamp, missing
//!   index) for the robustness suite and the CI determinism gate.

pub mod artifact;
pub mod checkpoint;
pub mod entry;
pub mod hash;
pub mod inject;
pub mod store;

pub use artifact::FileArtifact;
pub use checkpoint::{
    graph_fingerprint, input_fingerprint, system_fingerprint, Checkpoint, SystemSummary,
};
pub use entry::{decode_entry, encode_entry, write_atomic, EntryError, ENTRY_VERSION};
pub use hash::{hash_bytes, Fnv64};
pub use inject::{inject_cache_faults, CacheFaultKind, InjectedCacheFault};
pub use store::{
    file_key, ArtifactCache, ArtifactLookup, CacheFault, CacheStats, CheckpointLookup,
    FaultClass, CHECKPOINT_NAME, INDEX_NAME,
};
