//! Streaming FNV-1a 64-bit hashing.
//!
//! The workspace is offline, so cache keys, entry checksums, and run
//! fingerprints all use the same hand-rolled hash: FNV-1a over bytes with
//! explicit little-endian encodings for integers. FNV is not
//! collision-resistant against adversaries, but cache keys only have to
//! distinguish *accidentally* different inputs — a corrupted or attacked
//! entry is caught by the checksum + semantic cross-checks and degrades to
//! recompute, never to a wrong answer.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A streaming FNV-1a 64-bit hasher.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv64 {
        Fnv64 { state: FNV_OFFSET }
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Fnv64 {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Feeds a `u64` as 8 little-endian bytes.
    pub fn write_u64(&mut self, v: u64) -> &mut Fnv64 {
        self.write(&v.to_le_bytes())
    }

    /// Feeds a `u32` as 4 little-endian bytes.
    pub fn write_u32(&mut self, v: u32) -> &mut Fnv64 {
        self.write(&v.to_le_bytes())
    }

    /// Feeds an `f64` as its raw IEEE-754 bit pattern. `-0.0` and `0.0`
    /// hash differently — fingerprints must be byte-faithful, not
    /// numerically fuzzy.
    pub fn write_f64(&mut self, v: f64) -> &mut Fnv64 {
        self.write_u64(v.to_bits())
    }

    /// Feeds a length-prefixed string, so `("ab", "c")` and `("a", "bc")`
    /// hash differently.
    pub fn write_str(&mut self, s: &str) -> &mut Fnv64 {
        self.write_u64(s.len() as u64).write(s.as_bytes())
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot hash of a byte slice.
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_fnv1a_vectors() {
        // Reference values from the canonical FNV-1a test suite.
        assert_eq!(hash_bytes(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(hash_bytes(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(hash_bytes(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn length_prefix_separates_concatenations() {
        let mut a = Fnv64::new();
        a.write_str("ab").write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a").write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn streaming_equals_one_shot() {
        let mut h = Fnv64::new();
        h.write(b"foo").write(b"bar");
        assert_eq!(h.finish(), hash_bytes(b"foobar"));
    }
}
