//! The solver warm-start checkpoint.
//!
//! A checkpoint captures the downstream half of a run — the solved score
//! vector plus the extracted specification — keyed by two fingerprints:
//!
//! * **input fingerprint** — the global propagation graph (by
//!   representation *string*, so it is stable across processes), the seed
//!   specification, and every generation/solve/extraction option that can
//!   influence scores or the spec. A match means generation, solving, and
//!   extraction would reproduce the stored outputs bit for bit, so all
//!   three stages are skipped.
//! * **system fingerprint** — the generated constraint system plus the
//!   solver options. When only the input fingerprint misses (say the
//!   extraction thresholds changed), a system match still lets the solver
//!   reuse the stored score vector exactly.
//!
//! Both are **exact-match** keys. A near-miss warm start (seeding Adam
//! with stale scores) converges to *almost* the same solution, and
//! "almost" breaks the byte-identical-spec guarantee the *replay* path
//! is held to; a fingerprint miss therefore never silently reuses
//! anything. Callers that can tolerate (and police) near-miss reuse —
//! the incremental daemon guards warm solves with an extraction-margin
//! check and falls back to a cold solve when a decision is close — opt
//! in explicitly through [`Checkpoint::warm_init_for`], which remaps the
//! stored scores onto a *different* constraint system by matching
//! variables on their process-stable `(representation, role)` keys
//! recorded in [`Checkpoint::var_keys`].
//!
//! Scores and every other float are serialized as IEEE-754 bit patterns
//! (`%016x`), never as decimal text, so a load returns the exact f64s the
//! solver produced.

use crate::entry::EntryError;
use crate::hash::Fnv64;
use seldon_constraints::{ConstraintSystem, GenOptions, Template};
use seldon_propgraph::{EventId, PropagationGraph};
use seldon_solver::{ExtractOptions, SolveOptions};
use seldon_specs::{Role, RoleSet, TaintSpec};
use seldon_telemetry::json::{self, Json};
use seldon_telemetry::EpochSample;

/// Shape counters of the constraint system a checkpoint was solved from,
/// replayed into stage spans and the manifest when generation is skipped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SystemSummary {
    /// Total flow constraints.
    pub constraints: u64,
    /// Role variables.
    pub vars: u64,
    /// Seed-pinned variables.
    pub pinned: u64,
    /// Constraints per Fig. 4 template.
    pub by_template: [u64; 3],
    /// Candidate events that entered the system.
    pub candidates: u64,
    /// Representations surviving the §4.3 cutoff.
    pub surviving_reps: u64,
    /// Representations dropped by the frequency cutoff.
    pub dropped_by_cutoff: u64,
    /// Representations dropped by the blacklist.
    pub dropped_by_blacklist: u64,
}

/// A persisted solver/extraction outcome with its fingerprints.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Fingerprint of graph + seed + options (full-reuse key).
    pub input_fp: u64,
    /// Fingerprint of the constraint system + solver options (score-reuse
    /// key).
    pub system_fp: u64,
    /// The solved score vector, indexed by `VarId`.
    pub scores: Vec<f64>,
    /// Per-variable identity keys, parallel to `scores`: the
    /// representation string and [`Role`] index of each `VarId`. These
    /// survive re-numbering, so a later run whose system assigns
    /// different `VarId`s can still seed Adam from these scores via
    /// [`Checkpoint::warm_init_for`]. Empty on checkpoints written
    /// before warm-starting landed (parse is lenient).
    pub var_keys: Vec<(String, u8)>,
    /// Final objective value.
    pub objective: f64,
    /// Final total hinge violation.
    pub violation: f64,
    /// Adam iterations run.
    pub iterations: usize,
    /// Divergence restarts taken.
    pub restarts: usize,
    /// Learning rate of the final run.
    pub final_lr: f64,
    /// Whether the solve diverged.
    pub diverged: bool,
    /// Why the solve stopped ([`seldon_solver::StopReason`] string form;
    /// `"max_iters"` when replaying a pre-early-stop checkpoint).
    pub stop_reason: String,
    /// Epochs the stop saved against the `max_iters` budget.
    pub epochs_saved: usize,
    /// Sampled convergence curve.
    pub curve: Vec<EpochSample>,
    /// The extracted (learned) specification, in its canonical text form.
    pub spec_text: String,
    /// Per-event role assignments from extraction.
    pub event_roles: Vec<(u32, u8)>,
    /// Selections per backoff level.
    pub backoff_hits: Vec<usize>,
    /// System shape for spans/manifest on full reuse.
    pub summary: SystemSummary,
}

fn hash_solve_opts(h: &mut Fnv64, solve: &SolveOptions) {
    // `threads` and `trace_stride` are cost/observability knobs; scores
    // are byte-identical across both, so they stay out of the key. The
    // early-stop configuration changes *where* the solve stops, so it is
    // part of the key (presence tag + every field).
    h.write_f64(solve.lambda)
        .write_u64(solve.max_iters as u64)
        .write_f64(solve.tol)
        .write_f64(solve.adam.lr)
        .write_f64(solve.adam.beta1)
        .write_f64(solve.adam.beta2)
        .write_f64(solve.adam.eps);
    match &solve.early_stop {
        None => {
            h.write_u64(0);
        }
        Some(es) => {
            h.write_u64(1)
                .write_u64(es.patience as u64)
                .write_f64(es.rel_tol)
                .write_u64(es.min_iters as u64);
        }
    }
}

/// Fingerprints a propagation graph by content: events (kind, span, file,
/// representation strings) and edges (endpoints, kind, argument position)
/// in deterministic graph order. Interner-independent: two processes that
/// built the same graph from the same corpus agree on this value.
pub fn graph_fingerprint(graph: &PropagationGraph) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(graph.event_count() as u64);
    for (_, event) in graph.events() {
        h.write_u64(event.kind as u64)
            .write_u32(event.file.0)
            .write_u32(event.span.start)
            .write_u32(event.span.end)
            .write_u32(event.span.line)
            .write_u32(event.span.col)
            .write_u64(event.reps.len() as u64);
        for rep in &event.reps {
            h.write_str(rep.as_str());
        }
    }
    h.write_u64(graph.edge_count() as u64);
    for (from, to) in graph.edges() {
        h.write_u32(from.0).write_u32(to.0);
        h.write_u64(graph.edge_kind(from, to).map_or(u64::MAX, |k| k as u64));
        match graph.arg_position(from, to) {
            None => h.write_u64(0),
            Some(seldon_propgraph::ArgPos::Receiver) => h.write_u64(1),
            Some(seldon_propgraph::ArgPos::Positional(i)) => {
                h.write_u64(2).write_u64(u64::from(*i))
            }
            Some(seldon_propgraph::ArgPos::Keyword(name)) => h.write_u64(3).write_str(name),
        };
    }
    h.finish()
}

/// The full-reuse key: graph + seed spec + every option that shapes the
/// constraint system, the solve, or the extraction.
pub fn input_fingerprint(
    graph_fp: u64,
    seed: &TaintSpec,
    gen: &GenOptions,
    solve: &SolveOptions,
    extract: &ExtractOptions,
) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(graph_fp).write_str(&seed.to_text());
    h.write_u64(gen.rep_cutoff as u64)
        .write_f64(gen.c)
        .write_u64(gen.max_rhs_terms as u64)
        .write_u64(gen.max_reach as u64)
        .write_u64(gen.templates.iter().fold(0, |acc, &t| acc << 1 | u64::from(t)))
        .write_u64(gen.max_backoff as u64);
    hash_solve_opts(&mut h, solve);
    for t in extract.thresholds {
        h.write_f64(t);
    }
    h.write_f64(extract.decay).write_u64(u64::from(extract.exclude_seeded));
    h.finish()
}

/// The score-reuse key: the generated constraint system (variables by
/// representation string and role, constraints by template and terms,
/// seed pins) plus the solver options.
pub fn system_fingerprint(system: &ConstraintSystem, solve: &SolveOptions) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(system.var_count() as u64);
    for (_, rep, role) in system.variables() {
        h.write_str(rep).write_u64(role.index() as u64);
    }
    h.write_u64(system.constraint_count() as u64);
    for c in &system.constraints {
        let tag = match c.template {
            Template::A => 0u64,
            Template::B => 1,
            Template::C => 2,
        };
        h.write_u64(tag);
        for side in [&c.lhs, &c.rhs] {
            h.write_u64(side.len() as u64);
            for term in side {
                h.write_u32(term.var.0).write_f64(term.coeff);
            }
        }
    }
    for (var, value) in system.pinned_sorted() {
        h.write_u32(var).write_f64(value);
    }
    h.write_f64(system.c);
    hash_solve_opts(&mut h, solve);
    h.finish()
}

fn hex64(v: u64) -> Json {
    Json::str(format!("{v:016x}"))
}

fn hex_f64(v: f64) -> Json {
    hex64(v.to_bits())
}

fn parse_hex64(v: &Json, what: &str) -> Result<u64, EntryError> {
    v.as_str()
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or_else(|| EntryError::Corrupt(format!("{what} not a hex u64")))
}

fn parse_hex_f64(v: &Json, what: &str) -> Result<f64, EntryError> {
    Ok(f64::from_bits(parse_hex64(v, what)?))
}

impl Checkpoint {
    /// Packs a [`RoleSet`] into the stored bitmask.
    pub fn role_bits(roles: RoleSet) -> u8 {
        roles.iter().fold(0, |acc, role| acc | 1 << role.index())
    }

    /// Unpacks a stored bitmask into a [`RoleSet`].
    pub fn roles_from_bits(bits: u8) -> RoleSet {
        Role::ALL
            .iter()
            .filter(|role| bits & (1 << role.index()) != 0)
            .fold(RoleSet::EMPTY, |set, &role| set.with(role))
    }

    /// Records the `(representation, role)` identity of every variable
    /// in `system`, in `VarId` order, for a checkpoint solved from it.
    pub fn var_keys_of(system: &ConstraintSystem) -> Vec<(String, u8)> {
        system
            .variables()
            .map(|(_, rep, role)| (rep.to_string(), role.index() as u8))
            .collect()
    }

    /// Remaps the stored scores onto a (possibly different) constraint
    /// system, producing an initial point for
    /// [`seldon_solver::solve_compiled_warm`]: each variable of `system`
    /// takes the old score of the variable with the same
    /// `(representation, role)` key, and variables with no predecessor
    /// start at the cold default `0.0`. Scores of variables that no
    /// longer exist are dropped.
    ///
    /// Returns `None` when this checkpoint carries no usable key table
    /// (legacy payload, or one whose keys do not line up with its
    /// scores) — callers should then solve cold.
    pub fn warm_init_for(&self, system: &ConstraintSystem) -> Option<Vec<f64>> {
        if self.var_keys.len() != self.scores.len() {
            return None;
        }
        let old: std::collections::HashMap<(&str, u8), f64> = self
            .var_keys
            .iter()
            .zip(&self.scores)
            .map(|((rep, role), &score)| ((rep.as_str(), *role), score))
            .collect();
        Some(
            system
                .variables()
                .map(|(_, rep, role)| {
                    old.get(&(rep, role.index() as u8)).copied().unwrap_or(0.0)
                })
                .collect(),
        )
    }

    /// Per-event roles as the `HashMap` the extraction API uses.
    pub fn event_role_map(&self) -> std::collections::HashMap<EventId, RoleSet> {
        self.event_roles
            .iter()
            .map(|&(id, bits)| (EventId(id), Checkpoint::roles_from_bits(bits)))
            .collect()
    }

    /// Serializes to the JSON payload framed by
    /// [`crate::entry::encode_entry`].
    ///
    /// The three size-proportional tables — scores, convergence curve,
    /// per-event roles — are packed into single delimited strings (rows
    /// split by `;`, fields by `,`, floats as IEEE-754 bit patterns in
    /// hex) so warm-start load cost stays dominated by I/O, not JSON
    /// token parsing.
    pub fn to_payload(&self) -> Vec<u8> {
        use std::fmt::Write;
        let mut scores = String::with_capacity(self.scores.len() * 17);
        for (i, v) in self.scores.iter().enumerate() {
            if i > 0 {
                scores.push(';');
            }
            let _ = write!(scores, "{:016x}", v.to_bits());
        }
        let mut curve = String::new();
        for (i, e) in self.curve.iter().enumerate() {
            if i > 0 {
                curve.push(';');
            }
            let _ = write!(
                curve,
                "{},{:016x},{:016x},{},{:016x},{:016x}",
                e.epoch,
                e.objective.to_bits(),
                e.hinge_loss.to_bits(),
                e.violated,
                e.grad_norm.to_bits(),
                e.lr.to_bits()
            );
        }
        let mut event_roles = String::with_capacity(self.event_roles.len() * 8);
        for (i, &(id, bits)) in self.event_roles.iter().enumerate() {
            if i > 0 {
                event_roles.push(';');
            }
            let _ = write!(event_roles, "{id},{bits}");
        }
        let s = &self.summary;
        // Variable keys ride as a JSON array of "<role digit><rep>"
        // strings rather than a delimited table: representation strings
        // are arbitrary source-derived text, and JSON string escaping is
        // the only framing here that cannot collide with their content.
        let var_keys = Json::Arr(
            self.var_keys
                .iter()
                .map(|(rep, role)| Json::str(format!("{role}{rep}")))
                .collect(),
        );
        Json::Obj(vec![
            ("input_fp".into(), hex64(self.input_fp)),
            ("system_fp".into(), hex64(self.system_fp)),
            ("scores".into(), Json::str(scores)),
            ("var_keys".into(), var_keys),
            ("objective".into(), hex_f64(self.objective)),
            ("violation".into(), hex_f64(self.violation)),
            ("iterations".into(), Json::num(self.iterations as f64)),
            ("restarts".into(), Json::num(self.restarts as f64)),
            ("final_lr".into(), hex_f64(self.final_lr)),
            ("diverged".into(), Json::Bool(self.diverged)),
            ("stop_reason".into(), Json::str(&self.stop_reason)),
            ("epochs_saved".into(), Json::num(self.epochs_saved as f64)),
            ("curve".into(), Json::str(curve)),
            ("spec".into(), Json::str(&self.spec_text)),
            ("event_roles".into(), Json::str(event_roles)),
            (
                "backoff_hits".into(),
                Json::Arr(self.backoff_hits.iter().map(|&n| Json::num(n as f64)).collect()),
            ),
            (
                "summary".into(),
                Json::Obj(vec![
                    ("constraints".into(), Json::num(s.constraints as f64)),
                    ("vars".into(), Json::num(s.vars as f64)),
                    ("pinned".into(), Json::num(s.pinned as f64)),
                    (
                        "by_template".into(),
                        Json::Arr(s.by_template.iter().map(|&n| Json::num(n as f64)).collect()),
                    ),
                    ("candidates".into(), Json::num(s.candidates as f64)),
                    ("surviving_reps".into(), Json::num(s.surviving_reps as f64)),
                    ("dropped_by_cutoff".into(), Json::num(s.dropped_by_cutoff as f64)),
                    (
                        "dropped_by_blacklist".into(),
                        Json::num(s.dropped_by_blacklist as f64),
                    ),
                ]),
            ),
        ])
        .compact()
        .into_bytes()
    }

    /// Parses a payload produced by [`Checkpoint::to_payload`].
    ///
    /// # Errors
    ///
    /// [`EntryError::Corrupt`] on malformed JSON or schema mismatch.
    pub fn from_payload(payload: &[u8]) -> Result<Checkpoint, EntryError> {
        let corrupt = |what: &str| EntryError::Corrupt(what.to_string());
        let text = std::str::from_utf8(payload).map_err(|_| corrupt("payload not UTF-8"))?;
        let v = json::parse(text).map_err(|e| corrupt(&format!("payload JSON: {e}")))?;
        let field = |key: &str| v.get(key).ok_or_else(|| corrupt(&format!("missing `{key}`")));
        let count = |key: &str| -> Result<usize, EntryError> {
            field(key)?
                .as_u64()
                .map(|u| u as usize)
                .ok_or_else(|| corrupt(&format!("`{key}` not a count")))
        };
        let arr = |key: &str| {
            field(key)?.as_arr().ok_or_else(|| corrupt(&format!("`{key}` not an array")))
        };
        let table = |key: &str| -> Result<&str, EntryError> {
            field(key)?.as_str().ok_or_else(|| corrupt(&format!("`{key}` not a string")))
        };
        fn rows(table: &str) -> impl Iterator<Item = &str> {
            table.split(';').filter(|r| !r.is_empty())
        }
        let hex_field = |field: &str, what: &str| -> Result<f64, EntryError> {
            u64::from_str_radix(field, 16)
                .map(f64::from_bits)
                .map_err(|_| corrupt(&format!("{what} not a hex f64")))
        };
        let scores = rows(table("scores")?)
            .map(|s| hex_field(s, "score"))
            .collect::<Result<Vec<_>, _>>()?;
        // Lenient: absent from checkpoints written before warm-starting
        // landed. Those still replay on exact fingerprint matches; they
        // just cannot seed a warm solve (`warm_init_for` returns None).
        let mut var_keys = Vec::new();
        if let Some(entries) = v.get("var_keys").and_then(Json::as_arr) {
            for entry in entries {
                let s = entry.as_str().ok_or_else(|| corrupt("var_keys entry not a string"))?;
                let role = s
                    .chars()
                    .next()
                    .and_then(|c| c.to_digit(10))
                    .filter(|&d| d < 3)
                    .ok_or_else(|| corrupt("var_keys entry missing role digit"))?;
                var_keys.push((s[1..].to_string(), role as u8));
            }
        }
        let mut curve = Vec::new();
        for row in rows(table("curve")?) {
            let fields: Vec<&str> = row.split(',').collect();
            if fields.len() != 6 {
                return Err(corrupt("curve row must have 6 fields"));
            }
            curve.push(EpochSample {
                epoch: fields[0].parse().map_err(|_| corrupt("epoch not a u64"))?,
                objective: hex_field(fields[1], "curve objective")?,
                hinge_loss: hex_field(fields[2], "curve hinge_loss")?,
                violated: fields[3].parse().map_err(|_| corrupt("violated not a u64"))?,
                grad_norm: hex_field(fields[4], "curve grad_norm")?,
                lr: hex_field(fields[5], "curve lr")?,
            });
        }
        let mut event_roles = Vec::new();
        for row in rows(table("event_roles")?) {
            let (id, bits) =
                row.split_once(',').ok_or_else(|| corrupt("event_roles row needs 2 fields"))?;
            event_roles.push((
                id.parse::<u32>().map_err(|_| corrupt("event id not a u32"))?,
                bits.parse::<u8>().map_err(|_| corrupt("role bits not a u8"))?,
            ));
        }
        let backoff_hits = arr("backoff_hits")?
            .iter()
            .map(|n| {
                n.as_u64().map(|u| u as usize).ok_or_else(|| corrupt("backoff hit not a count"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let s = field("summary")?;
        let sfield = |key: &str| -> Result<u64, EntryError> {
            s.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| corrupt(&format!("summary `{key}` not a u64")))
        };
        let tpl = s
            .get("by_template")
            .and_then(Json::as_arr)
            .filter(|a| a.len() == 3)
            .ok_or_else(|| corrupt("summary `by_template` not a 3-array"))?;
        let mut by_template = [0u64; 3];
        for (slot, n) in by_template.iter_mut().zip(tpl) {
            *slot = n.as_u64().ok_or_else(|| corrupt("by_template entry not a u64"))?;
        }
        Ok(Checkpoint {
            input_fp: parse_hex64(field("input_fp")?, "input_fp")?,
            system_fp: parse_hex64(field("system_fp")?, "system_fp")?,
            scores,
            var_keys,
            objective: parse_hex_f64(field("objective")?, "objective")?,
            violation: parse_hex_f64(field("violation")?, "violation")?,
            iterations: count("iterations")?,
            restarts: count("restarts")?,
            final_lr: parse_hex_f64(field("final_lr")?, "final_lr")?,
            diverged: field("diverged")?
                .as_bool()
                .ok_or_else(|| corrupt("`diverged` not a bool"))?,
            // Lenient: absent from checkpoints written before the
            // convergence early-exit landed (those would be fingerprint-
            // stale anyway, but a parse fault would misreport as Corrupt).
            stop_reason: v
                .get("stop_reason")
                .and_then(Json::as_str)
                .unwrap_or("max_iters")
                .to_string(),
            epochs_saved: v
                .get("epochs_saved")
                .and_then(Json::as_u64)
                .unwrap_or(0) as usize,
            curve,
            spec_text: field("spec")?
                .as_str()
                .ok_or_else(|| corrupt("`spec` not a string"))?
                .to_string(),
            event_roles,
            backoff_hits,
            summary: SystemSummary {
                constraints: sfield("constraints")?,
                vars: sfield("vars")?,
                pinned: sfield("pinned")?,
                by_template,
                candidates: sfield("candidates")?,
                surviving_reps: sfield("surviving_reps")?,
                dropped_by_cutoff: sfield("dropped_by_cutoff")?,
                dropped_by_blacklist: sfield("dropped_by_blacklist")?,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seldon_propgraph::{build_source, FileId};

    fn sample() -> Checkpoint {
        Checkpoint {
            input_fp: 0xdead_beef_0123_4567,
            system_fp: 0x0bad_cafe_89ab_cdef,
            scores: vec![0.0, 0.5, 1.0, 1e-300, f64::MIN_POSITIVE, -0.0],
            var_keys: vec![
                ("flask.request.args.get()".into(), 0),
                ("escape()".into(), 1),
                ("cursor.execute()".into(), 2),
                ("weird;rep,with\"chars\\".into(), 0),
                ("os.system()".into(), 2),
                ("json.loads()".into(), 0),
            ],
            objective: 1.25,
            violation: 0.0625,
            iterations: 131,
            restarts: 1,
            final_lr: 0.0125,
            diverged: false,
            stop_reason: "plateau".into(),
            epochs_saved: 44,
            curve: vec![EpochSample {
                epoch: 10,
                objective: 2.5,
                hinge_loss: 2.0,
                violated: 7,
                grad_norm: 0.75,
                lr: 0.05,
            }],
            spec_text: "o:flask.request.args.get() 100\n".into(),
            event_roles: vec![(0, 0b001), (9, 0b110)],
            backoff_hits: vec![5, 2, 0],
            summary: SystemSummary {
                constraints: 26145,
                vars: 388,
                pinned: 24,
                by_template: [9000, 8000, 9145],
                candidates: 6000,
                surviving_reps: 388,
                dropped_by_cutoff: 100,
                dropped_by_blacklist: 3,
            },
        }
    }

    #[test]
    fn payload_round_trip_is_bit_exact() {
        let ckpt = sample();
        let back = Checkpoint::from_payload(&ckpt.to_payload()).unwrap();
        assert_eq!(back, ckpt);
        for (a, b) in ckpt.scores.iter().zip(&back.scores) {
            assert_eq!(a.to_bits(), b.to_bits(), "scores survive bit-for-bit");
        }
    }

    #[test]
    fn legacy_payload_without_stop_fields_parses_leniently() {
        let text = String::from_utf8(sample().to_payload()).unwrap();
        let legacy = text
            .replace("\"stop_reason\":\"plateau\",", "")
            .replace("\"epochs_saved\":44,", "");
        assert_ne!(legacy, text, "fields were present to strip");
        let back = Checkpoint::from_payload(legacy.as_bytes()).unwrap();
        assert_eq!(back.stop_reason, "max_iters");
        assert_eq!(back.epochs_saved, 0);
    }

    #[test]
    fn legacy_payload_without_var_keys_parses_and_declines_warm_start() {
        let text = String::from_utf8(sample().to_payload()).unwrap();
        let start = text.find(",\"var_keys\":[").unwrap();
        let end = text[start..].find(']').unwrap() + start + 1;
        let legacy = format!("{}{}", &text[..start], &text[end..]);
        let back = Checkpoint::from_payload(legacy.as_bytes()).unwrap();
        assert!(back.var_keys.is_empty());
        let sys = ConstraintSystem::new(0.75);
        assert_eq!(back.warm_init_for(&sys), None, "no key table, no warm seed");
    }

    #[test]
    fn warm_init_remaps_scores_across_var_id_spaces() {
        use seldon_specs::Role;
        let mut ckpt = sample();
        ckpt.scores = vec![0.1, 0.2, 0.3];
        ckpt.var_keys = vec![
            ("a()".into(), Role::Source.index() as u8),
            ("b()".into(), Role::Sink.index() as u8),
            ("gone()".into(), Role::Source.index() as u8),
        ];
        // New system: same reps in a different order (different VarIds),
        // one variable removed, one brand new.
        let mut sys = ConstraintSystem::new(0.75);
        let b = sys.rep("b()");
        let a = sys.rep("a()");
        let fresh = sys.rep("fresh()");
        sys.var(b, Role::Sink);
        sys.var(fresh, Role::Sanitizer);
        sys.var(a, Role::Source);
        let init = ckpt.warm_init_for(&sys).unwrap();
        assert_eq!(init, vec![0.2, 0.0, 0.1], "matched keys remap, new vars cold");
        // Same rep under a different role is a different variable.
        let mut other = ConstraintSystem::new(0.75);
        let a2 = other.rep("a()");
        other.var(a2, Role::Sanitizer);
        assert_eq!(ckpt.warm_init_for(&other).unwrap(), vec![0.0]);
        // A corrupt checkpoint whose keys disagree with its scores is
        // rejected rather than half-applied.
        ckpt.var_keys.pop();
        assert_eq!(ckpt.warm_init_for(&sys), None);
    }

    #[test]
    fn role_bits_round_trip() {
        for bits in 0u8..8 {
            assert_eq!(Checkpoint::role_bits(Checkpoint::roles_from_bits(bits)), bits);
        }
        assert_eq!(Checkpoint::roles_from_bits(Checkpoint::role_bits(RoleSet::ALL)), RoleSet::ALL);
    }

    #[test]
    fn graph_fingerprint_tracks_content_not_symbols() {
        let a = build_source("import os\nos.system('x')\n", FileId(0)).unwrap();
        let b = build_source("import os\nos.system('x')\n", FileId(0)).unwrap();
        assert_eq!(graph_fingerprint(&a), graph_fingerprint(&b));
        let c = build_source("import os\nos.remove('x')\n", FileId(0)).unwrap();
        assert_ne!(graph_fingerprint(&a), graph_fingerprint(&c));
    }

    #[test]
    fn fingerprints_react_to_every_option_group() {
        let graph = build_source("import os\nos.system('x')\n", FileId(0)).unwrap();
        let gfp = graph_fingerprint(&graph);
        let seed = TaintSpec::new();
        let (gen, solve, extract) =
            (GenOptions::default(), SolveOptions::default(), ExtractOptions::default());
        let base = input_fingerprint(gfp, &seed, &gen, &solve, &extract);
        let mut g2 = gen.clone();
        g2.rep_cutoff += 1;
        assert_ne!(base, input_fingerprint(gfp, &seed, &g2, &solve, &extract));
        let mut s2 = solve.clone();
        s2.lambda += 0.01;
        assert_ne!(base, input_fingerprint(gfp, &seed, &gen, &s2, &extract));
        // Early-stop shapes where the solve ends, so it keys the cache:
        // disabling it and tweaking each field must all miss.
        let mut s_off = solve.clone();
        s_off.early_stop = None;
        let off = input_fingerprint(gfp, &seed, &gen, &s_off, &extract);
        assert_ne!(base, off, "early-stop presence keyed");
        let mut s_pat = solve.clone();
        if let Some(es) = s_pat.early_stop.as_mut() {
            es.patience += 1;
        }
        assert_ne!(base, input_fingerprint(gfp, &seed, &gen, &s_pat, &extract));
        let mut s_tol = solve.clone();
        if let Some(es) = s_tol.early_stop.as_mut() {
            es.rel_tol *= 0.1;
        }
        assert_ne!(base, input_fingerprint(gfp, &seed, &gen, &s_tol, &extract));
        let mut s_min = solve.clone();
        if let Some(es) = s_min.early_stop.as_mut() {
            es.min_iters += 10;
        }
        assert_ne!(base, input_fingerprint(gfp, &seed, &gen, &s_min, &extract));
        let mut e2 = extract.clone();
        e2.decay *= 0.5;
        assert_ne!(base, input_fingerprint(gfp, &seed, &gen, &solve, &e2));
        // Cost knobs must NOT change the key: a warm run with more
        // threads still reuses the checkpoint.
        let mut s3 = solve.clone();
        s3.threads = 8;
        s3.trace_stride = 1;
        assert_eq!(
            base,
            input_fingerprint(gfp, &seed, &gen, &s3, &extract),
            "threads/stride excluded"
        );
        assert_ne!(base, input_fingerprint(gfp ^ 1, &seed, &gen, &solve, &extract));
    }
}
