//! Cache-fault injection for robustness testing.
//!
//! The corpus crate injects faults into *source files*
//! ([`seldon_corpus::faults`]-style); this module injects faults into the
//! *cache directory itself*, simulating what crashes, disk errors, and
//! build skew do to persisted entries. The injector damages a
//! deterministic, seed-chosen subset of entries; the determinism gate then
//! asserts a warm run over the damaged cache still produces a spec
//! byte-identical to a cold run.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fs;
use std::path::Path;

/// One way to damage a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheFaultKind {
    /// Keep only a prefix of the file — the classic crash-mid-write shape
    /// an atomic rename is supposed to prevent when the *writer* is this
    /// crate, but which foreign tools or filesystems can still produce.
    TornWrite,
    /// Drop the final bytes of the file.
    Truncation,
    /// Flip one random bit somewhere in the file.
    BitFlip,
    /// Restamp the header with a future format version.
    StaleSchema,
    /// Delete `index.json`.
    MissingIndex,
}

impl CacheFaultKind {
    /// All kinds, in injection rotation order.
    pub const ALL: [CacheFaultKind; 5] = [
        CacheFaultKind::TornWrite,
        CacheFaultKind::Truncation,
        CacheFaultKind::BitFlip,
        CacheFaultKind::StaleSchema,
        CacheFaultKind::MissingIndex,
    ];

    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            CacheFaultKind::TornWrite => "torn-write",
            CacheFaultKind::Truncation => "truncation",
            CacheFaultKind::BitFlip => "bit-flip",
            CacheFaultKind::StaleSchema => "stale-schema",
            CacheFaultKind::MissingIndex => "missing-index",
        }
    }
}

/// A record of one injected fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedCacheFault {
    /// The damaged cache file name.
    pub entry: String,
    /// How it was damaged.
    pub kind: CacheFaultKind,
}

fn damage(path: &Path, kind: CacheFaultKind, rng: &mut SmallRng) -> std::io::Result<()> {
    let bytes = fs::read(path)?;
    let damaged: Vec<u8> = match kind {
        CacheFaultKind::TornWrite => {
            // A torn write keeps some prefix, possibly mid-header.
            let keep = rng.gen_range(0..bytes.len().max(1));
            bytes[..keep].to_vec()
        }
        CacheFaultKind::Truncation => {
            let drop = rng.gen_range(1..=8.min(bytes.len()));
            bytes[..bytes.len() - drop].to_vec()
        }
        CacheFaultKind::BitFlip => {
            let mut out = bytes;
            if !out.is_empty() {
                let at = rng.gen_range(0..out.len());
                let bit = rng.gen_range(0..8u32);
                out[at] ^= 1 << bit;
            }
            out
        }
        CacheFaultKind::StaleSchema => {
            // Rewrite the version token of the header line in place.
            let text = String::from_utf8_lossy(&bytes);
            match text.split_once('\n') {
                Some((header, _)) => {
                    let mut tokens: Vec<&str> = header.split(' ').collect();
                    if tokens.len() >= 2 {
                        tokens[1] = "999999";
                    }
                    let mut out = tokens.join(" ").into_bytes();
                    out.push(b'\n');
                    out.extend_from_slice(&bytes[header.len() + 1..]);
                    out
                }
                None => bytes,
            }
        }
        CacheFaultKind::MissingIndex => {
            return fs::remove_file(path);
        }
    };
    fs::write(path, damaged)
}

/// Damages roughly `rate` of the `*.entry` files (plus the checkpoint and,
/// when selected, the index) under `dir`, rotating through
/// [`CacheFaultKind::ALL`]. Deterministic: the same directory contents,
/// `rate`, and `seed` always damage the same files the same way.
pub fn inject_cache_faults(dir: &Path, rate: f64, seed: u64) -> Vec<InjectedCacheFault> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x00CA_C4E0);
    let mut names: Vec<String> = fs::read_dir(dir)
        .into_iter()
        .flatten()
        .flatten()
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.ends_with(".entry") || n == crate::store::CHECKPOINT_NAME)
        .collect();
    names.sort_unstable();
    let mut injected = Vec::new();
    let mut next_kind = 0usize;
    let mut index_gone = false;
    for name in names {
        if !rng.gen_bool(rate) {
            continue;
        }
        let mut kind = CacheFaultKind::ALL[next_kind % CacheFaultKind::ALL.len()];
        next_kind += 1;
        if kind == CacheFaultKind::MissingIndex {
            if !index_gone && fs::remove_file(dir.join(crate::store::INDEX_NAME)).is_ok() {
                index_gone = true;
                injected.push(InjectedCacheFault {
                    entry: crate::store::INDEX_NAME.to_string(),
                    kind,
                });
            }
            // The selected entry still gets damaged so the rate holds.
            kind = CacheFaultKind::ALL[next_kind % CacheFaultKind::ALL.len()];
            next_kind += 1;
        }
        if damage(&dir.join(&name), kind, &mut rng).is_ok() {
            injected.push(InjectedCacheFault { entry: name, kind });
        }
    }
    injected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{file_key, ArtifactCache, ArtifactLookup};
    use seldon_propgraph::{build_source, FileId};

    #[test]
    fn injection_is_deterministic_and_every_fault_is_contained() {
        let dir = std::env::temp_dir().join(format!("seldon-inject-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let sources: Vec<String> = (0..40)
            .map(|i| format!("import os\nx_{i} = 1\nos.system('cmd {i}')\n"))
            .collect();
        let (cache, _) = ArtifactCache::open(&dir).unwrap();
        for src in &sources {
            let graph = build_source(src, FileId(0)).unwrap();
            cache.store_artifact(file_key(src, 0, 0), &graph, 0);
        }
        let a = inject_cache_faults(&dir, 0.5, 42);
        assert!(!a.is_empty(), "rate 0.5 over 40 entries injects something");
        // Re-populate and re-inject: the same plan comes out.
        fs::remove_dir_all(&dir).unwrap();
        let (cache, _) = ArtifactCache::open(&dir).unwrap();
        for src in &sources {
            let graph = build_source(src, FileId(0)).unwrap();
            cache.store_artifact(file_key(src, 0, 0), &graph, 0);
        }
        let b = inject_cache_faults(&dir, 0.5, 42);
        assert_eq!(a, b, "same seed, same damage plan");

        // Every damaged entry must now read back as Miss or Fault — never
        // as a wrong Hit, and never a panic/error.
        let (cache, _) = ArtifactCache::open(&dir).unwrap();
        for (i, src) in sources.iter().enumerate() {
            let key = file_key(src, 0, 0);
            let damaged = b.iter().any(|f| f.entry == format!("{key:016x}.entry"));
            match cache.load_artifact(key, FileId(0)) {
                ArtifactLookup::Hit(graph, _) => {
                    let fresh = build_source(src, FileId(0)).unwrap();
                    assert_eq!(
                        graph.event_count(),
                        fresh.event_count(),
                        "surviving entry {i} decodes to the true graph"
                    );
                }
                ArtifactLookup::Miss | ArtifactLookup::Fault(_) => {
                    assert!(damaged, "undamaged entry {i} must hit");
                }
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
