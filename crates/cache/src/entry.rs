//! On-disk entry codec: checksummed header + payload, written atomically.
//!
//! Every cache file — per-file artifacts and the solver checkpoint alike —
//! uses one frame format:
//!
//! ```text
//! seldon-cache <version> <checksum:016x> <payload-len>\n
//! <payload bytes>
//! ```
//!
//! The header is a single ASCII line: a magic token, the cache format
//! version, the FNV-1a 64 checksum of the payload, and the payload length
//! in bytes. Reads re-derive the checksum and length before a single
//! payload byte is interpreted, so torn writes, truncations, and bit flips
//! are all caught here and surfaced as [`EntryError::Corrupt`]; a version
//! from another build is [`EntryError::Stale`]. Writers never touch the
//! destination path directly: the frame goes to a unique temp file in the
//! same directory and is moved into place with `rename`, which is atomic
//! on POSIX — a crash mid-write leaves either the old entry or a stray
//! temp file, never a half-written destination.

use crate::hash::hash_bytes;
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Magic token opening every entry header.
pub const ENTRY_MAGIC: &str = "seldon-cache";

/// Version stamp of the on-disk entry format. Bump on any change to the
/// frame or payload encodings; readers treat other versions as
/// [`EntryError::Stale`] and recompute.
pub const ENTRY_VERSION: u32 = 1;

/// Why an entry could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntryError {
    /// The frame is damaged: bad magic, malformed header, payload shorter
    /// or longer than declared, or checksum mismatch.
    Corrupt(String),
    /// The frame is well-formed but written by a different format version.
    Stale {
        /// The version stamped in the entry header.
        found: u32,
    },
}

impl fmt::Display for EntryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EntryError::Corrupt(detail) => write!(f, "corrupt entry: {detail}"),
            EntryError::Stale { found } => {
                write!(f, "stale entry: format v{found}, this build reads v{ENTRY_VERSION}")
            }
        }
    }
}

impl std::error::Error for EntryError {}

/// Frames a payload with the checksummed header.
pub fn encode_entry(payload: &[u8]) -> Vec<u8> {
    let header = format!(
        "{ENTRY_MAGIC} {ENTRY_VERSION} {:016x} {}\n",
        hash_bytes(payload),
        payload.len()
    );
    let mut out = Vec::with_capacity(header.len() + payload.len());
    out.extend_from_slice(header.as_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates a frame and returns its payload slice.
///
/// # Errors
///
/// [`EntryError::Corrupt`] on any byte-level damage, [`EntryError::Stale`]
/// on a format-version mismatch (checked before the checksum, so a stale
/// entry is reported as stale even though its checksum also differs from
/// what this build would have written).
pub fn decode_entry(bytes: &[u8]) -> Result<&[u8], EntryError> {
    let line_end = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| EntryError::Corrupt("no header line".into()))?;
    let header = std::str::from_utf8(&bytes[..line_end])
        .map_err(|_| EntryError::Corrupt("header is not UTF-8".into()))?;
    let mut tokens = header.split(' ');
    let magic = tokens.next().unwrap_or("");
    if magic != ENTRY_MAGIC {
        return Err(EntryError::Corrupt(format!("bad magic `{magic}`")));
    }
    let version: u32 = tokens
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| EntryError::Corrupt("unreadable version".into()))?;
    if version != ENTRY_VERSION {
        return Err(EntryError::Stale { found: version });
    }
    let checksum = tokens
        .next()
        .and_then(|t| u64::from_str_radix(t, 16).ok())
        .ok_or_else(|| EntryError::Corrupt("unreadable checksum".into()))?;
    let declared_len: usize = tokens
        .next()
        .filter(|_| tokens.next().is_none())
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| EntryError::Corrupt("unreadable payload length".into()))?;
    let payload = &bytes[line_end + 1..];
    if payload.len() != declared_len {
        return Err(EntryError::Corrupt(format!(
            "payload is {} byte(s), header declares {declared_len}",
            payload.len()
        )));
    }
    let actual = hash_bytes(payload);
    if actual != checksum {
        return Err(EntryError::Corrupt(format!(
            "checksum {actual:016x} != header {checksum:016x}"
        )));
    }
    Ok(payload)
}

/// Process-wide counter making concurrent temp names unique.
static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Writes `bytes` to `path` via a unique same-directory temp file and an
/// atomic rename. Concurrent writers of the same path race benignly: each
/// rename installs one complete frame, and the loser's frame simply
/// replaces the winner's.
///
/// # Errors
///
/// Any I/O error from the temp write or the rename; the temp file is
/// cleaned up on failure.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let seq = TEMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let tmp = dir.join(format!(
        ".tmp-{}-{seq}-{}",
        std::process::id(),
        path.file_name().and_then(|n| n.to_str()).unwrap_or("entry")
    ));
    let result = (|| {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_data()?;
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let payload = b"{\"v\":1}";
        let frame = encode_entry(payload);
        assert_eq!(decode_entry(&frame).unwrap(), payload);
    }

    #[test]
    fn truncation_is_corrupt() {
        let frame = encode_entry(b"hello world");
        for cut in 0..frame.len() {
            let err = decode_entry(&frame[..cut]).unwrap_err();
            assert!(matches!(err, EntryError::Corrupt(_)), "cut at {cut}: {err}");
        }
    }

    #[test]
    fn any_single_bit_flip_is_detected() {
        let frame = encode_entry(b"payload bytes under test");
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x10;
            assert!(decode_entry(&bad).is_err(), "flip at byte {i} went unnoticed");
        }
    }

    #[test]
    fn version_skew_is_stale_not_corrupt() {
        let frame = encode_entry(b"x");
        let text = String::from_utf8(frame).unwrap();
        let skewed = text.replacen(&format!(" {ENTRY_VERSION} "), " 999 ", 1);
        assert_eq!(
            decode_entry(skewed.as_bytes()).unwrap_err(),
            EntryError::Stale { found: 999 }
        );
    }

    #[test]
    fn trailing_garbage_is_corrupt() {
        let mut frame = encode_entry(b"x");
        frame.extend_from_slice(b"zzz");
        assert!(matches!(decode_entry(&frame).unwrap_err(), EntryError::Corrupt(_)));
    }

    #[test]
    fn atomic_write_replaces_whole_file() {
        let dir = std::env::temp_dir().join(format!("seldon-entry-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("e.entry");
        write_atomic(&path, &encode_entry(b"first")).unwrap();
        write_atomic(&path, &encode_entry(b"second")).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(decode_entry(&bytes).unwrap(), b"second");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
