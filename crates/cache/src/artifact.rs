//! The per-file artifact payload: a propagation graph serialized by
//! representation **string**.
//!
//! `Symbol(u32)` values are slots in the process-global interner — a second
//! process (or the same binary after a restart) assigns different numbers
//! to the same strings, so raw symbols must never reach disk. An artifact
//! instead carries a per-entry string table of representation texts; events
//! reference table indices, and [`FileArtifact::to_graph`] re-interns the
//! strings in the loading process. [`FileId`]s are equally run-local (the
//! file's index in corpus order), so the stored graph is always stamped
//! file 0 and re-stamped with the caller's id on load.
//!
//! Alongside the graph the payload stores the file's constraint fragment:
//! its contribution to the §4.3 representation-frequency census, again
//! keyed by string-table index. On load the fragment is recomputed from
//! the decoded graph and compared — a payload that passes the outer
//! checksum but decodes to a graph disagreeing with its own fragment is
//! treated as corrupt and recomputed, never trusted.

use crate::entry::EntryError;
use seldon_intern::intern;
use seldon_propgraph::{ArgPos, EdgeKind, Event, EventId, EventKind, FileId, PropagationGraph};
use seldon_pyast::Span;
use seldon_telemetry::json::{self, Json};
use std::collections::HashMap;

/// A propagation graph plus constraint fragment in disk-stable form.
#[derive(Debug, Clone, PartialEq)]
pub struct FileArtifact {
    /// Lenient-parse error count: 0 for a strict parse, `n ≥ 1` when the
    /// file was recovered with `n` front-end errors.
    pub recovered_errors: usize,
    /// Representation string table; events refer to entries by index.
    strings: Vec<String>,
    /// Events as `(kind, span, rep-table-indices)`.
    events: Vec<(EventKind, Span, Vec<u32>)>,
    /// Flow edges `(from, to, kind)`, ordered so that replaying
    /// [`PropagationGraph::add_edge_kind`] reproduces the original
    /// graph's successor *and* predecessor list orders (see
    /// [`FileArtifact::from_graph`]).
    edges: Vec<(u32, u32, EdgeKind)>,
    /// Argument positions for the edges that have one.
    args: Vec<(u32, u32, ArgPos)>,
    /// The §4.3 frequency fragment: `(rep-table-index, count)` pairs.
    freq: Vec<(u32, u32)>,
}

fn kind_tag(kind: EventKind) -> u64 {
    match kind {
        EventKind::Call => 0,
        EventKind::ObjectRead => 1,
        EventKind::ParamRead => 2,
    }
}

fn kind_from_tag(tag: u64) -> Option<EventKind> {
    match tag {
        0 => Some(EventKind::Call),
        1 => Some(EventKind::ObjectRead),
        2 => Some(EventKind::ParamRead),
        _ => None,
    }
}

/// Computes the frequency fragment of a graph against a string table.
fn freq_fragment(
    graph: &PropagationGraph,
    index_of: &HashMap<&str, u32>,
) -> Vec<(u32, u32)> {
    let mut counts: HashMap<u32, u32> = HashMap::new();
    for (_, event) in graph.events() {
        for &rep in &event.reps {
            *counts.entry(index_of[rep.as_str()]).or_insert(0) += 1;
        }
    }
    let mut freq: Vec<(u32, u32)> = counts.into_iter().collect();
    freq.sort_unstable();
    freq
}

impl FileArtifact {
    /// Captures a per-file graph (as built by the front end, stamped with
    /// any [`FileId`]) into disk-stable form.
    pub fn from_graph(graph: &PropagationGraph, recovered_errors: usize) -> FileArtifact {
        let mut strings: Vec<String> = Vec::new();
        let mut index_of: HashMap<&str, u32> = HashMap::new();
        let mut events = Vec::with_capacity(graph.event_count());
        for (_, event) in graph.events() {
            let reps = event
                .reps
                .iter()
                .map(|&rep| {
                    let text = rep.as_str();
                    *index_of.entry(text).or_insert_with(|| {
                        strings.push(text.to_string());
                        (strings.len() - 1) as u32
                    })
                })
                .collect();
            events.push((event.kind, event.span, reps));
        }
        // Adjacency-list order is behaviorally significant: constraint
        // generation walks successor/predecessor lists in insertion order,
        // and the solver's floating-point results depend on constraint
        // order. `graph.edges()` preserves each successor list but loses
        // predecessor order, so a rebuilt graph would generate a permuted
        // (same multiset, different order) constraint system and miss the
        // warm-start fingerprint. Instead, emit edges in an order that
        // heads both its source's out-chain and its target's in-chain —
        // replaying `add_edge_kind` then reproduces both list families
        // exactly. Such a schedule always exists (the original insertion
        // sequence is one) and Kahn-style greedy emission finds one.
        let n = graph.event_count();
        let mut edges = Vec::with_capacity(graph.edge_count());
        let mut args = Vec::new();
        let mut out_ptr = vec![0usize; n];
        let mut in_ptr = vec![0usize; n];
        let head = |out_ptr: &[usize], in_ptr: &[usize], f: u32| -> Option<EventId> {
            let from = EventId(f);
            let t = *graph.successors(from).get(out_ptr[from.index()])?;
            (graph.predecessors(t)[in_ptr[t.index()]] == from).then_some(t)
        };
        let mut stack: Vec<u32> = (0..n as u32).collect();
        while let Some(f) = stack.pop() {
            while let Some(to) = head(&out_ptr, &in_ptr, f) {
                let from = EventId(f);
                let kind = graph.edge_kind(from, to).expect("chain heads are edges");
                edges.push((from.0, to.0, kind));
                if let Some(pos) = graph.arg_position(from, to) {
                    args.push((from.0, to.0, pos.clone()));
                }
                out_ptr[from.index()] += 1;
                in_ptr[to.index()] += 1;
                // The target's next in-edge may have just become emittable.
                if let Some(&g) = graph.predecessors(to).get(in_ptr[to.index()]) {
                    stack.push(g.0);
                }
            }
        }
        debug_assert_eq!(edges.len(), graph.edge_count(), "edge schedule is complete");
        let freq = freq_fragment(graph, &index_of);
        FileArtifact { recovered_errors, strings, events, edges, args, freq }
    }

    /// Rebuilds the graph in this process: representation strings are
    /// re-interned, events re-stamped with `file`, and the stored
    /// frequency fragment cross-checked against the rebuilt graph.
    ///
    /// # Errors
    ///
    /// [`EntryError::Corrupt`] when the payload is internally inconsistent
    /// (out-of-range indices, empty rep lists, fragment mismatch).
    pub fn to_graph(&self, file: FileId) -> Result<PropagationGraph, EntryError> {
        let corrupt = |what: &str| EntryError::Corrupt(what.to_string());
        let symbols: Vec<_> = self.strings.iter().map(|s| intern(s)).collect();
        let mut graph = PropagationGraph::new();
        graph.reserve_events(self.events.len());
        for (kind, span, reps) in &self.events {
            if reps.is_empty() {
                return Err(corrupt("event with no representations"));
            }
            let reps = reps
                .iter()
                .map(|&i| symbols.get(i as usize).copied())
                .collect::<Option<Vec<_>>>()
                .ok_or_else(|| corrupt("representation index out of range"))?;
            graph.add_event(Event::new(*kind, reps, file, *span));
        }
        let n = self.events.len() as u32;
        for &(from, to, kind) in &self.edges {
            if from >= n || to >= n {
                return Err(corrupt("edge endpoint out of range"));
            }
            graph.add_edge_kind(EventId(from), EventId(to), kind);
        }
        for (from, to, pos) in &self.args {
            if *from >= n || *to >= n {
                return Err(corrupt("argument edge out of range"));
            }
            graph.set_arg_position(EventId(*from), EventId(*to), pos.clone());
        }
        let index_of: HashMap<&str, u32> = self
            .strings
            .iter()
            .enumerate()
            .map(|(i, s)| (s.as_str(), i as u32))
            .collect();
        if index_of.len() != self.strings.len() {
            return Err(corrupt("duplicate string-table entries"));
        }
        if freq_fragment(&graph, &index_of) != self.freq {
            return Err(corrupt("frequency fragment disagrees with decoded graph"));
        }
        Ok(graph)
    }

    /// Serializes to the compact JSON payload framed by
    /// [`crate::entry::encode_entry`].
    ///
    /// The event/edge/arg/freq tables are packed into single delimited
    /// strings (rows split by `;`, fields by `,`) rather than nested JSON
    /// arrays: a warm run decodes hundreds of these payloads on the hot
    /// path, and one string per table keeps the JSON token count — and
    /// with it the parse cost — roughly constant per file instead of
    /// linear in graph size.
    pub fn to_payload(&self) -> Vec<u8> {
        use std::fmt::Write;
        let mut events = String::new();
        for (i, (kind, span, reps)) in self.events.iter().enumerate() {
            if i > 0 {
                events.push(';');
            }
            let _ = write!(
                events,
                "{},{},{},{},{}",
                kind_tag(*kind),
                span.start,
                span.end,
                span.line,
                span.col
            );
            for r in reps {
                let _ = write!(events, ",{r}");
            }
        }
        let mut edges = String::new();
        for (i, &(from, to, kind)) in self.edges.iter().enumerate() {
            if i > 0 {
                edges.push(';');
            }
            let tag = match kind {
                EdgeKind::Argument => 0,
                EdgeKind::Receiver => 1,
            };
            let _ = write!(edges, "{from},{to},{tag}");
        }
        let mut args = String::new();
        for (i, (from, to, pos)) in self.args.iter().enumerate() {
            if i > 0 {
                args.push(';');
            }
            // Keyword names are Python identifiers, so they never contain
            // the `;`/`,` delimiters; the decoder splits the name field
            // last and keeps any `,` it might somehow carry.
            match pos {
                ArgPos::Receiver => {
                    let _ = write!(args, "{from},{to},0");
                }
                ArgPos::Positional(p) => {
                    let _ = write!(args, "{from},{to},1,{p}");
                }
                ArgPos::Keyword(name) => {
                    let _ = write!(args, "{from},{to},2,{name}");
                }
            }
        }
        let mut freq = String::new();
        for (i, &(rep, n)) in self.freq.iter().enumerate() {
            if i > 0 {
                freq.push(';');
            }
            let _ = write!(freq, "{rep},{n}");
        }
        Json::Obj(vec![
            ("recovered_errors".into(), Json::num(self.recovered_errors as f64)),
            (
                "strings".into(),
                Json::Arr(self.strings.iter().map(Json::str).collect()),
            ),
            ("events".into(), Json::str(events)),
            ("edges".into(), Json::str(edges)),
            ("args".into(), Json::str(args)),
            ("freq".into(), Json::str(freq)),
        ])
        .compact()
        .into_bytes()
    }

    /// Parses a payload produced by [`FileArtifact::to_payload`].
    ///
    /// # Errors
    ///
    /// [`EntryError::Corrupt`] on malformed JSON or schema mismatch.
    pub fn from_payload(payload: &[u8]) -> Result<FileArtifact, EntryError> {
        let corrupt = |what: &str| EntryError::Corrupt(what.to_string());
        let text = std::str::from_utf8(payload).map_err(|_| corrupt("payload not UTF-8"))?;
        let v = json::parse(text).map_err(|e| corrupt(&format!("payload JSON: {e}")))?;
        let field = |key: &str| v.get(key).ok_or_else(|| corrupt(&format!("missing `{key}`")));
        let table = |key: &str| -> Result<&str, EntryError> {
            field(key)?.as_str().ok_or_else(|| corrupt(&format!("`{key}` not a string")))
        };
        let small = |field: &str, what: &str| -> Result<u32, EntryError> {
            field.parse::<u32>().map_err(|_| corrupt(&format!("{what} not a u32")))
        };
        fn rows(table: &str) -> impl Iterator<Item = &str> {
            table.split(';').filter(|r| !r.is_empty())
        }
        let recovered_errors = field("recovered_errors")?
            .as_u64()
            .ok_or_else(|| corrupt("`recovered_errors` not a count"))?
            as usize;
        let strings = field("strings")?
            .as_arr()
            .ok_or_else(|| corrupt("`strings` not an array"))?
            .iter()
            .map(|s| s.as_str().map(str::to_string).ok_or_else(|| corrupt("non-string rep")))
            .collect::<Result<Vec<_>, _>>()?;
        let mut events = Vec::new();
        for row in rows(table("events")?) {
            let fields: Vec<&str> = row.split(',').collect();
            if fields.len() < 6 {
                return Err(corrupt("event row too short"));
            }
            let kind = kind_from_tag(
                fields[0].parse().map_err(|_| corrupt("event kind not a tag"))?,
            )
            .ok_or_else(|| corrupt("unknown event kind"))?;
            let span = Span::new(
                small(fields[1], "span.start")?,
                small(fields[2], "span.end")?,
                small(fields[3], "span.line")?,
                small(fields[4], "span.col")?,
            );
            let reps = fields[5..]
                .iter()
                .map(|i| small(i, "rep index"))
                .collect::<Result<Vec<_>, _>>()?;
            events.push((kind, span, reps));
        }
        let mut edges = Vec::new();
        for row in rows(table("edges")?) {
            let fields: Vec<&str> = row.split(',').collect();
            if fields.len() != 3 {
                return Err(corrupt("edge row must have 3 fields"));
            }
            let kind = match fields[2] {
                "0" => EdgeKind::Argument,
                "1" => EdgeKind::Receiver,
                _ => return Err(corrupt("unknown edge kind")),
            };
            edges.push((small(fields[0], "edge.from")?, small(fields[1], "edge.to")?, kind));
        }
        let mut args = Vec::new();
        for row in rows(table("args")?) {
            // The keyword-name field comes last and is taken verbatim, so
            // split off at most the three leading numeric fields.
            let fields: Vec<&str> = row.splitn(4, ',').collect();
            if fields.len() < 3 {
                return Err(corrupt("arg row too short"));
            }
            let value = fields.get(3).copied();
            let pos = match (fields[2], value) {
                ("0", None) => ArgPos::Receiver,
                ("1", Some(p)) => ArgPos::Positional(
                    p.parse().map_err(|_| corrupt("positional index not a u8"))?,
                ),
                ("2", Some(name)) => ArgPos::Keyword(name.to_string()),
                _ => return Err(corrupt("unknown arg position tag")),
            };
            args.push((small(fields[0], "arg.from")?, small(fields[1], "arg.to")?, pos));
        }
        let mut freq = Vec::new();
        for row in rows(table("freq")?) {
            let fields: Vec<&str> = row.split(',').collect();
            if fields.len() != 2 {
                return Err(corrupt("freq row must have 2 fields"));
            }
            freq.push((small(fields[0], "freq.rep")?, small(fields[1], "freq.count")?));
        }
        Ok(FileArtifact { recovered_errors, strings, events, edges, args, freq })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seldon_propgraph::build_source;

    const SOURCE: &str = "import flask\nimport os\n\ndef handler():\n    q = flask.request.args.get('q')\n    os.system(q)\n";

    fn graphs_agree(a: &PropagationGraph, b: &PropagationGraph) {
        assert_eq!(a.event_count(), b.event_count());
        assert_eq!(a.edge_count(), b.edge_count());
        for (id, ev) in a.events() {
            let other = b.event(id);
            assert_eq!(ev.kind, other.kind);
            assert_eq!(ev.span, other.span);
            assert_eq!(ev.candidates, other.candidates);
            let reps: Vec<&str> = ev.reps.iter().map(|r| r.as_str()).collect();
            let other_reps: Vec<&str> = other.reps.iter().map(|r| r.as_str()).collect();
            assert_eq!(reps, other_reps);
        }
        for (from, to) in a.edges() {
            assert_eq!(a.edge_kind(from, to), b.edge_kind(from, to));
            assert_eq!(a.arg_position(from, to), b.arg_position(from, to));
        }
        // Adjacency-list *order* must survive too: constraint generation
        // walks these lists, and constraint order feeds the solver.
        for (id, _) in a.events() {
            assert_eq!(a.successors(id), b.successors(id), "succ order of {id:?}");
            assert_eq!(a.predecessors(id), b.predecessors(id), "pred order of {id:?}");
        }
    }

    #[test]
    fn graph_round_trips_with_restamped_file_id() {
        let graph = build_source(SOURCE, FileId(0)).unwrap();
        let artifact = FileArtifact::from_graph(&graph, 0);
        let payload = artifact.to_payload();
        let back = FileArtifact::from_payload(&payload).unwrap();
        assert_eq!(back, artifact);
        let rebuilt = back.to_graph(FileId(42)).unwrap();
        graphs_agree(&graph, &rebuilt);
        for (_, ev) in rebuilt.events() {
            assert_eq!(ev.file, FileId(42), "events are re-stamped on load");
        }
    }

    #[test]
    fn payload_contains_no_raw_symbols() {
        let graph = build_source(SOURCE, FileId(7)).unwrap();
        let payload = FileArtifact::from_graph(&graph, 0).to_payload();
        let text = std::str::from_utf8(&payload).unwrap();
        // Every representation appears by string; the payload parses in
        // any process regardless of interner state.
        assert!(text.contains("os.system()"), "reps stored as strings: {text}");
    }

    #[test]
    fn tampered_fragment_is_rejected() {
        let graph = build_source(SOURCE, FileId(0)).unwrap();
        let mut artifact = FileArtifact::from_graph(&graph, 0);
        artifact.freq[0].1 += 1;
        assert!(matches!(
            artifact.to_graph(FileId(0)).unwrap_err(),
            EntryError::Corrupt(_)
        ));
    }

    #[test]
    fn out_of_range_indices_are_rejected() {
        let graph = build_source(SOURCE, FileId(0)).unwrap();
        let artifact = FileArtifact::from_graph(&graph, 0);
        let mut bad = artifact.clone();
        bad.events[0].2 = vec![9999];
        assert!(bad.to_graph(FileId(0)).is_err());
        let mut bad = artifact.clone();
        bad.edges.push((9999, 0, EdgeKind::Argument));
        assert!(bad.to_graph(FileId(0)).is_err());
    }
}
