//! The on-disk artifact store: keyed entries, an index stamp, quarantine,
//! and hit/miss/fault accounting.
//!
//! A cache directory holds one `*.entry` file per cached per-file
//! artifact (named by its 16-hex-digit key), one `solver.ckpt` checkpoint,
//! an `index.json` stamp, and a `quarantine/` subdirectory. Every read
//! path classifies damage instead of failing: a bad entry is moved into
//! `quarantine/` (preserving the evidence), counted, reported as a
//! [`CacheFault`], and the caller recomputes. No cache failure mode is
//! allowed to escape as an error — the worst outcome of any fault is a
//! cold computation.

use crate::artifact::FileArtifact;
use crate::checkpoint::Checkpoint;
use crate::entry::{decode_entry, encode_entry, write_atomic, EntryError, ENTRY_VERSION};
use crate::hash::Fnv64;
use seldon_propgraph::{FileId, PropagationGraph};
use seldon_telemetry::json::{self, Json};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Name of the index stamp inside a cache directory.
pub const INDEX_NAME: &str = "index.json";

/// Name of the solver checkpoint inside a cache directory.
pub const CHECKPOINT_NAME: &str = "solver.ckpt";

/// How a detected cache fault is classified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Byte-level damage: torn write, truncation, bit flip, or a payload
    /// that decodes inconsistently.
    Corrupt,
    /// A well-formed entry written by a different format version.
    Stale,
    /// The directory holds entries but no readable index stamp.
    MissingIndex,
    /// An I/O error reading or writing the cache (permissions, disk).
    Io,
}

impl FaultClass {
    /// Stable lowercase label (used in reports and logs).
    pub fn label(self) -> &'static str {
        match self {
            FaultClass::Corrupt => "corrupt",
            FaultClass::Stale => "stale",
            FaultClass::MissingIndex => "missing-index",
            FaultClass::Io => "io",
        }
    }
}

impl std::fmt::Display for FaultClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One detected-and-contained cache fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheFault {
    /// The cache file involved (file name within the cache directory).
    pub entry: String,
    /// Damage classification.
    pub class: FaultClass,
    /// Human-readable detail.
    pub detail: String,
}

impl std::fmt::Display for CacheFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} entry `{}`: {}", self.class, self.entry, self.detail)
    }
}

/// A snapshot of cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Artifact lookups served from disk.
    pub hits: u64,
    /// Artifact lookups that found no entry.
    pub misses: u64,
    /// Entries written (artifacts and checkpoints).
    pub stores: u64,
    /// Entries rejected as corrupt.
    pub corrupt: u64,
    /// Entries rejected as version-stale.
    pub stale: u64,
    /// Entries evicted (quarantined or cleared on a stale index).
    pub evicted: u64,
    /// Decoded payload bytes served by hits (artifact and checkpoint) —
    /// the "bytes reused" figure: work the warm run did not redo.
    pub bytes_read: u64,
    /// Encoded frame bytes written by stores.
    pub bytes_written: u64,
}

#[derive(Debug, Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    corrupt: AtomicU64,
    stale: AtomicU64,
    evicted: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
}

/// Outcome of an artifact lookup.
#[derive(Debug)]
pub enum ArtifactLookup {
    /// A validated graph (re-stamped with the requested [`FileId`]) and
    /// its recovered-error count.
    Hit(PropagationGraph, usize),
    /// No entry under this key.
    Miss,
    /// The entry existed but was damaged; it has been quarantined and the
    /// caller must recompute.
    Fault(CacheFault),
}

/// Outcome of a checkpoint lookup.
#[derive(Debug)]
pub enum CheckpointLookup {
    /// A validated checkpoint.
    Hit(Box<Checkpoint>),
    /// No checkpoint stored.
    Miss,
    /// The checkpoint was damaged; it has been quarantined.
    Fault(CacheFault),
}

/// Derives the cache key for a source file: entry-format version, the
/// caller's option salt (analysis options that change per-file outcomes
/// must change the key), the language frontend tag, and the file bytes.
///
/// The frontend tag keeps byte-identical sources apart when different
/// front ends lower them — the same text parsed as Python and as JS
/// yields different graphs, so the entries must never alias.
pub fn file_key(content: &str, salt: u64, frontend_tag: u64) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(u64::from(ENTRY_VERSION))
        .write_u64(salt)
        .write_u64(frontend_tag)
        .write(content.as_bytes());
    h.finish()
}

/// A crash-safe artifact cache rooted at one directory.
#[derive(Debug)]
pub struct ArtifactCache {
    dir: PathBuf,
    counters: Counters,
}

impl ArtifactCache {
    /// Opens (creating if needed) a cache directory and validates its
    /// index stamp. Index problems are *returned*, not raised: a missing
    /// or corrupt stamp next to existing entries is reported and the stamp
    /// rewritten; a stamp from another format version evicts every entry
    /// (their payloads may not decode under this build) and restamps.
    ///
    /// # Errors
    ///
    /// Only directory-creation failure is a hard error — without a usable
    /// directory there is nothing to degrade to.
    pub fn open(dir: &Path) -> io::Result<(ArtifactCache, Vec<CacheFault>)> {
        fs::create_dir_all(dir)?;
        let cache = ArtifactCache { dir: dir.to_path_buf(), counters: Counters::default() };
        let mut faults = Vec::new();
        let index = cache.dir.join(INDEX_NAME);
        match fs::read(&index) {
            Ok(bytes) => match decode_entry(&bytes)
                .and_then(Self::validate_index_payload)
            {
                Ok(()) => {}
                Err(EntryError::Stale { found }) => {
                    faults.push(CacheFault {
                        entry: INDEX_NAME.to_string(),
                        class: FaultClass::Stale,
                        detail: format!(
                            "index stamped v{found}, this build writes v{ENTRY_VERSION}; \
                             clearing {} entr(ies)",
                            cache.clear_entries()
                        ),
                    });
                    cache.bump(|c| &c.stale);
                    cache.write_index();
                }
                Err(EntryError::Corrupt(detail)) => {
                    faults.push(CacheFault {
                        entry: INDEX_NAME.to_string(),
                        class: FaultClass::Corrupt,
                        detail,
                    });
                    cache.bump(|c| &c.corrupt);
                    cache.write_index();
                }
            },
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                if cache.entry_names().next().is_some() {
                    faults.push(CacheFault {
                        entry: INDEX_NAME.to_string(),
                        class: FaultClass::MissingIndex,
                        detail: "cache directory has entries but no index; restamping"
                            .to_string(),
                    });
                }
                cache.write_index();
            }
            Err(e) => {
                faults.push(CacheFault {
                    entry: INDEX_NAME.to_string(),
                    class: FaultClass::Io,
                    detail: e.to_string(),
                });
            }
        }
        Ok((cache, faults))
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn validate_index_payload(payload: &[u8]) -> Result<(), EntryError> {
        let text = std::str::from_utf8(payload)
            .map_err(|_| EntryError::Corrupt("index payload not UTF-8".into()))?;
        let v = json::parse(text)
            .map_err(|e| EntryError::Corrupt(format!("index payload JSON: {e}")))?;
        match v.get("entry_version").and_then(Json::as_u64) {
            Some(version) if version == u64::from(ENTRY_VERSION) => Ok(()),
            Some(version) => Err(EntryError::Stale { found: version as u32 }),
            None => Err(EntryError::Corrupt("index payload missing entry_version".into())),
        }
    }

    fn write_index(&self) {
        let payload =
            Json::Obj(vec![("entry_version".into(), Json::num(f64::from(ENTRY_VERSION)))])
                .compact();
        // Best-effort: an unwritable index resurfaces on the next open.
        let _ = write_atomic(&self.dir.join(INDEX_NAME), &encode_entry(payload.as_bytes()));
    }

    /// File names of all `*.entry` files, sorted for determinism.
    fn entry_names(&self) -> impl Iterator<Item = String> {
        let mut names: Vec<String> = fs::read_dir(&self.dir)
            .into_iter()
            .flatten()
            .flatten()
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|name| name.ends_with(".entry"))
            .collect();
        names.sort_unstable();
        names.into_iter()
    }

    /// Removes every entry file, returning how many went away.
    fn clear_entries(&self) -> usize {
        let mut cleared = 0;
        for name in self.entry_names() {
            if fs::remove_file(self.dir.join(&name)).is_ok() {
                cleared += 1;
                self.bump(|c| &c.evicted);
            }
        }
        cleared
    }

    fn bump(&self, pick: impl Fn(&Counters) -> &AtomicU64) {
        pick(&self.counters).fetch_add(1, Ordering::Relaxed);
    }

    fn add_bytes(&self, pick: impl Fn(&Counters) -> &AtomicU64, n: u64) {
        pick(&self.counters).fetch_add(n, Ordering::Relaxed);
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        let c = &self.counters;
        CacheStats {
            hits: c.hits.load(Ordering::Relaxed),
            misses: c.misses.load(Ordering::Relaxed),
            stores: c.stores.load(Ordering::Relaxed),
            corrupt: c.corrupt.load(Ordering::Relaxed),
            stale: c.stale.load(Ordering::Relaxed),
            evicted: c.evicted.load(Ordering::Relaxed),
            bytes_read: c.bytes_read.load(Ordering::Relaxed),
            bytes_written: c.bytes_written.load(Ordering::Relaxed),
        }
    }

    fn entry_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.entry"))
    }

    /// Moves a damaged cache file into `quarantine/` and records the
    /// fault. The original bytes are preserved for postmortems; losing
    /// the race to another thread (file already moved) is benign.
    fn quarantine(&self, name: &str, class: FaultClass, detail: String) -> CacheFault {
        self.bump(|c| match class {
            FaultClass::Stale => &c.stale,
            _ => &c.corrupt,
        });
        let qdir = self.dir.join("quarantine");
        let moved = fs::create_dir_all(&qdir)
            .and_then(|()| fs::rename(self.dir.join(name), qdir.join(name)))
            .is_ok();
        if moved {
            self.bump(|c| &c.evicted);
        }
        CacheFault { entry: name.to_string(), class, detail }
    }

    fn load_frame(&self, name: &str) -> Result<Option<Vec<u8>>, CacheFault> {
        let bytes = match fs::read(self.dir.join(name)) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                return Err(CacheFault {
                    entry: name.to_string(),
                    class: FaultClass::Io,
                    detail: e.to_string(),
                })
            }
        };
        match decode_entry(&bytes) {
            Ok(payload) => Ok(Some(payload.to_vec())),
            Err(EntryError::Stale { found }) => Err(self.quarantine(
                name,
                FaultClass::Stale,
                format!("format v{found}, this build reads v{ENTRY_VERSION}"),
            )),
            Err(EntryError::Corrupt(detail)) => {
                Err(self.quarantine(name, FaultClass::Corrupt, detail))
            }
        }
    }

    /// Looks up the artifact under `key`, rebuilding its graph stamped
    /// with `file`. Damage at any layer — frame, payload schema, or the
    /// decoded graph disagreeing with its own constraint fragment —
    /// quarantines the entry and reports a fault.
    pub fn load_artifact(&self, key: u64, file: FileId) -> ArtifactLookup {
        let name = format!("{key:016x}.entry");
        let payload = match self.load_frame(&name) {
            Ok(Some(payload)) => payload,
            Ok(None) => {
                self.bump(|c| &c.misses);
                return ArtifactLookup::Miss;
            }
            Err(fault) => return ArtifactLookup::Fault(fault),
        };
        let decoded = FileArtifact::from_payload(&payload)
            .and_then(|artifact| Ok((artifact.to_graph(file)?, artifact.recovered_errors)));
        match decoded {
            Ok((graph, recovered_errors)) => {
                self.bump(|c| &c.hits);
                self.add_bytes(|c| &c.bytes_read, payload.len() as u64);
                ArtifactLookup::Hit(graph, recovered_errors)
            }
            Err(EntryError::Corrupt(detail)) => {
                ArtifactLookup::Fault(self.quarantine(&name, FaultClass::Corrupt, detail))
            }
            Err(EntryError::Stale { found }) => ArtifactLookup::Fault(self.quarantine(
                &name,
                FaultClass::Stale,
                format!("payload format v{found}"),
            )),
        }
    }

    /// Stores a per-file graph under `key`. Write failures are reported
    /// as faults, never raised — the run simply stays cold for this file.
    pub fn store_artifact(
        &self,
        key: u64,
        graph: &PropagationGraph,
        recovered_errors: usize,
    ) -> Option<CacheFault> {
        let artifact = FileArtifact::from_graph(graph, recovered_errors);
        let frame = encode_entry(&artifact.to_payload());
        match write_atomic(&self.entry_path(key), &frame) {
            Ok(()) => {
                self.bump(|c| &c.stores);
                self.add_bytes(|c| &c.bytes_written, frame.len() as u64);
                None
            }
            Err(e) => Some(CacheFault {
                entry: format!("{key:016x}.entry"),
                class: FaultClass::Io,
                detail: e.to_string(),
            }),
        }
    }

    /// Drops the artifact stored under `key`, if any. Returns whether an
    /// entry was actually removed. Used when a file leaves the corpus —
    /// its artifact would otherwise sit on disk forever, since content
    /// keys of deleted files are never looked up again.
    pub fn evict(&self, key: u64) -> bool {
        match fs::remove_file(self.entry_path(key)) {
            Ok(()) => {
                self.bump(|c| &c.evicted);
                true
            }
            Err(_) => false,
        }
    }

    /// Loads the solver checkpoint, if present and intact.
    pub fn load_checkpoint(&self) -> CheckpointLookup {
        let payload = match self.load_frame(CHECKPOINT_NAME) {
            Ok(Some(payload)) => payload,
            Ok(None) => return CheckpointLookup::Miss,
            Err(fault) => return CheckpointLookup::Fault(fault),
        };
        match Checkpoint::from_payload(&payload) {
            Ok(ckpt) => {
                self.add_bytes(|c| &c.bytes_read, payload.len() as u64);
                CheckpointLookup::Hit(Box::new(ckpt))
            }
            Err(EntryError::Corrupt(detail)) => CheckpointLookup::Fault(self.quarantine(
                CHECKPOINT_NAME,
                FaultClass::Corrupt,
                detail,
            )),
            Err(EntryError::Stale { found }) => CheckpointLookup::Fault(self.quarantine(
                CHECKPOINT_NAME,
                FaultClass::Stale,
                format!("payload format v{found}"),
            )),
        }
    }

    /// Stores the solver checkpoint. Like artifact stores, failures are
    /// faults, not errors.
    pub fn store_checkpoint(&self, ckpt: &Checkpoint) -> Option<CacheFault> {
        let frame = encode_entry(&ckpt.to_payload());
        match write_atomic(&self.dir.join(CHECKPOINT_NAME), &frame) {
            Ok(()) => {
                self.bump(|c| &c.stores);
                self.add_bytes(|c| &c.bytes_written, frame.len() as u64);
                None
            }
            Err(e) => Some(CacheFault {
                entry: CHECKPOINT_NAME.to_string(),
                class: FaultClass::Io,
                detail: e.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seldon_propgraph::build_source;

    fn temp_cache(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("seldon-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_graph() -> PropagationGraph {
        build_source("import os\nos.system('x')\n", FileId(0)).unwrap()
    }

    #[test]
    fn store_then_load_round_trips() {
        let dir = temp_cache("roundtrip");
        let (cache, faults) = ArtifactCache::open(&dir).unwrap();
        assert!(faults.is_empty(), "{faults:?}");
        let graph = sample_graph();
        let key = file_key("import os\nos.system('x')\n", 0, 0);
        assert!(cache.store_artifact(key, &graph, 0).is_none());
        match cache.load_artifact(key, FileId(5)) {
            ArtifactLookup::Hit(g, recovered) => {
                assert_eq!(recovered, 0);
                assert_eq!(g.event_count(), graph.event_count());
            }
            other => panic!("expected hit, got {other:?}"),
        }
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.stores), (1, 0, 1));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn evict_removes_the_entry_and_counts_it() {
        let dir = temp_cache("evict");
        let (cache, _) = ArtifactCache::open(&dir).unwrap();
        let key = file_key("import os\nos.system('x')\n", 0, 0);
        assert!(!cache.evict(key), "nothing stored yet");
        assert!(cache.store_artifact(key, &sample_graph(), 0).is_none());
        assert!(cache.evict(key));
        assert!(matches!(cache.load_artifact(key, FileId(0)), ArtifactLookup::Miss));
        assert_eq!(cache.stats().evicted, 1);
        assert!(!cache.evict(key), "second evict is a no-op");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_entry_is_a_miss() {
        let dir = temp_cache("miss");
        let (cache, _) = ArtifactCache::open(&dir).unwrap();
        assert!(matches!(cache.load_artifact(99, FileId(0)), ArtifactLookup::Miss));
        assert_eq!(cache.stats().misses, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_entry_is_quarantined_and_reported() {
        let dir = temp_cache("corrupt");
        let (cache, _) = ArtifactCache::open(&dir).unwrap();
        let key = 7u64;
        cache.store_artifact(key, &sample_graph(), 0);
        let path = dir.join(format!("{key:016x}.entry"));
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        match cache.load_artifact(key, FileId(0)) {
            ArtifactLookup::Fault(fault) => assert_eq!(fault.class, FaultClass::Corrupt),
            other => panic!("expected fault, got {other:?}"),
        }
        assert!(!path.exists(), "damaged entry moved aside");
        assert!(dir.join("quarantine").join(format!("{key:016x}.entry")).exists());
        let stats = cache.stats();
        assert_eq!((stats.corrupt, stats.evicted), (1, 1));
        // The next lookup is a clean miss: recompute-and-restore works.
        assert!(matches!(cache.load_artifact(key, FileId(0)), ArtifactLookup::Miss));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_index_next_to_entries_is_flagged_and_restamped() {
        let dir = temp_cache("noindex");
        let (cache, _) = ArtifactCache::open(&dir).unwrap();
        cache.store_artifact(1, &sample_graph(), 0);
        fs::remove_file(dir.join(INDEX_NAME)).unwrap();
        let (cache, faults) = ArtifactCache::open(&dir).unwrap();
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].class, FaultClass::MissingIndex);
        assert!(dir.join(INDEX_NAME).exists(), "index restamped");
        // Entries survive a missing index: they are individually checksummed.
        assert!(matches!(cache.load_artifact(1, FileId(0)), ArtifactLookup::Hit(..)));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_index_clears_all_entries() {
        let dir = temp_cache("staleindex");
        let (cache, _) = ArtifactCache::open(&dir).unwrap();
        cache.store_artifact(1, &sample_graph(), 0);
        cache.store_artifact(2, &sample_graph(), 0);
        let stamp = encode_entry(br#"{"entry_version":999}"#);
        fs::write(dir.join(INDEX_NAME), stamp).unwrap();
        let (cache, faults) = ArtifactCache::open(&dir).unwrap();
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].class, FaultClass::Stale);
        assert!(matches!(cache.load_artifact(1, FileId(0)), ArtifactLookup::Miss));
        assert!(matches!(cache.load_artifact(2, FileId(0)), ArtifactLookup::Miss));
        assert_eq!(cache.stats().evicted, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fresh_directory_opens_silently() {
        let dir = temp_cache("fresh");
        let (_, faults) = ArtifactCache::open(&dir).unwrap();
        assert!(faults.is_empty(), "empty dir needs no fault report: {faults:?}");
        let (_, faults) = ArtifactCache::open(&dir).unwrap();
        assert!(faults.is_empty(), "reopen with valid index is clean");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn key_depends_on_salt_content_and_frontend() {
        assert_ne!(file_key("a", 0, 0), file_key("a", 1, 0));
        assert_ne!(file_key("a", 0, 0), file_key("b", 0, 0));
        // Identical bytes under different frontends must never alias: the
        // same text lowered as Python and as JS yields different graphs.
        assert_ne!(file_key("a", 0, 0), file_key("a", 0, 1));
        assert_eq!(file_key("a", 7, 1), file_key("a", 7, 1));
    }
}
