//! Structural statistics of propagation graphs, backing Tab. 1-style
//! reporting and sanity checks on corpus shape.

use crate::event::EventKind;
use crate::graph::PropagationGraph;
use seldon_intern::Symbol;
use std::collections::HashSet;

/// Summary statistics of a propagation graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Total events.
    pub events: usize,
    /// Total flow edges.
    pub edges: usize,
    /// Events per kind: calls, object reads, parameter reads.
    pub calls: usize,
    /// Object-read events.
    pub reads: usize,
    /// Parameter-read events.
    pub params: usize,
    /// Receiver (same-chain) edges.
    pub receiver_edges: usize,
    /// Number of distinct most-specific representations.
    pub distinct_reps: usize,
    /// Average backoff options per event.
    pub avg_backoff: f64,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Events with neither predecessors nor successors.
    pub isolated: usize,
}

/// Computes [`GraphStats`] for a graph.
pub fn graph_stats(graph: &PropagationGraph) -> GraphStats {
    let mut calls = 0;
    let mut reads = 0;
    let mut params = 0;
    let mut reps: HashSet<Symbol> = HashSet::new();
    let mut total_backoff = 0usize;
    let mut max_out = 0usize;
    let mut max_in = 0usize;
    let mut isolated = 0usize;
    let mut receiver_edges = 0usize;
    for (id, e) in graph.events() {
        match e.kind {
            EventKind::Call => calls += 1,
            EventKind::ObjectRead => reads += 1,
            EventKind::ParamRead => params += 1,
        }
        reps.insert(e.rep_sym());
        total_backoff += e.reps.len();
        let out = graph.successors(id).len();
        let inn = graph.predecessors(id).len();
        max_out = max_out.max(out);
        max_in = max_in.max(inn);
        if out == 0 && inn == 0 {
            isolated += 1;
        }
        for &s in graph.successors(id) {
            if graph.edge_kind(id, s) == Some(crate::graph::EdgeKind::Receiver) {
                receiver_edges += 1;
            }
        }
    }
    let events = graph.event_count();
    GraphStats {
        events,
        edges: graph.edge_count(),
        calls,
        reads,
        params,
        receiver_edges,
        distinct_reps: reps.len(),
        avg_backoff: if events == 0 { 0.0 } else { total_backoff as f64 / events as f64 },
        max_out_degree: max_out,
        max_in_degree: max_in,
        isolated,
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} events ({} calls, {} reads, {} params), {} edges ({} receiver)",
            self.events, self.calls, self.reads, self.params, self.edges, self.receiver_edges
        )?;
        write!(
            f,
            "{} distinct representations, {:.2} avg backoff, degrees ≤ {}/{} (out/in), {} isolated",
            self.distinct_reps,
            self.avg_backoff,
            self.max_out_degree,
            self.max_in_degree,
            self.isolated
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_source;
    use crate::event::FileId;

    #[test]
    fn stats_on_small_graph() {
        let g = build_source(
            "from flask import request\nimport os\nos.system(request.args.get('c'))\n",
            FileId(0),
        )
        .unwrap();
        let s = graph_stats(&g);
        assert_eq!(s.events, g.event_count());
        assert_eq!(s.edges, g.edge_count());
        assert!(s.calls >= 2);
        assert!(s.reads >= 1);
        assert_eq!(s.params, 0);
        assert!(s.receiver_edges >= 1, "request.args chain has receiver edges");
        assert!(s.avg_backoff >= 1.0);
        assert!(s.distinct_reps <= s.events);
        let text = s.to_string();
        assert!(text.contains("events"));
        assert!(text.contains("distinct representations"));
    }

    #[test]
    fn stats_on_empty_graph() {
        let s = graph_stats(&PropagationGraph::new());
        assert_eq!(s.events, 0);
        assert_eq!(s.avg_backoff, 0.0);
        assert_eq!(s.isolated, 0);
    }

    #[test]
    fn isolated_events_counted() {
        let g = build_source("from m import f\nx = f()\ny = f()\n", FileId(0)).unwrap();
        let s = graph_stats(&g);
        // Both calls have no flow in or out.
        assert_eq!(s.isolated, 2);
    }

    #[test]
    fn params_counted() {
        let g = build_source("def f(a, b):\n    return a\n", FileId(0)).unwrap();
        let s = graph_stats(&g);
        assert_eq!(s.params, 2);
    }
}
