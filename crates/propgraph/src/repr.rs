//! Event representations `Rep(v)` and backoff chains (§3.2, §4.3).
//!
//! In Python the target of an event cannot be resolved statically, so each
//! event carries a list of representations ordered from most to least
//! specific. Two mechanisms generate the list:
//!
//! * **semantic levels** — e.g. for a call on a method parameter inside
//!   `class ESCPOSDriver(ThreadDriver): def status(self, ...)`:
//!   `ESCPOSDriver::status(param self).receipt()`, then the base-class
//!   fallback `base_driver.ThreadDriver::status(param self).receipt()`, then
//!   `status(param self).receipt()`, then `self.receipt()`;
//! * **dot-suffix backoff** — for resolved dotted chains,
//!   `flask.request.args.get()` also yields `request.args.get()` and
//!   `args.get()` (suffixes keep at least two components so that maximally
//!   generic names like `get()` do not conflate unrelated events).

use seldon_intern::{intern, Symbol};
use seldon_pyast::ast::{Expr, ExprKind};
use std::collections::HashMap;
use std::sync::RwLock;

/// Maximum number of representations kept per event.
pub const MAX_REPS: usize = 6;

/// Lexical context needed to compute representations.
#[derive(Debug, Clone, Default)]
pub struct ReprCtx {
    /// Names bound by imports, mapped to their dotted paths. A plain
    /// `import os.path` binds `os → ["os"]`; `from flask import request`
    /// binds `request → ["flask", "request"]`;
    /// `import numpy as np` binds `np → ["numpy"]`.
    pub imports: HashMap<String, Vec<String>>,
    /// Enclosing class name, if inside a method.
    pub class_name: Option<String>,
    /// Resolved dotted path of the enclosing class's first base, if any.
    pub base_class: Option<String>,
    /// Enclosing function name, if inside a function.
    pub func_name: Option<String>,
    /// Parameter names of the enclosing function.
    pub params: Vec<String>,
    /// Representations of local variables assigned from describable
    /// expressions (the paper's `LoginForm().username.data` chains).
    pub locals: HashMap<String, Vec<String>>,
}

impl ReprCtx {
    /// Creates an empty context (module top level, no imports).
    pub fn new() -> Self {
        ReprCtx::default()
    }

    fn is_param(&self, name: &str) -> bool {
        self.params.iter().any(|p| p == name)
    }

    /// Variants for a bare name, most → least specific.
    ///
    /// Public so other frontends' describe passes resolve names (params,
    /// imports, locals) with exactly the Python rules.
    pub fn name_variants(&self, name: &str) -> Vec<String> {
        // A parameter shadows any same-named module import inside its
        // function (Python scoping), so check params first.
        if self.is_param(name) {
            let mut out = Vec::new();
            if let Some(func) = &self.func_name {
                if let Some(class) = &self.class_name {
                    out.push(format!("{class}::{func}(param {name})"));
                    if let Some(base) = &self.base_class {
                        out.push(format!("{base}::{func}(param {name})"));
                    }
                }
                out.push(format!("{func}(param {name})"));
            }
            out.push(name.to_string());
            return out;
        }
        if let Some(path) = self.imports.get(name) {
            let full = path.join(".");
            // `from a.b import c` also admits the bare `c` form, because the
            // same API is referenced both ways across a corpus.
            if path.len() >= 2 && path.last().is_some_and(|l| l == name) {
                return vec![full, name.to_string()];
            }
            return vec![full];
        }
        if let Some(variants) = self.locals.get(name) {
            return variants.clone();
        }
        vec![name.to_string()]
    }
}

/// Computes the representation variants of an expression, most → least
/// specific, as interned [`Symbol`]s. Returns an empty vector when the
/// expression has no stable description (e.g. arithmetic on strings).
///
/// This is the hot-path entry used by the graph builder: variant strings
/// are interned once and dot-suffix backoff reuses the per-symbol
/// memoized suffix table ([`interned_dot_suffixes`]).
pub fn describe_syms(expr: &Expr, ctx: &ReprCtx) -> Vec<Symbol> {
    let variants = describe_inner(expr, ctx, 0);
    finish(variants)
}

/// String-resolving convenience wrapper around [`describe_syms`].
pub fn describe_expr(expr: &Expr, ctx: &ReprCtx) -> Vec<String> {
    describe_syms(expr, ctx).iter().map(|s| s.as_str().to_string()).collect()
}

/// Interns and dedups representation variants (most → least specific),
/// applies dot-suffix backoff to the first plain dotted variant, and caps
/// the list at [`MAX_REPS`]. Exposed so non-Python frontends that render
/// their own variant strings get identical backoff behavior.
pub fn finish_reps(variants: Vec<String>) -> Vec<Symbol> {
    finish(variants)
}

fn finish(variants: Vec<String>) -> Vec<Symbol> {
    let mut out: Vec<Symbol> = Vec::new();
    for v in &variants {
        let sym = intern(v);
        if !out.contains(&sym) {
            out.push(sym);
        }
    }
    // Dot-suffix backoff on the most specific plain dotted variant.
    if let Some(first) = variants.first() {
        if !first.contains("(param ") && !first.contains("::") {
            for &s in interned_dot_suffixes(intern(first)) {
                if !out.contains(&s) {
                    out.push(s);
                }
            }
        }
    }
    out.truncate(MAX_REPS);
    out
}

fn describe_inner(expr: &Expr, ctx: &ReprCtx, depth: usize) -> Vec<String> {
    if depth > 12 {
        return Vec::new();
    }
    match &expr.kind {
        ExprKind::Name(n) => ctx.name_variants(n),
        ExprKind::Attribute { value, attr } => describe_inner(value, ctx, depth + 1)
            .into_iter()
            .map(|v| format!("{v}.{attr}"))
            .collect(),
        ExprKind::Call { func, .. } => describe_inner(func, ctx, depth + 1)
            .into_iter()
            .map(|v| format!("{v}()"))
            .collect(),
        ExprKind::Subscript { value, index } => {
            let idx = render_index(index);
            describe_inner(value, ctx, depth + 1)
                .into_iter()
                .map(|v| format!("{v}[{idx}]"))
                .collect()
        }
        ExprKind::Await(inner) | ExprKind::Starred(inner) => {
            describe_inner(inner, ctx, depth + 1)
        }
        ExprKind::NamedExpr { value, .. } => describe_inner(value, ctx, depth + 1),
        _ => Vec::new(),
    }
}

fn render_index(index: &Expr) -> String {
    match &index.kind {
        ExprKind::Str(s) => format!("'{s}'"),
        ExprKind::Number(n) => n.clone(),
        _ => String::new(),
    }
}

/// The dot suffixes of an interned representation, computed once per
/// symbol and memoized for the process lifetime.
///
/// A representation like `flask.request.args.get()` appears on thousands
/// of events across a corpus; its suffix list is identical every time, so
/// re-splitting and re-allocating per event ([`dot_suffixes`]) is pure
/// waste. The memo is keyed by [`Symbol`], making the hot-path lookup one
/// integer-keyed hash probe.
pub fn interned_dot_suffixes(rep: Symbol) -> &'static [Symbol] {
    static MEMO: RwLock<Option<HashMap<Symbol, &'static [Symbol]>>> = RwLock::new(None);
    if let Some(memo) = MEMO.read().unwrap_or_else(|e| e.into_inner()).as_ref() {
        if let Some(&suffixes) = memo.get(&rep) {
            return suffixes;
        }
    }
    let computed: Vec<Symbol> =
        dot_suffixes(rep.as_str()).iter().map(|s| intern(s)).collect();
    let mut guard = MEMO.write().unwrap_or_else(|e| e.into_inner());
    let memo = guard.get_or_insert_with(HashMap::new);
    // Re-check under the write lock; leak only for the winning thread.
    memo.entry(rep).or_insert_with(|| Box::leak(computed.into_boxed_slice()))
}

/// Splits a representation on top-level dots (ignoring dots inside brackets
/// or quotes) and returns the suffixes with at least two components.
pub fn dot_suffixes(rep: &str) -> Vec<String> {
    let comps = top_level_components(rep);
    let mut out = Vec::new();
    if comps.len() < 3 {
        return out;
    }
    for start in 1..=comps.len().saturating_sub(2) {
        out.push(comps[start..].join("."));
    }
    out
}

/// Splits on `.` at bracket/quote depth zero.
pub fn top_level_components(rep: &str) -> Vec<&str> {
    let bytes = rep.as_bytes();
    let mut parts = Vec::new();
    let mut depth = 0u32;
    let mut quote: Option<u8> = None;
    let mut start = 0usize;
    for (i, &b) in bytes.iter().enumerate() {
        match quote {
            Some(q) => {
                if b == q {
                    quote = None;
                }
            }
            None => match b {
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth = depth.saturating_sub(1),
                b'\'' | b'"' => quote = Some(b),
                b'.' if depth == 0 => {
                    parts.push(&rep[start..i]);
                    start = i + 1;
                }
                _ => {}
            },
        }
    }
    parts.push(&rep[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use seldon_pyast::parse_expr;

    fn ctx_with_imports(pairs: &[(&str, &[&str])]) -> ReprCtx {
        let mut ctx = ReprCtx::new();
        for (name, path) in pairs {
            ctx.imports
                .insert(name.to_string(), path.iter().map(|s| s.to_string()).collect());
        }
        ctx
    }

    fn describe(src: &str, ctx: &ReprCtx) -> Vec<String> {
        describe_expr(&parse_expr(src).unwrap(), ctx)
    }

    #[test]
    fn import_resolution() {
        let ctx = ctx_with_imports(&[("request", &["flask", "request"])]);
        let reps = describe("request.args.get('n')", &ctx);
        assert_eq!(reps[0], "flask.request.args.get()");
        assert!(reps.contains(&"request.args.get()".to_string()));
        assert!(reps.contains(&"args.get()".to_string()));
        assert!(!reps.contains(&"get()".to_string()));
    }

    #[test]
    fn plain_import_binds_top_name() {
        let ctx = ctx_with_imports(&[("os", &["os"])]);
        let reps = describe("os.path.join(a, b)", &ctx);
        assert_eq!(reps[0], "os.path.join()");
        assert!(reps.contains(&"path.join()".to_string()));
    }

    #[test]
    fn from_import_gives_bare_variant() {
        let ctx = ctx_with_imports(&[("secure_filename", &["werkzeug", "secure_filename"])]);
        let reps = describe("secure_filename(fn)", &ctx);
        assert_eq!(reps, vec!["werkzeug.secure_filename()", "secure_filename()"]);
    }

    #[test]
    fn aliased_import() {
        let ctx = ctx_with_imports(&[("np", &["numpy"])]);
        let reps = describe("np.zeros(3)", &ctx);
        assert_eq!(reps[0], "numpy.zeros()");
    }

    #[test]
    fn param_levels_with_class_and_base() {
        let mut ctx = ReprCtx::new();
        ctx.class_name = Some("ESCPOSDriver".into());
        ctx.base_class = Some("base_driver.ThreadDriver".into());
        ctx.func_name = Some("status".into());
        ctx.params = vec!["self".into(), "eprint".into()];
        let reps = describe("self.receipt(x)", &ctx);
        assert_eq!(
            reps,
            vec![
                "ESCPOSDriver::status(param self).receipt()",
                "base_driver.ThreadDriver::status(param self).receipt()",
                "status(param self).receipt()",
                "self.receipt()",
            ]
        );
    }

    #[test]
    fn param_levels_without_class() {
        let mut ctx = ReprCtx::new();
        ctx.func_name = Some("media".into());
        ctx.params = vec!["f".into()];
        let reps = describe("f.save(path)", &ctx);
        assert_eq!(reps, vec!["media(param f).save()", "f.save()"]);
    }

    #[test]
    fn subscript_rendering() {
        let ctx = ctx_with_imports(&[("request", &["flask", "request"])]);
        let reps = describe("request.files['f'].save(p)", &ctx);
        assert_eq!(reps[0], "flask.request.files['f'].save()");
        let reps = describe("xs[0].go()", &ReprCtx::new());
        assert_eq!(reps[0], "xs[0].go()");
        let reps = describe("xs[k].go()", &ReprCtx::new());
        assert_eq!(reps[0], "xs[].go()");
    }

    #[test]
    fn local_variable_chains() {
        let mut ctx = ReprCtx::new();
        ctx.locals.insert("form".into(), vec!["LoginForm()".into()]);
        let reps = describe("form.username.data", &ctx);
        assert_eq!(reps[0], "LoginForm().username.data");
    }

    #[test]
    fn unresolvable_expressions_are_empty() {
        assert!(describe("(a + b).foo()", &ReprCtx::new()).is_empty());
        assert!(describe("[1, 2]", &ReprCtx::new()).is_empty());
        assert!(describe("'literal'", &ReprCtx::new()).is_empty());
    }

    #[test]
    fn unknown_local_is_bare_name() {
        let reps = describe("u.username", &ReprCtx::new());
        assert_eq!(reps, vec!["u.username"]);
    }

    #[test]
    fn top_level_components_respects_brackets() {
        assert_eq!(
            top_level_components("a.b['x.y'].c()"),
            vec!["a", "b['x.y']", "c()"]
        );
        assert_eq!(top_level_components("f(param x).g()"), vec!["f(param x)", "g()"]);
        assert_eq!(top_level_components("solo"), vec!["solo"]);
    }

    #[test]
    fn dot_suffixes_keep_two_components() {
        assert_eq!(
            dot_suffixes("a.b.c.d()"),
            vec!["b.c.d()".to_string(), "c.d()".to_string()]
        );
        assert!(dot_suffixes("a.b()").is_empty());
        assert!(dot_suffixes("solo()").is_empty());
    }

    #[test]
    fn interned_suffixes_pin_order_and_dedup() {
        // Order: longest (most specific) suffix first, each keeping ≥ 2
        // components; identical to the string-level dot_suffixes.
        let sym = intern("a.b.c.d()");
        let suffixes = interned_dot_suffixes(sym);
        assert_eq!(
            suffixes,
            &[intern("b.c.d()"), intern("c.d()")],
            "suffix order must be most → least specific"
        );
        // Memoized: a second lookup returns the very same leaked slice.
        assert!(std::ptr::eq(suffixes, interned_dot_suffixes(sym)));
        // Short reps have no suffixes, memoized or not.
        assert!(interned_dot_suffixes(intern("a.b()")).is_empty());
        assert!(interned_dot_suffixes(intern("solo()")).is_empty());
        // finish() dedups suffixes against the variant list: the variants
        // of `request.args.get()` under `from flask import request` already
        // end with the suffix chain, and no symbol repeats.
        let ctx = ctx_with_imports(&[("request", &["flask", "request"])]);
        let syms = describe_syms(&parse_expr("request.args.get('n')").unwrap(), &ctx);
        let mut seen = std::collections::HashSet::new();
        for &s in &syms {
            assert!(seen.insert(s), "duplicate symbol {s} in {syms:?}");
        }
        assert_eq!(syms[0], intern("flask.request.args.get()"));
        assert_eq!(syms.last(), Some(&intern("args.get()")));
    }

    #[test]
    fn reps_are_deduped_and_capped() {
        let mut ctx = ReprCtx::new();
        ctx.imports.insert(
            "deep".into(),
            vec!["a".into(), "b".into(), "c".into(), "d".into(), "e".into(), "f".into(), "g".into()],
        );
        let reps = describe("deep.h.i.j()", &ctx);
        assert!(reps.len() <= MAX_REPS);
        let mut sorted = reps.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), reps.len());
    }

    #[test]
    fn starred_and_walrus_unwrap() {
        let mut ctx = ReprCtx::new();
        ctx.imports.insert("request".into(), vec!["flask".into(), "request".into()]);
        let reps = describe("(n := request.args)", &ctx);
        assert_eq!(reps[0], "flask.request.args");
    }
}
