//! # seldon-propgraph
//!
//! Propagation graphs for the Seldon reproduction (§3 and §5 of the paper):
//! events (calls, object reads, formal parameters), representation backoff
//! chains, an Andersen-style points-to analysis, the per-file graph builder,
//! graph union for big-code learning, and vertex contraction for the Merlin
//! baseline.
//!
//! ## Example
//!
//! ```
//! use seldon_propgraph::{build_source, FileId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = build_source(
//!     "from flask import request\nname = request.args.get('n')\n",
//!     FileId(0),
//! )?;
//! assert!(graph.event_count() >= 2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod andersen;
pub mod budget;
pub mod builder;
pub mod dot;
pub mod event;
pub mod graph;
pub mod irbuild;
pub mod lower;
pub mod repr;
pub mod stats;

pub use budget::{Budget, BudgetExceeded, BudgetMeter};
pub use builder::{
    build_module, build_module_budgeted, build_source, build_source_budgeted,
    build_source_lenient, build_source_lenient_budgeted, build_source_lenient_timed,
    build_source_timed, BuildError, BuildTimings,
};
pub use dot::to_dot;
pub use event::{Event, EventId, EventKind, FileId};
pub use graph::{ArgPos, EdgeKind, PropagationGraph};
pub use irbuild::build_ir;
pub use lower::{lower_module, lower_module_budgeted, lower_source};
pub use repr::{describe_expr, describe_syms, finish_reps, interned_dot_suffixes, ReprCtx};
pub use seldon_intern::{intern, Symbol};
pub use stats::{graph_stats, GraphStats};
