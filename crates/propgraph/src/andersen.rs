//! Andersen-style inclusion-based points-to analysis (§5.2).
//!
//! The paper runs a flow- and field-sensitive Andersen analysis and adds a
//! propagation edge `b → a` for each pair with `a ∈ PointsTo(b)`. Here the
//! abstract objects ("sites") are event ids — calls to functions with
//! unknown bodies are allocation sites, exactly as the paper prescribes —
//! and the solver is the classic worklist algorithm with dynamically added
//! dereference edges. Field sensitivity is modelled with per-(site, field)
//! variables; flow sensitivity of straight-line code is provided by the
//! graph builder's environment threading, with the points-to component
//! soundly flow-insensitive.

use std::collections::{HashMap, HashSet};

/// Identifier of a points-to variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(u32);

impl VarId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// An abstract object: in our encoding, the event id that created the value.
pub type SiteId = u32;

/// Inclusion-based points-to constraint system and solver.
#[derive(Debug, Default)]
pub struct Andersen {
    names: HashMap<String, VarId>,
    pts: Vec<HashSet<SiteId>>,
    /// Copy edges: `copy_succ[v]` = targets `t` with `pts(t) ⊇ pts(v)`.
    copy_succ: Vec<Vec<VarId>>,
    /// Load constraints indexed by base variable: `t ⊇ fld(pts(base), f)`.
    loads: HashMap<VarId, Vec<(String, VarId)>>,
    /// Store constraints indexed by base variable: `fld(pts(base), f) ⊇ v`.
    stores: HashMap<VarId, Vec<(String, VarId)>>,
    /// Lazily created field variables keyed by (site, field).
    field_vars: HashMap<(SiteId, String), VarId>,
    solved: bool,
}

impl Andersen {
    /// Creates an empty constraint system.
    pub fn new() -> Self {
        Andersen::default()
    }

    /// Interns a named variable.
    pub fn var(&mut self, name: impl Into<String>) -> VarId {
        let name = name.into();
        if let Some(&v) = self.names.get(&name) {
            return v;
        }
        let v = self.fresh();
        self.names.insert(name, v);
        v
    }

    /// Creates an anonymous variable.
    pub fn fresh(&mut self) -> VarId {
        let v = VarId(self.pts.len() as u32);
        self.pts.push(HashSet::new());
        self.copy_succ.push(Vec::new());
        v
    }

    /// Number of variables (named, anonymous, and field).
    pub fn var_count(&self) -> usize {
        self.pts.len()
    }

    /// `v` points to allocation site `site`.
    pub fn alloc(&mut self, v: VarId, site: SiteId) {
        self.pts[v.index()].insert(site);
    }

    /// `pts(to) ⊇ pts(from)`.
    pub fn copy(&mut self, from: VarId, to: VarId) {
        if from != to {
            self.copy_succ[from.index()].push(to);
        }
    }

    /// Load `target = base.field`.
    pub fn load(&mut self, base: VarId, field: impl Into<String>, target: VarId) {
        self.loads.entry(base).or_default().push((field.into(), target));
    }

    /// Store `base.field = value`.
    pub fn store(&mut self, base: VarId, field: impl Into<String>, value: VarId) {
        self.stores.entry(base).or_default().push((field.into(), value));
    }

    fn field_var(&mut self, site: SiteId, field: &str) -> VarId {
        if let Some(&v) = self.field_vars.get(&(site, field.to_string())) {
            return v;
        }
        let v = self.fresh();
        self.field_vars.insert((site, field.to_string()), v);
        v
    }

    /// Runs the worklist algorithm to a fixpoint.
    ///
    /// Dereference (load/store) edges are instantiated as copy edges as new
    /// sites reach base variables, per the standard Andersen formulation.
    pub fn solve(&mut self) {
        let mut worklist: Vec<VarId> = (0..self.pts.len() as u32)
            .map(VarId)
            .filter(|v| !self.pts[v.index()].is_empty())
            .collect();
        while let Some(v) = worklist.pop() {
            let sites: Vec<SiteId> = self.pts[v.index()].iter().copied().collect();
            // Instantiate dereference edges for every site at v.
            let loads = self.loads.get(&v).cloned().unwrap_or_default();
            for (field, target) in &loads {
                for &site in &sites {
                    let fv = self.field_var(site, field);
                    if !self.copy_succ[fv.index()].contains(target) {
                        self.copy_succ[fv.index()].push(*target);
                        if !self.pts[fv.index()].is_empty() {
                            worklist.push(fv);
                        }
                    }
                }
            }
            let stores = self.stores.get(&v).cloned().unwrap_or_default();
            for (field, value) in &stores {
                for &site in &sites {
                    let fv = self.field_var(site, field);
                    if !self.copy_succ[value.index()].contains(&fv) {
                        self.copy_succ[value.index()].push(fv);
                        if !self.pts[value.index()].is_empty() {
                            worklist.push(*value);
                        }
                    }
                }
            }
            // Propagate along copy edges.
            let succs = self.copy_succ[v.index()].clone();
            for t in succs {
                let mut changed = false;
                for &s in &sites {
                    if self.pts[t.index()].insert(s) {
                        changed = true;
                    }
                }
                if changed {
                    worklist.push(t);
                }
            }
        }
        self.solved = true;
    }

    /// The points-to set of `v`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if called before [`Andersen::solve`].
    pub fn points_to(&self, v: VarId) -> &HashSet<SiteId> {
        debug_assert!(self.solved, "query before solve()");
        &self.pts[v.index()]
    }

    /// Looks up a named variable without creating it.
    pub fn lookup(&self, name: &str) -> Option<VarId> {
        self.names.get(name).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_copy() {
        let mut a = Andersen::new();
        let x = a.var("x");
        let y = a.var("y");
        a.alloc(x, 1);
        a.copy(x, y);
        a.solve();
        assert!(a.points_to(y).contains(&1));
        assert_eq!(a.points_to(x).len(), 1);
    }

    #[test]
    fn transitive_copies() {
        let mut a = Andersen::new();
        let v: Vec<VarId> = (0..5).map(|i| a.var(format!("v{i}"))).collect();
        a.alloc(v[0], 7);
        for w in v.windows(2) {
            a.copy(w[0], w[1]);
        }
        a.solve();
        assert!(a.points_to(v[4]).contains(&7));
    }

    #[test]
    fn field_store_load() {
        // x = alloc(1); x.f = y; y = alloc(2); z = x.f  =>  z -> {2}
        let mut a = Andersen::new();
        let x = a.var("x");
        let y = a.var("y");
        let z = a.var("z");
        a.alloc(x, 1);
        a.alloc(y, 2);
        a.store(x, "f", y);
        a.load(x, "f", z);
        a.solve();
        assert!(a.points_to(z).contains(&2));
        assert!(!a.points_to(z).contains(&1));
    }

    #[test]
    fn aliased_field_flow() {
        // x = alloc(1); w = x; w.f = y(→2); z = x.f  =>  z -> {2} via alias.
        let mut a = Andersen::new();
        let x = a.var("x");
        let w = a.var("w");
        let y = a.var("y");
        let z = a.var("z");
        a.alloc(x, 1);
        a.copy(x, w);
        a.alloc(y, 2);
        a.store(w, "f", y);
        a.load(x, "f", z);
        a.solve();
        assert!(a.points_to(z).contains(&2));
    }

    #[test]
    fn distinct_fields_do_not_mix() {
        let mut a = Andersen::new();
        let x = a.var("x");
        let y = a.var("y");
        let z = a.var("z");
        a.alloc(x, 1);
        a.alloc(y, 2);
        a.store(x, "f", y);
        a.load(x, "g", z);
        a.solve();
        assert!(a.points_to(z).is_empty());
    }

    #[test]
    fn cyclic_copies_terminate() {
        let mut a = Andersen::new();
        let x = a.var("x");
        let y = a.var("y");
        a.alloc(x, 3);
        a.copy(x, y);
        a.copy(y, x);
        a.solve();
        assert!(a.points_to(x).contains(&3));
        assert!(a.points_to(y).contains(&3));
    }

    #[test]
    fn store_then_late_alloc_still_flows() {
        // Order of constraint addition must not matter.
        let mut a = Andersen::new();
        let x = a.var("x");
        let y = a.var("y");
        let z = a.var("z");
        a.store(x, "f", y);
        a.load(x, "f", z);
        a.alloc(y, 9);
        a.alloc(x, 1);
        a.solve();
        assert!(a.points_to(z).contains(&9));
    }

    #[test]
    fn var_interning_and_lookup() {
        let mut a = Andersen::new();
        let x1 = a.var("same");
        let x2 = a.var("same");
        assert_eq!(x1, x2);
        assert_eq!(a.lookup("same"), Some(x1));
        assert_eq!(a.lookup("other"), None);
        let f = a.fresh();
        assert_ne!(f, x1);
    }
}
