//! Language-blind graph construction: `IrProgram → PropagationGraph`.
//!
//! The replay half of the split builder. It knows nothing about any source
//! language: it creates graph events in stream order (so the IR event index
//! becomes the `EventId`), applies construction ops in stream order, links
//! deferred calls through the recorded function summaries, and finally runs
//! the Andersen points-to solve and materializes field-aliasing edges.
//!
//! Determinism contract: replaying a given `IrProgram` always produces the
//! same graph bytes — event identity and succ/pred adjacency order are
//! fixed by the stream, and post-solve points-to edges are added in sorted
//! site order.

use crate::andersen::{Andersen, VarId};
use crate::event::{Event, EventId, EventKind, FileId};
use crate::graph::{ArgPos, EdgeKind, PropagationGraph};
use seldon_ir::{IrArgPos, IrEdgeKind, IrEventKind, IrFunc, IrOp, IrProgram};
use std::collections::HashMap;

fn event_kind(k: IrEventKind) -> EventKind {
    match k {
        IrEventKind::Call => EventKind::Call,
        IrEventKind::ObjectRead => EventKind::ObjectRead,
        IrEventKind::ParamRead => EventKind::ParamRead,
    }
}

fn edge_kind(k: IrEdgeKind) -> EdgeKind {
    match k {
        IrEdgeKind::Argument => EdgeKind::Argument,
        IrEdgeKind::Receiver => EdgeKind::Receiver,
    }
}

fn arg_pos(p: &IrArgPos) -> ArgPos {
    match p {
        IrArgPos::Receiver => ArgPos::Receiver,
        IrArgPos::Positional(i) => ArgPos::Positional(*i),
        IrArgPos::Keyword(k) => ArgPos::Keyword(k.clone()),
    }
}

/// Builds the propagation graph of one lowered file.
///
/// The `file` id is stamped on every event here — the IR itself is
/// file-agnostic, so one lowering can be cached and replayed under any id.
pub fn build_ir(ir: &IrProgram, file: FileId) -> PropagationGraph {
    let mut graph = PropagationGraph::new();
    for ev in &ir.events {
        graph.add_event(Event::new(event_kind(ev.kind), ev.reps.clone(), file, ev.span));
    }

    let mut pt = Andersen::new();
    let vars: Vec<VarId> = (0..ir.var_count).map(|_| pt.fresh()).collect();
    // `(load event, points-to result var)` pairs resolved after solving.
    let mut pt_loads: Vec<(EventId, VarId)> = Vec::new();

    for op in &ir.ops {
        match op {
            IrOp::Edge { from, to, kind } => {
                graph.add_edge_kind(EventId(*from), EventId(*to), edge_kind(*kind));
            }
            IrOp::ArgPos { from, to, pos } => {
                graph.set_arg_position(EventId(*from), EventId(*to), arg_pos(pos));
            }
            IrOp::Alloc { var, site } => {
                pt.alloc(vars[*var as usize], *site);
            }
            IrOp::Copy { from, to } => {
                pt.copy(vars[*from as usize], vars[*to as usize]);
            }
            IrOp::Load { base, field, target } => {
                pt.load(vars[*base as usize], field.as_str(), vars[*target as usize]);
            }
            IrOp::Store { base, field, value } => {
                pt.store(vars[*base as usize], field.as_str(), vars[*value as usize]);
            }
            IrOp::PtLoad { event, var } => {
                pt_loads.push((EventId(*event), vars[*var as usize]));
            }
        }
    }

    // Link calls to locally-defined functions (method inlining).
    let funcs: HashMap<&str, &IrFunc> =
        ir.funcs.iter().map(|f| (f.qualified.as_str(), f)).collect();
    for p in &ir.pending {
        let Some(summary) = funcs.get(p.qualified.as_str()) else { continue };
        // Positional arguments skip implicit receiver slots (the frontend
        // marks them; e.g. Python's `self`/`cls`).
        let positional: Vec<u32> = summary
            .params
            .iter()
            .filter(|prm| !prm.implicit)
            .map(|prm| prm.event)
            .collect();
        for (i, flows) in p.arg_flows.iter().enumerate() {
            if let Some(&pev) = positional.get(i) {
                for &f in flows {
                    graph.add_edge(EventId(f), EventId(pev));
                }
            }
        }
        for (name, flows) in &p.kwarg_flows {
            if let Some(prm) = summary.params.iter().find(|prm| &prm.name == name) {
                for &f in flows {
                    graph.add_edge(EventId(f), EventId(prm.event));
                }
            }
        }
        if let Some(call) = p.call_event {
            for &r in &summary.returns {
                graph.add_edge(EventId(r), EventId(call));
            }
        }
    }

    // Field-aliasing flow from the points-to analysis. Sites are added in
    // sorted order: the set is unordered, and a fixed order keeps replay
    // bytes independent of the process hash seed.
    pt.solve();
    for (event, var) in pt_loads {
        let mut sites: Vec<u32> = pt.points_to(var).iter().copied().collect();
        sites.sort_unstable();
        for site in sites {
            graph.add_edge(EventId(site), event);
        }
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_source;

    #[test]
    fn replay_matches_direct_build() {
        let src = "
from m import mk, src, sink

def helper(v):
    return v

o = mk()
p = o
p.data = src()
sink(o.data)
y = helper(src())
sink(y)
";
        let direct = crate::builder::build_source(src, FileId(3)).expect("builds");
        let ir = lower_source(src).expect("lowers");
        let replayed = build_ir(&ir, FileId(3));
        assert_eq!(direct.event_count(), replayed.event_count());
        assert_eq!(direct.edge_count(), replayed.edge_count());
        for (id, e) in direct.events() {
            let r = replayed.event(id);
            assert_eq!(e.kind, r.kind);
            assert_eq!(e.reps, r.reps);
            assert_eq!(e.span, r.span);
            assert_eq!(direct.successors(id), replayed.successors(id));
            assert_eq!(direct.predecessors(id), replayed.predecessors(id));
        }
    }

    #[test]
    fn file_id_is_stamped_at_replay() {
        let ir = lower_source("from m import f\nx = f()\n").expect("lowers");
        let g7 = build_ir(&ir, FileId(7));
        let g9 = build_ir(&ir, FileId(9));
        for (id, e) in g7.events() {
            assert_eq!(e.file, FileId(7));
            assert_eq!(g9.event(id).file, FileId(9));
        }
    }
}
