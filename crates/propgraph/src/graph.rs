//! The propagation graph (§3) and operations on it.
//!
//! Nodes are [`Event`]s, edges are information flow. Per-program graphs are
//! built independently and unioned into a *global* graph for learning (§4);
//! Merlin additionally uses a *collapsed* graph obtained by vertex
//! contraction of same-representation events (§6.4).

use crate::event::{Event, EventId, FileId};
use seldon_intern::Symbol;
use std::collections::{HashMap, HashSet, VecDeque};

/// The position through which flow enters a call event.
///
/// Recorded for every edge into a call so that parameter-sensitive clients
/// (the paper's §3.3 future work) can distinguish taint reaching a
/// dangerous argument from taint reaching a harmless one.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ArgPos {
    /// The receiver/base chain of the call.
    Receiver,
    /// The `i`-th positional argument.
    Positional(u8),
    /// A keyword argument.
    Keyword(String),
}

/// How information flows along an edge.
///
/// The distinction matters for constraint generation: a *receiver* edge
/// connects events of the same object-access chain (`request.args` →
/// `request.args.get()`), while an *argument* edge carries independent data
/// into a call (`secure_filename(filename)`). Sanitizers transform their
/// arguments, so same-chain events are not sanitizer candidates "between" a
/// source and a sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Ordinary data flow (arguments, assignments, field aliasing).
    Argument,
    /// Same-object-chain flow (receiver of a method call, base of a read).
    Receiver,
}

/// A directed graph of information-flow events.
#[derive(Debug, Clone, Default)]
pub struct PropagationGraph {
    events: Vec<Event>,
    /// Forward adjacency: `succs[v]` = events receiving flow from `v`.
    succs: Vec<Vec<EventId>>,
    /// Backward adjacency: `preds[v]` = events flowing into `v`.
    preds: Vec<Vec<EventId>>,
    /// Edges that are receiver (same-chain) flow.
    receiver_edges: HashSet<(EventId, EventId)>,
    /// Argument positions for edges into call events (first position wins
    /// when the same value reaches several parameters).
    arg_positions: HashMap<(EventId, EventId), ArgPos>,
    edge_count: usize,
}

impl PropagationGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        PropagationGraph::default()
    }

    /// Adds an event, returning its id.
    pub fn add_event(&mut self, event: Event) -> EventId {
        let id = EventId(self.events.len() as u32);
        self.events.push(event);
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        id
    }

    /// Adds an argument-flow edge `from → to`. Duplicate and self edges are
    /// ignored.
    pub fn add_edge(&mut self, from: EventId, to: EventId) {
        self.add_edge_kind(from, to, EdgeKind::Argument);
    }

    /// Adds a flow edge with an explicit [`EdgeKind`]. If the edge already
    /// exists, an argument kind upgrades a receiver kind (argument flow is
    /// the stronger claim).
    pub fn add_edge_kind(&mut self, from: EventId, to: EventId, kind: EdgeKind) {
        if from == to {
            return;
        }
        let s = &mut self.succs[from.index()];
        if s.contains(&to) {
            if kind == EdgeKind::Argument {
                self.receiver_edges.remove(&(from, to));
            }
            return;
        }
        s.push(to);
        self.preds[to.index()].push(from);
        if kind == EdgeKind::Receiver {
            self.receiver_edges.insert((from, to));
        }
        self.edge_count += 1;
    }

    /// Rewrites the [`FileId`] stamp of every event. Per-file graphs are
    /// parsed once but their file's *index* in the corpus shifts when
    /// files are added or removed before it; restamping a stored graph is
    /// how an incremental caller keeps event identity equal to what a
    /// from-scratch run over the current corpus would produce.
    pub fn restamp_file(&mut self, file: FileId) {
        for event in &mut self.events {
            event.file = file;
        }
    }

    /// Records the argument position of an edge into a call event.
    pub fn set_arg_position(&mut self, from: EventId, to: EventId, pos: ArgPos) {
        self.arg_positions.entry((from, to)).or_insert(pos);
    }

    /// The argument position of an edge, if recorded.
    pub fn arg_position(&self, from: EventId, to: EventId) -> Option<&ArgPos> {
        self.arg_positions.get(&(from, to))
    }

    /// The kind of an existing edge (`None` if the edge does not exist).
    pub fn edge_kind(&self, from: EventId, to: EventId) -> Option<EdgeKind> {
        if !self.succs[from.index()].contains(&to) {
            return None;
        }
        Some(if self.receiver_edges.contains(&(from, to)) {
            EdgeKind::Receiver
        } else {
            EdgeKind::Argument
        })
    }

    /// Events connected to `id` backwards through receiver edges only: the
    /// object-access chain that produces `id`'s receiver (including
    /// transitive bases), excluding `id` itself.
    pub fn receiver_ancestors(&self, id: EventId) -> Vec<EventId> {
        let mut seen = HashSet::new();
        let mut queue = VecDeque::new();
        let mut out = Vec::new();
        seen.insert(id);
        queue.push_back(id);
        while let Some(v) = queue.pop_front() {
            for &p in self.predecessors(v) {
                if self.receiver_edges.contains(&(p, v)) && seen.insert(p) {
                    out.push(p);
                    queue.push_back(p);
                }
            }
        }
        out
    }

    /// Number of events.
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The event with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn event(&self, id: EventId) -> &Event {
        &self.events[id.index()]
    }

    /// Iterates all `(id, event)` pairs.
    pub fn events(&self) -> impl Iterator<Item = (EventId, &Event)> {
        self.events
            .iter()
            .enumerate()
            .map(|(i, e)| (EventId(i as u32), e))
    }

    /// Successors of `id` (events that receive flow from it).
    pub fn successors(&self, id: EventId) -> &[EventId] {
        &self.succs[id.index()]
    }

    /// Predecessors of `id` (events that flow into it).
    pub fn predecessors(&self, id: EventId) -> &[EventId] {
        &self.preds[id.index()]
    }

    /// All edges as `(from, to)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (EventId, EventId)> + '_ {
        self.succs.iter().enumerate().flat_map(|(i, outs)| {
            outs.iter().map(move |t| (EventId(i as u32), *t))
        })
    }

    /// Unions `other` into `self`, remapping its event ids. Returns the id
    /// offset applied to `other`'s events.
    ///
    /// Event sets of different programs stay disjoint, exactly as in the
    /// paper's global propagation graph (§4): no cross-program edges are
    /// introduced, but events may share representations.
    pub fn union(&mut self, other: &PropagationGraph) -> u32 {
        let offset = self.events.len() as u32;
        let shift = |id: EventId| EventId(id.0 + offset);
        // `other` already upholds the graph invariants (no duplicate or
        // self edges, symmetric succs/preds), so its adjacency is copied
        // wholesale with shifted ids instead of re-validated edge by edge.
        self.events.extend_from_slice(&other.events);
        self.succs
            .extend(other.succs.iter().map(|outs| outs.iter().map(|&t| shift(t)).collect()));
        self.preds
            .extend(other.preds.iter().map(|ins| ins.iter().map(|&f| shift(f)).collect()));
        self.receiver_edges
            .extend(other.receiver_edges.iter().map(|&(f, t)| (shift(f), shift(t))));
        self.arg_positions.extend(
            other.arg_positions.iter().map(|(&(f, t), pos)| ((shift(f), shift(t)), pos.clone())),
        );
        self.edge_count += other.edge_count;
        offset
    }

    /// Pre-allocates room for `events` additional events, for bulk unions.
    pub fn reserve_events(&mut self, events: usize) {
        self.events.reserve(events);
        self.succs.reserve(events);
        self.preds.reserve(events);
    }

    /// Events reachable from `start` by forward BFS (excluding `start`).
    pub fn reachable_from(&self, start: EventId) -> Vec<EventId> {
        self.bfs(start, true)
    }

    /// Events that reach `start` by backward BFS (excluding `start`).
    pub fn reaching(&self, start: EventId) -> Vec<EventId> {
        self.bfs(start, false)
    }

    fn bfs(&self, start: EventId, forward: bool) -> Vec<EventId> {
        let mut seen = HashSet::new();
        let mut queue = VecDeque::new();
        let mut out = Vec::new();
        seen.insert(start);
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            let next = if forward { self.successors(v) } else { self.predecessors(v) };
            for &n in next {
                if seen.insert(n) {
                    out.push(n);
                    queue.push_back(n);
                }
            }
        }
        out
    }

    /// Whether `to` is reachable from `from` (forward).
    pub fn is_reachable(&self, from: EventId, to: EventId) -> bool {
        if from == to {
            return true;
        }
        let mut seen = HashSet::new();
        let mut queue = VecDeque::new();
        seen.insert(from);
        queue.push_back(from);
        while let Some(v) = queue.pop_front() {
            for &n in self.successors(v) {
                if n == to {
                    return true;
                }
                if seen.insert(n) {
                    queue.push_back(n);
                }
            }
        }
        false
    }

    /// Ids of events belonging to `file`.
    pub fn events_in_file(&self, file: FileId) -> Vec<EventId> {
        self.events()
            .filter(|(_, e)| e.file == file)
            .map(|(id, _)| id)
            .collect()
    }

    /// Vertex contraction (§6.4, Fig. 7): merges all events sharing the same
    /// most-specific representation into one node. Returns the collapsed
    /// graph and the mapping original id → collapsed id.
    ///
    /// The collapsed graph is what Merlin's original formulation assumes; it
    /// is *not* suitable for taint analysis (Fig. 8) but can be used for
    /// specification learning.
    pub fn contract(&self) -> (PropagationGraph, Vec<EventId>) {
        let mut rep_to_new: HashMap<Symbol, EventId> = HashMap::new();
        let mut mapping = vec![EventId(0); self.events.len()];
        let mut out = PropagationGraph::new();
        for (id, e) in self.events() {
            let key = e.rep_sym();
            let new_id = match rep_to_new.get(&key) {
                Some(&n) => {
                    // Merge candidate roles; keep the first event's metadata.
                    let merged = out.events[n.index()].candidates.union(e.candidates);
                    out.events[n.index()].candidates = merged;
                    n
                }
                None => {
                    let n = out.add_event(e.clone());
                    rep_to_new.insert(key, n);
                    n
                }
            };
            mapping[id.index()] = new_id;
        }
        for (from, to) in self.edges() {
            let kind = self.edge_kind(from, to).unwrap_or(EdgeKind::Argument);
            let (f, t) = (mapping[from.index()], mapping[to.index()]);
            out.add_edge_kind(f, t, kind);
            if let Some(pos) = self.arg_position(from, to) {
                out.set_arg_position(f, t, pos.clone());
            }
        }
        (out, mapping)
    }

    /// Counts how often each representation occurs across all backoff
    /// options of all events, as a [`Symbol`]-indexed vector (index
    /// [`Symbol::index`], zero for symbols absent from this graph). Used
    /// for the backoff cutoff (§4.3); lookups are array indexing instead
    /// of string hashing.
    pub fn rep_frequency_counts(&self) -> Vec<usize> {
        let max_index = self
            .events
            .iter()
            .flat_map(|e| &e.reps)
            .map(|r| r.index())
            .max();
        let mut counts = vec![0usize; max_index.map_or(0, |m| m + 1)];
        for e in &self.events {
            for r in &e.reps {
                counts[r.index()] += 1;
            }
        }
        counts
    }

    /// String-keyed convenience wrapper around [`rep_frequency_counts`]
    /// for the CLI/stats path.
    ///
    /// [`rep_frequency_counts`]: PropagationGraph::rep_frequency_counts
    pub fn representation_frequencies(&self) -> HashMap<String, usize> {
        self.rep_frequency_counts()
            .into_iter()
            .enumerate()
            .filter(|&(_, n)| n > 0)
            .map(|(i, n)| (Symbol(i as u32).as_str().to_string(), n))
            .collect()
    }

    /// Average number of representations (backoff options) per event.
    pub fn avg_backoff_options(&self) -> f64 {
        if self.events.is_empty() {
            return 0.0;
        }
        let total: usize = self.events.iter().map(|e| e.reps.len()).sum();
        total as f64 / self.events.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use seldon_pyast::Span;

    fn ev(rep: &str) -> Event {
        Event::from_reps(EventKind::Call, &[rep], FileId(0), Span::dummy())
    }

    fn chain(graph: &mut PropagationGraph, reps: &[&str]) -> Vec<EventId> {
        let ids: Vec<EventId> = reps.iter().map(|r| graph.add_event(ev(r))).collect();
        for w in ids.windows(2) {
            graph.add_edge(w[0], w[1]);
        }
        ids
    }

    #[test]
    fn add_and_query() {
        let mut g = PropagationGraph::new();
        let ids = chain(&mut g, &["a()", "b()", "c()"]);
        assert_eq!(g.event_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.successors(ids[0]), &[ids[1]]);
        assert_eq!(g.predecessors(ids[2]), &[ids[1]]);
        assert!(g.is_reachable(ids[0], ids[2]));
        assert!(!g.is_reachable(ids[2], ids[0]));
    }

    #[test]
    fn duplicate_and_self_edges_ignored() {
        let mut g = PropagationGraph::new();
        let a = g.add_event(ev("a()"));
        let b = g.add_event(ev("b()"));
        g.add_edge(a, b);
        g.add_edge(a, b);
        g.add_edge(a, a);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn bfs_reachability() {
        let mut g = PropagationGraph::new();
        let ids = chain(&mut g, &["a()", "b()", "c()", "d()"]);
        let x = g.add_event(ev("x()"));
        g.add_edge(x, ids[2]);
        let fwd = g.reachable_from(ids[0]);
        assert_eq!(fwd.len(), 3);
        let back = g.reaching(ids[3]);
        assert_eq!(back.len(), 4); // a, b, c, x
    }

    #[test]
    fn union_keeps_programs_disjoint() {
        let mut g1 = PropagationGraph::new();
        chain(&mut g1, &["a()", "b()"]);
        let mut g2 = PropagationGraph::new();
        chain(&mut g2, &["a()", "c()"]);
        let offset = g1.union(&g2);
        assert_eq!(offset, 2);
        assert_eq!(g1.event_count(), 4);
        assert_eq!(g1.edge_count(), 2);
        // No cross-program edges: the two `a()` events are distinct nodes.
        assert!(!g1.is_reachable(EventId(0), EventId(3)));
    }

    #[test]
    fn union_preserves_edge_kinds_and_arg_positions() {
        let mut g2 = PropagationGraph::new();
        let a = g2.add_event(ev("a()"));
        let b = g2.add_event(ev("b()"));
        let c = g2.add_event(ev("c()"));
        g2.add_edge_kind(a, b, EdgeKind::Receiver);
        g2.add_edge_kind(a, c, EdgeKind::Argument);
        g2.set_arg_position(a, c, ArgPos::Positional(1));
        let mut g1 = PropagationGraph::new();
        chain(&mut g1, &["x()"]);
        let offset = g1.union(&g2);
        let (a, b, c) = (EventId(a.0 + offset), EventId(b.0 + offset), EventId(c.0 + offset));
        assert_eq!(g1.edge_kind(a, b), Some(EdgeKind::Receiver));
        assert_eq!(g1.edge_kind(a, c), Some(EdgeKind::Argument));
        assert_eq!(g1.arg_position(a, c), Some(&ArgPos::Positional(1)));
        assert_eq!(g1.edge_count(), 2);
        assert_eq!(g1.predecessors(b), &[a]);
    }

    #[test]
    fn contraction_merges_same_rep() {
        // Fig. 8: two `san()` calls in different functions.
        let mut g = PropagationGraph::new();
        let src = g.add_event(ev("src()"));
        let san1 = g.add_event(ev("san()"));
        let san2 = g.add_event(ev("san()"));
        let sink = g.add_event(ev("sink()"));
        g.add_edge(src, san1);
        g.add_edge(san2, sink);
        let (c, mapping) = g.contract();
        assert_eq!(c.event_count(), 3);
        assert_eq!(mapping[san1.index()], mapping[san2.index()]);
        // After contraction, src reaches sink (the Fig. 8 spurious flow).
        let csrc = mapping[src.index()];
        let csink = mapping[sink.index()];
        assert!(c.is_reachable(csrc, csink));
        // ... while in the original graph it does not.
        assert!(!g.is_reachable(src, sink));
    }

    #[test]
    fn representation_frequencies_count_backoffs() {
        let mut g = PropagationGraph::new();
        g.add_event(Event::from_reps(
            EventKind::Call,
            &["a.b()", "b()"],
            FileId(0),
            Span::dummy(),
        ));
        g.add_event(Event::from_reps(
            EventKind::Call,
            &["c.b()", "b()"],
            FileId(0),
            Span::dummy(),
        ));
        let f = g.representation_frequencies();
        assert_eq!(f["b()"], 2);
        assert_eq!(f["a.b()"], 1);
        let counts = g.rep_frequency_counts();
        assert_eq!(counts[seldon_intern::intern("b()").index()], 2);
        assert_eq!(counts[seldon_intern::intern("c.b()").index()], 1);
        assert!((g.avg_backoff_options() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn events_in_file_filters() {
        let mut g = PropagationGraph::new();
        g.add_event(ev("a()"));
        g.add_event(Event::from_reps(EventKind::Call, &["b()"], FileId(1), Span::dummy()));
        assert_eq!(g.events_in_file(FileId(0)).len(), 1);
        assert_eq!(g.events_in_file(FileId(1)).len(), 1);
    }

    #[test]
    fn empty_graph_stats() {
        let g = PropagationGraph::new();
        assert_eq!(g.avg_backoff_options(), 0.0);
        assert_eq!(g.event_count(), 0);
    }
}
