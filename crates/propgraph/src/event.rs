//! Events of the propagation graph (§3.1, §5.1 of the paper).
//!
//! An event is a program action that propagates information: a function
//! call, an object read (attribute load, subscript, parameter read), or a
//! formal argument of a function definition. Each event carries a chain of
//! *representations* ordered from most to least specific (§3.2).

use seldon_intern::{intern, Symbol};
use seldon_pyast::Span;
use seldon_specs::{Role, RoleSet};
use std::fmt;

/// Identifier of an event within a [`crate::graph::PropagationGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(pub u32);

impl EventId {
    /// The index form of the id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Identifier of a source file within a corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct FileId(pub u32);

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// What kind of action an event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A function or method call.
    Call,
    /// An object read: attribute load or subscript.
    ObjectRead,
    /// A read of a formal parameter.
    ParamRead,
}

impl EventKind {
    /// Candidate roles for this kind of event (§5.1): calls may be any role,
    /// reads and parameters may only be sources.
    pub fn candidate_roles(self) -> RoleSet {
        match self {
            EventKind::Call => RoleSet::ALL,
            EventKind::ObjectRead | EventKind::ParamRead => RoleSet::only(Role::Source),
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventKind::Call => write!(f, "call"),
            EventKind::ObjectRead => write!(f, "object-read"),
            EventKind::ParamRead => write!(f, "param-read"),
        }
    }
}

/// One event of the propagation graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// What kind of action this is.
    pub kind: EventKind,
    /// Interned representations ordered most → least specific (§3.2).
    /// Never empty. Distinct *alternatives* (from ambiguous targets) are
    /// interleaved in specificity order and deduplicated.
    pub reps: Vec<Symbol>,
    /// The source file the event came from.
    pub file: FileId,
    /// The source span of the underlying expression.
    pub span: Span,
    /// Which roles this event may assume.
    pub candidates: RoleSet,
}

impl Event {
    /// Creates an event; `reps` must be non-empty.
    ///
    /// # Panics
    ///
    /// Panics if `reps` is empty.
    pub fn new(kind: EventKind, reps: Vec<Symbol>, file: FileId, span: Span) -> Self {
        assert!(!reps.is_empty(), "event must have at least one representation");
        let candidates = kind.candidate_roles();
        Event { kind, reps, file, span, candidates }
    }

    /// Like [`Event::new`], interning the representation strings. Intended
    /// for tests and hand-built graphs; the builder interns at parse time.
    ///
    /// # Panics
    ///
    /// Panics if `reps` is empty.
    pub fn from_reps(kind: EventKind, reps: &[&str], file: FileId, span: Span) -> Self {
        Event::new(kind, reps.iter().map(|r| intern(r)).collect(), file, span)
    }

    /// The most specific representation.
    pub fn rep_sym(&self) -> Symbol {
        self.reps[0]
    }

    /// The most specific representation, resolved to text.
    pub fn rep(&self) -> &'static str {
        self.reps[0].as_str()
    }

    /// Whether any backoff representation equals `text`.
    pub fn has_rep(&self, text: &str) -> bool {
        self.reps.iter().any(|r| r.as_str() == text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_roles_by_kind() {
        assert_eq!(EventKind::Call.candidate_roles(), RoleSet::ALL);
        assert_eq!(
            EventKind::ObjectRead.candidate_roles(),
            RoleSet::only(Role::Source)
        );
        assert_eq!(EventKind::ParamRead.candidate_roles(), RoleSet::only(Role::Source));
    }

    #[test]
    fn event_rep_is_most_specific() {
        let e = Event::from_reps(
            EventKind::Call,
            &["a.b.c()", "b.c()"],
            FileId(0),
            Span::dummy(),
        );
        assert_eq!(e.rep(), "a.b.c()");
        assert_eq!(e.rep_sym(), intern("a.b.c()"));
        assert!(e.has_rep("b.c()"));
        assert!(!e.has_rep("c()"));
    }

    #[test]
    #[should_panic(expected = "at least one representation")]
    fn empty_reps_panics() {
        let _ = Event::new(EventKind::Call, vec![], FileId(0), Span::dummy());
    }

    #[test]
    fn id_display() {
        assert_eq!(EventId(4).to_string(), "e4");
        assert_eq!(FileId(2).to_string(), "f2");
        assert_eq!(EventKind::Call.to_string(), "call");
    }
}
