//! Builds propagation graphs from Python ASTs (§5).
//!
//! Events are function calls, object reads, and formal parameters; flow
//! edges follow the paper's rules: calls propagate arguments (and receiver
//! chains) to their results, collections propagate entries to the whole
//! collection, `locals()` receives every local variable, loops run a single
//! iteration, locally-defined functions are linked through their parameters
//! and returns (the paper's method inlining), and an Andersen points-to
//! analysis adds field-aliasing flow the environment threading misses.

use crate::andersen::{Andersen, VarId};
use crate::budget::{Budget, BudgetExceeded, BudgetMeter};
use crate::event::{Event, EventId, EventKind, FileId};
use crate::graph::{ArgPos, EdgeKind, PropagationGraph};
use crate::repr::{describe_expr, describe_syms, ReprCtx};
use seldon_intern::intern;
use seldon_pyast::ast::*;
use seldon_pyast::visit::{self, Visitor};
use seldon_pyast::{parse, parse_lenient, FrontendError};
use std::collections::HashMap;
use std::fmt;
use std::time::{Duration, Instant};

/// Maximum events tracked per variable binding; larger sets are truncated.
const MAX_FLOW_SET: usize = 8;

/// A set of events whose values may flow into a binding.
type FlowSet = Vec<EventId>;

/// Builds the propagation graph of one parsed module.
pub fn build_module(module: &Module, file: FileId) -> PropagationGraph {
    let mut b = Builder::new(file);
    b.run(module);
    b.finish()
}

/// Parses `source` and builds its propagation graph.
///
/// # Errors
///
/// Returns a [`FrontendError`] if the source fails to lex or parse.
pub fn build_source(source: &str, file: FileId) -> Result<PropagationGraph, FrontendError> {
    let module = parse(source)?;
    Ok(build_module(&module, file))
}

/// Like [`build_source`] but recovers from statement-level parse errors:
/// malformed statements are skipped and reported, the rest of the file is
/// analyzed. This is the right entry point for arbitrary repository code.
pub fn build_source_lenient(
    source: &str,
    file: FileId,
) -> (PropagationGraph, Vec<FrontendError>) {
    let (module, errors) = parse_lenient(source);
    (build_module(&module, file), errors)
}

/// Failure of a budgeted build: either the front end rejected the source,
/// or a resource budget was exceeded.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// The source failed to lex or parse.
    Frontend(FrontendError),
    /// A [`Budget`] limit was exceeded.
    OverBudget(BudgetExceeded),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Frontend(e) => e.fmt(f),
            BuildError::OverBudget(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<FrontendError> for BuildError {
    fn from(e: FrontendError) -> Self {
        BuildError::Frontend(e)
    }
}

impl From<BudgetExceeded> for BuildError {
    fn from(e: BudgetExceeded) -> Self {
        BuildError::OverBudget(e)
    }
}

/// Checks the source-size budget shared by the budgeted entry points.
fn check_source_size(source: &str, budget: &Budget) -> Result<(), BudgetExceeded> {
    if source.len() > budget.max_source_bytes {
        return Err(BudgetExceeded::SourceBytes {
            limit: budget.max_source_bytes,
            actual: source.len(),
        });
    }
    Ok(())
}

/// Builds the graph of a parsed module under a resource [`Budget`].
///
/// # Errors
///
/// Returns [`BudgetExceeded`] if the walk trips a statement-count, depth,
/// or deadline limit; the partially built graph is discarded.
pub fn build_module_budgeted(
    module: &Module,
    file: FileId,
    budget: &Budget,
) -> Result<PropagationGraph, BudgetExceeded> {
    let mut b = Builder::new(file);
    b.meter = Some(BudgetMeter::new(budget.clone()));
    b.run(module);
    if let Some(e) = b.meter.take().and_then(BudgetMeter::into_tripped) {
        return Err(e);
    }
    Ok(b.finish())
}

/// Like [`build_source`], with every phase held to a resource [`Budget`]:
/// the source size is checked before parsing and the graph walk is
/// metered cooperatively.
///
/// # Errors
///
/// Returns [`BuildError::Frontend`] on a lex/parse failure and
/// [`BuildError::OverBudget`] when a budget limit trips.
pub fn build_source_budgeted(
    source: &str,
    file: FileId,
    budget: &Budget,
) -> Result<PropagationGraph, BuildError> {
    build_source_timed(source, file, Some(budget)).map(|(g, _)| g)
}

/// Like [`build_source_lenient`], under a resource [`Budget`].
///
/// Parse errors degrade per statement as usual; only a budget trip fails
/// the whole file.
///
/// # Errors
///
/// Returns [`BudgetExceeded`] when a budget limit trips.
pub fn build_source_lenient_budgeted(
    source: &str,
    file: FileId,
    budget: &Budget,
) -> Result<(PropagationGraph, Vec<FrontendError>), BudgetExceeded> {
    build_source_lenient_timed(source, file, Some(budget)).map(|(g, e, _)| (g, e))
}

/// Wall-clock split of one file's front-end work, reported by the
/// `*_timed` entry points. The telemetry layer sums these per-file
/// durations across worker threads into the `parse` and `propgraph`
/// aggregate stage spans.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BuildTimings {
    /// Time spent lexing and parsing the source into an AST.
    pub parse: Duration,
    /// Time spent walking the AST into a propagation graph (including the
    /// points-to solve and call linking).
    pub build: Duration,
}

impl BuildTimings {
    /// Component-wise sum, for folding per-file timings into totals.
    pub fn add(&mut self, other: BuildTimings) {
        self.parse += other.parse;
        self.build += other.build;
    }
}

/// Strict timed build: the budget-optional superset of [`build_source`]
/// and [`build_source_budgeted`], reporting the parse/build phase split.
///
/// # Errors
///
/// Returns [`BuildError::Frontend`] on a lex/parse failure and
/// [`BuildError::OverBudget`] when a budget limit trips (never with
/// `budget: None`).
pub fn build_source_timed(
    source: &str,
    file: FileId,
    budget: Option<&Budget>,
) -> Result<(PropagationGraph, BuildTimings), BuildError> {
    if let Some(b) = budget {
        check_source_size(source, b)?;
    }
    let parse_started = Instant::now();
    let module = parse(source)?;
    let parse_time = parse_started.elapsed();
    let build_started = Instant::now();
    let graph = match budget {
        Some(b) => build_module_budgeted(&module, file, b)?,
        None => build_module(&module, file),
    };
    let timings = BuildTimings { parse: parse_time, build: build_started.elapsed() };
    Ok((graph, timings))
}

/// Lenient timed build: the budget-optional superset of
/// [`build_source_lenient`] and [`build_source_lenient_budgeted`],
/// reporting the parse/build phase split.
///
/// # Errors
///
/// Returns [`BudgetExceeded`] when a budget limit trips (never with
/// `budget: None`).
pub fn build_source_lenient_timed(
    source: &str,
    file: FileId,
    budget: Option<&Budget>,
) -> Result<(PropagationGraph, Vec<FrontendError>, BuildTimings), BudgetExceeded> {
    if let Some(b) = budget {
        check_source_size(source, b)?;
    }
    let parse_started = Instant::now();
    let (module, errors) = parse_lenient(source);
    let parse_time = parse_started.elapsed();
    let build_started = Instant::now();
    let graph = match budget {
        Some(b) => build_module_budgeted(&module, file, b)?,
        None => build_module(&module, file),
    };
    let timings = BuildTimings { parse: parse_time, build: build_started.elapsed() };
    Ok((graph, errors, timings))
}

/// Summary of a locally-defined function for call linking.
#[derive(Debug, Clone, Default)]
struct FuncSummary {
    /// `(name, param event)` in declaration order.
    params: Vec<(String, EventId)>,
    /// Events flowing into `return` statements.
    returns: Vec<EventId>,
    /// The function body and its lexical context, kept for per-call-site
    /// inlining (§5.2: "we inline methods whose body can be statically
    /// determined").
    def: Option<FunctionDef>,
    class_name: Option<String>,
    base_class: Option<String>,
}

/// A call to a locally-defined function awaiting linkage.
#[derive(Debug)]
struct PendingCall {
    qualified: String,
    arg_flows: Vec<FlowSet>,
    kwarg_flows: Vec<(String, FlowSet)>,
    call_event: Option<EventId>,
}

/// Per-function analysis scope.
struct Scope {
    ctx: ReprCtx,
    env: HashMap<String, FlowSet>,
    returns: Vec<EventId>,
    /// Unique id for qualifying Andersen variable names.
    scope_id: u32,
}

impl Scope {
    fn merge_env(&mut self, other: HashMap<String, FlowSet>) {
        for (k, v) in other {
            let slot = self.env.entry(k).or_default();
            for e in v {
                if !slot.contains(&e) {
                    slot.push(e);
                }
            }
            slot.truncate(MAX_FLOW_SET);
        }
    }
}

struct Builder {
    graph: PropagationGraph,
    file: FileId,
    imports: HashMap<String, Vec<String>>,
    pt: Andersen,
    /// `(load event, points-to result var)` pairs resolved after solving.
    pt_loads: Vec<(EventId, VarId)>,
    funcs: HashMap<String, FuncSummary>,
    pending: Vec<PendingCall>,
    /// Names currently being inlined (recursion guard) — doubles as the
    /// inline-depth bound.
    inline_stack: Vec<String>,
    next_scope: u32,
    /// Resource accounting; `None` builds without limits.
    meter: Option<BudgetMeter>,
    /// Current statement-nesting depth, fed to the meter.
    stmt_depth: usize,
}

impl Builder {
    fn new(file: FileId) -> Self {
        Builder {
            graph: PropagationGraph::new(),
            file,
            imports: HashMap::new(),
            pt: Andersen::new(),
            pt_loads: Vec::new(),
            funcs: HashMap::new(),
            pending: Vec::new(),
            inline_stack: Vec::new(),
            next_scope: 0,
            meter: None,
            stmt_depth: 0,
        }
    }

    fn run(&mut self, module: &Module) {
        self.collect_imports(module);
        let mut scope = self.new_scope(None, None, None, &[]);
        for stmt in &module.body {
            self.walk_stmt(stmt, &mut scope);
        }
    }

    fn finish(mut self) -> PropagationGraph {
        // Link calls to locally-defined functions (method inlining).
        let pending = std::mem::take(&mut self.pending);
        for p in pending {
            let Some(summary) = self.funcs.get(&p.qualified).cloned() else { continue };
            // Positional arguments; skip a leading `self`/`cls` receiver slot
            // for method calls (the receiver is linked separately).
            let params: Vec<&(String, EventId)> = summary
                .params
                .iter()
                .filter(|(n, _)| n != "self" && n != "cls")
                .collect();
            for (i, flows) in p.arg_flows.iter().enumerate() {
                if let Some((_, pev)) = params.get(i) {
                    for &f in flows {
                        self.graph.add_edge(f, *pev);
                    }
                }
            }
            for (name, flows) in &p.kwarg_flows {
                if let Some((_, pev)) =
                    summary.params.iter().find(|(n, _)| n == name)
                {
                    for &f in flows {
                        self.graph.add_edge(f, *pev);
                    }
                }
            }
            if let Some(call) = p.call_event {
                for &r in &summary.returns {
                    self.graph.add_edge(r, call);
                }
            }
        }
        // Field-aliasing flow from the points-to analysis.
        self.pt.solve();
        let loads = std::mem::take(&mut self.pt_loads);
        for (event, var) in loads {
            for &site in self.pt.points_to(var) {
                self.graph.add_edge(EventId(site), event);
            }
        }
        self.graph
    }

    fn collect_imports(&mut self, module: &Module) {
        struct ImportCollector<'b> {
            imports: &'b mut HashMap<String, Vec<String>>,
        }
        impl Visitor for ImportCollector<'_> {
            fn visit_stmt(&mut self, stmt: &Stmt) {
                match &stmt.kind {
                    StmtKind::Import(aliases) => {
                        for a in aliases {
                            match &a.asname {
                                Some(alias) => {
                                    self.imports.insert(alias.clone(), a.name.clone());
                                }
                                None => {
                                    // `import a.b` binds top-level `a`.
                                    if let Some(first) = a.name.first() {
                                        self.imports
                                            .insert(first.clone(), vec![first.clone()]);
                                    }
                                }
                            }
                        }
                    }
                    StmtKind::ImportFrom { module, names, .. } => {
                        for a in names {
                            let seg = match a.name.first() {
                                Some(s) if s != "*" => s.clone(),
                                _ => continue,
                            };
                            let mut path = module.clone();
                            path.push(seg.clone());
                            let bound = a.asname.clone().unwrap_or(seg);
                            self.imports.insert(bound, path);
                        }
                    }
                    _ => visit::walk_stmt(self, stmt),
                }
            }
        }
        let mut c = ImportCollector { imports: &mut self.imports };
        visit::walk_module(&mut c, module);
    }

    fn new_scope(
        &mut self,
        class_name: Option<String>,
        base_class: Option<String>,
        func_name: Option<String>,
        params: &[String],
    ) -> Scope {
        let ctx = ReprCtx {
            imports: self.imports.clone(),
            class_name,
            base_class,
            func_name,
            params: params.to_vec(),
            locals: HashMap::new(),
        };
        let scope_id = self.next_scope;
        self.next_scope += 1;
        Scope { ctx, env: HashMap::new(), returns: Vec::new(), scope_id }
    }

    fn pt_var(&mut self, scope: &Scope, name: &str) -> VarId {
        self.pt.var(format!("s{}::{}", scope.scope_id, name))
    }

    // ----- statements -------------------------------------------------------

    /// Walks one statement under budget accounting. Once a budget trips,
    /// the walk unwinds cooperatively: every further statement is a no-op,
    /// so the only cost left is popping the recursion already on the stack.
    fn walk_stmt(&mut self, stmt: &Stmt, sc: &mut Scope) {
        if let Some(meter) = &mut self.meter {
            if !meter.tick_statement(self.stmt_depth) {
                return;
            }
        }
        self.stmt_depth += 1;
        self.walk_stmt_inner(stmt, sc);
        self.stmt_depth -= 1;
    }

    fn walk_stmt_inner(&mut self, stmt: &Stmt, sc: &mut Scope) {
        match &stmt.kind {
            StmtKind::Import(_) | StmtKind::ImportFrom { .. } => {}
            StmtKind::FunctionDef(def) => self.walk_function(def, sc, None, None),
            StmtKind::ClassDef(def) => self.walk_class(def, sc),
            StmtKind::Return(value) => {
                if let Some(v) = value {
                    let flows = self.eval(v, sc);
                    sc.returns.extend(flows);
                }
            }
            StmtKind::Assign { targets, value } => {
                let flows = self.eval(value, sc);
                let variants = describe_expr(value, &sc.ctx);
                for t in targets {
                    self.assign_to(t, &flows, &variants, value, sc);
                }
            }
            StmtKind::AugAssign { target, value, .. } => {
                let mut flows = self.eval(value, sc);
                if let ExprKind::Name(n) = &target.kind {
                    let slot = sc.env.entry(n.clone()).or_default();
                    for e in flows.drain(..) {
                        if !slot.contains(&e) {
                            slot.push(e);
                        }
                    }
                    slot.truncate(MAX_FLOW_SET);
                } else {
                    self.assign_to(target, &flows, &[], value, sc);
                }
            }
            StmtKind::AnnAssign { target, value, .. } => {
                if let Some(v) = value {
                    let flows = self.eval(v, sc);
                    let variants = describe_expr(v, &sc.ctx);
                    self.assign_to(target, &flows, &variants, v, sc);
                }
            }
            StmtKind::For { target, iter, body, orelse } => {
                let flows = self.eval(iter, sc);
                self.bind_pattern(target, &flows, sc);
                let saved = sc.env.clone();
                for s in body {
                    self.walk_stmt(s, sc);
                }
                for s in orelse {
                    self.walk_stmt(s, sc);
                }
                sc.merge_env(saved);
            }
            StmtKind::While { test, body, orelse } => {
                self.eval(test, sc);
                let saved = sc.env.clone();
                for s in body {
                    self.walk_stmt(s, sc);
                }
                for s in orelse {
                    self.walk_stmt(s, sc);
                }
                sc.merge_env(saved);
            }
            StmtKind::If { test, body, orelse } => {
                self.eval(test, sc);
                let before = sc.env.clone();
                for s in body {
                    self.walk_stmt(s, sc);
                }
                let after_then = std::mem::replace(&mut sc.env, before);
                for s in orelse {
                    self.walk_stmt(s, sc);
                }
                sc.merge_env(after_then);
            }
            StmtKind::With { items, body } => {
                for item in items {
                    let flows = self.eval(&item.context, sc);
                    if let Some(t) = &item.target {
                        self.bind_pattern(t, &flows, sc);
                    }
                }
                for s in body {
                    self.walk_stmt(s, sc);
                }
            }
            StmtKind::Raise { exc, cause } => {
                if let Some(e) = exc {
                    self.eval(e, sc);
                }
                if let Some(e) = cause {
                    self.eval(e, sc);
                }
            }
            StmtKind::Try { body, handlers, orelse, finalbody } => {
                for s in body {
                    self.walk_stmt(s, sc);
                }
                for h in handlers {
                    if let Some(n) = &h.name {
                        sc.env.insert(n.clone(), Vec::new());
                    }
                    for s in &h.body {
                        self.walk_stmt(s, sc);
                    }
                }
                for s in orelse.iter().chain(finalbody) {
                    self.walk_stmt(s, sc);
                }
            }
            StmtKind::Assert { test, msg } => {
                self.eval(test, sc);
                if let Some(m) = msg {
                    self.eval(m, sc);
                }
            }
            StmtKind::Expr(e) => {
                self.eval(e, sc);
            }
            StmtKind::Delete(targets) => {
                for t in targets {
                    self.eval(t, sc);
                }
            }
            StmtKind::Global(_)
            | StmtKind::Nonlocal(_)
            | StmtKind::Pass
            | StmtKind::Break
            | StmtKind::Continue => {}
        }
    }

    fn walk_function(
        &mut self,
        def: &FunctionDef,
        outer: &mut Scope,
        class_name: Option<&str>,
        base_class: Option<&str>,
    ) {
        // Decorators and defaults evaluate in the enclosing scope.
        for d in &def.decorators {
            self.eval(d, outer);
        }
        for p in &def.params {
            if let Some(d) = &p.default {
                self.eval(d, outer);
            }
        }
        let param_names: Vec<String> = def
            .params
            .iter()
            .filter(|p| p.kind != ParamKind::KwOnlyMarker)
            .map(|p| p.name.clone())
            .collect();
        let mut scope = self.new_scope(
            class_name.map(str::to_string),
            base_class.map(str::to_string),
            Some(def.name.clone()),
            &param_names,
        );
        // Free variables see enclosing (module/class) bindings.
        scope.env = outer.env.clone();
        scope.ctx.locals = outer.ctx.locals.clone();
        // Formal parameters are source-candidate events (§5.1). The bare
        // variable name is deliberately not used as a representation for the
        // parameter event itself — `self` would conflate the whole corpus —
        // but parameter *uses* in expressions still back off to it.
        let mut summary = FuncSummary::default();
        for p in &def.params {
            if p.kind == ParamKind::KwOnlyMarker {
                continue;
            }
            let mut reps = Vec::new();
            if let Some(class) = class_name {
                reps.push(intern(&format!("{class}::{}(param {})", def.name, p.name)));
                if let Some(base) = base_class {
                    reps.push(intern(&format!("{base}::{}(param {})", def.name, p.name)));
                }
            }
            reps.push(intern(&format!("{}(param {})", def.name, p.name)));
            let ev = self.graph.add_event(Event::new(
                EventKind::ParamRead,
                reps,
                self.file,
                p.span,
            ));
            scope.env.insert(p.name.clone(), vec![ev]);
            summary.params.push((p.name.clone(), ev));
        }
        for s in &def.body {
            self.walk_stmt(s, &mut scope);
        }
        summary.returns = scope.returns.clone();
        summary.def = Some(def.clone());
        summary.class_name = class_name.map(str::to_string);
        summary.base_class = base_class.map(str::to_string);
        let qualified = match class_name {
            Some(c) => format!("{c}::{}", def.name),
            None => def.name.clone(),
        };
        self.funcs.insert(qualified, summary);
    }

    fn walk_class(&mut self, def: &ClassDef, outer: &mut Scope) {
        for d in &def.decorators {
            self.eval(d, outer);
        }
        let base_class = def.bases.first().and_then(|b| {
            let v = describe_expr(b, &outer.ctx);
            v.into_iter().next()
        });
        for b in &def.bases {
            self.eval(b, outer);
        }
        for k in &def.keywords {
            self.eval(&k.value, outer);
        }
        let mut class_scope = self.new_scope(None, None, None, &[]);
        for s in &def.body {
            match &s.kind {
                StmtKind::FunctionDef(f) => {
                    self.walk_function(f, &mut class_scope, Some(&def.name), base_class.as_deref())
                }
                other => {
                    let _ = other;
                    self.walk_stmt(s, &mut class_scope);
                }
            }
        }
    }

    // ----- assignment targets ------------------------------------------------

    fn assign_to(
        &mut self,
        target: &Expr,
        flows: &FlowSet,
        variants: &[String],
        value: &Expr,
        sc: &mut Scope,
    ) {
        match &target.kind {
            ExprKind::Name(n) => {
                sc.env.insert(n.clone(), flows.clone());
                if variants.is_empty() {
                    sc.ctx.locals.remove(n);
                } else {
                    sc.ctx.locals.insert(n.clone(), variants.to_vec());
                }
                // Points-to: the assigned events are allocation sites.
                let var = self.pt_var(sc, n);
                for &e in flows {
                    self.pt.alloc(var, e.0);
                }
                if let ExprKind::Name(m) = &value.kind {
                    let from = self.pt_var(sc, m);
                    self.pt.copy(from, var);
                }
            }
            ExprKind::Tuple(elems) | ExprKind::List(elems) => {
                for e in elems {
                    self.assign_to(e, flows, &[], value, sc);
                }
            }
            ExprKind::Starred(inner) => self.assign_to(inner, flows, &[], value, sc),
            ExprKind::Attribute { value: base, attr } => {
                self.store_through(base, attr, flows, sc);
            }
            ExprKind::Subscript { value: base, index } => {
                let field = crate::builder::index_field_name(index);
                self.store_through(base, &field, flows, sc);
            }
            _ => {}
        }
    }

    /// Handles `base.field = flows`: a points-to store plus a weak update of
    /// the base binding so environment flow still observes the taint.
    fn store_through(&mut self, base: &Expr, field: &str, flows: &FlowSet, sc: &mut Scope) {
        self.eval(base, sc);
        if let ExprKind::Name(n) = &base.kind {
            let base_var = self.pt_var(sc, n);
            let value_var = self.pt.fresh();
            for &e in flows {
                self.pt.alloc(value_var, e.0);
            }
            self.pt.store(base_var, field, value_var);
            let slot = sc.env.entry(n.clone()).or_default();
            for &e in flows {
                if !slot.contains(&e) {
                    slot.push(e);
                }
            }
            slot.truncate(MAX_FLOW_SET);
        }
    }

    fn bind_pattern(&mut self, target: &Expr, flows: &FlowSet, sc: &mut Scope) {
        match &target.kind {
            ExprKind::Name(n) => {
                sc.env.insert(n.clone(), flows.clone());
                sc.ctx.locals.remove(n);
            }
            ExprKind::Tuple(elems) | ExprKind::List(elems) => {
                for e in elems {
                    self.bind_pattern(e, flows, sc);
                }
            }
            ExprKind::Starred(inner) => self.bind_pattern(inner, flows, sc),
            _ => {}
        }
    }

    // ----- expressions --------------------------------------------------------

    fn eval(&mut self, expr: &Expr, sc: &mut Scope) -> FlowSet {
        match &expr.kind {
            ExprKind::Name(n) => sc.env.get(n).cloned().unwrap_or_default(),
            ExprKind::Number(_)
            | ExprKind::Str(_)
            | ExprKind::Bytes(_)
            | ExprKind::Bool(_)
            | ExprKind::NoneLit
            | ExprKind::EllipsisLit => Vec::new(),
            ExprKind::FString { parts, .. } => {
                let mut out = Vec::new();
                for p in parts {
                    union_into(&mut out, self.eval(p, sc));
                }
                out
            }
            ExprKind::Attribute { value, attr } => {
                let base_flows = self.eval(value, sc);
                self.read_event(expr, value, attr, base_flows, sc)
            }
            ExprKind::Subscript { value, index } => {
                let mut base_flows = self.eval(value, sc);
                union_into(&mut base_flows, self.eval(index, sc));
                let field = index_field_name(index);
                self.read_event(expr, value, &field, base_flows, sc)
            }
            ExprKind::Slice { lower, upper, step } => {
                let mut out = Vec::new();
                for part in [lower, upper, step].into_iter().flatten() {
                    union_into(&mut out, self.eval(part, sc));
                }
                out
            }
            ExprKind::Call { func, args, keywords } => self.eval_call(expr, func, args, keywords, sc),
            ExprKind::BinOp { left, right, .. } => {
                let mut out = self.eval(left, sc);
                union_into(&mut out, self.eval(right, sc));
                out
            }
            ExprKind::UnaryOp { operand, .. } => self.eval(operand, sc),
            ExprKind::BoolOp { values, .. } => {
                let mut out = Vec::new();
                for v in values {
                    union_into(&mut out, self.eval(v, sc));
                }
                out
            }
            ExprKind::Compare { left, comparators, .. } => {
                let mut out = self.eval(left, sc);
                for c in comparators {
                    union_into(&mut out, self.eval(c, sc));
                }
                out
            }
            ExprKind::IfExp { test, body, orelse } => {
                self.eval(test, sc);
                let mut out = self.eval(body, sc);
                union_into(&mut out, self.eval(orelse, sc));
                out
            }
            ExprKind::Lambda { params, body } => {
                for p in params {
                    if let Some(d) = &p.default {
                        self.eval(d, sc);
                    }
                }
                self.eval(body, sc);
                Vec::new()
            }
            ExprKind::Tuple(elems) | ExprKind::List(elems) | ExprKind::Set(elems) => {
                // Collections flow their entries to the whole value (§5.2).
                let mut out = Vec::new();
                for e in elems {
                    union_into(&mut out, self.eval(e, sc));
                }
                out
            }
            ExprKind::Dict { keys, values } => {
                let mut out = Vec::new();
                for k in keys.iter().flatten() {
                    union_into(&mut out, self.eval(k, sc));
                }
                for v in values {
                    union_into(&mut out, self.eval(v, sc));
                }
                out
            }
            ExprKind::Comp { element, value, generators, .. } => {
                let saved = sc.env.clone();
                for g in generators {
                    let flows = self.eval(&g.iter, sc);
                    self.bind_pattern(&g.target, &flows, sc);
                    for cond in &g.ifs {
                        self.eval(cond, sc);
                    }
                }
                let mut out = self.eval(element, sc);
                if let Some(v) = value {
                    union_into(&mut out, self.eval(v, sc));
                }
                sc.env = saved;
                out
            }
            ExprKind::Yield { value, .. } => match value {
                Some(v) => self.eval(v, sc),
                None => Vec::new(),
            },
            ExprKind::Await(inner) | ExprKind::Starred(inner) => self.eval(inner, sc),
            ExprKind::NamedExpr { target, value } => {
                let flows = self.eval(value, sc);
                if let ExprKind::Name(n) = &target.kind {
                    sc.env.insert(n.clone(), flows.clone());
                }
                flows
            }
        }
    }

    /// Creates an object-read event for `expr` (an attribute or subscript
    /// load of `field` on `base`). Falls back to pass-through flow when the
    /// expression has no stable representation.
    fn read_event(
        &mut self,
        expr: &Expr,
        base: &Expr,
        field: &str,
        base_flows: FlowSet,
        sc: &mut Scope,
    ) -> FlowSet {
        let reps = describe_syms(expr, &sc.ctx);
        if reps.is_empty() {
            return base_flows;
        }
        let ev = self.graph.add_event(Event::new(
            EventKind::ObjectRead,
            reps,
            self.file,
            expr.span,
        ));
        // The base of a read is the same object chain: receiver flow.
        for &f in &base_flows {
            self.graph.add_edge_kind(f, ev, EdgeKind::Receiver);
        }
        // Field-aliasing flow: register a points-to load.
        if let ExprKind::Name(n) = &base.kind {
            let base_var = self.pt_var(sc, n);
            let out = self.pt.fresh();
            self.pt.load(base_var, field, out);
            self.pt_loads.push((ev, out));
        }
        vec![ev]
    }

    fn eval_call(
        &mut self,
        expr: &Expr,
        func: &Expr,
        args: &[Expr],
        keywords: &[Keyword],
        sc: &mut Scope,
    ) -> FlowSet {
        // Receiver/base flows: for `x.m(...)` the object chain flows into
        // the call event (Fig. 2b: `request.files['f']` → `.save()`).
        let recv_flows = match &func.kind {
            ExprKind::Attribute { value, .. } => self.eval(value, sc),
            ExprKind::Name(n) => sc.env.get(n).cloned().unwrap_or_default(),
            other => {
                let _ = other;
                self.eval(func, sc)
            }
        };
        let arg_flows: Vec<FlowSet> = args.iter().map(|a| self.eval(a, sc)).collect();
        let kwarg_flows: Vec<(String, FlowSet)> = keywords
            .iter()
            .map(|k| (k.name.clone().unwrap_or_default(), self.eval(&k.value, sc)))
            .collect();

        let reps = describe_syms(expr, &sc.ctx);
        let call_event = if reps.is_empty() {
            None
        } else {
            Some(self.graph.add_event(Event::new(
                EventKind::Call,
                reps,
                self.file,
                expr.span,
            )))
        };

        if let Some(ev) = call_event {
            // The receiver chain is same-object flow; arguments are not.
            for &f in &recv_flows {
                self.graph.add_edge_kind(f, ev, EdgeKind::Receiver);
                self.graph.set_arg_position(f, ev, ArgPos::Receiver);
            }
            for (i, flows) in arg_flows.iter().enumerate() {
                for &f in flows {
                    self.graph.add_edge(f, ev);
                    self.graph
                        .set_arg_position(f, ev, ArgPos::Positional(i.min(255) as u8));
                }
            }
            for (name, flows) in &kwarg_flows {
                for &f in flows {
                    self.graph.add_edge(f, ev);
                    self.graph
                        .set_arg_position(f, ev, ArgPos::Keyword(name.clone()));
                }
            }
            // `locals()` receives every local variable (§5.2).
            if matches!(&func.kind, ExprKind::Name(n) if n == "locals") {
                let all: Vec<EventId> =
                    sc.env.values().flatten().copied().collect();
                for f in all {
                    self.graph.add_edge(f, ev);
                }
            }
        }

        // Link calls to locally-defined functions / same-class methods.
        let qualified = match &func.kind {
            ExprKind::Name(n) => Some(n.clone()),
            ExprKind::Attribute { value, attr } => match (&value.kind, &sc.ctx.class_name) {
                (ExprKind::Name(recv), Some(class)) if recv == "self" => {
                    Some(format!("{class}::{attr}"))
                }
                _ => None,
            },
            _ => None,
        };
        if let Some(q) = qualified {
            let callee = if self.inline_stack.len() < 3
                && !self.inline_stack.iter().any(|n| n == &q)
            {
                // Clone-and-take in one step so inlinability and the body
                // can't disagree.
                self.funcs
                    .get(&q)
                    .cloned()
                    .and_then(|mut info| info.def.take().map(|def| (info, def)))
            } else {
                None
            };
            if let Some((info, def)) = callee {
                // Per-call-site inlining (§5.2): re-analyze the callee body
                // with the parameters bound to this call's argument flows.
                // This is context-sensitive — taint from one call site
                // cannot leak into another.
                let returns =
                    self.inline_call(&q, &def, &info, &arg_flows, &kwarg_flows);
                match call_event {
                    Some(ev) => {
                        for r in returns {
                            self.graph.add_edge(r, ev);
                        }
                    }
                    None => {
                        // No call event (unrepresentable callee): surface
                        // the returns as the call's flow via pending = none.
                        // Handled by the caller through recv/arg union; the
                        // returns are lost only in this rare case.
                    }
                }
            } else {
                self.pending.push(PendingCall {
                    qualified: q,
                    arg_flows: arg_flows.clone(),
                    kwarg_flows: kwarg_flows.clone(),
                    call_event,
                });
            }
        }

        match call_event {
            Some(ev) => vec![ev],
            None => {
                // Pass flow through opaque calls.
                let mut out = recv_flows;
                for flows in arg_flows {
                    union_into(&mut out, flows);
                }
                for (_, flows) in kwarg_flows {
                    union_into(&mut out, flows);
                }
                out
            }
        }
    }
}

impl Builder {
    /// Re-analyzes `def`'s body with parameters bound to the call's
    /// argument flows, returning the events that flow into its `return`s.
    fn inline_call(
        &mut self,
        qualified: &str,
        def: &FunctionDef,
        info: &FuncSummary,
        arg_flows: &[FlowSet],
        kwarg_flows: &[(String, FlowSet)],
    ) -> FlowSet {
        let param_names: Vec<String> = def
            .params
            .iter()
            .filter(|p| p.kind != ParamKind::KwOnlyMarker)
            .map(|p| p.name.clone())
            .collect();
        let mut scope = self.new_scope(
            info.class_name.clone(),
            info.base_class.clone(),
            Some(def.name.clone()),
            &param_names,
        );
        // Bind positional arguments (skipping a `self`/`cls` receiver slot
        // for methods) and keyword arguments by name.
        let positional: Vec<&String> = param_names
            .iter()
            .filter(|n| n.as_str() != "self" && n.as_str() != "cls")
            .collect();
        for (i, flows) in arg_flows.iter().enumerate() {
            if let Some(name) = positional.get(i) {
                scope.env.insert((*name).clone(), flows.clone());
            }
        }
        for (name, flows) in kwarg_flows {
            if param_names.iter().any(|p| p == name) {
                scope.env.insert(name.clone(), flows.clone());
            }
        }
        self.inline_stack.push(qualified.to_string());
        for stmt in &def.body {
            self.walk_stmt(stmt, &mut scope);
        }
        self.inline_stack.pop();
        scope.returns
    }
}

fn union_into(dst: &mut FlowSet, src: FlowSet) {
    for e in src {
        if !dst.contains(&e) {
            dst.push(e);
        }
    }
    dst.truncate(MAX_FLOW_SET);
}

/// Field name used for subscript loads/stores, matching the representation
/// rendering (`['key']`, `[0]`, `[]`).
fn index_field_name(index: &Expr) -> String {
    match &index.kind {
        ExprKind::Str(s) => format!("['{s}']"),
        ExprKind::Number(n) => format!("[{n}]"),
        _ => "[]".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seldon_specs::Role;

    fn build(src: &str) -> PropagationGraph {
        build_source(src, FileId(0)).expect("source builds")
    }

    fn find(g: &PropagationGraph, rep: &str) -> EventId {
        g.events()
            .find(|(_, e)| e.has_rep(rep))
            .map(|(id, _)| id)
            .unwrap_or_else(|| {
                let all: Vec<&str> = g.events().map(|(_, e)| e.rep()).collect();
                panic!("no event with rep {rep}; have {all:?}")
            })
    }

    #[test]
    fn paper_fig2_graph() {
        let src = r#"
from yak.web import app
from flask import request
from werkzeug import secure_filename
import os

blog_dir = app.config['PATH']

@app.route('/media/', methods=['POST'])
def media():
    filename = request.files['f'].filename
    filename = secure_filename(filename)
    path = os.path.join(blog_dir, filename)
    if not os.path.exists(path):
        request.files['f'].save(path)
"#;
        let g = build(src);
        let a = find(&g, "flask.request.files['f'].filename");
        let b = find(&g, "werkzeug.secure_filename()");
        let c = find(&g, "os.path.join()");
        let d = find(&g, "flask.request.files['f'].save()");
        let e = find(&g, "yak.web.app.config['PATH']");
        let f = find(&g, "os.path.exists()");
        // Fig. 2b edges.
        assert!(g.is_reachable(a, b), "filename -> secure_filename");
        assert!(g.is_reachable(b, c), "secure_filename -> join");
        assert!(g.is_reachable(e, c), "config -> join");
        assert!(g.is_reachable(c, d), "join -> save");
        assert!(g.is_reachable(c, f), "join -> exists");
        assert!(!g.is_reachable(d, a), "no backwards flow");
        // The receiver read `request.files['f']` flows into save.
        let recv = find(&g, "flask.request.files['f']");
        assert!(g.is_reachable(recv, d));
    }

    #[test]
    fn call_args_flow_to_result() {
        let g = build("from m import f, g\nx = f(1)\ny = g(x)\n");
        let f = find(&g, "m.f()");
        let gg = find(&g, "m.g()");
        assert!(g.is_reachable(f, gg));
    }

    #[test]
    fn param_events_are_sources_only() {
        let g = build("def handler(req):\n    return req\n");
        let p = find(&g, "handler(param req)");
        let ev = g.event(p);
        assert_eq!(ev.kind, EventKind::ParamRead);
        assert!(ev.candidates.contains(Role::Source));
        assert!(!ev.candidates.contains(Role::Sink));
    }

    /// True if any event carrying `from_rep` reaches any event carrying
    /// `to_rep` (inlining duplicates body events per call site).
    fn any_reaches(g: &PropagationGraph, from_rep: &str, to_rep: &str) -> bool {
        let froms: Vec<EventId> = g
            .events()
            .filter(|(_, e)| e.has_rep(from_rep))
            .map(|(id, _)| id)
            .collect();
        let tos: Vec<EventId> = g
            .events()
            .filter(|(_, e)| e.has_rep(to_rep))
            .map(|(id, _)| id)
            .collect();
        froms.iter().any(|&f| tos.iter().any(|&t| g.is_reachable(f, t)))
    }

    #[test]
    fn local_function_linking() {
        let src = "
from m import src, sink

def helper(v):
    return v

x = src()
y = helper(x)
sink(y)
";
        let g = build(src);
        assert!(any_reaches(&g, "m.src()", "m.sink()"), "flow through local function");
        // The formal parameter is still a source-candidate event.
        let p = find(&g, "helper(param v)");
        assert_eq!(g.event(p).kind, EventKind::ParamRead);
    }

    #[test]
    fn method_call_on_self_links() {
        let src = "
from m import src, sink

class C:
    def get(self):
        return src()
    def run(self):
        sink(self.get())
";
        let g = build(src);
        assert!(any_reaches(&g, "m.src()", "m.sink()"));
    }

    #[test]
    fn inlining_is_context_sensitive() {
        // Two call sites of the same helper: taint entering at one site
        // must not leak into the other (the summary-linking approach would
        // smear it through the shared parameter event).
        let src = "
from m import src, sink_a, sink_b

def ident(v):
    return v

tainted = ident(src())
clean = ident('constant')
sink_a(tainted)
sink_b(clean)
";
        let g = build(src);
        assert!(any_reaches(&g, "m.src()", "m.sink_a()"), "taint reaches its own sink");
        assert!(
            !any_reaches(&g, "m.src()", "m.sink_b()"),
            "taint must not leak across call sites"
        );
    }

    #[test]
    fn inlining_bounds_recursion() {
        let src = "
from m import src, sink

def loop(v):
    return loop(v)

sink(loop(src()))
";
        // Must terminate (recursion guard) and keep the flow.
        let g = build(src);
        assert!(any_reaches(&g, "m.src()", "m.sink()"));
    }

    #[test]
    fn branches_merge() {
        let src = "
from m import a, b, sink
if c:
    x = a()
else:
    x = b()
sink(x)
";
        let g = build(src);
        let sa = find(&g, "m.a()");
        let sb = find(&g, "m.b()");
        let k = find(&g, "m.sink()");
        assert!(g.is_reachable(sa, k));
        assert!(g.is_reachable(sb, k));
    }

    #[test]
    fn collections_propagate_entries() {
        let src = "from m import src, sink\nxs = [1, src(), 3]\nsink(xs)\n";
        let g = build(src);
        assert!(g.is_reachable(find(&g, "m.src()"), find(&g, "m.sink()")));
        let src2 = "from m import src, sink\nd = {'k': src()}\nsink(d)\n";
        let g2 = build(src2);
        assert!(g2.is_reachable(find(&g2, "m.src()"), find(&g2, "m.sink()")));
    }

    #[test]
    fn locals_receives_all_variables() {
        let src = "from m import src, sink\nx = src()\nsink(locals())\n";
        let g = build(src);
        assert!(g.is_reachable(find(&g, "m.src()"), find(&g, "m.sink()")));
    }

    #[test]
    fn field_aliasing_flow() {
        // Store through one alias, load through another.
        let src = "
from m import mk, src, sink
o = mk()
p = o
p.data = src()
sink(o.data)
";
        let g = build(src);
        assert!(g.is_reachable(find(&g, "m.src()"), find(&g, "m.sink()")));
    }

    #[test]
    fn subscript_store_flow() {
        let src = "
from m import mk, src, sink
d = mk()
d['k'] = src()
sink(d['k'])
";
        let g = build(src);
        assert!(g.is_reachable(find(&g, "m.src()"), find(&g, "m.sink()")));
    }

    #[test]
    fn fstring_propagates_parts() {
        let src = "from m import src, sink\nv = src()\nsink(f'<div>{v}</div>')\n";
        let g = build(src);
        assert!(g.is_reachable(find(&g, "m.src()"), find(&g, "m.sink()")));
    }

    #[test]
    fn comprehension_flow() {
        let src = "from m import src, sink\nxs = src()\nsink([x for x in xs])\n";
        let g = build(src);
        assert!(g.is_reachable(find(&g, "m.src()"), find(&g, "m.sink()")));
    }

    #[test]
    fn with_statement_binds_target() {
        let src = "from m import ctx, sink\nwith ctx() as f:\n    sink(f)\n";
        let g = build(src);
        assert!(g.is_reachable(find(&g, "m.ctx()"), find(&g, "m.sink()")));
    }

    #[test]
    fn tuple_unpacking() {
        let src = "from m import src, sink\na, b = src(), 1\nsink(a)\n";
        let g = build(src);
        assert!(g.is_reachable(find(&g, "m.src()"), find(&g, "m.sink()")));
    }

    #[test]
    fn keyword_arguments_flow() {
        let src = "from m import src, sink\nsink(data=src())\n";
        let g = build(src);
        assert!(g.is_reachable(find(&g, "m.src()"), find(&g, "m.sink()")));
    }

    #[test]
    fn no_flow_between_unrelated() {
        let src = "from m import a, b\nx = a()\ny = b()\n";
        let g = build(src);
        assert!(!g.is_reachable(find(&g, "m.a()"), find(&g, "m.b()")));
    }

    #[test]
    fn strong_update_cuts_stale_flow() {
        let src = "from m import a, b, sink\nx = a()\nx = b()\nsink(x)\n";
        let g = build(src);
        assert!(!g.is_reachable(find(&g, "m.a()"), find(&g, "m.sink()")));
        assert!(g.is_reachable(find(&g, "m.b()"), find(&g, "m.sink()")));
    }

    #[test]
    fn chained_local_representation() {
        let src = "from forms import LoginForm\nform = LoginForm()\nu = form.username.data\n";
        let g = build(src);
        let _ = find(&g, "forms.LoginForm().username.data");
    }

    #[test]
    fn graph_is_acyclic_on_typical_code() {
        let src = "
from m import f, g
x = f()
for i in range(3):
    x = g(x)
";
        let g = build(src);
        // Single-iteration loops keep the graph a DAG (§5.2).
        for (id, _) in g.events() {
            assert!(
                !g.reachable_from(id).contains(&id),
                "cycle through {:?}",
                g.event(id).rep()
            );
        }
    }

    #[test]
    fn lenient_build_skips_broken_statements() {
        // The malformed line must not open a bracket (implicit joining
        // would swallow the rest of the file into one logical line).
        let src = "from m import src, sink\nx = src()\nbroken = = 3\nsink(x)\n";
        let (g, errors) = build_source_lenient(src, FileId(0));
        assert_eq!(errors.len(), 1);
        assert!(g.is_reachable(find(&g, "m.src()"), find(&g, "m.sink()")));
    }

    #[test]
    fn timed_builds_match_untimed() {
        let src = "from m import src, sink\nx = src()\nsink(x)\n";
        let (g, t) = build_source_timed(src, FileId(0), None).expect("builds");
        let plain = build_source(src, FileId(0)).unwrap();
        assert_eq!(g.event_count(), plain.event_count());
        assert_eq!(g.edge_count(), plain.edge_count());
        // Durations are reported (possibly zero on coarse clocks), and the
        // lenient variant agrees.
        let mut total = BuildTimings::default();
        total.add(t);
        assert_eq!(total, t);
        let (g2, errors, _) =
            build_source_lenient_timed(src, FileId(0), None).expect("builds");
        assert!(errors.is_empty());
        assert_eq!(g2.event_count(), plain.event_count());
    }

    #[test]
    fn timed_build_honors_budget() {
        let tight = Budget { max_source_bytes: 4, ..Budget::unlimited() };
        let src = "x = 1\n";
        let err = build_source_timed(src, FileId(0), Some(&tight)).unwrap_err();
        assert!(matches!(err, BuildError::OverBudget(_)));
        let err =
            build_source_lenient_timed(src, FileId(0), Some(&tight)).unwrap_err();
        assert!(matches!(err, BudgetExceeded::SourceBytes { .. }));
    }

    #[test]
    fn events_count_paper_example_kinds() {
        let src = "from flask import request\nname = request.args.get('n')\n";
        let g = build(src);
        let kinds: Vec<EventKind> = g.events().map(|(_, e)| e.kind).collect();
        assert!(kinds.contains(&EventKind::Call));
        assert!(kinds.contains(&EventKind::ObjectRead));
    }
}
