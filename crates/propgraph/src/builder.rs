//! Builds propagation graphs from Python source (§5).
//!
//! Events are function calls, object reads, and formal parameters; flow
//! edges follow the paper's rules: calls propagate arguments (and receiver
//! chains) to their results, collections propagate entries to the whole
//! collection, `locals()` receives every local variable, loops run a single
//! iteration, locally-defined functions are linked through their parameters
//! and returns (the paper's method inlining), and an Andersen points-to
//! analysis adds field-aliasing flow the environment threading misses.
//!
//! Since the IR split, this module is a thin façade: the Python-specific
//! walk lives in [`crate::lower`] (pyast → `IrProgram`), the language-blind
//! construction in [`crate::irbuild`] (`IrProgram` → graph). The entry
//! points here compose the two and keep the original API, budgets, and
//! fault behavior byte-for-byte.

use crate::budget::{Budget, BudgetExceeded};
use crate::event::FileId;
use crate::graph::PropagationGraph;
use crate::irbuild::build_ir;
use crate::lower::{lower_module, lower_module_budgeted};
use seldon_pyast::ast::Module;
use seldon_pyast::{parse, parse_lenient, FrontendError};
use std::fmt;
use std::time::{Duration, Instant};

/// Builds the propagation graph of one parsed module.
pub fn build_module(module: &Module, file: FileId) -> PropagationGraph {
    build_ir(&lower_module(module), file)
}

/// Parses `source` and builds its propagation graph.
///
/// # Errors
///
/// Returns a [`FrontendError`] if the source fails to lex or parse.
pub fn build_source(source: &str, file: FileId) -> Result<PropagationGraph, FrontendError> {
    let module = parse(source)?;
    Ok(build_module(&module, file))
}

/// Like [`build_source`] but recovers from statement-level parse errors:
/// malformed statements are skipped and reported, the rest of the file is
/// analyzed. This is the right entry point for arbitrary repository code.
pub fn build_source_lenient(
    source: &str,
    file: FileId,
) -> (PropagationGraph, Vec<FrontendError>) {
    let (module, errors) = parse_lenient(source);
    (build_module(&module, file), errors)
}

/// Failure of a budgeted build: either the front end rejected the source,
/// or a resource budget was exceeded.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// The source failed to lex or parse.
    Frontend(FrontendError),
    /// A [`Budget`] limit was exceeded.
    OverBudget(BudgetExceeded),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Frontend(e) => e.fmt(f),
            BuildError::OverBudget(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<FrontendError> for BuildError {
    fn from(e: FrontendError) -> Self {
        BuildError::Frontend(e)
    }
}

impl From<BudgetExceeded> for BuildError {
    fn from(e: BudgetExceeded) -> Self {
        BuildError::OverBudget(e)
    }
}

/// Checks the source-size budget shared by the budgeted entry points.
pub(crate) fn check_source_size(source: &str, budget: &Budget) -> Result<(), BudgetExceeded> {
    if source.len() > budget.max_source_bytes {
        return Err(BudgetExceeded::SourceBytes {
            limit: budget.max_source_bytes,
            actual: source.len(),
        });
    }
    Ok(())
}

/// Builds the graph of a parsed module under a resource [`Budget`].
///
/// # Errors
///
/// Returns [`BudgetExceeded`] if the walk trips a statement-count, depth,
/// or deadline limit; the partially built graph is discarded.
pub fn build_module_budgeted(
    module: &Module,
    file: FileId,
    budget: &Budget,
) -> Result<PropagationGraph, BudgetExceeded> {
    let ir = lower_module_budgeted(module, budget)?;
    Ok(build_ir(&ir, file))
}

/// Like [`build_source`], with every phase held to a resource [`Budget`]:
/// the source size is checked before parsing and the graph walk is
/// metered cooperatively.
///
/// # Errors
///
/// Returns [`BuildError::Frontend`] on a lex/parse failure and
/// [`BuildError::OverBudget`] when a budget limit trips.
pub fn build_source_budgeted(
    source: &str,
    file: FileId,
    budget: &Budget,
) -> Result<PropagationGraph, BuildError> {
    build_source_timed(source, file, Some(budget)).map(|(g, _)| g)
}

/// Like [`build_source_lenient`], under a resource [`Budget`].
///
/// Parse errors degrade per statement as usual; only a budget trip fails
/// the whole file.
///
/// # Errors
///
/// Returns [`BudgetExceeded`] when a budget limit trips.
pub fn build_source_lenient_budgeted(
    source: &str,
    file: FileId,
    budget: &Budget,
) -> Result<(PropagationGraph, Vec<FrontendError>), BudgetExceeded> {
    build_source_lenient_timed(source, file, Some(budget)).map(|(g, e, _)| (g, e))
}

/// Wall-clock split of one file's front-end work, reported by the
/// `*_timed` entry points. The telemetry layer sums these per-file
/// durations across worker threads into the `parse` and `propgraph`
/// aggregate stage spans.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BuildTimings {
    /// Time spent lexing and parsing the source into an AST.
    pub parse: Duration,
    /// Time spent walking the AST into a propagation graph (including the
    /// points-to solve and call linking).
    pub build: Duration,
}

impl BuildTimings {
    /// Component-wise sum, for folding per-file timings into totals.
    pub fn add(&mut self, other: BuildTimings) {
        self.parse += other.parse;
        self.build += other.build;
    }
}

/// Strict timed build: the budget-optional superset of [`build_source`]
/// and [`build_source_budgeted`], reporting the parse/build phase split.
///
/// # Errors
///
/// Returns [`BuildError::Frontend`] on a lex/parse failure and
/// [`BuildError::OverBudget`] when a budget limit trips (never with
/// `budget: None`).
pub fn build_source_timed(
    source: &str,
    file: FileId,
    budget: Option<&Budget>,
) -> Result<(PropagationGraph, BuildTimings), BuildError> {
    if let Some(b) = budget {
        check_source_size(source, b)?;
    }
    let parse_started = Instant::now();
    let module = parse(source)?;
    let parse_time = parse_started.elapsed();
    let build_started = Instant::now();
    let graph = match budget {
        Some(b) => build_module_budgeted(&module, file, b)?,
        None => build_module(&module, file),
    };
    let timings = BuildTimings { parse: parse_time, build: build_started.elapsed() };
    Ok((graph, timings))
}

/// Lenient timed build: the budget-optional superset of
/// [`build_source_lenient`] and [`build_source_lenient_budgeted`],
/// reporting the parse/build phase split.
///
/// # Errors
///
/// Returns [`BudgetExceeded`] when a budget limit trips (never with
/// `budget: None`).
pub fn build_source_lenient_timed(
    source: &str,
    file: FileId,
    budget: Option<&Budget>,
) -> Result<(PropagationGraph, Vec<FrontendError>, BuildTimings), BudgetExceeded> {
    if let Some(b) = budget {
        check_source_size(source, b)?;
    }
    let parse_started = Instant::now();
    let (module, errors) = parse_lenient(source);
    let parse_time = parse_started.elapsed();
    let build_started = Instant::now();
    let graph = match budget {
        Some(b) => build_module_budgeted(&module, file, b)?,
        None => build_module(&module, file),
    };
    let timings = BuildTimings { parse: parse_time, build: build_started.elapsed() };
    Ok((graph, errors, timings))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventId, EventKind};
    use seldon_specs::Role;

    fn build(src: &str) -> PropagationGraph {
        build_source(src, FileId(0)).expect("source builds")
    }

    fn find(g: &PropagationGraph, rep: &str) -> EventId {
        g.events()
            .find(|(_, e)| e.has_rep(rep))
            .map(|(id, _)| id)
            .unwrap_or_else(|| {
                let all: Vec<&str> = g.events().map(|(_, e)| e.rep()).collect();
                panic!("no event with rep {rep}; have {all:?}")
            })
    }

    #[test]
    fn paper_fig2_graph() {
        let src = r#"
from yak.web import app
from flask import request
from werkzeug import secure_filename
import os

blog_dir = app.config['PATH']

@app.route('/media/', methods=['POST'])
def media():
    filename = request.files['f'].filename
    filename = secure_filename(filename)
    path = os.path.join(blog_dir, filename)
    if not os.path.exists(path):
        request.files['f'].save(path)
"#;
        let g = build(src);
        let a = find(&g, "flask.request.files['f'].filename");
        let b = find(&g, "werkzeug.secure_filename()");
        let c = find(&g, "os.path.join()");
        let d = find(&g, "flask.request.files['f'].save()");
        let e = find(&g, "yak.web.app.config['PATH']");
        let f = find(&g, "os.path.exists()");
        // Fig. 2b edges.
        assert!(g.is_reachable(a, b), "filename -> secure_filename");
        assert!(g.is_reachable(b, c), "secure_filename -> join");
        assert!(g.is_reachable(e, c), "config -> join");
        assert!(g.is_reachable(c, d), "join -> save");
        assert!(g.is_reachable(c, f), "join -> exists");
        assert!(!g.is_reachable(d, a), "no backwards flow");
        // The receiver read `request.files['f']` flows into save.
        let recv = find(&g, "flask.request.files['f']");
        assert!(g.is_reachable(recv, d));
    }

    #[test]
    fn call_args_flow_to_result() {
        let g = build("from m import f, g\nx = f(1)\ny = g(x)\n");
        let f = find(&g, "m.f()");
        let gg = find(&g, "m.g()");
        assert!(g.is_reachable(f, gg));
    }

    #[test]
    fn param_events_are_sources_only() {
        let g = build("def handler(req):\n    return req\n");
        let p = find(&g, "handler(param req)");
        let ev = g.event(p);
        assert_eq!(ev.kind, EventKind::ParamRead);
        assert!(ev.candidates.contains(Role::Source));
        assert!(!ev.candidates.contains(Role::Sink));
    }

    /// True if any event carrying `from_rep` reaches any event carrying
    /// `to_rep` (inlining duplicates body events per call site).
    fn any_reaches(g: &PropagationGraph, from_rep: &str, to_rep: &str) -> bool {
        let froms: Vec<EventId> = g
            .events()
            .filter(|(_, e)| e.has_rep(from_rep))
            .map(|(id, _)| id)
            .collect();
        let tos: Vec<EventId> = g
            .events()
            .filter(|(_, e)| e.has_rep(to_rep))
            .map(|(id, _)| id)
            .collect();
        froms.iter().any(|&f| tos.iter().any(|&t| g.is_reachable(f, t)))
    }

    #[test]
    fn local_function_linking() {
        let src = "
from m import src, sink

def helper(v):
    return v

x = src()
y = helper(x)
sink(y)
";
        let g = build(src);
        assert!(any_reaches(&g, "m.src()", "m.sink()"), "flow through local function");
        // The formal parameter is still a source-candidate event.
        let p = find(&g, "helper(param v)");
        assert_eq!(g.event(p).kind, EventKind::ParamRead);
    }

    #[test]
    fn method_call_on_self_links() {
        let src = "
from m import src, sink

class C:
    def get(self):
        return src()
    def run(self):
        sink(self.get())
";
        let g = build(src);
        assert!(any_reaches(&g, "m.src()", "m.sink()"));
    }

    #[test]
    fn inlining_is_context_sensitive() {
        // Two call sites of the same helper: taint entering at one site
        // must not leak into the other (the summary-linking approach would
        // smear it through the shared parameter event).
        let src = "
from m import src, sink_a, sink_b

def ident(v):
    return v

tainted = ident(src())
clean = ident('constant')
sink_a(tainted)
sink_b(clean)
";
        let g = build(src);
        assert!(any_reaches(&g, "m.src()", "m.sink_a()"), "taint reaches its own sink");
        assert!(
            !any_reaches(&g, "m.src()", "m.sink_b()"),
            "taint must not leak across call sites"
        );
    }

    #[test]
    fn inlining_bounds_recursion() {
        let src = "
from m import src, sink

def loop(v):
    return loop(v)

sink(loop(src()))
";
        // Must terminate (recursion guard) and keep the flow.
        let g = build(src);
        assert!(any_reaches(&g, "m.src()", "m.sink()"));
    }

    #[test]
    fn branches_merge() {
        let src = "
from m import a, b, sink
if c:
    x = a()
else:
    x = b()
sink(x)
";
        let g = build(src);
        let sa = find(&g, "m.a()");
        let sb = find(&g, "m.b()");
        let k = find(&g, "m.sink()");
        assert!(g.is_reachable(sa, k));
        assert!(g.is_reachable(sb, k));
    }

    #[test]
    fn collections_propagate_entries() {
        let src = "from m import src, sink\nxs = [1, src(), 3]\nsink(xs)\n";
        let g = build(src);
        assert!(g.is_reachable(find(&g, "m.src()"), find(&g, "m.sink()")));
        let src2 = "from m import src, sink\nd = {'k': src()}\nsink(d)\n";
        let g2 = build(src2);
        assert!(g2.is_reachable(find(&g2, "m.src()"), find(&g2, "m.sink()")));
    }

    #[test]
    fn locals_receives_all_variables() {
        let src = "from m import src, sink\nx = src()\nsink(locals())\n";
        let g = build(src);
        assert!(g.is_reachable(find(&g, "m.src()"), find(&g, "m.sink()")));
    }

    #[test]
    fn field_aliasing_flow() {
        // Store through one alias, load through another.
        let src = "
from m import mk, src, sink
o = mk()
p = o
p.data = src()
sink(o.data)
";
        let g = build(src);
        assert!(g.is_reachable(find(&g, "m.src()"), find(&g, "m.sink()")));
    }

    #[test]
    fn subscript_store_flow() {
        let src = "
from m import mk, src, sink
d = mk()
d['k'] = src()
sink(d['k'])
";
        let g = build(src);
        assert!(g.is_reachable(find(&g, "m.src()"), find(&g, "m.sink()")));
    }

    #[test]
    fn fstring_propagates_parts() {
        let src = "from m import src, sink\nv = src()\nsink(f'<div>{v}</div>')\n";
        let g = build(src);
        assert!(g.is_reachable(find(&g, "m.src()"), find(&g, "m.sink()")));
    }

    #[test]
    fn comprehension_flow() {
        let src = "from m import src, sink\nxs = src()\nsink([x for x in xs])\n";
        let g = build(src);
        assert!(g.is_reachable(find(&g, "m.src()"), find(&g, "m.sink()")));
    }

    #[test]
    fn with_statement_binds_target() {
        let src = "from m import ctx, sink\nwith ctx() as f:\n    sink(f)\n";
        let g = build(src);
        assert!(g.is_reachable(find(&g, "m.ctx()"), find(&g, "m.sink()")));
    }

    #[test]
    fn tuple_unpacking() {
        let src = "from m import src, sink\na, b = src(), 1\nsink(a)\n";
        let g = build(src);
        assert!(g.is_reachable(find(&g, "m.src()"), find(&g, "m.sink()")));
    }

    #[test]
    fn keyword_arguments_flow() {
        let src = "from m import src, sink\nsink(data=src())\n";
        let g = build(src);
        assert!(g.is_reachable(find(&g, "m.src()"), find(&g, "m.sink()")));
    }

    #[test]
    fn no_flow_between_unrelated() {
        let src = "from m import a, b\nx = a()\ny = b()\n";
        let g = build(src);
        assert!(!g.is_reachable(find(&g, "m.a()"), find(&g, "m.b()")));
    }

    #[test]
    fn strong_update_cuts_stale_flow() {
        let src = "from m import a, b, sink\nx = a()\nx = b()\nsink(x)\n";
        let g = build(src);
        assert!(!g.is_reachable(find(&g, "m.a()"), find(&g, "m.sink()")));
        assert!(g.is_reachable(find(&g, "m.b()"), find(&g, "m.sink()")));
    }

    #[test]
    fn chained_local_representation() {
        let src = "from forms import LoginForm\nform = LoginForm()\nu = form.username.data\n";
        let g = build(src);
        let _ = find(&g, "forms.LoginForm().username.data");
    }

    #[test]
    fn graph_is_acyclic_on_typical_code() {
        let src = "
from m import f, g
x = f()
for i in range(3):
    x = g(x)
";
        let g = build(src);
        // Single-iteration loops keep the graph a DAG (§5.2).
        for (id, _) in g.events() {
            assert!(
                !g.reachable_from(id).contains(&id),
                "cycle through {:?}",
                g.event(id).rep()
            );
        }
    }

    #[test]
    fn lenient_build_skips_broken_statements() {
        // The malformed line must not open a bracket (implicit joining
        // would swallow the rest of the file into one logical line).
        let src = "from m import src, sink\nx = src()\nbroken = = 3\nsink(x)\n";
        let (g, errors) = build_source_lenient(src, FileId(0));
        assert_eq!(errors.len(), 1);
        assert!(g.is_reachable(find(&g, "m.src()"), find(&g, "m.sink()")));
    }

    #[test]
    fn timed_builds_match_untimed() {
        let src = "from m import src, sink\nx = src()\nsink(x)\n";
        let (g, t) = build_source_timed(src, FileId(0), None).expect("builds");
        let plain = build_source(src, FileId(0)).unwrap();
        assert_eq!(g.event_count(), plain.event_count());
        assert_eq!(g.edge_count(), plain.edge_count());
        // Durations are reported (possibly zero on coarse clocks), and the
        // lenient variant agrees.
        let mut total = BuildTimings::default();
        total.add(t);
        assert_eq!(total, t);
        let (g2, errors, _) =
            build_source_lenient_timed(src, FileId(0), None).expect("builds");
        assert!(errors.is_empty());
        assert_eq!(g2.event_count(), plain.event_count());
    }

    #[test]
    fn timed_build_honors_budget() {
        let tight = Budget { max_source_bytes: 4, ..Budget::unlimited() };
        let src = "x = 1\n";
        let err = build_source_timed(src, FileId(0), Some(&tight)).unwrap_err();
        assert!(matches!(err, BuildError::OverBudget(_)));
        let err =
            build_source_lenient_timed(src, FileId(0), Some(&tight)).unwrap_err();
        assert!(matches!(err, BudgetExceeded::SourceBytes { .. }));
    }

    #[test]
    fn events_count_paper_example_kinds() {
        let src = "from flask import request\nname = request.args.get('n')\n";
        let g = build(src);
        let kinds: Vec<EventKind> = g.events().map(|(_, e)| e.kind).collect();
        assert!(kinds.contains(&EventKind::Call));
        assert!(kinds.contains(&EventKind::ObjectRead));
    }
}
