//! Lowers Python ASTs into the language-neutral IR (§5).
//!
//! This is the Python half of the split builder: it owns every
//! Python-specific decision — environment threading, strong/weak updates,
//! single-iteration loops, per-call-site inlining, `locals()`, `self`/`cls`
//! receiver slots, import resolution — and records the resulting event and
//! op stream as a [`seldon_ir::IrProgram`]. The language-blind replay in
//! [`crate::irbuild`] then turns that stream into a `PropagationGraph`.
//!
//! The lowering contract (see DESIGN.md §3g): events are emitted in the
//! exact order the original builder created them, ops in the exact order
//! the original builder applied them, so replay reproduces event identity
//! and adjacency order byte-for-byte.

use crate::budget::{Budget, BudgetExceeded, BudgetMeter};
use crate::repr::{describe_expr, describe_syms, ReprCtx};
use seldon_intern::intern;
use seldon_ir::{
    FrontendError, IrArgPos, IrEdgeKind, IrEvent, IrEventKind, IrFunc, IrOp, IrParam,
    IrPendingCall, IrProgram,
};
use seldon_pyast::ast::*;
use seldon_pyast::visit::{self, Visitor};
use seldon_pyast::parse;
use std::collections::HashMap;

/// Maximum events tracked per variable binding; larger sets are truncated.
const MAX_FLOW_SET: usize = 8;

/// A set of event indices whose values may flow into a binding.
type FlowSet = Vec<u32>;

/// Lowers one parsed module into the language-neutral IR.
pub fn lower_module(module: &Module) -> IrProgram {
    let mut l = Lowerer::new();
    l.run(module);
    l.into_ir()
}

/// Lowers one parsed module under a resource [`Budget`].
///
/// # Errors
///
/// Returns [`BudgetExceeded`] if the walk trips a statement-count, depth,
/// or deadline limit; the partial IR is discarded.
pub fn lower_module_budgeted(
    module: &Module,
    budget: &Budget,
) -> Result<IrProgram, BudgetExceeded> {
    let mut l = Lowerer::new();
    l.meter = Some(BudgetMeter::new(budget.clone()));
    l.run(module);
    if let Some(e) = l.meter.take().and_then(BudgetMeter::into_tripped) {
        return Err(e);
    }
    Ok(l.into_ir())
}

/// Parses `source` and lowers it into the IR — the `seldon ir-dump`
/// backend for `.py` files.
///
/// # Errors
///
/// Returns a [`FrontendError`] if the source fails to lex or parse.
pub fn lower_source(source: &str) -> Result<IrProgram, FrontendError> {
    let module = parse(source)?;
    Ok(lower_module(&module))
}

/// Summary of a locally-defined function for call linking.
#[derive(Debug, Clone, Default)]
struct FuncSummary {
    /// `(name, param event)` in declaration order.
    params: Vec<(String, u32)>,
    /// Events flowing into `return` statements.
    returns: Vec<u32>,
    /// The function body and its lexical context, kept for per-call-site
    /// inlining (§5.2: "we inline methods whose body can be statically
    /// determined").
    def: Option<FunctionDef>,
    class_name: Option<String>,
    base_class: Option<String>,
}

/// Per-function analysis scope.
struct Scope {
    ctx: ReprCtx,
    env: HashMap<String, FlowSet>,
    returns: Vec<u32>,
    /// Unique id for qualifying points-to variable names.
    scope_id: u32,
}

impl Scope {
    fn merge_env(&mut self, other: HashMap<String, FlowSet>) {
        for (k, v) in other {
            let slot = self.env.entry(k).or_default();
            for e in v {
                if !slot.contains(&e) {
                    slot.push(e);
                }
            }
            slot.truncate(MAX_FLOW_SET);
        }
    }
}

struct Lowerer {
    ir: IrProgram,
    imports: HashMap<String, Vec<String>>,
    /// Named points-to variables, memoized by `s{scope}::{name}` exactly as
    /// the pre-split builder interned them in its Andersen instance.
    var_names: HashMap<String, u32>,
    funcs: HashMap<String, FuncSummary>,
    /// Qualified names in first-definition order, for stable IR emission.
    func_order: Vec<String>,
    /// Names currently being inlined (recursion guard) — doubles as the
    /// inline-depth bound.
    inline_stack: Vec<String>,
    next_scope: u32,
    /// Resource accounting; `None` lowers without limits.
    pub(crate) meter: Option<BudgetMeter>,
    /// Current statement-nesting depth, fed to the meter.
    stmt_depth: usize,
}

impl Lowerer {
    fn new() -> Self {
        Lowerer {
            ir: IrProgram::default(),
            imports: HashMap::new(),
            var_names: HashMap::new(),
            funcs: HashMap::new(),
            func_order: Vec::new(),
            inline_stack: Vec::new(),
            next_scope: 0,
            meter: None,
            stmt_depth: 0,
        }
    }

    fn run(&mut self, module: &Module) {
        self.collect_imports(module);
        let mut scope = self.new_scope(None, None, None, &[]);
        for stmt in &module.body {
            self.walk_stmt(stmt, &mut scope);
        }
    }

    fn into_ir(mut self) -> IrProgram {
        for name in &self.func_order {
            let s = &self.funcs[name];
            self.ir.funcs.push(IrFunc {
                qualified: name.clone(),
                params: s
                    .params
                    .iter()
                    .map(|(n, ev)| IrParam {
                        name: n.clone(),
                        event: *ev,
                        implicit: n == "self" || n == "cls",
                    })
                    .collect(),
                returns: s.returns.clone(),
            });
        }
        self.ir
    }

    // ----- IR emission helpers ----------------------------------------------

    fn add_event(&mut self, kind: IrEventKind, reps: Vec<seldon_intern::Symbol>, span: seldon_ir::Span) -> u32 {
        let id = self.ir.events.len() as u32;
        self.ir.events.push(IrEvent { kind, reps, span });
        id
    }

    fn add_edge(&mut self, from: u32, to: u32) {
        self.ir.ops.push(IrOp::Edge { from, to, kind: IrEdgeKind::Argument });
    }

    fn add_edge_recv(&mut self, from: u32, to: u32) {
        self.ir.ops.push(IrOp::Edge { from, to, kind: IrEdgeKind::Receiver });
    }

    fn set_arg_position(&mut self, from: u32, to: u32, pos: IrArgPos) {
        self.ir.ops.push(IrOp::ArgPos { from, to, pos });
    }

    /// Interns a named points-to variable, mirroring `Andersen::var`.
    fn pt_var(&mut self, scope: &Scope, name: &str) -> u32 {
        let key = format!("s{}::{}", scope.scope_id, name);
        if let Some(&v) = self.var_names.get(&key) {
            return v;
        }
        let v = self.fresh_var();
        self.var_names.insert(key, v);
        v
    }

    /// Allocates an anonymous points-to variable, mirroring `Andersen::fresh`.
    fn fresh_var(&mut self) -> u32 {
        let v = self.ir.var_count;
        self.ir.var_count += 1;
        v
    }

    fn collect_imports(&mut self, module: &Module) {
        struct ImportCollector<'b> {
            imports: &'b mut HashMap<String, Vec<String>>,
        }
        impl Visitor for ImportCollector<'_> {
            fn visit_stmt(&mut self, stmt: &Stmt) {
                match &stmt.kind {
                    StmtKind::Import(aliases) => {
                        for a in aliases {
                            match &a.asname {
                                Some(alias) => {
                                    self.imports.insert(alias.clone(), a.name.clone());
                                }
                                None => {
                                    // `import a.b` binds top-level `a`.
                                    if let Some(first) = a.name.first() {
                                        self.imports
                                            .insert(first.clone(), vec![first.clone()]);
                                    }
                                }
                            }
                        }
                    }
                    StmtKind::ImportFrom { module, names, .. } => {
                        for a in names {
                            let seg = match a.name.first() {
                                Some(s) if s != "*" => s.clone(),
                                _ => continue,
                            };
                            let mut path = module.clone();
                            path.push(seg.clone());
                            let bound = a.asname.clone().unwrap_or(seg);
                            self.imports.insert(bound, path);
                        }
                    }
                    _ => visit::walk_stmt(self, stmt),
                }
            }
        }
        let mut c = ImportCollector { imports: &mut self.imports };
        visit::walk_module(&mut c, module);
    }

    fn new_scope(
        &mut self,
        class_name: Option<String>,
        base_class: Option<String>,
        func_name: Option<String>,
        params: &[String],
    ) -> Scope {
        let ctx = ReprCtx {
            imports: self.imports.clone(),
            class_name,
            base_class,
            func_name,
            params: params.to_vec(),
            locals: HashMap::new(),
        };
        let scope_id = self.next_scope;
        self.next_scope += 1;
        Scope { ctx, env: HashMap::new(), returns: Vec::new(), scope_id }
    }

    // ----- statements -------------------------------------------------------

    /// Walks one statement under budget accounting. Once a budget trips,
    /// the walk unwinds cooperatively: every further statement is a no-op,
    /// so the only cost left is popping the recursion already on the stack.
    fn walk_stmt(&mut self, stmt: &Stmt, sc: &mut Scope) {
        if let Some(meter) = &mut self.meter {
            if !meter.tick_statement(self.stmt_depth) {
                return;
            }
        }
        self.stmt_depth += 1;
        self.walk_stmt_inner(stmt, sc);
        self.stmt_depth -= 1;
    }

    fn walk_stmt_inner(&mut self, stmt: &Stmt, sc: &mut Scope) {
        match &stmt.kind {
            StmtKind::Import(_) | StmtKind::ImportFrom { .. } => {}
            StmtKind::FunctionDef(def) => self.walk_function(def, sc, None, None),
            StmtKind::ClassDef(def) => self.walk_class(def, sc),
            StmtKind::Return(value) => {
                if let Some(v) = value {
                    let flows = self.eval(v, sc);
                    sc.returns.extend(flows);
                }
            }
            StmtKind::Assign { targets, value } => {
                let flows = self.eval(value, sc);
                let variants = describe_expr(value, &sc.ctx);
                for t in targets {
                    self.assign_to(t, &flows, &variants, value, sc);
                }
            }
            StmtKind::AugAssign { target, value, .. } => {
                let mut flows = self.eval(value, sc);
                if let ExprKind::Name(n) = &target.kind {
                    let slot = sc.env.entry(n.clone()).or_default();
                    for e in flows.drain(..) {
                        if !slot.contains(&e) {
                            slot.push(e);
                        }
                    }
                    slot.truncate(MAX_FLOW_SET);
                } else {
                    self.assign_to(target, &flows, &[], value, sc);
                }
            }
            StmtKind::AnnAssign { target, value, .. } => {
                if let Some(v) = value {
                    let flows = self.eval(v, sc);
                    let variants = describe_expr(v, &sc.ctx);
                    self.assign_to(target, &flows, &variants, v, sc);
                }
            }
            StmtKind::For { target, iter, body, orelse } => {
                let flows = self.eval(iter, sc);
                self.bind_pattern(target, &flows, sc);
                let saved = sc.env.clone();
                for s in body {
                    self.walk_stmt(s, sc);
                }
                for s in orelse {
                    self.walk_stmt(s, sc);
                }
                sc.merge_env(saved);
            }
            StmtKind::While { test, body, orelse } => {
                self.eval(test, sc);
                let saved = sc.env.clone();
                for s in body {
                    self.walk_stmt(s, sc);
                }
                for s in orelse {
                    self.walk_stmt(s, sc);
                }
                sc.merge_env(saved);
            }
            StmtKind::If { test, body, orelse } => {
                self.eval(test, sc);
                let before = sc.env.clone();
                for s in body {
                    self.walk_stmt(s, sc);
                }
                let after_then = std::mem::replace(&mut sc.env, before);
                for s in orelse {
                    self.walk_stmt(s, sc);
                }
                sc.merge_env(after_then);
            }
            StmtKind::With { items, body } => {
                for item in items {
                    let flows = self.eval(&item.context, sc);
                    if let Some(t) = &item.target {
                        self.bind_pattern(t, &flows, sc);
                    }
                }
                for s in body {
                    self.walk_stmt(s, sc);
                }
            }
            StmtKind::Raise { exc, cause } => {
                if let Some(e) = exc {
                    self.eval(e, sc);
                }
                if let Some(e) = cause {
                    self.eval(e, sc);
                }
            }
            StmtKind::Try { body, handlers, orelse, finalbody } => {
                for s in body {
                    self.walk_stmt(s, sc);
                }
                for h in handlers {
                    if let Some(n) = &h.name {
                        sc.env.insert(n.clone(), Vec::new());
                    }
                    for s in &h.body {
                        self.walk_stmt(s, sc);
                    }
                }
                for s in orelse.iter().chain(finalbody) {
                    self.walk_stmt(s, sc);
                }
            }
            StmtKind::Assert { test, msg } => {
                self.eval(test, sc);
                if let Some(m) = msg {
                    self.eval(m, sc);
                }
            }
            StmtKind::Expr(e) => {
                self.eval(e, sc);
            }
            StmtKind::Delete(targets) => {
                for t in targets {
                    self.eval(t, sc);
                }
            }
            StmtKind::Global(_)
            | StmtKind::Nonlocal(_)
            | StmtKind::Pass
            | StmtKind::Break
            | StmtKind::Continue => {}
        }
    }

    fn walk_function(
        &mut self,
        def: &FunctionDef,
        outer: &mut Scope,
        class_name: Option<&str>,
        base_class: Option<&str>,
    ) {
        // Decorators and defaults evaluate in the enclosing scope.
        for d in &def.decorators {
            self.eval(d, outer);
        }
        for p in &def.params {
            if let Some(d) = &p.default {
                self.eval(d, outer);
            }
        }
        let param_names: Vec<String> = def
            .params
            .iter()
            .filter(|p| p.kind != ParamKind::KwOnlyMarker)
            .map(|p| p.name.clone())
            .collect();
        let mut scope = self.new_scope(
            class_name.map(str::to_string),
            base_class.map(str::to_string),
            Some(def.name.clone()),
            &param_names,
        );
        // Free variables see enclosing (module/class) bindings.
        scope.env = outer.env.clone();
        scope.ctx.locals = outer.ctx.locals.clone();
        // Formal parameters are source-candidate events (§5.1). The bare
        // variable name is deliberately not used as a representation for the
        // parameter event itself — `self` would conflate the whole corpus —
        // but parameter *uses* in expressions still back off to it.
        let mut summary = FuncSummary::default();
        for p in &def.params {
            if p.kind == ParamKind::KwOnlyMarker {
                continue;
            }
            let mut reps = Vec::new();
            if let Some(class) = class_name {
                reps.push(intern(&format!("{class}::{}(param {})", def.name, p.name)));
                if let Some(base) = base_class {
                    reps.push(intern(&format!("{base}::{}(param {})", def.name, p.name)));
                }
            }
            reps.push(intern(&format!("{}(param {})", def.name, p.name)));
            let ev = self.add_event(IrEventKind::ParamRead, reps, p.span);
            scope.env.insert(p.name.clone(), vec![ev]);
            summary.params.push((p.name.clone(), ev));
        }
        for s in &def.body {
            self.walk_stmt(s, &mut scope);
        }
        summary.returns = scope.returns.clone();
        summary.def = Some(def.clone());
        summary.class_name = class_name.map(str::to_string);
        summary.base_class = base_class.map(str::to_string);
        let qualified = match class_name {
            Some(c) => format!("{c}::{}", def.name),
            None => def.name.clone(),
        };
        if self.funcs.insert(qualified.clone(), summary).is_none() {
            self.func_order.push(qualified);
        }
    }

    fn walk_class(&mut self, def: &ClassDef, outer: &mut Scope) {
        for d in &def.decorators {
            self.eval(d, outer);
        }
        let base_class = def.bases.first().and_then(|b| {
            let v = describe_expr(b, &outer.ctx);
            v.into_iter().next()
        });
        for b in &def.bases {
            self.eval(b, outer);
        }
        for k in &def.keywords {
            self.eval(&k.value, outer);
        }
        let mut class_scope = self.new_scope(None, None, None, &[]);
        for s in &def.body {
            match &s.kind {
                StmtKind::FunctionDef(f) => {
                    self.walk_function(f, &mut class_scope, Some(&def.name), base_class.as_deref())
                }
                other => {
                    let _ = other;
                    self.walk_stmt(s, &mut class_scope);
                }
            }
        }
    }

    // ----- assignment targets ------------------------------------------------

    fn assign_to(
        &mut self,
        target: &Expr,
        flows: &FlowSet,
        variants: &[String],
        value: &Expr,
        sc: &mut Scope,
    ) {
        match &target.kind {
            ExprKind::Name(n) => {
                sc.env.insert(n.clone(), flows.clone());
                if variants.is_empty() {
                    sc.ctx.locals.remove(n);
                } else {
                    sc.ctx.locals.insert(n.clone(), variants.to_vec());
                }
                // Points-to: the assigned events are allocation sites.
                let var = self.pt_var(sc, n);
                for &e in flows {
                    self.ir.ops.push(IrOp::Alloc { var, site: e });
                }
                if let ExprKind::Name(m) = &value.kind {
                    let from = self.pt_var(sc, m);
                    self.ir.ops.push(IrOp::Copy { from, to: var });
                }
            }
            ExprKind::Tuple(elems) | ExprKind::List(elems) => {
                for e in elems {
                    self.assign_to(e, flows, &[], value, sc);
                }
            }
            ExprKind::Starred(inner) => self.assign_to(inner, flows, &[], value, sc),
            ExprKind::Attribute { value: base, attr } => {
                self.store_through(base, attr, flows, sc);
            }
            ExprKind::Subscript { value: base, index } => {
                let field = index_field_name(index);
                self.store_through(base, &field, flows, sc);
            }
            _ => {}
        }
    }

    /// Handles `base.field = flows`: a points-to store plus a weak update of
    /// the base binding so environment flow still observes the taint.
    fn store_through(&mut self, base: &Expr, field: &str, flows: &FlowSet, sc: &mut Scope) {
        self.eval(base, sc);
        if let ExprKind::Name(n) = &base.kind {
            let base_var = self.pt_var(sc, n);
            let value_var = self.fresh_var();
            for &e in flows {
                self.ir.ops.push(IrOp::Alloc { var: value_var, site: e });
            }
            self.ir.ops.push(IrOp::Store {
                base: base_var,
                field: field.to_string(),
                value: value_var,
            });
            let slot = sc.env.entry(n.clone()).or_default();
            for &e in flows {
                if !slot.contains(&e) {
                    slot.push(e);
                }
            }
            slot.truncate(MAX_FLOW_SET);
        }
    }

    fn bind_pattern(&mut self, target: &Expr, flows: &FlowSet, sc: &mut Scope) {
        match &target.kind {
            ExprKind::Name(n) => {
                sc.env.insert(n.clone(), flows.clone());
                sc.ctx.locals.remove(n);
            }
            ExprKind::Tuple(elems) | ExprKind::List(elems) => {
                for e in elems {
                    self.bind_pattern(e, flows, sc);
                }
            }
            ExprKind::Starred(inner) => self.bind_pattern(inner, flows, sc),
            _ => {}
        }
    }

    // ----- expressions --------------------------------------------------------

    fn eval(&mut self, expr: &Expr, sc: &mut Scope) -> FlowSet {
        match &expr.kind {
            ExprKind::Name(n) => sc.env.get(n).cloned().unwrap_or_default(),
            ExprKind::Number(_)
            | ExprKind::Str(_)
            | ExprKind::Bytes(_)
            | ExprKind::Bool(_)
            | ExprKind::NoneLit
            | ExprKind::EllipsisLit => Vec::new(),
            ExprKind::FString { parts, .. } => {
                let mut out = Vec::new();
                for p in parts {
                    union_into(&mut out, self.eval(p, sc));
                }
                out
            }
            ExprKind::Attribute { value, attr } => {
                let base_flows = self.eval(value, sc);
                self.read_event(expr, value, attr, base_flows, sc)
            }
            ExprKind::Subscript { value, index } => {
                let mut base_flows = self.eval(value, sc);
                union_into(&mut base_flows, self.eval(index, sc));
                let field = index_field_name(index);
                self.read_event(expr, value, &field, base_flows, sc)
            }
            ExprKind::Slice { lower, upper, step } => {
                let mut out = Vec::new();
                for part in [lower, upper, step].into_iter().flatten() {
                    union_into(&mut out, self.eval(part, sc));
                }
                out
            }
            ExprKind::Call { func, args, keywords } => self.eval_call(expr, func, args, keywords, sc),
            ExprKind::BinOp { left, right, .. } => {
                let mut out = self.eval(left, sc);
                union_into(&mut out, self.eval(right, sc));
                out
            }
            ExprKind::UnaryOp { operand, .. } => self.eval(operand, sc),
            ExprKind::BoolOp { values, .. } => {
                let mut out = Vec::new();
                for v in values {
                    union_into(&mut out, self.eval(v, sc));
                }
                out
            }
            ExprKind::Compare { left, comparators, .. } => {
                let mut out = self.eval(left, sc);
                for c in comparators {
                    union_into(&mut out, self.eval(c, sc));
                }
                out
            }
            ExprKind::IfExp { test, body, orelse } => {
                self.eval(test, sc);
                let mut out = self.eval(body, sc);
                union_into(&mut out, self.eval(orelse, sc));
                out
            }
            ExprKind::Lambda { params, body } => {
                for p in params {
                    if let Some(d) = &p.default {
                        self.eval(d, sc);
                    }
                }
                self.eval(body, sc);
                Vec::new()
            }
            ExprKind::Tuple(elems) | ExprKind::List(elems) | ExprKind::Set(elems) => {
                // Collections flow their entries to the whole value (§5.2).
                let mut out = Vec::new();
                for e in elems {
                    union_into(&mut out, self.eval(e, sc));
                }
                out
            }
            ExprKind::Dict { keys, values } => {
                let mut out = Vec::new();
                for k in keys.iter().flatten() {
                    union_into(&mut out, self.eval(k, sc));
                }
                for v in values {
                    union_into(&mut out, self.eval(v, sc));
                }
                out
            }
            ExprKind::Comp { element, value, generators, .. } => {
                let saved = sc.env.clone();
                for g in generators {
                    let flows = self.eval(&g.iter, sc);
                    self.bind_pattern(&g.target, &flows, sc);
                    for cond in &g.ifs {
                        self.eval(cond, sc);
                    }
                }
                let mut out = self.eval(element, sc);
                if let Some(v) = value {
                    union_into(&mut out, self.eval(v, sc));
                }
                sc.env = saved;
                out
            }
            ExprKind::Yield { value, .. } => match value {
                Some(v) => self.eval(v, sc),
                None => Vec::new(),
            },
            ExprKind::Await(inner) | ExprKind::Starred(inner) => self.eval(inner, sc),
            ExprKind::NamedExpr { target, value } => {
                let flows = self.eval(value, sc);
                if let ExprKind::Name(n) = &target.kind {
                    sc.env.insert(n.clone(), flows.clone());
                }
                flows
            }
        }
    }

    /// Creates an object-read event for `expr` (an attribute or subscript
    /// load of `field` on `base`). Falls back to pass-through flow when the
    /// expression has no stable representation.
    fn read_event(
        &mut self,
        expr: &Expr,
        base: &Expr,
        field: &str,
        base_flows: FlowSet,
        sc: &mut Scope,
    ) -> FlowSet {
        let reps = describe_syms(expr, &sc.ctx);
        if reps.is_empty() {
            return base_flows;
        }
        let ev = self.add_event(IrEventKind::ObjectRead, reps, expr.span);
        // The base of a read is the same object chain: receiver flow.
        for &f in &base_flows {
            self.add_edge_recv(f, ev);
        }
        // Field-aliasing flow: register a points-to load.
        if let ExprKind::Name(n) = &base.kind {
            let base_var = self.pt_var(sc, n);
            let out = self.fresh_var();
            self.ir.ops.push(IrOp::Load {
                base: base_var,
                field: field.to_string(),
                target: out,
            });
            self.ir.ops.push(IrOp::PtLoad { event: ev, var: out });
        }
        vec![ev]
    }

    fn eval_call(
        &mut self,
        expr: &Expr,
        func: &Expr,
        args: &[Expr],
        keywords: &[Keyword],
        sc: &mut Scope,
    ) -> FlowSet {
        // Receiver/base flows: for `x.m(...)` the object chain flows into
        // the call event (Fig. 2b: `request.files['f']` → `.save()`).
        let recv_flows = match &func.kind {
            ExprKind::Attribute { value, .. } => self.eval(value, sc),
            ExprKind::Name(n) => sc.env.get(n).cloned().unwrap_or_default(),
            other => {
                let _ = other;
                self.eval(func, sc)
            }
        };
        let arg_flows: Vec<FlowSet> = args.iter().map(|a| self.eval(a, sc)).collect();
        let kwarg_flows: Vec<(String, FlowSet)> = keywords
            .iter()
            .map(|k| (k.name.clone().unwrap_or_default(), self.eval(&k.value, sc)))
            .collect();

        let reps = describe_syms(expr, &sc.ctx);
        let call_event = if reps.is_empty() {
            None
        } else {
            Some(self.add_event(IrEventKind::Call, reps, expr.span))
        };

        if let Some(ev) = call_event {
            // The receiver chain is same-object flow; arguments are not.
            for &f in &recv_flows {
                self.add_edge_recv(f, ev);
                self.set_arg_position(f, ev, IrArgPos::Receiver);
            }
            for (i, flows) in arg_flows.iter().enumerate() {
                for &f in flows {
                    self.add_edge(f, ev);
                    self.set_arg_position(f, ev, IrArgPos::Positional(i.min(255) as u8));
                }
            }
            for (name, flows) in &kwarg_flows {
                for &f in flows {
                    self.add_edge(f, ev);
                    self.set_arg_position(f, ev, IrArgPos::Keyword(name.clone()));
                }
            }
            // `locals()` receives every local variable (§5.2).
            if matches!(&func.kind, ExprKind::Name(n) if n == "locals") {
                let all: Vec<u32> = sc.env.values().flatten().copied().collect();
                for f in all {
                    self.add_edge(f, ev);
                }
            }
        }

        // Link calls to locally-defined functions / same-class methods.
        let qualified = match &func.kind {
            ExprKind::Name(n) => Some(n.clone()),
            ExprKind::Attribute { value, attr } => match (&value.kind, &sc.ctx.class_name) {
                (ExprKind::Name(recv), Some(class)) if recv == "self" => {
                    Some(format!("{class}::{attr}"))
                }
                _ => None,
            },
            _ => None,
        };
        if let Some(q) = qualified {
            let callee = if self.inline_stack.len() < 3
                && !self.inline_stack.iter().any(|n| n == &q)
            {
                // Clone-and-take in one step so inlinability and the body
                // can't disagree.
                self.funcs
                    .get(&q)
                    .cloned()
                    .and_then(|mut info| info.def.take().map(|def| (info, def)))
            } else {
                None
            };
            if let Some((info, def)) = callee {
                // Per-call-site inlining (§5.2): re-analyze the callee body
                // with the parameters bound to this call's argument flows.
                // This is context-sensitive — taint from one call site
                // cannot leak into another.
                let returns =
                    self.inline_call(&q, &def, &info, &arg_flows, &kwarg_flows);
                match call_event {
                    Some(ev) => {
                        for r in returns {
                            self.add_edge(r, ev);
                        }
                    }
                    None => {
                        // No call event (unrepresentable callee): surface
                        // the returns as the call's flow via pending = none.
                        // Handled by the caller through recv/arg union; the
                        // returns are lost only in this rare case.
                    }
                }
            } else {
                self.ir.pending.push(IrPendingCall {
                    qualified: q,
                    arg_flows: arg_flows.clone(),
                    kwarg_flows: kwarg_flows.clone(),
                    call_event,
                });
            }
        }

        match call_event {
            Some(ev) => vec![ev],
            None => {
                // Pass flow through opaque calls.
                let mut out = recv_flows;
                for flows in arg_flows {
                    union_into(&mut out, flows);
                }
                for (_, flows) in kwarg_flows {
                    union_into(&mut out, flows);
                }
                out
            }
        }
    }

    /// Re-analyzes `def`'s body with parameters bound to the call's
    /// argument flows, returning the events that flow into its `return`s.
    fn inline_call(
        &mut self,
        qualified: &str,
        def: &FunctionDef,
        info: &FuncSummary,
        arg_flows: &[FlowSet],
        kwarg_flows: &[(String, FlowSet)],
    ) -> FlowSet {
        let param_names: Vec<String> = def
            .params
            .iter()
            .filter(|p| p.kind != ParamKind::KwOnlyMarker)
            .map(|p| p.name.clone())
            .collect();
        let mut scope = self.new_scope(
            info.class_name.clone(),
            info.base_class.clone(),
            Some(def.name.clone()),
            &param_names,
        );
        // Bind positional arguments (skipping a `self`/`cls` receiver slot
        // for methods) and keyword arguments by name.
        let positional: Vec<&String> = param_names
            .iter()
            .filter(|n| n.as_str() != "self" && n.as_str() != "cls")
            .collect();
        for (i, flows) in arg_flows.iter().enumerate() {
            if let Some(name) = positional.get(i) {
                scope.env.insert((*name).clone(), flows.clone());
            }
        }
        for (name, flows) in kwarg_flows {
            if param_names.iter().any(|p| p == name) {
                scope.env.insert(name.clone(), flows.clone());
            }
        }
        self.inline_stack.push(qualified.to_string());
        for stmt in &def.body {
            self.walk_stmt(stmt, &mut scope);
        }
        self.inline_stack.pop();
        scope.returns
    }
}

fn union_into(dst: &mut FlowSet, src: FlowSet) {
    for e in src {
        if !dst.contains(&e) {
            dst.push(e);
        }
    }
    dst.truncate(MAX_FLOW_SET);
}

/// Field name used for subscript loads/stores, matching the representation
/// rendering (`['key']`, `[0]`, `[]`).
fn index_field_name(index: &Expr) -> String {
    match &index.kind {
        ExprKind::Str(s) => format!("['{s}']"),
        ExprKind::Number(n) => format!("[{n}]"),
        _ => "[]".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_emits_events_in_walk_order() {
        let ir = lower_source("from m import f\nx = f(1)\ny = x.data\n").expect("lowers");
        assert_eq!(ir.events.len(), 2);
        assert_eq!(ir.events[0].kind, IrEventKind::Call);
        assert_eq!(ir.events[1].kind, IrEventKind::ObjectRead);
        // The read is receiver-fed by the call.
        assert!(ir.ops.iter().any(|op| matches!(
            op,
            IrOp::Edge { from: 0, to: 1, kind: IrEdgeKind::Receiver }
        )));
    }

    #[test]
    fn lower_records_function_summaries() {
        let ir = lower_source("def h(self, v):\n    return v\n").expect("lowers");
        assert_eq!(ir.funcs.len(), 1);
        let f = &ir.funcs[0];
        assert_eq!(f.qualified, "h");
        assert_eq!(f.params.len(), 2);
        assert!(f.params[0].implicit, "self is an implicit receiver slot");
        assert!(!f.params[1].implicit);
        assert_eq!(f.returns, vec![f.params[1].event]);
    }

    #[test]
    fn lower_budgeted_trips() {
        let module = parse("x = 1\ny = 2\nz = 3\n").unwrap();
        let tight = Budget { max_statements: 1, ..Budget::unlimited() };
        let err = lower_module_budgeted(&module, &tight).unwrap_err();
        assert!(matches!(err, BudgetExceeded::Statements { .. }));
    }

    #[test]
    fn dump_round_trips_through_display() {
        let ir = lower_source("from m import f\nsink = f(a=1)\n").expect("lowers");
        let d = ir.dump();
        assert!(d.contains("call"), "dump lists the call event: {d}");
    }
}
