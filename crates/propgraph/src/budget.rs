//! Per-file resource budgets for graph extraction.
//!
//! Arbitrary repository files can be pathological — megabytes of minified
//! source, thousands of nested blocks, or simply enormous statement counts
//! — and the paper's big-code setting (§5, §7) requires each file to cost
//! *bounded* work. A [`Budget`] caps the input size up front and is
//! checked cooperatively inside the builder as statements are walked, so a
//! pathological file fails fast with a typed [`BudgetExceeded`] instead of
//! hanging the corpus run.

use std::fmt;
use std::time::{Duration, Instant};

/// Resource limits applied to one file's extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Budget {
    /// Maximum source size in bytes, checked before parsing.
    pub max_source_bytes: usize,
    /// Maximum number of statements walked (inlining re-walks count too).
    pub max_statements: usize,
    /// Maximum statement nesting depth.
    pub max_depth: usize,
    /// Per-file wall-clock deadline, checked cooperatively while walking.
    pub max_wall: Option<Duration>,
}

impl Default for Budget {
    fn default() -> Self {
        // Generous enough that no legitimate source file trips them; tight
        // enough that adversarial input costs bounded work.
        Budget {
            max_source_bytes: 4 << 20,
            max_statements: 200_000,
            max_depth: 64,
            max_wall: Some(Duration::from_secs(10)),
        }
    }
}

impl Budget {
    /// A budget with no limits (never trips).
    pub fn unlimited() -> Self {
        Budget {
            max_source_bytes: usize::MAX,
            max_statements: usize::MAX,
            max_depth: usize::MAX,
            max_wall: None,
        }
    }
}

/// Which budget dimension a file exceeded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BudgetExceeded {
    /// Source text larger than `max_source_bytes`.
    SourceBytes {
        /// The configured limit.
        limit: usize,
        /// The file's actual size.
        actual: usize,
    },
    /// More statements walked than `max_statements`.
    Statements {
        /// The configured limit.
        limit: usize,
    },
    /// Nesting deeper than `max_depth`.
    Depth {
        /// The configured limit.
        limit: usize,
    },
    /// The wall-clock deadline elapsed.
    Deadline {
        /// The configured limit.
        limit: Duration,
    },
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetExceeded::SourceBytes { limit, actual } => {
                write!(f, "source size {actual} bytes exceeds budget of {limit} bytes")
            }
            BudgetExceeded::Statements { limit } => {
                write!(f, "statement count exceeds budget of {limit}")
            }
            BudgetExceeded::Depth { limit } => {
                write!(f, "nesting depth exceeds budget of {limit}")
            }
            BudgetExceeded::Deadline { limit } => {
                write!(f, "extraction exceeded deadline of {limit:?}")
            }
        }
    }
}

impl std::error::Error for BudgetExceeded {}

/// How often the cooperative walk re-reads the clock.
const DEADLINE_CHECK_INTERVAL: usize = 256;

/// Live accounting against a [`Budget`] during one file's walk.
///
/// Public so every frontend's lowering pass (Python here, `seldon-jsfront`
/// elsewhere) meters statements against the same budget semantics.
#[derive(Debug)]
pub struct BudgetMeter {
    budget: Budget,
    started: Instant,
    statements: usize,
    tripped: Option<BudgetExceeded>,
}

impl BudgetMeter {
    /// Starts metering against `budget` (the wall clock starts now).
    pub fn new(budget: Budget) -> Self {
        BudgetMeter { budget, started: Instant::now(), statements: 0, tripped: None }
    }

    /// Records one statement at `depth`; returns `false` once any limit is
    /// exceeded (callers then unwind cooperatively).
    pub fn tick_statement(&mut self, depth: usize) -> bool {
        if self.tripped.is_some() {
            return false;
        }
        self.statements += 1;
        if self.statements > self.budget.max_statements {
            self.tripped =
                Some(BudgetExceeded::Statements { limit: self.budget.max_statements });
            return false;
        }
        if depth > self.budget.max_depth {
            self.tripped = Some(BudgetExceeded::Depth { limit: self.budget.max_depth });
            return false;
        }
        if let Some(max_wall) = self.budget.max_wall {
            if self.statements.is_multiple_of(DEADLINE_CHECK_INTERVAL)
                && self.started.elapsed() > max_wall
            {
                self.tripped = Some(BudgetExceeded::Deadline { limit: max_wall });
                return false;
            }
        }
        true
    }

    #[cfg(test)]
    pub(crate) fn tripped(&self) -> Option<&BudgetExceeded> {
        self.tripped.as_ref()
    }

    /// Consumes the meter, returning the limit that tripped, if any.
    pub fn into_tripped(self) -> Option<BudgetExceeded> {
        self.tripped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let mut m = BudgetMeter::new(Budget::unlimited());
        for _ in 0..10_000 {
            assert!(m.tick_statement(5_000));
        }
        assert!(m.tripped().is_none());
    }

    #[test]
    fn statement_limit_trips() {
        let mut m = BudgetMeter::new(Budget { max_statements: 10, ..Budget::unlimited() });
        for _ in 0..10 {
            assert!(m.tick_statement(0));
        }
        assert!(!m.tick_statement(0));
        assert!(matches!(m.tripped(), Some(BudgetExceeded::Statements { limit: 10 })));
        // Stays tripped.
        assert!(!m.tick_statement(0));
    }

    #[test]
    fn depth_limit_trips() {
        let mut m = BudgetMeter::new(Budget { max_depth: 3, ..Budget::unlimited() });
        assert!(m.tick_statement(3));
        assert!(!m.tick_statement(4));
        assert!(matches!(m.tripped(), Some(BudgetExceeded::Depth { limit: 3 })));
    }

    #[test]
    fn deadline_trips() {
        let mut m = BudgetMeter::new(Budget {
            max_wall: Some(Duration::ZERO),
            ..Budget::unlimited()
        });
        let mut tripped = false;
        // The clock is only consulted every DEADLINE_CHECK_INTERVAL ticks.
        for _ in 0..=DEADLINE_CHECK_INTERVAL {
            if !m.tick_statement(0) {
                tripped = true;
                break;
            }
        }
        assert!(tripped);
        assert!(matches!(m.tripped(), Some(BudgetExceeded::Deadline { .. })));
    }

    #[test]
    fn display_messages() {
        let e = BudgetExceeded::SourceBytes { limit: 10, actual: 20 };
        assert_eq!(e.to_string(), "source size 20 bytes exceeds budget of 10 bytes");
        assert!(BudgetExceeded::Statements { limit: 5 }.to_string().contains('5'));
        assert!(BudgetExceeded::Depth { limit: 7 }.to_string().contains('7'));
        assert!(BudgetExceeded::Deadline { limit: Duration::from_secs(1) }
            .to_string()
            .contains("deadline"));
    }
}
