//! Graphviz DOT export of propagation graphs, for debugging and
//! documentation (the paper's Fig. 2b rendered mechanically).

use crate::event::EventKind;
use crate::graph::{EdgeKind, PropagationGraph};
use seldon_specs::{Role, RoleSet};
use std::collections::HashMap;
use std::fmt::Write;

/// Renders `graph` as DOT. `roles` optionally colors events by role (blue
/// source, green sanitizer, red sink, as in the paper's figures).
pub fn to_dot(graph: &PropagationGraph, roles: &HashMap<crate::EventId, RoleSet>) -> String {
    let mut out = String::from("digraph propagation {\n  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n");
    for (id, event) in graph.events() {
        let shape = match event.kind {
            EventKind::Call => "box",
            EventKind::ObjectRead => "ellipse",
            EventKind::ParamRead => "diamond",
        };
        let color = roles
            .get(&id)
            .map(|r| {
                if r.contains(Role::Source) {
                    "lightblue"
                } else if r.contains(Role::Sanitizer) {
                    "lightgreen"
                } else if r.contains(Role::Sink) {
                    "lightcoral"
                } else {
                    "white"
                }
            })
            .unwrap_or("white");
        let _ = writeln!(
            out,
            "  e{} [label=\"{}\", shape={shape}, style=filled, fillcolor={color}];",
            id.0,
            event.rep().replace('"', "\\\"")
        );
    }
    for (from, to) in graph.edges() {
        let style = match graph.edge_kind(from, to) {
            Some(EdgeKind::Receiver) => " [style=dashed]",
            _ => "",
        };
        let _ = writeln!(out, "  e{} -> e{}{style};", from.0, to.0);
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_source;
    use crate::event::FileId;

    #[test]
    fn dot_contains_nodes_and_edges() {
        let g = build_source(
            "from m import f, g\nx = f()\ng(x)\n",
            FileId(0),
        )
        .unwrap();
        let dot = to_dot(&g, &HashMap::new());
        assert!(dot.starts_with("digraph propagation {"));
        assert!(dot.contains("m.f()"));
        assert!(dot.contains("m.g()"));
        assert!(dot.contains("->"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn roles_color_nodes() {
        let g = build_source("from m import f\nx = f()\n", FileId(0)).unwrap();
        let id = g.events().next().unwrap().0;
        let mut roles = HashMap::new();
        roles.insert(id, RoleSet::only(Role::Source));
        let dot = to_dot(&g, &roles);
        assert!(dot.contains("lightblue"));
    }

    #[test]
    fn receiver_edges_are_dashed() {
        let g = build_source(
            "from flask import request\nx = request.args.get('q')\n",
            FileId(0),
        )
        .unwrap();
        let dot = to_dot(&g, &HashMap::new());
        assert!(dot.contains("style=dashed"), "{dot}");
    }
}
