//! Language-neutral frontend IR for the Seldon pipeline.
//!
//! Every language frontend (Python in `seldon-pyast`/`seldon-propgraph`,
//! the JS-like subset in `seldon-jsfront`) lowers source text into one
//! shared [`IrProgram`]: an ordered stream of propagation-graph events
//! plus the construction ops that connect them. A single language-blind
//! builder (`seldon_propgraph::build_ir`) then turns any `IrProgram` into
//! a `PropagationGraph`, so representations, constraints, the solver, and
//! taint extraction never see a language-specific node.
//!
//! This crate also hosts the frontend-neutral [`Span`] and
//! [`FrontendError`] types that used to live in `seldon-pyast`; that crate
//! re-exports them for compatibility.

#![warn(missing_docs)]

pub mod error;
pub mod program;
pub mod span;

pub use error::{FrontendError, LexError, LexErrorKind, ParseError};
pub use program::{
    IrArgPos, IrEdgeKind, IrEvent, IrEventKind, IrFunc, IrOp, IrParam, IrPendingCall, IrProgram,
};
pub use span::Span;
