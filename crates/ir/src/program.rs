//! The language-neutral lowered program: an ordered event/op stream.
//!
//! A frontend walks its own AST and records two ordered streams:
//!
//! * **events** — the propagation-graph nodes (calls, object reads, param
//!   bindings), each carrying its interned representation strings and a
//!   source span. The index of an event in [`IrProgram::events`] *is* its
//!   graph `EventId` after construction: graph building creates events in
//!   stream order, so event identity is fixed at lowering time.
//! * **ops** — everything else the walk did, in the exact order it did it:
//!   direct flow edges, argument-position tags, and points-to constraints
//!   (alloc/copy/load/store) over a flat variable space `0..var_count`.
//!
//! Cross-function linking state (function summaries and unresolved calls)
//! is carried as data so the language-blind builder can replay the same
//! deferred-linking pass the Python builder used to run inline.
//!
//! The contract with the graph builder is strict replay: creating events in
//! order and applying ops in order must reproduce the original builder's
//! event identity and adjacency order byte-for-byte.

use crate::span::Span;
use seldon_intern::Symbol;

/// The kind of a lowered event, mirroring the graph's event taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IrEventKind {
    /// A call site.
    Call,
    /// A field / attribute / subscript read.
    ObjectRead,
    /// A function parameter binding.
    ParamRead,
}

impl IrEventKind {
    /// Short lowercase label used by [`IrProgram::dump`].
    pub fn label(self) -> &'static str {
        match self {
            IrEventKind::Call => "call",
            IrEventKind::ObjectRead => "read",
            IrEventKind::ParamRead => "param",
        }
    }
}

/// One propagation-graph node, in creation order.
#[derive(Debug, Clone, PartialEq)]
pub struct IrEvent {
    /// What kind of event this is.
    pub kind: IrEventKind,
    /// Interned representation strings, most specific first.
    pub reps: Vec<Symbol>,
    /// Source location of the originating expression.
    pub span: Span,
}

/// Kind of a direct flow edge between two events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IrEdgeKind {
    /// Ordinary data-flow (argument) edge.
    Argument,
    /// Receiver edge (flow into a method call through its receiver).
    Receiver,
}

/// Where an argument sits at a call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrArgPos {
    /// The call receiver (`recv.m(...)`).
    Receiver,
    /// A positional argument (0-based, saturated at 255).
    Positional(u8),
    /// A keyword / named argument.
    Keyword(String),
}

/// One replayable step of graph construction, in the exact order the
/// frontend's walk performed it.
#[derive(Debug, Clone, PartialEq)]
pub enum IrOp {
    /// Add a flow edge between two events (indices into the event stream).
    Edge {
        /// Source event index.
        from: u32,
        /// Target event index.
        to: u32,
        /// Edge kind.
        kind: IrEdgeKind,
    },
    /// Record the argument position of `from` at call event `to`.
    ArgPos {
        /// Source event index.
        from: u32,
        /// Call event index.
        to: u32,
        /// The position tag.
        pos: IrArgPos,
    },
    /// Points-to: variable `var` may point to allocation site `site`
    /// (an event index used as the abstract object identity).
    Alloc {
        /// Points-to variable (index into `0..var_count`).
        var: u32,
        /// Allocation-site event index.
        site: u32,
    },
    /// Points-to: everything `from` points to, `to` may point to.
    Copy {
        /// Source variable.
        from: u32,
        /// Target variable.
        to: u32,
    },
    /// Points-to: `target` receives `base.field` for every object `base`
    /// may point to.
    Load {
        /// Base variable.
        base: u32,
        /// Field name (frontend-rendered, e.g. `name` or `['key']`).
        field: String,
        /// Target variable.
        target: u32,
    },
    /// Points-to: `base.field` receives everything `value` points to.
    Store {
        /// Base variable.
        base: u32,
        /// Field name.
        field: String,
        /// Value variable.
        value: u32,
    },
    /// After solving, add an edge from every allocation site `var` points
    /// to into `event` (field-sensitive alias flow).
    PtLoad {
        /// Target event index.
        event: u32,
        /// Solved points-to variable.
        var: u32,
    },
}

/// A parameter of a lowered function summary.
#[derive(Debug, Clone, PartialEq)]
pub struct IrParam {
    /// Parameter name as written in source.
    pub name: String,
    /// The `ParamRead` event bound to this parameter.
    pub event: u32,
    /// Whether the parameter is an implicit receiver (`self` / `cls`) that
    /// positional arguments must not bind to. Language-specific: the
    /// frontend decides, the builder only filters.
    pub implicit: bool,
}

/// A function summary used for deferred call linking.
#[derive(Debug, Clone, PartialEq)]
pub struct IrFunc {
    /// Qualified name (`func` or `Class::method`).
    pub qualified: String,
    /// Declared parameters in order.
    pub params: Vec<IrParam>,
    /// Events flowing out of `return` statements.
    pub returns: Vec<u32>,
}

/// A call to a (possibly) locally-defined function, resolved after the
/// whole file has been lowered.
#[derive(Debug, Clone, PartialEq)]
pub struct IrPendingCall {
    /// Qualified callee name to look up in the function summaries.
    pub qualified: String,
    /// Flow sets of each positional argument, in order.
    pub arg_flows: Vec<Vec<u32>>,
    /// Flow sets of keyword arguments, as (name, flows).
    pub kwarg_flows: Vec<(String, Vec<u32>)>,
    /// The call event itself, if one was created.
    pub call_event: Option<u32>,
}

/// A fully lowered file, ready for language-blind graph construction.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IrProgram {
    /// Graph nodes in creation order (index = future `EventId`).
    pub events: Vec<IrEvent>,
    /// Construction steps in execution order.
    pub ops: Vec<IrOp>,
    /// Number of points-to variables referenced by ops (`0..var_count`).
    pub var_count: u32,
    /// Function summaries in first-definition order.
    pub funcs: Vec<IrFunc>,
    /// Calls deferred until all summaries are known, in call order.
    pub pending: Vec<IrPendingCall>,
}

impl IrProgram {
    /// Renders the program as a stable, human-readable listing — the
    /// backend of `seldon ir-dump`, for diffing frontends and bug reports.
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "ir: {} events, {} ops, {} vars, {} funcs, {} pending calls",
            self.events.len(),
            self.ops.len(),
            self.var_count,
            self.funcs.len(),
            self.pending.len()
        );
        for (i, ev) in self.events.iter().enumerate() {
            let reps: Vec<&str> = ev.reps.iter().map(|s| s.as_str()).collect();
            let _ = writeln!(
                out,
                "e{i} {} @{} [{}]",
                ev.kind.label(),
                ev.span,
                reps.join(", ")
            );
        }
        for op in &self.ops {
            match op {
                IrOp::Edge { from, to, kind } => {
                    let k = match kind {
                        IrEdgeKind::Argument => "arg",
                        IrEdgeKind::Receiver => "recv",
                    };
                    let _ = writeln!(out, "edge e{from} -> e{to} ({k})");
                }
                IrOp::ArgPos { from, to, pos } => {
                    let p = match pos {
                        IrArgPos::Receiver => "receiver".to_string(),
                        IrArgPos::Positional(i) => format!("pos {i}"),
                        IrArgPos::Keyword(k) => format!("kw {k}"),
                    };
                    let _ = writeln!(out, "argpos e{from} @ e{to}: {p}");
                }
                IrOp::Alloc { var, site } => {
                    let _ = writeln!(out, "pt alloc v{var} <- site e{site}");
                }
                IrOp::Copy { from, to } => {
                    let _ = writeln!(out, "pt copy v{from} -> v{to}");
                }
                IrOp::Load { base, field, target } => {
                    let _ = writeln!(out, "pt load v{target} = v{base}.{field}");
                }
                IrOp::Store { base, field, value } => {
                    let _ = writeln!(out, "pt store v{base}.{field} = v{value}");
                }
                IrOp::PtLoad { event, var } => {
                    let _ = writeln!(out, "pt-load e{event} <- pts(v{var})");
                }
            }
        }
        for f in &self.funcs {
            let params: Vec<String> = f
                .params
                .iter()
                .map(|p| {
                    if p.implicit {
                        format!("{}*=e{}", p.name, p.event)
                    } else {
                        format!("{}=e{}", p.name, p.event)
                    }
                })
                .collect();
            let rets: Vec<String> = f.returns.iter().map(|r| format!("e{r}")).collect();
            let _ = writeln!(
                out,
                "func {}({}) returns [{}]",
                f.qualified,
                params.join(", "),
                rets.join(", ")
            );
        }
        for p in &self.pending {
            let args: Vec<String> = p
                .arg_flows
                .iter()
                .map(|fs| {
                    let es: Vec<String> = fs.iter().map(|e| format!("e{e}")).collect();
                    format!("[{}]", es.join(", "))
                })
                .collect();
            let kwargs: Vec<String> = p
                .kwarg_flows
                .iter()
                .map(|(k, fs)| {
                    let es: Vec<String> = fs.iter().map(|e| format!("e{e}")).collect();
                    format!("{k}=[{}]", es.join(", "))
                })
                .collect();
            let ev = match p.call_event {
                Some(e) => format!("e{e}"),
                None => "-".to_string(),
            };
            let _ = writeln!(
                out,
                "pending {}({}{}{}) event {}",
                p.qualified,
                args.join(", "),
                if args.is_empty() || kwargs.is_empty() { "" } else { ", " },
                kwargs.join(", "),
                ev
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seldon_intern::intern;

    #[test]
    fn dump_is_stable_and_complete() {
        let prog = IrProgram {
            events: vec![
                IrEvent {
                    kind: IrEventKind::ParamRead,
                    reps: vec![intern("f(param x)")],
                    span: Span::new(0, 1, 1, 7),
                },
                IrEvent {
                    kind: IrEventKind::Call,
                    reps: vec![intern("g()")],
                    span: Span::new(10, 14, 2, 5),
                },
            ],
            ops: vec![
                IrOp::Edge { from: 0, to: 1, kind: IrEdgeKind::Argument },
                IrOp::ArgPos { from: 0, to: 1, pos: IrArgPos::Positional(0) },
                IrOp::Alloc { var: 0, site: 1 },
                IrOp::Copy { from: 0, to: 1 },
                IrOp::Load { base: 1, field: "name".into(), target: 2 },
                IrOp::Store { base: 1, field: "name".into(), value: 0 },
                IrOp::PtLoad { event: 1, var: 2 },
            ],
            var_count: 3,
            funcs: vec![IrFunc {
                qualified: "C::m".into(),
                params: vec![
                    IrParam { name: "self".into(), event: 0, implicit: true },
                    IrParam { name: "x".into(), event: 0, implicit: false },
                ],
                returns: vec![1],
            }],
            pending: vec![IrPendingCall {
                qualified: "g".into(),
                arg_flows: vec![vec![0]],
                kwarg_flows: vec![("k".into(), vec![1])],
                call_event: Some(1),
            }],
        };
        let d = prog.dump();
        assert!(d.starts_with("ir: 2 events, 7 ops, 3 vars, 1 funcs, 1 pending calls\n"));
        assert!(d.contains("e0 param @1:7 [f(param x)]"));
        assert!(d.contains("e1 call @2:5 [g()]"));
        assert!(d.contains("edge e0 -> e1 (arg)"));
        assert!(d.contains("argpos e0 @ e1: pos 0"));
        assert!(d.contains("pt alloc v0 <- site e1"));
        assert!(d.contains("pt load v2 = v1.name"));
        assert!(d.contains("pt-load e1 <- pts(v2)"));
        assert!(d.contains("func C::m(self*=e0, x=e0) returns [e1]"));
        assert!(d.contains("pending g([e0], k=[e1]) event e1"));
        // stable: identical program, identical bytes
        assert_eq!(d, prog.clone().dump());
    }

    #[test]
    fn default_program_is_empty() {
        let p = IrProgram::default();
        assert!(p.events.is_empty());
        assert!(p.dump().starts_with("ir: 0 events"));
    }
}
