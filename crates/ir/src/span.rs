//! Source locations and spans.
//!
//! Every token and AST node carries a [`Span`] pointing back into the
//! original source text, so analyses (and vulnerability reports) can cite
//! exact file positions. The type is frontend-neutral: every language
//! frontend lowers into IR events that carry these spans.

use std::fmt;

/// A half-open byte range `[start, end)` into a source file, together with
/// the 1-based line/column of its start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first byte of the spanned text.
    pub start: u32,
    /// Byte offset one past the last byte of the spanned text.
    pub end: u32,
    /// 1-based line number of `start`.
    pub line: u32,
    /// 1-based column number of `start` (in bytes).
    pub col: u32,
}

impl Span {
    /// Creates a span covering `[start, end)` at the given line/column.
    pub fn new(start: u32, end: u32, line: u32, col: u32) -> Self {
        Span { start, end, line, col }
    }

    /// A zero-width placeholder span (used for synthesized nodes).
    pub fn dummy() -> Self {
        Span::default()
    }

    /// Returns the smallest span covering both `self` and `other`.
    ///
    /// The line/column of the earlier span is kept.
    pub fn merge(self, other: Span) -> Span {
        let (line, col) = if self.start <= other.start {
            (self.line, self.col)
        } else {
            (other.line, other.col)
        };
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line,
            col,
        }
    }

    /// Length of the span in bytes.
    pub fn len(&self) -> u32 {
        self.end.saturating_sub(self.start)
    }

    /// Whether the span covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Extracts the spanned text from the source it was produced from.
    ///
    /// # Panics
    ///
    /// Panics if the span is out of bounds for `source` or does not fall on
    /// character boundaries.
    pub fn text<'s>(&self, source: &'s str) -> &'s str {
        &source[self.start as usize..self.end as usize]
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_keeps_earlier_position() {
        let a = Span::new(0, 4, 1, 1);
        let b = Span::new(10, 12, 2, 3);
        let m = a.merge(b);
        assert_eq!(m.start, 0);
        assert_eq!(m.end, 12);
        assert_eq!(m.line, 1);
        assert_eq!(m.col, 1);
        // merge is symmetric on the covered range
        let m2 = b.merge(a);
        assert_eq!(m2.start, 0);
        assert_eq!(m2.end, 12);
        assert_eq!(m2.line, 1);
    }

    #[test]
    fn text_extraction() {
        let src = "hello world";
        let s = Span::new(6, 11, 1, 7);
        assert_eq!(s.text(src), "world");
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
        assert!(Span::dummy().is_empty());
    }

    #[test]
    fn display_is_line_col() {
        assert_eq!(Span::new(0, 1, 3, 9).to_string(), "3:9");
    }
}
