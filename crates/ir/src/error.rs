//! Frontend error types shared by every language frontend.
//!
//! The types were originally Python-specific; they are language-neutral
//! now: [`ParseError::found`] is the *rendered* offending token (each
//! frontend formats its own token kind), so the same error surface — and
//! byte-identical `Display` output — works for any lowered language.

use crate::span::Span;
use std::error::Error;
use std::fmt;

/// What went wrong during lexing.
#[derive(Debug, Clone, PartialEq)]
pub enum LexErrorKind {
    /// A string literal that never closes.
    UnterminatedString,
    /// A character the lexer cannot start any token with.
    UnexpectedChar(char),
    /// A dedent to an indentation width that was never pushed
    /// (indentation-sensitive frontends only).
    InconsistentDedent,
    /// A block comment that never closes (`/* ...`).
    UnterminatedComment,
}

/// A lexical error with its location.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// The failure category.
    pub kind: LexErrorKind,
    /// Where the failure occurred.
    pub span: Span,
}

impl LexError {
    /// Creates a lex error.
    pub fn new(kind: LexErrorKind, span: Span) -> Self {
        LexError { kind, span }
    }
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            LexErrorKind::UnterminatedString => {
                write!(f, "unterminated string literal at {}", self.span)
            }
            LexErrorKind::UnexpectedChar(c) => {
                write!(f, "unexpected character `{c}` at {}", self.span)
            }
            LexErrorKind::InconsistentDedent => {
                write!(f, "inconsistent dedent at {}", self.span)
            }
            LexErrorKind::UnterminatedComment => {
                write!(f, "unterminated block comment at {}", self.span)
            }
        }
    }
}

impl Error for LexError {}

/// A parse error with its location and a human-readable expectation.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Description of what the parser expected.
    pub expected: String,
    /// The token actually found, rendered by the frontend's token display.
    pub found: String,
    /// Where the offending token sits.
    pub span: Span,
}

impl ParseError {
    /// Creates a parse error. `found` is any displayable token kind; it is
    /// rendered eagerly so the error type stays frontend-neutral.
    pub fn new(expected: impl Into<String>, found: impl fmt::Display, span: Span) -> Self {
        ParseError { expected: expected.into(), found: found.to_string(), span }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "expected {} but found {} at {}", self.expected, self.found, self.span)
    }
}

impl Error for ParseError {}

/// Either kind of frontend failure, as returned by the strict parse entry
/// point of every frontend.
#[derive(Debug, Clone, PartialEq)]
pub enum FrontendError {
    /// Tokenization failed.
    Lex(LexError),
    /// Parsing failed.
    Parse(ParseError),
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrontendError::Lex(e) => e.fmt(f),
            FrontendError::Parse(e) => e.fmt(f),
        }
    }
}

impl Error for FrontendError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FrontendError::Lex(e) => Some(e),
            FrontendError::Parse(e) => Some(e),
        }
    }
}

impl From<LexError> for FrontendError {
    fn from(e: LexError) -> Self {
        FrontendError::Lex(e)
    }
}

impl From<ParseError> for FrontendError {
    fn from(e: ParseError) -> Self {
        FrontendError::Parse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = LexError::new(LexErrorKind::UnexpectedChar('$'), Span::new(0, 1, 3, 7));
        assert_eq!(e.to_string(), "unexpected character `$` at 3:7");
        let p = ParseError::new("`:`", "newline", Span::new(0, 1, 1, 5));
        assert_eq!(p.to_string(), "expected `:` but found newline at 1:5");
        let c = LexError::new(LexErrorKind::UnterminatedComment, Span::new(0, 1, 2, 1));
        assert_eq!(c.to_string(), "unterminated block comment at 2:1");
    }

    #[test]
    fn frontend_error_sources() {
        let e: FrontendError =
            LexError::new(LexErrorKind::UnterminatedString, Span::dummy()).into();
        assert!(std::error::Error::source(&e).is_some());
        let p: FrontendError = ParseError::new("x", "end of file", Span::dummy()).into();
        assert!(p.to_string().contains("expected"));
    }
}
