//! The linear constraint system over role variables (§4.1–§4.2).
//!
//! For every surviving representation `n` and candidate role there is a
//! variable `n^role ∈ [0,1]`. Information-flow constraints have the form
//! `Σ lhs ≤ Σ rhs + C`, where each side is a sparse linear combination of
//! variables (backoff averaging introduces fractional coefficients, §4.3).

use seldon_intern::Symbol;
use seldon_propgraph::EventId;
use seldon_specs::Role;
use std::collections::{HashMap, HashSet};

/// Identifier of an interned representation string.
///
/// Since the pipeline-wide interning refactor this *is* the global
/// [`Symbol`]: representations arrive from the propagation graph already
/// interned, and the constraint system only tracks which symbols are
/// members (survived backoff selection). Identity checks and variable
/// keys are integer operations end to end.
pub type RepId = Symbol;

/// Identifier of a variable `(representation, role)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl VarId {
    /// The index form of the id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One `coeff · var` term.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Term {
    /// The variable.
    pub var: VarId,
    /// Its coefficient (1/|Reps(v)| for backoff averages).
    pub coeff: f64,
}

/// Which Fig. 4 template produced a constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Template {
    /// Fig. 4a: sanitizer + sink ⇒ some source flows in.
    A,
    /// Fig. 4b: source + sanitizer ⇒ some sink flows out.
    B,
    /// Fig. 4c: source + sink ⇒ some sanitizer between.
    #[default]
    C,
}

/// A relaxed information-flow constraint `Σ lhs ≤ Σ rhs + C`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FlowConstraint {
    /// Left-hand side terms.
    pub lhs: Vec<Term>,
    /// Right-hand side terms (the constant `C` is stored system-wide).
    pub rhs: Vec<Term>,
    /// The template this constraint instantiates.
    pub template: Template,
}

/// The full constraint system.
#[derive(Debug, Clone, Default)]
pub struct ConstraintSystem {
    /// Member representations in first-seen order (drives deterministic
    /// seed-pinning iteration).
    reps: Vec<Symbol>,
    /// Membership set over `reps`.
    rep_set: HashSet<Symbol>,
    /// `(rep, role)` per variable.
    vars: Vec<(RepId, Role)>,
    var_ids: HashMap<(RepId, Role), VarId>,
    /// Flow constraints.
    pub constraints: Vec<FlowConstraint>,
    /// Variables pinned by the seed specification (§4.1).
    known: HashMap<VarId, f64>,
    /// The implication-strength constant `C` (0.75 in the paper).
    pub c: f64,
    /// Per-event surviving representation lists, most → least specific,
    /// for candidate events (used for spec extraction, §7.1).
    pub event_reps: Vec<(EventId, Vec<RepId>)>,
}

impl ConstraintSystem {
    /// Creates an empty system with implication constant `c`.
    pub fn new(c: f64) -> Self {
        ConstraintSystem { c, ..Default::default() }
    }

    /// Registers an already-interned representation as a member of this
    /// system (idempotent). This is the hot-path entry: representations
    /// coming from the propagation graph are already [`Symbol`]s.
    pub fn add_rep(&mut self, sym: Symbol) -> RepId {
        if self.rep_set.insert(sym) {
            self.reps.push(sym);
        }
        sym
    }

    /// Interns a representation string and registers it as a member.
    pub fn rep(&mut self, text: &str) -> RepId {
        self.add_rep(seldon_intern::intern(text))
    }

    /// Looks up a representation by text without registering it. Returns
    /// `None` for representations that are not members of *this* system,
    /// even if the string is interned globally.
    pub fn rep_id(&self, text: &str) -> Option<RepId> {
        seldon_intern::lookup(text).filter(|s| self.rep_set.contains(s))
    }

    /// Whether `sym` is a member of this system.
    pub fn contains_rep(&self, sym: Symbol) -> bool {
        self.rep_set.contains(&sym)
    }

    /// The text of a representation.
    pub fn rep_text(&self, id: RepId) -> &str {
        id.as_str()
    }

    /// Member representations in first-seen order.
    pub fn rep_syms(&self) -> &[Symbol] {
        &self.reps
    }

    /// Number of member representations.
    pub fn rep_count(&self) -> usize {
        self.reps.len()
    }

    /// Returns (creating if needed) the variable for `(rep, role)`.
    pub fn var(&mut self, rep: RepId, role: Role) -> VarId {
        if let Some(&v) = self.var_ids.get(&(rep, role)) {
            return v;
        }
        let v = VarId(self.vars.len() as u32);
        self.vars.push((rep, role));
        self.var_ids.insert((rep, role), v);
        v
    }

    /// Looks up the variable for `(rep, role)` without creating it.
    pub fn lookup_var(&self, rep: RepId, role: Role) -> Option<VarId> {
        self.var_ids.get(&(rep, role)).copied()
    }

    /// The `(rep, role)` pair of a variable.
    pub fn var_info(&self, v: VarId) -> (RepId, Role) {
        self.vars[v.index()]
    }

    /// Number of variables.
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// Number of flow constraints.
    pub fn constraint_count(&self) -> usize {
        self.constraints.len()
    }

    /// Pins a variable to a known value (0 or 1).
    pub fn pin(&mut self, v: VarId, value: f64) {
        self.known.insert(v, value);
    }

    /// The pinned value of `v`, if any.
    pub fn pinned(&self, v: VarId) -> Option<f64> {
        self.known.get(&v).copied()
    }

    /// Iterates pinned `(var, value)` pairs.
    pub fn pinned_vars(&self) -> impl Iterator<Item = (VarId, f64)> + '_ {
        self.known.iter().map(|(k, v)| (*k, *v))
    }

    /// Number of pinned variables.
    pub fn pinned_count(&self) -> usize {
        self.known.len()
    }

    /// Pinned `(var index, value)` pairs sorted by variable index — the
    /// deterministic order kernel compilation needs (the backing map
    /// iterates in arbitrary order).
    pub fn pinned_sorted(&self) -> Vec<(u32, f64)> {
        let mut pins: Vec<(u32, f64)> =
            self.known.iter().map(|(k, v)| (k.0, *v)).collect();
        pins.sort_unstable_by_key(|&(i, _)| i);
        pins
    }

    /// Adds a flow constraint; empty-sided constraints are dropped when both
    /// sides are empty.
    pub fn add_constraint(&mut self, c: FlowConstraint) {
        if c.lhs.is_empty() && c.rhs.is_empty() {
            return;
        }
        self.constraints.push(c);
    }

    /// Counts constraints per Fig. 4 template.
    pub fn template_counts(&self) -> [usize; 3] {
        let mut counts = [0usize; 3];
        for c in &self.constraints {
            let i = match c.template {
                Template::A => 0,
                Template::B => 1,
                Template::C => 2,
            };
            counts[i] += 1;
        }
        counts
    }

    /// Iterates `(VarId, rep text, role)` for all variables.
    pub fn variables(&self) -> impl Iterator<Item = (VarId, &str, Role)> + '_ {
        self.vars
            .iter()
            .enumerate()
            .map(|(i, (rep, role))| (VarId(i as u32), rep.as_str(), *role))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning() {
        let mut s = ConstraintSystem::new(0.75);
        let a = s.rep("a()");
        let a2 = s.rep("a()");
        let b = s.rep("b()");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(s.rep_text(a), "a()");
        assert_eq!(s.rep_count(), 2);
        assert_eq!(s.rep_id("a()"), Some(a));
        assert_eq!(s.rep_id("zzz"), None);
    }

    #[test]
    fn variables_created_per_role() {
        let mut s = ConstraintSystem::new(0.75);
        let a = s.rep("a()");
        let v1 = s.var(a, Role::Source);
        let v2 = s.var(a, Role::Sink);
        let v1b = s.var(a, Role::Source);
        assert_eq!(v1, v1b);
        assert_ne!(v1, v2);
        assert_eq!(s.var_count(), 2);
        assert_eq!(s.var_info(v2), (a, Role::Sink));
        assert_eq!(s.lookup_var(a, Role::Sanitizer), None);
    }

    #[test]
    fn pinning() {
        let mut s = ConstraintSystem::new(0.75);
        let a = s.rep("a()");
        let v = s.var(a, Role::Source);
        s.pin(v, 1.0);
        assert_eq!(s.pinned(v), Some(1.0));
        assert_eq!(s.pinned_count(), 1);
    }

    #[test]
    fn empty_constraints_dropped() {
        let mut s = ConstraintSystem::new(0.75);
        s.add_constraint(FlowConstraint::default());
        assert_eq!(s.constraint_count(), 0);
    }

    #[test]
    fn variables_iteration() {
        let mut s = ConstraintSystem::new(0.75);
        let a = s.rep("a()");
        s.var(a, Role::Source);
        let v: Vec<(VarId, &str, Role)> = s.variables().collect();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].1, "a()");
        assert_eq!(v[0].2, Role::Source);
    }
}
