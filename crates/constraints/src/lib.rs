//! # seldon-constraints
//!
//! Linear information-flow constraint generation for the Seldon
//! reproduction (§4 of the paper): variable creation per representation and
//! role, backoff selection with frequency cutoff, seed-specification
//! pinning, and BFS collection of the three Fig. 4 constraint templates.
//!
//! ## Example
//!
//! ```
//! use seldon_constraints::{generate, GenOptions};
//! use seldon_propgraph::{build_source, FileId};
//! use seldon_specs::TaintSpec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = build_source("from m import f\nx = f()\n", FileId(0))?;
//! let opts = GenOptions { rep_cutoff: 1, ..Default::default() };
//! let system = generate(&graph, &TaintSpec::new(), &opts);
//! assert!(system.var_count() > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod gen;
pub mod system;

pub use gen::{
    collect_rows, constraint_gap, constraint_vars, generate, generate_with_stats, select,
    GenOptions, GenStats, Selection,
};
pub use system::{ConstraintSystem, FlowConstraint, RepId, Template, Term, VarId};
