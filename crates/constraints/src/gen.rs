//! Constraint generation from a propagation graph (§4.2, Fig. 4) with
//! backoff selection (§4.3) and seed-specification pinning (§4.1).
//!
//! The three information-flow templates are collected by BFS exactly as the
//! paper describes:
//!
//! * **Fig. 4a** — for every sanitizer candidate `s` flowing into a sink
//!   candidate `t`: `san(s) + snk(t) ≤ Σ src(uᵢ) + C` over the source
//!   candidates `uᵢ` flowing into `s`;
//! * **Fig. 4b** — for every source `u` flowing into sanitizer `s`:
//!   `src(u) + san(s) ≤ Σ snk(tₖ) + C` over sinks reachable from `s`;
//! * **Fig. 4c** — for every source `u` flowing into sink `t`:
//!   `src(u) + snk(t) ≤ Σ san(m) + C` over sanitizer candidates `m` lying
//!   on a path between them.

use crate::system::{ConstraintSystem, FlowConstraint, RepId, Template, Term, VarId};
use seldon_propgraph::{EventId, PropagationGraph};
use seldon_specs::{CompiledSpec, Role, TaintSpec};
use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

/// Tunable knobs of constraint generation; defaults follow the paper.
#[derive(Debug, Clone)]
pub struct GenOptions {
    /// Representations occurring fewer than this many times are dropped
    /// (§4.3; the paper uses 5).
    pub rep_cutoff: usize,
    /// The implication-strength constant `C` (§4.2; the paper uses 0.75
    /// after comparing against 1.0).
    pub c: f64,
    /// Cap on the number of summed terms on a constraint's right-hand side.
    pub max_rhs_terms: usize,
    /// Cap on the BFS frontier per event, bounding worst-case hub blowup.
    pub max_reach: usize,
    /// Which Fig. 4 templates to instantiate (all three by default); used
    /// by the template-ablation experiment.
    pub templates: [bool; 3],
    /// Maximum number of backoff options kept per event (`usize::MAX` =
    /// all, 1 = most-specific only). Used by the backoff ablation — §4.3
    /// argues backoff is what makes learning possible without static
    /// types.
    pub max_backoff: usize,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions {
            rep_cutoff: 5,
            c: 0.75,
            max_rhs_terms: 64,
            max_reach: 512,
            templates: [true; 3],
            max_backoff: usize::MAX,
        }
    }
}

/// Observability counters and phase timings of one [`generate`] call.
///
/// The two phases match the paper's structure: *representation/backoff
/// selection* (§4.3 — frequency cutoff, blacklist, variable and pin
/// setup) and *constraint collection* (§4.2 — the Fig. 4 template BFS).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GenStats {
    /// Wall-clock of backoff selection, variable creation, and pinning.
    pub select_time: Duration,
    /// Wall-clock of the Fig. 4 constraint collection.
    pub collect_time: Duration,
    /// Events with at least one surviving representation (candidates).
    pub candidate_events: usize,
    /// Distinct representations that survived selection (system members).
    pub surviving_reps: usize,
    /// Backoff options dropped by the frequency cutoff, across events.
    pub dropped_by_cutoff: usize,
    /// Backoff options dropped by the seed blacklist, across events.
    pub dropped_by_blacklist: usize,
}

/// Builds the constraint system for `graph`, pinning `seed` entries.
pub fn generate(
    graph: &PropagationGraph,
    seed: &TaintSpec,
    opts: &GenOptions,
) -> ConstraintSystem {
    generate_with_stats(graph, seed, opts).0
}

/// Output of the selection phases (§4.3 backoff selection, variable
/// creation, §4.1 seed pinning): a [`ConstraintSystem`] populated with
/// members, variables, and pins — everything except the Fig. 4 flow
/// constraints — plus the per-event surviving representation lists the
/// collector consumes.
///
/// Splitting selection from collection is what makes *incremental*
/// generation possible: selection is global (the §4.3 frequency cutoff
/// couples files through corpus-wide counts) and cheap, while collection
/// is expensive but — because the unioned graph is a disjoint
/// concatenation of per-file graphs — decomposes into independent
/// per-file row ranges (see [`collect_rows`]).
#[derive(Debug)]
pub struct Selection {
    /// The system with members, variables, and pins; no constraints yet.
    pub sys: ConstraintSystem,
    /// Surviving representations per event (`None` = not a candidate),
    /// indexed by event id.
    pub event_reps: Vec<Option<Vec<RepId>>>,
    /// Selection-phase counters; `collect_time` is still zero.
    pub stats: GenStats,
}

/// Runs the selection phases only. [`generate_with_stats`] is exactly
/// [`select`] followed by a full-range [`collect_rows`] splice, so a
/// caller reassembling per-file row ranges in event order reproduces the
/// batch system byte for byte.
pub fn select(graph: &PropagationGraph, seed: &TaintSpec, opts: &GenOptions) -> Selection {
    let mut stats = GenStats::default();
    let select_started = Instant::now();
    let mut sys = ConstraintSystem::new(opts.c);
    let freq = graph.rep_frequency_counts();
    let compiled = CompiledSpec::new(seed);

    // --- backoff selection: surviving representation list per event --------
    let mut event_reps: Vec<Option<Vec<RepId>>> = Vec::with_capacity(graph.event_count());
    for (_, event) in graph.events() {
        let mut reps: Vec<RepId> = Vec::new();
        for &r in event.reps.iter().take(opts.max_backoff) {
            if freq.get(r.index()).copied().unwrap_or(0) < opts.rep_cutoff {
                stats.dropped_by_cutoff += 1;
                continue;
            }
            if compiled.is_blacklisted(r) {
                stats.dropped_by_blacklist += 1;
                continue;
            }
            let id = sys.add_rep(r);
            if !reps.contains(&id) {
                reps.push(id);
            }
        }
        event_reps.push(if reps.is_empty() { None } else { Some(reps) });
    }

    // --- variables ----------------------------------------------------------
    for (id, event) in graph.events() {
        let Some(reps) = &event_reps[id.index()] else { continue };
        for role in event.candidates.iter() {
            for &rep in reps {
                sys.var(rep, role);
            }
        }
        sys.event_reps.push((id, reps.clone()));
    }

    // --- pin seed entries (fully qualified representations only, §4.4) ----
    // Iterates members in first-seen order — the same order the old
    // string-keyed interner assigned dense ids — so pinning stays
    // deterministic and byte-identical.
    let member_reps: Vec<RepId> = sys.rep_syms().to_vec();
    for rep in member_reps {
        let roles = compiled.roles(rep);
        if roles.is_empty() {
            continue;
        }
        for role in Role::ALL {
            let value = if roles.contains(role) { 1.0 } else { 0.0 };
            // Only pin variables that exist as candidates; create the
            // positive one if missing so the seed always takes effect.
            match sys.lookup_var(rep, role) {
                Some(v) => sys.pin(v, value),
                None if value == 1.0 => {
                    let v = sys.var(rep, role);
                    sys.pin(v, value);
                }
                None => {}
            }
        }
    }

    stats.candidate_events = event_reps.iter().filter(|r| r.is_some()).count();
    stats.surviving_reps = sys.rep_syms().len();
    stats.select_time = select_started.elapsed();
    Selection { sys, event_reps, stats }
}

/// Collects the Fig. 4 flow rows for anchor events in `range` (a
/// half-open event-id interval), without mutating the system. Returns the
/// Fig. 4a/4b rows and the Fig. 4c rows as separate pools: the batch
/// order is *all* a/b rows (anchors in event order) followed by *all* c
/// rows, so per-file pools concatenated file-by-file — a/b pools first,
/// then c pools — splice back into exactly the batch row sequence.
///
/// Per-file graphs share no edges, so every row anchored in a file's
/// event range mentions only that range: a range-restricted call yields
/// the same rows for those anchors as the full pass, which is what lets
/// an incremental caller regenerate only the files whose graph or
/// selection changed.
pub fn collect_rows(
    graph: &PropagationGraph,
    sys: &ConstraintSystem,
    event_reps: &[Option<Vec<RepId>>],
    opts: &GenOptions,
    range: std::ops::Range<usize>,
) -> (Vec<FlowConstraint>, Vec<FlowConstraint>) {
    let collector = Collector { graph, sys, event_reps, opts };
    collector.collect(range)
}

/// Like [`generate`], also returning the [`GenStats`] the telemetry layer
/// folds into stage spans. The stats cost a handful of clock reads and
/// counter increments; the generated system is identical to [`generate`].
pub fn generate_with_stats(
    graph: &PropagationGraph,
    seed: &TaintSpec,
    opts: &GenOptions,
) -> (ConstraintSystem, GenStats) {
    let Selection { mut sys, event_reps, mut stats } = select(graph, seed, opts);

    // --- flow constraints ---------------------------------------------------
    let collect_started = Instant::now();
    let (ab, c) = collect_rows(graph, &sys, &event_reps, opts, 0..graph.event_count());
    for row in ab.into_iter().chain(c) {
        sys.add_constraint(row);
    }
    stats.collect_time = collect_started.elapsed();
    (sys, stats)
}

struct Collector<'a> {
    graph: &'a PropagationGraph,
    sys: &'a ConstraintSystem,
    event_reps: &'a [Option<Vec<RepId>>],
    opts: &'a GenOptions,
}

impl Collector<'_> {
    fn is_candidate(&self, id: EventId, role: Role) -> bool {
        self.event_reps[id.index()].is_some()
            && self.graph.event(id).candidates.contains(role)
    }

    /// Average-of-backoffs terms for `(event, role)` (§4.3). Selection
    /// already created the variable of every `(candidate role, surviving
    /// rep)` pair, so collection only looks variables up — which is what
    /// lets it run against an immutable system, range by range.
    fn terms(&self, id: EventId, role: Role) -> Vec<Term> {
        let Some(reps) = &self.event_reps[id.index()] else { return Vec::new() };
        let coeff = 1.0 / reps.len() as f64;
        reps.iter()
            .map(|&rep| Term {
                var: self
                    .sys
                    .lookup_var(rep, role)
                    .expect("selection created all candidate-role variables"),
                coeff,
            })
            .collect()
    }

    fn forward(&self, id: EventId) -> Vec<EventId> {
        let mut v = self.graph.reachable_from(id);
        v.truncate(self.opts.max_reach);
        v
    }

    fn backward(&self, id: EventId) -> Vec<EventId> {
        let mut v = self.graph.reaching(id);
        v.truncate(self.opts.max_reach);
        v
    }

    fn collect(
        self,
        range: std::ops::Range<usize>,
    ) -> (Vec<FlowConstraint>, Vec<FlowConstraint>) {
        let mut ab: Vec<FlowConstraint> = Vec::new();
        let mut cs: Vec<FlowConstraint> = Vec::new();
        let ids: Vec<EventId> = self
            .graph
            .events()
            .map(|(id, _)| id)
            .filter(|id| range.contains(&id.index()))
            .collect();

        // Fig. 4a and Fig. 4b, anchored at sanitizer candidates.
        for &s in &ids {
            if !self.is_candidate(s, Role::Sanitizer) {
                continue;
            }
            let sinks: Vec<EventId> = self
                .forward(s)
                .into_iter()
                .filter(|&t| self.is_candidate(t, Role::Sink))
                .collect();
            let sources: Vec<EventId> = self
                .backward(s)
                .into_iter()
                .filter(|&u| self.is_candidate(u, Role::Source))
                .collect();
            if sinks.is_empty() && sources.is_empty() {
                continue;
            }
            let san_terms = self.terms(s, Role::Sanitizer);
            // Fig. 4a: san(s) + snk(t) ≤ Σ src(u) + C.
            let src_sum: Vec<Term> = sources
                .iter()
                .take(self.opts.max_rhs_terms)
                .flat_map(|&u| self.terms(u, Role::Source))
                .collect();
            if self.opts.templates[0] {
                for &t in &sinks {
                    let mut lhs = san_terms.clone();
                    lhs.extend(self.terms(t, Role::Sink));
                    ab.push(FlowConstraint {
                        lhs,
                        rhs: src_sum.clone(),
                        template: Template::A,
                    });
                }
            }
            // Fig. 4b: src(u) + san(s) ≤ Σ snk(t) + C.
            let snk_sum: Vec<Term> = sinks
                .iter()
                .take(self.opts.max_rhs_terms)
                .flat_map(|&t| self.terms(t, Role::Sink))
                .collect();
            if self.opts.templates[1] {
                for &u in &sources {
                    let mut lhs = self.terms(u, Role::Source);
                    lhs.extend(san_terms.clone());
                    ab.push(FlowConstraint {
                        lhs,
                        rhs: snk_sum.clone(),
                        template: Template::B,
                    });
                }
            }
        }

        // Fig. 4c, anchored at source candidates; sanitizers on some path.
        if !self.opts.templates[2] {
            return (ab, cs);
        }
        let mut forward_sets: HashMap<EventId, HashSet<EventId>> = HashMap::new();
        for &u in &ids {
            if !self.is_candidate(u, Role::Source) {
                continue;
            }
            let reach = self.forward(u);
            let reach_set: HashSet<EventId> = reach.iter().copied().collect();
            let sinks: Vec<EventId> = reach
                .iter()
                .copied()
                .filter(|&t| self.is_candidate(t, Role::Sink))
                .collect();
            if sinks.is_empty() {
                continue;
            }
            let sans: Vec<EventId> = reach
                .iter()
                .copied()
                .filter(|&m| self.is_candidate(m, Role::Sanitizer))
                .collect();
            let src_terms = self.terms(u, Role::Source);
            // Same-chain events (receiver ancestors rooted at u) cannot be
            // "the sanitizer between": a sanitizer transforms its argument,
            // not the object it is read off.
            let chain_of_u: std::collections::HashSet<EventId> = {
                let mut c = std::collections::HashSet::new();
                let mut stack = vec![u];
                while let Some(v) = stack.pop() {
                    for &n in self.graph.successors(v) {
                        if self.graph.edge_kind(v, n)
                            == Some(seldon_propgraph::EdgeKind::Receiver)
                            && c.insert(n)
                        {
                            stack.push(n);
                        }
                    }
                }
                c
            };
            for &t in &sinks {
                let mut between: Vec<EventId> = Vec::new();
                for &m in &sans {
                    if m == t || !reach_set.contains(&m) || chain_of_u.contains(&m) {
                        continue;
                    }
                    let fwd_m = forward_sets.entry(m).or_insert_with(|| {
                        self.graph.reachable_from(m).into_iter().collect()
                    });
                    if fwd_m.contains(&t) {
                        between.push(m);
                        if between.len() >= self.opts.max_rhs_terms {
                            break;
                        }
                    }
                }
                let mut lhs = src_terms.clone();
                lhs.extend(self.terms(t, Role::Sink));
                let rhs: Vec<Term> = between
                    .iter()
                    .flat_map(|&m| self.terms(m, Role::Sanitizer))
                    .collect();
                cs.push(FlowConstraint { lhs, rhs, template: Template::C });
            }
        }
        (ab, cs)
    }
}

/// Evaluates the two sides of a constraint under an assignment, returning
/// `lhs − rhs` (violation is `max(0, lhs − rhs − C)`).
pub fn constraint_gap(c: &FlowConstraint, assignment: &[f64]) -> f64 {
    let lhs: f64 = c.lhs.iter().map(|t| t.coeff * assignment[t.var.index()]).sum();
    let rhs: f64 = c.rhs.iter().map(|t| t.coeff * assignment[t.var.index()]).sum();
    lhs - rhs
}

/// Returns the variable ids appearing in a constraint (for tests/debugging).
pub fn constraint_vars(c: &FlowConstraint) -> Vec<VarId> {
    c.lhs.iter().chain(&c.rhs).map(|t| t.var).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use seldon_propgraph::{build_source, FileId};

    fn opts() -> GenOptions {
        GenOptions { rep_cutoff: 1, ..Default::default() }
    }

    /// The Fig. 2 snippet: source → sanitizer → sink chain.
    fn fig2_graph() -> PropagationGraph {
        build_source(
            r#"
from flask import request
from werkzeug import secure_filename
import os

def media():
    filename = request.files['f'].filename
    filename = secure_filename(filename)
    path = os.path.join(blog_dir, filename)
    request.files['f'].save(path)
"#,
            FileId(0),
        )
        .unwrap()
    }

    #[test]
    fn generates_all_three_templates() {
        let g = fig2_graph();
        let sys = generate(&g, &TaintSpec::new(), &opts());
        assert!(sys.constraint_count() >= 3, "got {}", sys.constraint_count());
        assert!(sys.var_count() > 0);
        // Every constraint has a non-empty lhs of exactly two event terms
        // (source+sink, san+sink, or src+san averages).
        for c in &sys.constraints {
            assert!(!c.lhs.is_empty());
        }
    }

    #[test]
    fn seed_pinning() {
        let g = fig2_graph();
        let mut seed = TaintSpec::new();
        seed.add("werkzeug.secure_filename()", Role::Sanitizer);
        let sys = generate(&g, &seed, &opts());
        let rep = sys.rep_id("werkzeug.secure_filename()").expect("rep interned");
        let san = sys.lookup_var(rep, Role::Sanitizer).expect("san var");
        assert_eq!(sys.pinned(san), Some(1.0));
        // Other roles of the pinned rep are pinned to 0.
        if let Some(src) = sys.lookup_var(rep, Role::Source) {
            assert_eq!(sys.pinned(src), Some(0.0));
        }
    }

    #[test]
    fn blacklisted_reps_excluded() {
        let g = build_source(
            "from m import src, sink\nx = src()\ny = x.append(1)\nsink(y)\n",
            FileId(0),
        )
        .unwrap();
        let mut seed = TaintSpec::new();
        seed.blacklist("*.append()");
        let sys = generate(&g, &seed, &opts());
        assert!(sys.rep_id("x.append()").is_none());
    }

    #[test]
    fn cutoff_drops_rare_reps() {
        let g = fig2_graph();
        let sys = generate(&g, &TaintSpec::new(), &GenOptions::default());
        // Every rep in this single small file occurs fewer than 5 times.
        assert_eq!(sys.var_count(), 0);
        assert_eq!(sys.constraint_count(), 0);
    }

    #[test]
    fn backoff_average_coefficients() {
        let g = fig2_graph();
        let sys = generate(&g, &TaintSpec::new(), &opts());
        for c in &sys.constraints {
            // Coefficients are 1/k for k backoff options: in (0, 1].
            for t in c.lhs.iter().chain(&c.rhs) {
                assert!(t.coeff > 0.0 && t.coeff <= 1.0);
            }
        }
    }

    #[test]
    fn object_reads_have_no_sink_vars() {
        let g = fig2_graph();
        let sys = generate(&g, &TaintSpec::new(), &opts());
        let rep = sys.rep_id("flask.request.files['f'].filename").expect("read rep");
        assert!(sys.lookup_var(rep, Role::Source).is_some());
        assert!(sys.lookup_var(rep, Role::Sink).is_none());
        assert!(sys.lookup_var(rep, Role::Sanitizer).is_none());
    }

    #[test]
    fn constraint_gap_math() {
        let mut sys = ConstraintSystem::new(0.75);
        let a = sys.rep("a()");
        let b = sys.rep("b()");
        let va = sys.var(a, Role::Source);
        let vb = sys.var(b, Role::Sink);
        let c = FlowConstraint {
            lhs: vec![Term { var: va, coeff: 1.0 }],
            rhs: vec![Term { var: vb, coeff: 0.5 }],
            ..Default::default()
        };
        let assignment = vec![0.8, 0.4];
        let gap = constraint_gap(&c, &assignment);
        assert!((gap - (0.8 - 0.2)).abs() < 1e-12);
        assert_eq!(constraint_vars(&c), vec![va, vb]);
    }

    #[test]
    fn stats_match_generated_system() {
        let g = fig2_graph();
        let (sys, stats) = generate_with_stats(&g, &TaintSpec::new(), &opts());
        // Same system as the plain entry point.
        let plain = generate(&g, &TaintSpec::new(), &opts());
        assert_eq!(sys.var_count(), plain.var_count());
        assert_eq!(sys.constraint_count(), plain.constraint_count());
        // Counters agree with the system's own bookkeeping.
        assert_eq!(stats.candidate_events, sys.event_reps.len());
        assert_eq!(stats.surviving_reps, sys.rep_syms().len());
        assert_eq!(stats.dropped_by_cutoff, 0, "cutoff 1 drops nothing");
        assert_eq!(stats.dropped_by_blacklist, 0);
    }

    #[test]
    fn stats_count_dropped_options() {
        let g = fig2_graph();
        // Default cutoff (5) drops every option in this single small file.
        let (sys, stats) =
            generate_with_stats(&g, &TaintSpec::new(), &GenOptions::default());
        assert_eq!(sys.var_count(), 0);
        assert!(stats.dropped_by_cutoff > 0);
        assert_eq!(stats.candidate_events, 0);
        assert_eq!(stats.surviving_reps, 0);
        // A blacklist entry registers its drops separately.
        let mut seed = TaintSpec::new();
        seed.blacklist("os.path.join()");
        let (_, stats) = generate_with_stats(&g, &seed, &opts());
        assert!(stats.dropped_by_blacklist > 0);
    }

    /// Per-range collection spliced in event order — a/b pools for every
    /// range first, then c pools — reproduces the batch system exactly:
    /// the contract incremental per-file regeneration rests on.
    #[test]
    fn ranged_collection_splices_to_the_batch_system() {
        let mut g = fig2_graph();
        let g1 = build_source(
            "from m import src, sink\nx = src()\nsink(x)\n",
            FileId(1),
        )
        .unwrap();
        let boundary = g.event_count();
        g.union(&g1);
        let o = opts();
        let (batch, _) = generate_with_stats(&g, &TaintSpec::new(), &o);

        let Selection { mut sys, event_reps, .. } = select(&g, &TaintSpec::new(), &o);
        let (ab0, c0) = collect_rows(&g, &sys, &event_reps, &o, 0..boundary);
        let (ab1, c1) = collect_rows(&g, &sys, &event_reps, &o, boundary..g.event_count());
        for row in ab0.into_iter().chain(ab1).chain(c0).chain(c1) {
            sys.add_constraint(row);
        }

        assert_eq!(batch.var_count(), sys.var_count());
        assert_eq!(batch.constraint_count(), sys.constraint_count());
        assert!(batch.constraint_count() > 0);
        for (a, b) in batch.constraints.iter().zip(&sys.constraints) {
            assert_eq!(a, b);
        }
        assert_eq!(batch.pinned_sorted(), sys.pinned_sorted());
        assert_eq!(batch.event_reps, sys.event_reps);
    }

    #[test]
    fn event_reps_recorded_for_candidates() {
        let g = fig2_graph();
        let sys = generate(&g, &TaintSpec::new(), &opts());
        assert!(!sys.event_reps.is_empty());
        for (id, reps) in &sys.event_reps {
            assert!(!reps.is_empty());
            assert!(id.index() < g.event_count());
        }
    }
}
