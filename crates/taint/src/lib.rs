//! # seldon-taint
//!
//! The taint-analysis client of the Seldon reproduction (§3.4): given a
//! propagation graph and a taint specification, it reports every
//! information flow from a source event to a sink event that does not pass
//! through a sanitizer.
//!
//! Role assignment follows the backoff discipline: an event takes the roles
//! of its most specific representation that the specification knows about.
//!
//! ## Example
//!
//! ```
//! use seldon_propgraph::{build_source, FileId};
//! use seldon_specs::TaintSpec;
//! use seldon_taint::TaintAnalyzer;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = build_source(
//!     "from flask import request, redirect\nredirect(request.args.get('next'))\n",
//!     FileId(0),
//! )?;
//! let spec = TaintSpec::parse("o: flask.request.args.get()\ni: flask.redirect()\n")?;
//! let analyzer = TaintAnalyzer::new(&graph, &spec);
//! assert_eq!(analyzer.find_violations().len(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod report;

use seldon_intern::Symbol;
use seldon_propgraph::{ArgPos, EventId, FileId, PropagationGraph};
use seldon_specs::{ArgRef, CompiledSpec, Role, RoleSet, SinkSignature, TaintSpec};
use std::collections::{HashMap, HashSet, VecDeque};

pub use report::{render_reports, reports_to_json, Report, VulnClass};

/// A reported unsanitized source→sink flow.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// The source event.
    pub source: EventId,
    /// The sink event.
    pub sink: EventId,
    /// One unsanitized path from source to sink (inclusive).
    pub path: Vec<EventId>,
    /// The source's matched representation.
    pub source_rep: String,
    /// The sink's matched representation.
    pub sink_rep: String,
    /// File containing the sink.
    pub file: FileId,
}

/// Analyzer options.
#[derive(Debug, Clone, Default)]
pub struct TaintOptions {
    /// When true, sinks with a declared [`SinkSignature`] only report taint
    /// that reaches a *dangerous* parameter — the paper's §3.3 future-work
    /// extension, which eliminates the Tab. 6 "flows into wrong parameter"
    /// false positives.
    pub param_sensitive: bool,
}

/// A taint analyzer bound to one propagation graph and specification.
#[derive(Debug)]
pub struct TaintAnalyzer<'g> {
    graph: &'g PropagationGraph,
    /// Role set per event, resolved through representation backoff.
    roles: HashMap<EventId, RoleSet>,
    /// The representation that matched, per event.
    matched: HashMap<EventId, Symbol>,
    /// Signatures of sink events whose matched representation declares one.
    sink_sigs: HashMap<EventId, SinkSignature>,
    options: TaintOptions,
}

impl<'g> TaintAnalyzer<'g> {
    /// Resolves roles for every event of `graph` against `spec`.
    pub fn new(graph: &'g PropagationGraph, spec: &TaintSpec) -> Self {
        TaintAnalyzer::with_options(graph, spec, TaintOptions::default())
    }

    /// Like [`TaintAnalyzer::new`] with explicit [`TaintOptions`].
    pub fn with_options(
        graph: &'g PropagationGraph,
        spec: &TaintSpec,
        options: TaintOptions,
    ) -> Self {
        let mut roles = HashMap::new();
        let mut matched = HashMap::new();
        let mut sink_sigs = HashMap::new();
        // Role lookup (including blacklist globs) resolves once per distinct
        // representation symbol, not once per event.
        let compiled = CompiledSpec::new(spec);
        for (id, event) in graph.events() {
            for &rep in &event.reps {
                let r = compiled.roles(rep).intersection(event.candidates);
                if !r.is_empty() {
                    roles.insert(id, r);
                    matched.insert(id, rep);
                    if r.contains(Role::Sink) {
                        if let Some(sig) = spec.signature(rep.as_str()) {
                            sink_sigs.insert(id, sig.clone());
                        }
                    }
                    break;
                }
            }
        }
        TaintAnalyzer { graph, roles, matched, sink_sigs, options }
    }

    /// Creates an analyzer from explicit per-event roles (e.g. the solver's
    /// extraction output) merged over `spec`-resolved roles.
    pub fn with_event_roles(
        graph: &'g PropagationGraph,
        spec: &TaintSpec,
        event_roles: &HashMap<EventId, RoleSet>,
    ) -> Self {
        let mut a = TaintAnalyzer::new(graph, spec);
        for (&id, &r) in event_roles {
            let cand = graph.event(id).candidates;
            let merged = a.roles.entry(id).or_insert(RoleSet::EMPTY);
            *merged = merged.union(r.intersection(cand));
            a.matched.entry(id).or_insert_with(|| graph.event(id).rep_sym());
        }
        a
    }

    /// The resolved roles of an event.
    pub fn roles(&self, id: EventId) -> RoleSet {
        self.roles.get(&id).copied().unwrap_or(RoleSet::EMPTY)
    }

    /// The representation that matched the specification for `id`, if any.
    pub fn matched_rep(&self, id: EventId) -> Option<&'static str> {
        self.matched.get(&id).map(|s| s.as_str())
    }

    /// All events holding `role`, in id order.
    pub fn events_with_role(&self, role: Role) -> Vec<EventId> {
        let mut v: Vec<EventId> = self
            .roles
            .iter()
            .filter(|(_, r)| r.contains(role))
            .map(|(id, _)| *id)
            .collect();
        v.sort();
        v
    }

    /// Finds all unsanitized source→sink flows.
    ///
    /// For each source, a forward BFS that refuses to continue *through*
    /// sanitizer events reports one unsanitized path to each reachable
    /// sink. One violation is reported per (source, sink) pair.
    pub fn find_violations(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        for source in self.events_with_role(Role::Source) {
            out.extend(self.violations_from(source));
        }
        out
    }

    /// Unsanitized flows starting at a specific source event.
    pub fn violations_from(&self, source: EventId) -> Vec<Violation> {
        let mut parent: HashMap<EventId, EventId> = HashMap::new();
        let mut seen = HashSet::new();
        let mut order = Vec::new();
        let mut queue = VecDeque::new();
        seen.insert(source);
        queue.push_back(source);
        while let Some(v) = queue.pop_front() {
            // Sanitizers stop propagation (but a source that is also a
            // sanitizer still emits its own taint).
            if v != source && self.roles(v).contains(Role::Sanitizer) {
                continue;
            }
            if v != source && self.roles(v).contains(Role::Sink) {
                order.push(v);
            }
            for &n in self.graph.successors(v) {
                if seen.insert(n) {
                    parent.insert(n, v);
                    queue.push_back(n);
                }
            }
        }
        // Reports are emitted after the sweep so the parameter-sensitivity
        // check sees the complete tainted set.
        order
            .into_iter()
            .filter(|&v| self.sink_entry_is_dangerous(v, &seen))
            .map(|v| Violation {
                source,
                sink: v,
                path: self.reconstruct(source, v, &parent),
                source_rep: self
                    .matched
                    .get(&source)
                    .map(|s| s.as_str().to_string())
                    .unwrap_or_default(),
                sink_rep: self
                    .matched
                    .get(&v)
                    .map(|s| s.as_str().to_string())
                    .unwrap_or_default(),
                file: self.graph.event(v).file,
            })
            .collect()
    }

    /// Parameter sensitivity: if the sink has a declared signature and the
    /// analyzer runs param-sensitive, taint must reach a dangerous
    /// parameter through at least one tainted predecessor.
    fn sink_entry_is_dangerous(&self, sink: EventId, tainted: &HashSet<EventId>) -> bool {
        if !self.options.param_sensitive {
            return true;
        }
        let Some(sig) = self.sink_sigs.get(&sink) else { return true };
        self.graph.predecessors(sink).iter().any(|&p| {
            // A sanitizer's output into the sink is clean even though the
            // sanitizer node itself was visited.
            if !tainted.contains(&p) || self.roles(p).contains(Role::Sanitizer) {
                return false;
            }
            let pos = match self.graph.arg_position(p, sink) {
                Some(ArgPos::Positional(i)) => ArgRef::Positional(*i),
                Some(ArgPos::Keyword(k)) => ArgRef::Keyword(k.clone()),
                Some(ArgPos::Receiver) => ArgRef::Receiver,
                None => ArgRef::Unknown,
            };
            sig.is_dangerous(&pos)
        })
    }

    fn reconstruct(
        &self,
        source: EventId,
        sink: EventId,
        parent: &HashMap<EventId, EventId>,
    ) -> Vec<EventId> {
        let mut path = vec![sink];
        let mut cur = sink;
        while cur != source {
            match parent.get(&cur) {
                Some(&p) => {
                    path.push(p);
                    cur = p;
                }
                None => break,
            }
        }
        path.reverse();
        path
    }

    /// Whether flow exists from `source` to `sink` but every path is
    /// protected by a sanitizer.
    pub fn is_sanitized(&self, source: EventId, sink: EventId) -> bool {
        self.graph.is_reachable(source, sink)
            && !self.violations_from(source).iter().any(|v| v.sink == sink)
    }

    /// Counts of resolved (sources, sanitizers, sinks).
    pub fn role_counts(&self) -> (usize, usize, usize) {
        (
            self.events_with_role(Role::Source).len(),
            self.events_with_role(Role::Sanitizer).len(),
            self.events_with_role(Role::Sink).len(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seldon_propgraph::build_source;

    fn spec(text: &str) -> TaintSpec {
        TaintSpec::parse(text).unwrap()
    }

    fn analyze(src: &str, spec_text: &str) -> Vec<Violation> {
        let graph = build_source(src, FileId(0)).unwrap();
        let spec = spec(spec_text);
        let analyzer = TaintAnalyzer::new(&graph, &spec);
        analyzer.find_violations()
    }

    #[test]
    fn direct_flow_is_reported() {
        let v = analyze(
            "from flask import request\nimport os\nos.system(request.args.get('cmd'))\n",
            "o: flask.request.args.get()\ni: os.system()\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].source_rep, "flask.request.args.get()");
        assert_eq!(v[0].sink_rep, "os.system()");
        assert!(v[0].path.len() >= 2);
    }

    #[test]
    fn sanitized_flow_is_not_reported() {
        let src = "
from flask import request
from werkzeug import secure_filename
import flask
name = secure_filename(request.args.get('f'))
flask.send_file(name)
";
        let v = analyze(
            src,
            "o: flask.request.args.get()\na: werkzeug.secure_filename()\ni: flask.send_file()\n",
        );
        assert!(v.is_empty(), "sanitizer must interrupt the flow: {v:?}");
    }

    #[test]
    fn missing_sanitizer_is_reported() {
        let src = "
from flask import request
import flask
name = request.args.get('f')
flask.send_file(name)
";
        let v = analyze(
            src,
            "o: flask.request.args.get()\na: werkzeug.secure_filename()\ni: flask.send_file()\n",
        );
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn one_unsanitized_path_suffices() {
        // Two paths: one sanitized, one not — still a violation.
        let src = "
from flask import request
from m import clean
import os
x = request.args.get('p')
y = clean(x)
os.system(x)
os.system(y)
";
        let v = analyze(
            src,
            "o: flask.request.args.get()\na: m.clean()\ni: os.system()\n",
        );
        assert_eq!(v.len(), 1, "only the direct call is vulnerable: {v:?}");
    }

    #[test]
    fn backoff_matching_uses_less_specific_spec_entries() {
        // Spec says `request.args.get()` (no flask prefix); the event's
        // backoff chain still matches it.
        let v = analyze(
            "from flask import request\nimport os\nos.system(request.args.get('x'))\n",
            "o: request.args.get()\ni: os.system()\n",
        );
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn candidate_filtering_blocks_read_sinks() {
        // A spec claiming an attribute read is a sink must be ignored
        // because reads are source-only candidates.
        let graph = build_source(
            "from flask import request\nx = request.args\n",
            FileId(0),
        )
        .unwrap();
        let s = spec("i: flask.request.args\n");
        let analyzer = TaintAnalyzer::new(&graph, &s);
        assert_eq!(analyzer.events_with_role(Role::Sink).len(), 0);
    }

    #[test]
    fn role_counts_and_sanitized_query() {
        let src = "
from flask import request
from m import clean
import os
x = clean(request.args.get('p'))
os.system(x)
";
        let graph = build_source(src, FileId(0)).unwrap();
        let s = spec("o: flask.request.args.get()\na: m.clean()\ni: os.system()\n");
        let a = TaintAnalyzer::new(&graph, &s);
        let (srcs, sans, snks) = a.role_counts();
        assert_eq!((srcs, sans, snks), (1, 1, 1));
        let source = a.events_with_role(Role::Source)[0];
        let sink = a.events_with_role(Role::Sink)[0];
        assert!(a.is_sanitized(source, sink));
        assert_eq!(a.matched_rep(source), Some("flask.request.args.get()"));
    }

    #[test]
    fn multiple_sinks_reported_separately() {
        let src = "
from flask import request
import os, subprocess
x = request.args.get('p')
os.system(x)
subprocess.call(x)
";
        let v = analyze(
            src,
            "o: flask.request.args.get()\ni: os.system()\ni: subprocess.call()\n",
        );
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn explicit_event_roles_merge() {
        let graph = build_source("from m import f, g\ng(f())\n", FileId(0)).unwrap();
        let f_id = graph
            .events()
            .find(|(_, e)| e.rep() == "m.f()")
            .map(|(id, _)| id)
            .unwrap();
        let g_id = graph
            .events()
            .find(|(_, e)| e.rep() == "m.g()")
            .map(|(id, _)| id)
            .unwrap();
        let mut roles = HashMap::new();
        roles.insert(f_id, RoleSet::only(Role::Source));
        roles.insert(g_id, RoleSet::only(Role::Sink));
        let a = TaintAnalyzer::with_event_roles(&graph, &TaintSpec::new(), &roles);
        assert_eq!(a.find_violations().len(), 1);
    }

    #[test]
    fn no_roles_no_violations() {
        let v = analyze("from m import f\nx = f()\n", "");
        assert!(v.is_empty());
    }

    #[test]
    fn param_sensitive_suppresses_wrong_parameter_flow() {
        use seldon_specs::SinkSignature;
        let src = "
from flask import request
import subprocess
x = request.args.get('p')
subprocess.call(['ls'], env=x)
";
        let graph = build_source(src, FileId(0)).unwrap();
        let mut s = spec("o: flask.request.args.get()\ni: subprocess.call()\n");
        // Without a signature the flow is reported.
        let a = TaintAnalyzer::with_options(
            &graph,
            &s,
            TaintOptions { param_sensitive: true },
        );
        assert_eq!(a.find_violations().len(), 1);
        // With `0` as the only dangerous position, the env= flow is benign.
        s.set_signature("subprocess.call()", SinkSignature::positional([0]));
        let a = TaintAnalyzer::with_options(
            &graph,
            &s,
            TaintOptions { param_sensitive: true },
        );
        assert!(a.find_violations().is_empty(), "env= flow must be suppressed");
        // Param-insensitive mode still reports it (paper baseline).
        let a = TaintAnalyzer::new(&graph, &s);
        assert_eq!(a.find_violations().len(), 1);
    }

    #[test]
    fn param_sensitive_keeps_dangerous_position() {
        use seldon_specs::SinkSignature;
        let src = "
from flask import request
import subprocess
x = request.args.get('p')
subprocess.call(x)
";
        let graph = build_source(src, FileId(0)).unwrap();
        let mut s = spec("o: flask.request.args.get()\ni: subprocess.call()\n");
        s.set_signature("subprocess.call()", SinkSignature::positional([0]));
        let a = TaintAnalyzer::with_options(
            &graph,
            &s,
            TaintOptions { param_sensitive: true },
        );
        assert_eq!(a.find_violations().len(), 1, "position 0 is dangerous");
    }

    #[test]
    fn param_sensitive_spec_text_round_trip() {
        let s = spec("i: subprocess.call()\np: subprocess.call() 0\n");
        assert!(s.signature("subprocess.call()").is_some());
        assert_eq!(s.signature_count(), 1);
    }

    #[test]
    fn paper_fig2_snippet_is_safe_with_seed_roles() {
        let src = r#"
from flask import request
from werkzeug import secure_filename
import os

def media():
    filename = request.files['f'].filename
    filename = secure_filename(filename)
    path = os.path.join(blog_dir, filename)
    if not os.path.exists(path):
        request.files['f'].save(path)
"#;
        let spec_text = "\
o: flask.request.files['f'].filename
a: werkzeug.secure_filename()
i: flask.request.files['f'].save()
";
        let v = analyze(src, spec_text);
        assert!(v.is_empty(), "Fig. 2 code is properly sanitized: {v:?}");
    }

    #[test]
    fn paper_fig2_without_sanitizer_is_vulnerable() {
        let src = r#"
from flask import request
import os

def media():
    filename = request.files['f'].filename
    path = os.path.join(blog_dir, filename)
    request.files['f'].save(path)
"#;
        let spec_text = "\
o: flask.request.files['f'].filename
a: werkzeug.secure_filename()
i: flask.request.files['f'].save()
";
        let v = analyze(src, spec_text);
        assert_eq!(v.len(), 1, "unsanitized upload must be flagged");
    }
}
