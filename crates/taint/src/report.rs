//! Human-readable vulnerability reports, in the spirit of the paper's
//! production tool (the DeepCode bug detector of Fig. 1): each violation is
//! categorized by the vulnerability class its sink belongs to and rendered
//! with source locations.

use crate::Violation;
use seldon_propgraph::PropagationGraph;
use std::fmt;

/// A vulnerability class, determined from the sink API (App. B groups its
/// sink listing exactly this way).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VulnClass {
    /// SQL injection.
    SqlInjection,
    /// Cross-site scripting.
    Xss,
    /// OS command injection.
    CommandInjection,
    /// Path traversal.
    PathTraversal,
    /// Open redirect.
    OpenRedirect,
    /// Code injection (eval/exec-like sinks).
    CodeInjection,
    /// Unrecognized sink family.
    Other,
}

impl VulnClass {
    /// Classifies a sink representation by API family, mirroring the
    /// grouping of the paper's App. B seed listing.
    pub fn of_sink(sink_rep: &str) -> VulnClass {
        let s = sink_rep.to_ascii_lowercase();
        if s.contains("execute") || s.contains("raw") || s.contains("sql") || s.contains("query")
        {
            VulnClass::SqlInjection
        } else if s.contains("system")
            || s.contains("popen")
            || s.contains("subprocess")
            || s.contains("spawn")
            || s.contains("command")
            || s.contains("shell")
        {
            VulnClass::CommandInjection
        } else if s.contains("redirect") {
            VulnClass::OpenRedirect
        } else if s.contains("send_file")
            || s.contains("send_from_directory")
            || s.contains("save")
            || s.contains("extract")
            || s.contains("file")
        {
            VulnClass::PathTraversal
        } else if s.contains("eval") || s.contains("exec() ") || s.ends_with("exec()") {
            VulnClass::CodeInjection
        } else if s.contains("response")
            || s.contains("render")
            || s.contains("markup")
            || s.contains("html")
            || s.contains("template")
            || s.contains("page")
            || s.contains("mail")
        {
            VulnClass::Xss
        } else {
            VulnClass::Other
        }
    }

    /// CWE-style severity rank for sorting reports (lower = more severe).
    pub fn severity_rank(self) -> u8 {
        match self {
            VulnClass::CommandInjection | VulnClass::CodeInjection => 0,
            VulnClass::SqlInjection => 1,
            VulnClass::PathTraversal => 2,
            VulnClass::Xss => 3,
            VulnClass::OpenRedirect => 4,
            VulnClass::Other => 5,
        }
    }
}

impl fmt::Display for VulnClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VulnClass::SqlInjection => "SQL Injection",
            VulnClass::Xss => "Cross-Site Scripting",
            VulnClass::CommandInjection => "Command Injection",
            VulnClass::PathTraversal => "Path Traversal",
            VulnClass::OpenRedirect => "Open Redirect",
            VulnClass::CodeInjection => "Code Injection",
            VulnClass::Other => "Tainted Flow",
        };
        f.write_str(s)
    }
}

/// A rendered report: classification plus the path with line numbers.
#[derive(Debug, Clone)]
pub struct Report {
    /// The vulnerability class.
    pub class: VulnClass,
    /// Source representation and line.
    pub source: (String, u32),
    /// Sink representation and line.
    pub sink: (String, u32),
    /// Intermediate representations along the reported path.
    pub trace: Vec<(String, u32)>,
}

impl Report {
    /// Builds a report from a violation.
    pub fn from_violation(v: &Violation, graph: &PropagationGraph) -> Report {
        let line = |id: seldon_propgraph::EventId| graph.event(id).span.line;
        Report {
            class: VulnClass::of_sink(&v.sink_rep),
            source: (v.source_rep.clone(), line(v.source)),
            sink: (v.sink_rep.clone(), line(v.sink)),
            trace: v
                .path
                .iter()
                .map(|&id| (graph.event(id).rep().to_string(), line(id)))
                .collect(),
        }
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}] line {}: {}", self.class, self.sink.1, self.sink.0)?;
        writeln!(f, "    tainted by {} (line {})", self.source.0, self.source.1)?;
        for (rep, line) in &self.trace {
            writeln!(f, "      via {rep} (line {line})")?;
        }
        Ok(())
    }
}

/// Escapes a string for JSON output.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders reports as a JSON array (hand-rolled: the workspace keeps its
/// dependency footprint to the paper's needs), machine-readable for CI
/// integration.
pub fn reports_to_json(violations: &[Violation], graph: &PropagationGraph) -> String {
    let mut reports: Vec<Report> =
        violations.iter().map(|v| Report::from_violation(v, graph)).collect();
    reports.sort_by_key(|r| (r.class.severity_rank(), r.sink.1));
    let mut out = String::from("[");
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"class\":\"{}\",\"source\":{{\"api\":\"{}\",\"line\":{}}},\"sink\":{{\"api\":\"{}\",\"line\":{}}},\"trace\":[",
            json_escape(&r.class.to_string()),
            json_escape(&r.source.0),
            r.source.1,
            json_escape(&r.sink.0),
            r.sink.1
        ));
        for (j, (rep, line)) in r.trace.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"api\":\"{}\",\"line\":{line}}}",
                json_escape(rep)
            ));
        }
        out.push_str("]}");
    }
    out.push(']');
    out
}

/// Renders a list of violations sorted by severity, then line.
pub fn render_reports(violations: &[Violation], graph: &PropagationGraph) -> String {
    let mut reports: Vec<Report> =
        violations.iter().map(|v| Report::from_violation(v, graph)).collect();
    reports.sort_by_key(|r| (r.class.severity_rank(), r.sink.1));
    let mut out = String::new();
    for r in &reports {
        out.push_str(&r.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TaintAnalyzer;
    use seldon_propgraph::{build_source, FileId};
    use seldon_specs::TaintSpec;

    #[test]
    fn sink_classification() {
        assert_eq!(VulnClass::of_sink("os.system()"), VulnClass::CommandInjection);
        assert_eq!(
            VulnClass::of_sink("dbapi.connect().cursor().execute()"),
            VulnClass::SqlInjection
        );
        assert_eq!(VulnClass::of_sink("flask.redirect()"), VulnClass::OpenRedirect);
        assert_eq!(VulnClass::of_sink("flask.send_file()"), VulnClass::PathTraversal);
        assert_eq!(VulnClass::of_sink("flask.make_response()"), VulnClass::Xss);
        assert_eq!(VulnClass::of_sink("mystery.api()"), VulnClass::Other);
    }

    #[test]
    fn severity_ordering() {
        assert!(VulnClass::CommandInjection.severity_rank() < VulnClass::Xss.severity_rank());
        assert!(VulnClass::SqlInjection.severity_rank() < VulnClass::OpenRedirect.severity_rank());
    }

    #[test]
    fn rendered_report_cites_lines() {
        let src = "from flask import request\nimport os\nx = request.args.get('c')\nos.system(x)\n";
        let graph = build_source(src, FileId(0)).unwrap();
        let spec =
            TaintSpec::parse("o: flask.request.args.get()\ni: os.system()\n").unwrap();
        let violations = TaintAnalyzer::new(&graph, &spec).find_violations();
        let text = render_reports(&violations, &graph);
        assert!(text.contains("[Command Injection]"), "{text}");
        assert!(text.contains("line 4"), "{text}");
        assert!(text.contains("tainted by flask.request.args.get() (line 3)"), "{text}");
    }

    #[test]
    fn json_output_is_well_formed() {
        let src = "from flask import request\nimport os\nx = request.args.get('c \\\"quoted\\\"')\nos.system(x)\n";
        let graph = build_source(src, FileId(0)).unwrap();
        let spec =
            TaintSpec::parse("o: flask.request.args.get()\ni: os.system()\n").unwrap();
        let violations = TaintAnalyzer::new(&graph, &spec).find_violations();
        let json = reports_to_json(&violations, &graph);
        assert!(json.starts_with('[') && json.ends_with(']'), "{json}");
        assert!(json.contains("\"class\":\"Command Injection\""), "{json}");
        assert!(json.contains("\"line\":4"), "{json}");
        // Quotes in representations are escaped.
        assert!(!json.contains("c \"quoted"), "{json}");
        // Balanced braces/brackets (cheap well-formedness check).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn json_empty_reports() {
        let graph = build_source("x = 1\n", FileId(0)).unwrap();
        assert_eq!(reports_to_json(&[], &graph), "[]");
    }

    #[test]
    fn reports_sorted_by_severity() {
        let src = "
from flask import request
import flask, os
x = request.args.get('c')
flask.redirect(x)
os.system(x)
";
        let graph = build_source(src, FileId(0)).unwrap();
        let spec = TaintSpec::parse(
            "o: flask.request.args.get()\ni: os.system()\ni: flask.redirect()\n",
        )
        .unwrap();
        let violations = TaintAnalyzer::new(&graph, &spec).find_violations();
        let text = render_reports(&violations, &graph);
        let cmd = text.find("[Command Injection]").expect("cmd report");
        let redir = text.find("[Open Redirect]").expect("redirect report");
        assert!(cmd < redir, "command injection must sort first:\n{text}");
    }
}
