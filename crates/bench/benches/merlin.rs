//! Merlin baseline benchmarks backing Tab. 2: inference cost on collapsed
//! vs uncollapsed graphs and across application sizes, plus the
//! Seldon-vs-Merlin head-to-head the paper's §7.4 motivates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seldon_core::{analyze_project, run_seldon, SeldonOptions};
use seldon_corpus::{generate_corpus, CorpusOptions, Universe};
use seldon_merlin::{run_merlin, Inference, MerlinOptions};
use seldon_propgraph::PropagationGraph;

fn project_graph(projects: usize) -> PropagationGraph {
    let universe = Universe::new();
    let corpus = generate_corpus(
        &universe,
        &CorpusOptions { projects: projects.max(1), ..Default::default() },
    );
    let mut g = PropagationGraph::new();
    for p in 0..projects {
        let a = analyze_project(&corpus, p).expect("project");
        g.union(&a.graph);
    }
    g
}

fn bench_merlin_graph_types(c: &mut Criterion) {
    let universe = Universe::new();
    let seed = universe.seed_spec();
    let graph = project_graph(4);
    let mut g = c.benchmark_group("merlin_bp");
    g.sample_size(10);
    for collapsed in [true, false] {
        let label = if collapsed { "collapsed" } else { "uncollapsed" };
        g.bench_with_input(BenchmarkId::from_parameter(label), &graph, |b, graph| {
            b.iter(|| {
                let res = run_merlin(
                    graph,
                    &seed,
                    &MerlinOptions { collapsed, max_iters: 30, ..Default::default() },
                );
                res.factors
            })
        });
    }
    g.finish();
}

fn bench_merlin_vs_seldon(c: &mut Criterion) {
    let universe = Universe::new();
    let seed = universe.seed_spec();
    let graph = project_graph(4);
    let mut g = c.benchmark_group("merlin_vs_seldon_same_graph");
    g.sample_size(10);
    g.bench_function("merlin_bp", |b| {
        b.iter(|| {
            run_merlin(
                &graph,
                &seed,
                &MerlinOptions { max_iters: 30, ..Default::default() },
            )
            .factors
        })
    });
    g.bench_function("merlin_gibbs", |b| {
        b.iter(|| {
            run_merlin(
                &graph,
                &seed,
                &MerlinOptions {
                    inference: Inference::Gibbs { burn_in: 50, seed: 1 },
                    max_iters: 200,
                    ..Default::default()
                },
            )
            .factors
        })
    });
    g.bench_function("seldon_linear", |b| {
        b.iter(|| {
            let opts = SeldonOptions {
                gen: seldon_constraints::GenOptions { rep_cutoff: 2, ..Default::default() },
                ..Default::default()
            };
            run_seldon(&graph, &seed, &opts).extraction.spec.role_count()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_merlin_graph_types, bench_merlin_vs_seldon);
criterion_main!(benches);
