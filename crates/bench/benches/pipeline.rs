//! Pipeline benchmarks backing Fig. 10 (linear scaling of inference with
//! corpus size) and Tab. 1 (constraint-system construction cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use seldon_constraints::{generate, GenOptions};
use seldon_core::{analyze_corpus, run_seldon, SeldonOptions};
use seldon_corpus::{generate_corpus, CorpusOptions, Universe};
use seldon_propgraph::{build_source, FileId};

fn bench_graph_build(c: &mut Criterion) {
    let universe = Universe::new();
    let corpus = generate_corpus(&universe, &CorpusOptions { projects: 40, ..Default::default() });
    let files: Vec<String> = corpus.files().map(|(_, f)| f.content.clone()).collect();
    let bytes: usize = files.iter().map(String::len).sum();
    let mut g = c.benchmark_group("graph_build");
    g.throughput(Throughput::Bytes(bytes as u64));
    g.bench_function("per_file_graphs", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for (i, src) in files.iter().enumerate() {
                let graph = build_source(src, FileId(i as u32)).expect("parses");
                total += graph.event_count();
            }
            total
        })
    });
    g.finish();
}

fn bench_constraint_generation(c: &mut Criterion) {
    let universe = Universe::new();
    let corpus = generate_corpus(&universe, &CorpusOptions { projects: 60, ..Default::default() });
    let analyzed = analyze_corpus(&corpus, 4).expect("parses");
    let seed = universe.seed_spec();
    c.bench_function("constraint_generation", |b| {
        b.iter(|| generate(&analyzed.graph, &seed, &GenOptions::default()).constraint_count())
    });
}

/// Fig. 10: end-to-end inference time at doubling corpus sizes. Linear
/// scaling means time/size is constant across the group.
fn bench_fig10_scaling(c: &mut Criterion) {
    let universe = Universe::new();
    let seed = universe.seed_spec();
    let mut g = c.benchmark_group("fig10_inference_scaling");
    g.sample_size(10);
    for projects in [25usize, 50, 100, 200] {
        let corpus =
            generate_corpus(&universe, &CorpusOptions { projects, ..Default::default() });
        let analyzed = analyze_corpus(&corpus, 4).expect("parses");
        g.throughput(Throughput::Elements(corpus.file_count() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(projects), &analyzed, |b, a| {
            b.iter(|| {
                let run = run_seldon(&a.graph, &seed, &SeldonOptions::default());
                run.extraction.spec.role_count()
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_graph_build,
    bench_constraint_generation,
    bench_fig10_scaling
);
criterion_main!(benches);
