//! Benchmarks for the interned (Symbol-keyed) pipeline hot paths this
//! refactor targets: per-file graph union into the global graph and
//! constraint generation with the memoized blacklist matcher.
//!
//! The corpus matches `BENCH_intern.json` (150 projects ≈ 600+ files) so
//! criterion numbers are comparable with the recorded before/after medians.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use seldon_constraints::{generate, GenOptions};
use seldon_corpus::{generate_corpus, CorpusOptions, Universe};
use seldon_propgraph::{build_source, FileId, PropagationGraph};

fn corpus_graphs() -> (Vec<PropagationGraph>, usize) {
    let universe = Universe::new();
    let corpus = generate_corpus(
        &universe,
        &CorpusOptions {
            projects: 150,
            files_per_project: (3, 5),
            rng_seed: 0xC0FFEE,
            ..Default::default()
        },
    );
    let graphs: Vec<PropagationGraph> = corpus
        .files()
        .enumerate()
        .map(|(i, (_, f))| build_source(&f.content, FileId(i as u32)).expect("parses"))
        .collect();
    let files = graphs.len();
    (graphs, files)
}

fn bench_union(c: &mut Criterion) {
    let (graphs, files) = corpus_graphs();
    let mut g = c.benchmark_group("intern_union");
    g.throughput(Throughput::Elements(files as u64));
    g.bench_function("sequential_fold", |b| {
        b.iter(|| {
            let mut global = PropagationGraph::new();
            global.reserve_events(graphs.iter().map(PropagationGraph::event_count).sum());
            for pg in &graphs {
                global.union(pg);
            }
            global.event_count()
        })
    });
    g.finish();
}

fn bench_generation(c: &mut Criterion) {
    let (graphs, files) = corpus_graphs();
    let mut global = PropagationGraph::new();
    for pg in &graphs {
        global.union(pg);
    }
    let seed = Universe::new().seed_spec();
    let mut g = c.benchmark_group("intern_generation");
    g.throughput(Throughput::Elements(files as u64));
    g.bench_function("symbol_keyed_gen", |b| {
        b.iter(|| generate(&global, &seed, &GenOptions::default()).constraint_count())
    });
    g.finish();
}

criterion_group!(benches, bench_union, bench_generation);
criterion_main!(benches);
