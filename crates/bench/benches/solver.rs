//! Solver benchmarks: projected-Adam cost versus constraint-system size
//! (the scalability core of the paper's claim), plus extraction cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use seldon_constraints::{ConstraintSystem, FlowConstraint, Term};
use seldon_propgraph::EventId;
use seldon_solver::{extract, solve, ExtractOptions, SolveOptions};
use seldon_specs::Role;

/// Builds a synthetic chain-structured constraint system with `n` triples
/// of (source, sanitizer, sink) variables and 2 constraints per triple.
fn synthetic_system(n: usize) -> ConstraintSystem {
    let mut sys = ConstraintSystem::new(0.75);
    for i in 0..n {
        let s = sys.rep(&format!("src_{i}()"));
        let m = sys.rep(&format!("san_{i}()"));
        let t = sys.rep(&format!("snk_{i}()"));
        let vs = sys.var(s, Role::Source);
        let vm = sys.var(m, Role::Sanitizer);
        let vt = sys.var(t, Role::Sink);
        if i % 10 == 0 {
            sys.pin(vs, 1.0);
            sys.pin(vt, 1.0);
        }
        sys.add_constraint(FlowConstraint {
            lhs: vec![Term { var: vs, coeff: 1.0 }, Term { var: vt, coeff: 1.0 }],
            rhs: vec![Term { var: vm, coeff: 1.0 }],
            ..Default::default()
        });
        sys.add_constraint(FlowConstraint {
            lhs: vec![Term { var: vs, coeff: 1.0 }, Term { var: vm, coeff: 1.0 }],
            rhs: vec![Term { var: vt, coeff: 1.0 }],
            ..Default::default()
        });
        sys.event_reps.push((EventId(i as u32), vec![s, m, t]));
    }
    sys
}

fn bench_adam_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("adam_solve_scaling");
    g.sample_size(10);
    for n in [1_000usize, 4_000, 16_000] {
        let sys = synthetic_system(n);
        g.throughput(Throughput::Elements(sys.constraint_count() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &sys, |b, sys| {
            b.iter(|| {
                let sol = solve(
                    sys,
                    &SolveOptions { max_iters: 100, ..Default::default() },
                );
                sol.objective
            })
        });
    }
    g.finish();
}

fn bench_extraction(c: &mut Criterion) {
    let sys = synthetic_system(10_000);
    let sol = solve(&sys, &SolveOptions { max_iters: 100, ..Default::default() });
    c.bench_function("spec_extraction_10k", |b| {
        b.iter(|| extract(&sys, &sol, &ExtractOptions::default()).spec.role_count())
    });
}

criterion_group!(benches, bench_adam_scaling, bench_extraction);
criterion_main!(benches);
