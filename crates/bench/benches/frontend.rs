//! Front-end and taint-analysis benchmarks: lexer/parser throughput on
//! generated Python, points-to solving, and the Tab. 7 bug-finding sweep
//! with seed vs inferred specifications.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use seldon_core::{analyze_corpus, run_seldon, SeldonOptions};
use seldon_corpus::{generate_corpus, CorpusOptions, Universe};
use seldon_pyast::{lexer, parser};
use seldon_taint::TaintAnalyzer;

fn corpus_text(projects: usize) -> Vec<String> {
    let universe = Universe::new();
    generate_corpus(&universe, &CorpusOptions { projects, ..Default::default() })
        .files()
        .map(|(_, f)| f.content.clone())
        .collect()
}

fn bench_lexer(c: &mut Criterion) {
    let files = corpus_text(30);
    let bytes: usize = files.iter().map(String::len).sum();
    let mut g = c.benchmark_group("frontend");
    g.throughput(Throughput::Bytes(bytes as u64));
    g.bench_function("lexer", |b| {
        b.iter(|| {
            let mut tokens = 0usize;
            for f in &files {
                tokens += lexer::lex(f).expect("lexes").len();
            }
            tokens
        })
    });
    g.bench_function("parser", |b| {
        b.iter(|| {
            let mut stmts = 0usize;
            for f in &files {
                stmts += parser::parse(f).expect("parses").body.len();
            }
            stmts
        })
    });
    g.finish();
}

fn bench_taint_sweep(c: &mut Criterion) {
    let universe = Universe::new();
    let corpus = generate_corpus(&universe, &CorpusOptions { projects: 80, ..Default::default() });
    let analyzed = analyze_corpus(&corpus, 4).expect("parses");
    let seed = universe.seed_spec();
    let run = run_seldon(&analyzed.graph, &seed, &SeldonOptions::default());
    let mut combined = seed.clone();
    combined.merge(&run.extraction.spec);

    let mut g = c.benchmark_group("taint_sweep");
    g.sample_size(20);
    g.bench_function("seed_spec", |b| {
        b.iter(|| {
            TaintAnalyzer::new(&analyzed.graph, &seed)
                .find_violations()
                .len()
        })
    });
    g.bench_function("inferred_spec", |b| {
        b.iter(|| {
            TaintAnalyzer::new(&analyzed.graph, &combined)
                .find_violations()
                .len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_lexer, bench_taint_sweep);
criterion_main!(benches);
