//! Measures the cost of the telemetry instrumentation on the interning
//! hot paths (graph union + constraint generation). The disabled-handle
//! variant runs the exact span/counter calls the pipeline makes, so any
//! regression against the bare baseline is overhead the zero-telemetry
//! path would pay on every run.
//!
//! The corpus matches `BENCH_intern.json` / `BENCH_telemetry.json`
//! (150 projects ≈ 600+ files) so criterion numbers are comparable with
//! the recorded medians.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use seldon_constraints::{generate, generate_with_stats, GenOptions};
use seldon_corpus::{generate_corpus, CorpusOptions, Universe};
use seldon_propgraph::{build_source, FileId, PropagationGraph};
use seldon_specs::TaintSpec;
use seldon_telemetry::{stage, Telemetry};

fn corpus_graphs() -> (Vec<PropagationGraph>, usize) {
    let universe = Universe::new();
    let corpus = generate_corpus(
        &universe,
        &CorpusOptions {
            projects: 150,
            files_per_project: (3, 5),
            rng_seed: 0xC0FFEE,
            ..Default::default()
        },
    );
    let graphs: Vec<PropagationGraph> = corpus
        .files()
        .enumerate()
        .map(|(i, (_, f))| build_source(&f.content, FileId(i as u32)).expect("parses"))
        .collect();
    let files = graphs.len();
    (graphs, files)
}

/// The bare hot path: union fold + constraint generation, no telemetry.
fn bare_gen_union(graphs: &[PropagationGraph], seed: &TaintSpec) -> usize {
    let mut global = PropagationGraph::new();
    global.reserve_events(graphs.iter().map(PropagationGraph::event_count).sum());
    for pg in graphs {
        global.union(pg);
    }
    generate(&global, seed, &GenOptions::default()).constraint_count()
}

/// The same work instrumented exactly as the pipeline does it: a union
/// span with counters, then `generate_with_stats` feeding the
/// representation and constraints aggregate spans.
fn instrumented_gen_union(
    graphs: &[PropagationGraph],
    seed: &TaintSpec,
    tele: &Telemetry,
) -> usize {
    let union_span = tele.span(stage::UNION);
    let mut global = PropagationGraph::new();
    global.reserve_events(graphs.iter().map(PropagationGraph::event_count).sum());
    for pg in graphs {
        global.union(pg);
    }
    union_span.counter("events", global.event_count() as f64);
    union_span.counter("edges", global.edge_count() as f64);
    drop(union_span);
    let (sys, stats) = generate_with_stats(&global, seed, &GenOptions::default());
    tele.aggregate_span(
        stage::REPRESENTATION,
        stats.select_time,
        &[
            ("candidate_events", stats.candidate_events as f64),
            ("surviving_reps", stats.surviving_reps as f64),
        ],
    );
    tele.aggregate_span(
        stage::CONSTRAINTS,
        stats.collect_time,
        &[("constraints", sys.constraint_count() as f64)],
    );
    sys.constraint_count()
}

fn bench_overhead(c: &mut Criterion) {
    let (graphs, files) = corpus_graphs();
    let seed = Universe::new().seed_spec();
    let mut g = c.benchmark_group("telemetry_overhead");
    g.throughput(Throughput::Elements(files as u64));
    g.bench_function("baseline_gen_union", |b| b.iter(|| bare_gen_union(&graphs, &seed)));
    let disabled = Telemetry::disabled();
    g.bench_function("disabled_sink_gen_union", |b| {
        b.iter(|| instrumented_gen_union(&graphs, &seed, &disabled))
    });
    g.bench_function("recording_sink_gen_union", |b| {
        b.iter(|| {
            let tele = Telemetry::recording();
            let n = instrumented_gen_union(&graphs, &seed, &tele);
            // Drain so the recorder never grows across iterations.
            let spans = tele.take_spans();
            n + spans.len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
