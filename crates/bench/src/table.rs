//! Plain-text table rendering for the experiment harness.

/// A formatted experiment table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Table caption, e.g. `Table 5: ...`.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// Free-form footnotes printed below the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Creates a table with a title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: &[String]) {
        self.rows.push(cells.to_vec());
    }

    /// Appends a footnote.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for (i, &width) in widths.iter().enumerate().take(ncols) {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!(" {cell:<width$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{:-<width$}|", "", width = w + 2));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        for n in &self.notes {
            out.push_str(&format!("\n> {n}\n"));
        }
        out.push('\n');
        out
    }
}

/// Formats a float as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a duration in adaptive units.
pub fn dur(d: std::time::Duration) -> String {
    let s = d.as_secs_f64();
    if s < 1.0 {
        format!("{:.0} ms", s * 1e3)
    } else if s < 120.0 {
        format!("{s:.2} s")
    } else {
        format!("{:.1} min", s / 60.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("Table X: demo", &["name", "value"]);
        t.row(&["a".to_string(), "1".to_string()]);
        t.row(&["long-name".to_string(), "2".to_string()]);
        t.note("a note");
        let s = t.render();
        assert!(s.contains("## Table X: demo"));
        assert!(s.contains("| long-name | 2     |"));
        assert!(s.contains("> a note"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.666), "66.6%");
        assert_eq!(dur(std::time::Duration::from_millis(12)), "12 ms");
        assert_eq!(dur(std::time::Duration::from_secs(3)), "3.00 s");
        assert_eq!(dur(std::time::Duration::from_secs(600)), "10.0 min");
    }
}
