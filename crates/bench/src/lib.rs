//! # seldon-bench
//!
//! The experiment harness of the Seldon reproduction: one function per
//! table and figure of the paper's evaluation (§7), shared by the `tables`
//! binary (which regenerates EXPERIMENTS.md content) and the Criterion
//! benches.

#![warn(missing_docs)]

pub mod experiments;
pub mod table;

pub use experiments::{
    ablations, backoff_ablation, combined_spec, convergence, extension_param, solver_gap, template_ablation, fig10, fig11, q5, q6, run_all, table1, table2, table3, table4,
    table5, table6, table7, ExperimentConfig, Workbench,
};
pub use table::{dur, pct, Table};
