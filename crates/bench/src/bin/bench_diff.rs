//! Compares two benchmark records (`BENCH_*.json`) with tolerance
//! thresholds — the CI regression gate.
//!
//! ```text
//! bench_diff <baseline.json> <candidate.json> [--tolerance <pct>]
//! ```
//!
//! Cost keys (suffix `_ns`/`_us`/`_ms`/`_s`/`_bytes`) gate at the relative
//! tolerance (default ±15%) with a per-unit absolute slack so noise on
//! tiny scalars never trips the gate; every other changed key is reported
//! as a non-gating note. Exit codes: `0` — no regression (improvements
//! allowed); `1` — at least one regression; `2` — usage error.

use seldon_telemetry::{diff_bench, BenchRecord, DiffOptions};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: bench_diff <baseline.json> <candidate.json> [--tolerance <pct>]");
    ExitCode::from(2)
}

fn load(path: &str) -> Result<BenchRecord, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    BenchRecord::from_json(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut opts = DiffOptions::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tolerance" => {
                let Some(v) = it.next() else {
                    return usage();
                };
                match v.parse::<f64>() {
                    Ok(pct) => opts.tolerance_pct = pct,
                    Err(_) => return usage(),
                }
            }
            "-h" | "--help" => return usage(),
            other if other.starts_with('-') => return usage(),
            other => paths.push(other.to_string()),
        }
    }
    let [baseline, candidate] = paths.as_slice() else {
        return usage();
    };
    let (a, b) = match (load(baseline), load(candidate)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let report = diff_bench(&a, &b, &opts);
    println!("bench_diff: {baseline} -> {candidate} (tolerance ±{}%)", opts.tolerance_pct);
    print!("{}", report.render());
    if report.regressed() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
