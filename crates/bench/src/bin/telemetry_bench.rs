//! Measures the overhead the telemetry instrumentation adds to the
//! interning hot paths (graph union + constraint generation). Three
//! variants run over the `BENCH_intern.json` corpus:
//!
//! - `baseline`: the bare union fold + `generate`, as `intern_bench`;
//! - `noop_sink`: the same work through the pipeline's span/counter call
//!   sites with a disabled [`Telemetry`] handle — the cost every
//!   telemetry-free run pays;
//! - `recording`: a recording handle, for the opt-in `--telemetry` cost.
//!
//! Emits one JSON object on stdout (medians of 5 rounds, milliseconds);
//! `BENCH_telemetry.json` records a release-build run.

use seldon_constraints::{generate, generate_with_stats, GenOptions};
use seldon_corpus::{generate_corpus, CorpusOptions, Universe};
use seldon_propgraph::{build_source, FileId, PropagationGraph};
use seldon_specs::TaintSpec;
use seldon_telemetry::{stage, BenchRecord, Telemetry};
use std::time::Instant;

const ROUNDS: usize = 5;

fn median_ms(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn bare_gen_union(graphs: &[PropagationGraph], seed: &TaintSpec) -> usize {
    let mut global = PropagationGraph::new();
    global.reserve_events(graphs.iter().map(PropagationGraph::event_count).sum());
    for pg in graphs {
        global.union(pg);
    }
    generate(&global, seed, &GenOptions::default()).constraint_count()
}

/// The union + generation work instrumented exactly as the pipeline does
/// it (union span with counters, representation/constraints aggregates).
fn instrumented_gen_union(
    graphs: &[PropagationGraph],
    seed: &TaintSpec,
    tele: &Telemetry,
) -> usize {
    let union_span = tele.span(stage::UNION);
    let mut global = PropagationGraph::new();
    global.reserve_events(graphs.iter().map(PropagationGraph::event_count).sum());
    for pg in graphs {
        global.union(pg);
    }
    union_span.counter("events", global.event_count() as f64);
    union_span.counter("edges", global.edge_count() as f64);
    drop(union_span);
    let (sys, stats) = generate_with_stats(&global, seed, &GenOptions::default());
    tele.aggregate_span(
        stage::REPRESENTATION,
        stats.select_time,
        &[
            ("candidate_events", stats.candidate_events as f64),
            ("surviving_reps", stats.surviving_reps as f64),
        ],
    );
    tele.aggregate_span(
        stage::CONSTRAINTS,
        stats.collect_time,
        &[("constraints", sys.constraint_count() as f64)],
    );
    sys.constraint_count()
}

fn main() {
    let universe = Universe::new();
    let corpus = generate_corpus(
        &universe,
        &CorpusOptions {
            projects: 150,
            files_per_project: (3, 5),
            rng_seed: 0xC0FFEE,
            ..Default::default()
        },
    );
    let files = corpus.file_count();
    assert!(files >= 500, "bench corpus too small: {files} files");
    let graphs: Vec<PropagationGraph> = corpus
        .files()
        .enumerate()
        .map(|(i, (_, f))| build_source(&f.content, FileId(i as u32)).expect("parses"))
        .collect();
    let seed = universe.seed_spec();

    let mut baseline = Vec::with_capacity(ROUNDS);
    let mut constraints = 0usize;
    for _ in 0..ROUNDS {
        let t = Instant::now();
        constraints = bare_gen_union(&graphs, &seed);
        baseline.push(t.elapsed().as_secs_f64() * 1e3);
    }

    let disabled = Telemetry::disabled();
    let mut noop = Vec::with_capacity(ROUNDS);
    let mut noop_constraints = 0usize;
    for _ in 0..ROUNDS {
        let t = Instant::now();
        noop_constraints = instrumented_gen_union(&graphs, &seed, &disabled);
        noop.push(t.elapsed().as_secs_f64() * 1e3);
    }
    assert_eq!(constraints, noop_constraints, "instrumentation must not change output");

    let mut recording = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        let tele = Telemetry::recording();
        let t = Instant::now();
        instrumented_gen_union(&graphs, &seed, &tele);
        recording.push(t.elapsed().as_secs_f64() * 1e3);
        assert_eq!(tele.take_spans().len(), 3, "union + two aggregates");
    }

    let baseline_ms = median_ms(baseline);
    let noop_ms = median_ms(noop);
    let recording_ms = median_ms(recording);
    let overhead_pct = (noop_ms - baseline_ms) / baseline_ms * 100.0;
    let mut r = BenchRecord::new(
        "telemetry",
        "telemetry_bench",
        format!("medians of {ROUNDS} rounds, release build; gen+union stage in ms"),
    );
    r.num("corpus", "files", files as f64)
        .num("corpus", "constraints", constraints as f64)
        .num("overhead", "baseline_ms", baseline_ms)
        .num("overhead", "noop_sink_ms", noop_ms)
        .num("overhead", "recording_ms", recording_ms)
        .num("overhead", "noop_overhead_pct", overhead_pct);
    println!("{}", r.to_json());
}
