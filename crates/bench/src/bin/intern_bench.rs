//! Measures the hot phases the interning refactor targets: per-file graph
//! union into the global propagation graph, and constraint generation over
//! it. Emits one JSON object on stdout and (optionally) writes the learned
//! spec text to the path given as the first argument, so before/after runs
//! can be diffed byte-for-byte.
//!
//! The corpus is fixed (≥500 files, seeded RNG) so numbers are comparable
//! across builds of the same machine.

use seldon_constraints::{generate, GenOptions};
use seldon_core::{analyze_corpus, run_seldon, SeldonOptions};
use seldon_corpus::{generate_corpus, CorpusOptions, Universe};
use seldon_propgraph::{build_source, FileId, PropagationGraph};
use seldon_telemetry::BenchRecord;
use std::time::Instant;

const ROUNDS: usize = 5;

fn median_ms(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Regenerates the golden learned spec for the `tests/end_to_end.rs`
/// fixture (`--golden <path>`), mirroring that file's corpus options.
fn write_golden(path: &str) {
    let universe = Universe::new();
    let corpus = generate_corpus(
        &universe,
        &CorpusOptions { projects: 60, rng_seed: 1234, ..Default::default() },
    );
    let analyzed = analyze_corpus(&corpus, 4).expect("fixture corpus analyzes");
    let run = run_seldon(&analyzed.graph, &universe.seed_spec(), &SeldonOptions::default());
    std::fs::write(path, run.extraction.spec.to_text()).expect("write golden spec");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--golden") {
        write_golden(args.get(1).expect("--golden needs a path"));
        return;
    }
    let spec_out = args.first().cloned();

    let universe = Universe::new();
    let opts = CorpusOptions {
        projects: 150,
        files_per_project: (3, 5),
        rng_seed: 0xC0FFEE,
        ..Default::default()
    };
    let corpus = generate_corpus(&universe, &opts);
    let files = corpus.file_count();
    assert!(files >= 500, "bench corpus too small: {files} files");

    // Per-file graphs, built once (build cost is out of scope here).
    let graphs: Vec<PropagationGraph> = corpus
        .files()
        .enumerate()
        .map(|(i, (_, f))| build_source(&f.content, FileId(i as u32)).expect("generated file parses"))
        .collect();

    // --- union ------------------------------------------------------------
    let mut union_samples = Vec::with_capacity(ROUNDS);
    let mut global = PropagationGraph::new();
    for round in 0..ROUNDS {
        let t = Instant::now();
        let mut g = PropagationGraph::new();
        for pg in &graphs {
            g.union(pg);
        }
        union_samples.push(t.elapsed().as_secs_f64() * 1e3);
        if round == 0 {
            global = g;
        }
    }

    // --- constraint generation --------------------------------------------
    let seed = universe.seed_spec();
    let mut gen_samples = Vec::with_capacity(ROUNDS);
    let mut constraints = 0usize;
    let mut vars = 0usize;
    for _ in 0..ROUNDS {
        let t = Instant::now();
        let sys = generate(&global, &seed, &GenOptions::default());
        gen_samples.push(t.elapsed().as_secs_f64() * 1e3);
        constraints = sys.constraint_count();
        vars = sys.var_count();
    }

    // --- full run, for the output-identity check ---------------------------
    let run = run_seldon(&global, &seed, &SeldonOptions::default());
    let spec_text = run.extraction.spec.to_text();
    if let Some(path) = spec_out {
        std::fs::write(&path, &spec_text).expect("write spec text");
    }

    let union_ms = median_ms(union_samples);
    let gen_ms = median_ms(gen_samples);
    let mut r = BenchRecord::new(
        "intern",
        "intern_bench",
        format!("medians of {ROUNDS} rounds, release build; union and gen stages in ms"),
    );
    r.num("corpus", "files", files as f64)
        .num("corpus", "events", global.event_count() as f64)
        .num("corpus", "edges", global.edge_count() as f64)
        .num("timing", "union_ms", union_ms)
        .num("timing", "gen_ms", gen_ms)
        .num("timing", "gen_union_ms", union_ms + gen_ms)
        .num("output", "constraints", constraints as f64)
        .num("output", "vars", vars as f64)
        .num("output", "learned_entries", run.extraction.spec.role_count() as f64)
        .num("output", "spec_bytes", spec_text.len() as f64);
    println!("{}", r.to_json());
}
