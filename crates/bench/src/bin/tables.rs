//! Regenerates the paper's tables and figures from the synthetic corpus.
//!
//! Usage: `cargo run --release -p seldon-bench --bin tables -- [experiment...]`
//! where each experiment is one of: table1 table2 table3 table4 table5
//! fig10 fig11 table6 table7 q5 q6 ablations all. With no arguments, all
//! experiments run. `--projects N` scales the corpus.

use seldon_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ExperimentConfig::default();
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--projects" => {
                cfg.projects = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(cfg.projects);
            }
            "--threads" => {
                cfg.threads = it.next().and_then(|v| v.parse().ok()).unwrap_or(cfg.threads);
            }
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        print!("{}", run_all(&cfg));
        return;
    }
    // fig10 does not need the shared workbench.
    let needs_wb = wanted.iter().any(|w| w != "fig10");
    let wb = if needs_wb { Some(Workbench::new(&cfg)) } else { None };
    for w in &wanted {
        let table = match (w.as_str(), &wb) {
            ("fig10", _) => fig10(&cfg),
            ("table1", Some(wb)) => table1(wb),
            ("table2", Some(wb)) => table2(wb),
            ("table3", Some(wb)) => table3(wb),
            ("table4", Some(wb)) => table4(wb),
            ("table5", Some(wb)) => table5(wb),
            ("fig11", Some(wb)) => fig11(wb),
            ("table6", Some(wb)) => table6(wb),
            ("table7", Some(wb)) => table7(wb),
            ("q5", Some(wb)) => q5(wb),
            ("q6", Some(wb)) => q6(wb),
            ("ablations", Some(wb)) => ablations(wb),
            ("extension", Some(wb)) => extension_param(wb),
            ("solver_gap", Some(wb)) => solver_gap(wb),
            ("templates", Some(wb)) => template_ablation(wb),
            ("backoff", Some(wb)) => backoff_ablation(wb),
            ("convergence", Some(wb)) => convergence(wb),
            (other, _) => {
                eprintln!("unknown experiment: {other}");
                std::process::exit(2);
            }
        };
        print!("{}", table.render());
    }
}
