//! Measures the solve stage: the pre-PR naive `Vec<FlowConstraint>` hot
//! loop against the compiled CSR kernel, on a corpus scaled so solving
//! dominates. Emits one [`BenchRecord`] JSON object on stdout
//! (`BENCH_solver.json` records a release-build run) covering the
//! full-budget vs early-stop comparison and a per-thread-count scaling
//! table (`--threads-sweep 1,2,4,8` to override the sweep), and asserts
//! output identity: the extracted spec must be byte-identical across
//! {naive, compiled full-budget, compiled early-stop} and the scores
//! bitwise equal across every swept thread count.
//!
//! `--determinism [golden_path] [--early-stop]` instead runs the golden
//! e2e fixture at 1 and 4 solver threads and diffs the extracted specs
//! (and, when a path is given, the checked-in golden file) — the CI
//! thread-determinism gate. The gate solves with the legacy full-budget
//! options by default; `--early-stop` runs the same leg with the default
//! plateau detector enabled, which must reproduce the same golden spec.
//! Exits non-zero on any mismatch.

use seldon_core::{analyze_corpus, run_seldon, SeldonOptions};
use seldon_corpus::{generate_corpus, CorpusOptions, Universe};
use seldon_solver::{
    extract, solve_compiled, Adam, AdamConfig, CompiledSystem, EarlyStop, ExtractOptions,
    SolveOptions, Solution,
};
use seldon_telemetry::BenchRecord;
use std::process::ExitCode;
use std::time::Instant;

const ROUNDS: usize = 3;

fn median_ms(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// The pre-PR solver, kept verbatim as the bench baseline: a per-epoch
/// walk over `Vec<FlowConstraint>` with separate lhs/rhs term sums, a
/// dense gradient buffer, and `Adam::step_projected` — including the
/// stall/divergence/restart control flow, so epoch counts are comparable.
mod naive {
    use super::*;
    use seldon_constraints::ConstraintSystem;

    const RESTART_LR_SCALE: f64 = 0.25;

    struct AdamRun {
        x: Vec<f64>,
        iterations: usize,
        diverged: bool,
    }

    fn run_adam(sys: &ConstraintSystem, opts: &SolveOptions, lr_scale: f64) -> AdamRun {
        let n = sys.var_count();
        let mut x = vec![0.0f64; n];
        let pinned: Vec<(usize, f64)> =
            sys.pinned_vars().map(|(v, val)| (v.index(), val)).collect();
        let apply_pins = |x: &mut [f64]| {
            for &(i, val) in &pinned {
                x[i] = val;
            }
        };
        apply_pins(&mut x);

        let lr = opts.adam.lr * lr_scale;
        let mut adam = Adam::new(n, AdamConfig { lr, ..opts.adam.clone() });
        let mut grad = vec![0.0f64; n];
        let mut best = f64::INFINITY;
        let mut stall = 0usize;
        let mut iterations = 0usize;
        let mut diverged = false;

        for iter in 0..opts.max_iters {
            iterations = iter + 1;
            grad.iter_mut().for_each(|g| *g = opts.lambda);
            let mut violation = 0.0;
            for c in &sys.constraints {
                let lhs: f64 = c.lhs.iter().map(|t| t.coeff * x[t.var.index()]).sum();
                let rhs: f64 = c.rhs.iter().map(|t| t.coeff * x[t.var.index()]).sum();
                let gap = lhs - rhs - sys.c;
                if gap > 0.0 {
                    violation += gap;
                    for t in &c.lhs {
                        grad[t.var.index()] += t.coeff;
                    }
                    for t in &c.rhs {
                        grad[t.var.index()] -= t.coeff;
                    }
                }
            }
            let objective = violation + opts.lambda * x.iter().sum::<f64>();
            if !objective.is_finite() {
                diverged = true;
                break;
            }
            adam.step_projected(&mut x, &grad, 0.0, 1.0);
            apply_pins(&mut x);
            if x.iter().any(|s| !s.is_finite()) {
                diverged = true;
                break;
            }
            if objective + opts.tol < best {
                best = objective;
                stall = 0;
            } else {
                stall += 1;
                if stall >= 50 {
                    break;
                }
            }
        }
        AdamRun { x, iterations, diverged }
    }

    pub fn solve(sys: &ConstraintSystem, opts: &SolveOptions) -> Solution {
        let mut run = run_adam(sys, opts, 1.0);
        if run.diverged {
            run = run_adam(sys, opts, RESTART_LR_SCALE);
        }
        let AdamRun { mut x, iterations, diverged } = run;
        for s in &mut x {
            if !s.is_finite() {
                *s = 0.0;
            } else {
                *s = s.clamp(0.0, 1.0);
            }
        }
        for (v, val) in sys.pinned_vars() {
            x[v.index()] = val;
        }
        let mut violation = 0.0;
        for c in &sys.constraints {
            let lhs: f64 = c.lhs.iter().map(|t| t.coeff * x[t.var.index()]).sum();
            let rhs: f64 = c.rhs.iter().map(|t| t.coeff * x[t.var.index()]).sum();
            let gap = lhs - rhs - sys.c;
            if gap > 0.0 {
                violation += gap;
            }
        }
        let objective = violation + opts.lambda * x.iter().sum::<f64>();
        Solution { scores: x, objective, violation, iterations, diverged, ..Default::default() }
    }
}

/// The CI thread-determinism gate: golden fixture, solver threads 1 vs 4,
/// extracted specs diffed byte-for-byte (plus the checked-in golden file
/// when a path is given). `early_stop` selects the gate leg: the legacy
/// full-budget solve, or the same solve with the default plateau detector
/// enabled — both must land on the same golden spec.
fn determinism_gate(golden_path: Option<&str>, early_stop: Option<EarlyStop>) -> ExitCode {
    let universe = Universe::new();
    let corpus = generate_corpus(
        &universe,
        &CorpusOptions { projects: 60, rng_seed: 1234, ..Default::default() },
    );
    let analyzed = analyze_corpus(&corpus, 4).expect("fixture corpus analyzes");
    let seed = universe.seed_spec();
    let solve_with = |threads: usize| {
        let opts = SeldonOptions {
            solve: SolveOptions {
                threads,
                early_stop: early_stop.clone(),
                ..Default::default()
            },
            ..Default::default()
        };
        run_seldon(&analyzed.graph, &seed, &opts)
    };
    let run1 = solve_with(1);
    let run4 = solve_with(4);
    let spec1 = run1.extraction.spec.to_text();
    let spec4 = run4.extraction.spec.to_text();
    let scores_equal = run1.solution.scores.len() == run4.solution.scores.len()
        && run1
            .solution
            .scores
            .iter()
            .zip(&run4.solution.scores)
            .all(|(a, b)| a.to_bits() == b.to_bits());
    if !scores_equal {
        eprintln!("determinism FAIL: scores differ between 1 and 4 solver threads");
        return ExitCode::from(1);
    }
    if spec1 != spec4 {
        eprintln!("determinism FAIL: extracted spec differs between 1 and 4 solver threads");
        return ExitCode::from(1);
    }
    if let Some(path) = golden_path {
        let golden = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read golden spec {path}: {e}"));
        if spec1 != golden {
            eprintln!("determinism FAIL: extracted spec differs from {path}");
            return ExitCode::from(1);
        }
    }
    println!(
        "determinism PASS ({}): {} scores and {}-byte spec identical at 1 and 4 threads \
         (stop: {})",
        if early_stop.is_some() { "early-stop" } else { "full-budget" },
        run1.solution.scores.len(),
        spec1.len(),
        run1.solution.stop,
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--determinism") {
        let early_stop = if args.iter().any(|a| a == "--early-stop") {
            Some(EarlyStop::default())
        } else {
            None
        };
        let golden = args[1..].iter().find(|a| !a.starts_with("--")).map(String::as_str);
        return determinism_gate(golden, early_stop);
    }
    let mut projects = 1800usize;
    if let Some(i) = args.iter().position(|a| a == "--projects") {
        projects = args[i + 1].parse().expect("--projects expects a number");
    }
    let mut threads_sweep: Vec<usize> = vec![1, 2, 4, 8];
    if let Some(i) = args.iter().position(|a| a == "--threads-sweep") {
        threads_sweep = args[i + 1]
            .split(',')
            .map(|t| t.trim().parse().expect("--threads-sweep expects comma-separated counts"))
            .collect();
        assert!(!threads_sweep.is_empty(), "--threads-sweep expects at least one count");
    }

    let universe = Universe::new();
    let corpus = generate_corpus(
        &universe,
        &CorpusOptions {
            projects,
            files_per_project: (3, 5),
            rng_seed: 0xC0FFEE,
            ..Default::default()
        },
    );
    let analyzed = analyze_corpus(&corpus, 4).expect("bench corpus analyzes");
    let seed = universe.seed_spec();
    let run = run_seldon(&analyzed.graph, &seed, &SeldonOptions::default());
    let system = run.system;
    let full_opts = SolveOptions { early_stop: None, ..Default::default() };

    // --- before: the pre-PR naive loop (always full-budget) ----------------
    let mut before_samples = Vec::with_capacity(ROUNDS);
    let mut before = Solution::default();
    for _ in 0..ROUNDS {
        let t = Instant::now();
        before = naive::solve(&system, &full_opts);
        before_samples.push(t.elapsed().as_secs_f64() * 1e3);
    }

    // --- after: compile once, then full-budget vs early-stop ---------------
    let mut compile_samples = Vec::with_capacity(ROUNDS);
    let mut compiled = CompiledSystem::compile(&system);
    for _ in 0..ROUNDS {
        let t = Instant::now();
        compiled = CompiledSystem::compile(&system);
        compile_samples.push(t.elapsed().as_secs_f64() * 1e3);
    }
    let timed_solve = |threads: usize, early_stop: Option<EarlyStop>| {
        let opts = SolveOptions { threads, early_stop, ..Default::default() };
        let mut samples = Vec::with_capacity(ROUNDS);
        let mut solution = Solution::default();
        for _ in 0..ROUNDS {
            let t = Instant::now();
            solution = solve_compiled(&compiled, &opts);
            samples.push(t.elapsed().as_secs_f64() * 1e3);
        }
        (median_ms(samples), solution)
    };
    let (full_ms, full) = timed_solve(1, None);
    let (early_ms, early) = timed_solve(1, Some(EarlyStop::default()));

    // --- threads sweep: early-stop on, scores bitwise across the sweep -----
    let sweep: Vec<(usize, f64, Solution)> = threads_sweep
        .iter()
        .map(|&t| {
            let (ms, sol) = timed_solve(t, Some(EarlyStop::default()));
            (t, ms, sol)
        })
        .collect();
    let base_1t_ms = sweep
        .iter()
        .find(|(t, _, _)| *t == 1)
        .map(|(_, ms, _)| *ms)
        .unwrap_or(early_ms);

    // --- output identity ----------------------------------------------------
    let extract_opts = ExtractOptions::default();
    let spec_before = extract(&system, &before, &extract_opts).spec.to_text();
    let spec_full = extract(&system, &full, &extract_opts).spec.to_text();
    let spec_early = extract(&system, &early, &extract_opts).spec.to_text();
    assert_eq!(spec_before, spec_full, "compiled kernel must reproduce the naive spec");
    assert_eq!(spec_full, spec_early, "early-stop must learn the same spec as full budget");
    let mut scores_bitwise = true;
    for (t, _, sol) in &sweep {
        let same = early.scores.len() == sol.scores.len()
            && early.scores.iter().zip(&sol.scores).all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same, "scores at {t} threads must be bitwise identical to 1 thread");
        assert_eq!(early.iterations, sol.iterations, "stop epoch must be thread-invariant");
        scores_bitwise &= same;
    }

    let before_ms = median_ms(before_samples);
    let compile_ms = median_ms(compile_samples);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let max_iters = full_opts.max_iters;

    let mut r = BenchRecord::new(
        "solver",
        "solver_bench",
        format!(
            "medians of {ROUNDS} rounds, release build; solve stage wall-clock in ms; \
             scaling table sweeps solver threads with early-stop enabled"
        ),
    );
    r.num("corpus", "projects", projects as f64)
        .num("corpus", "files", corpus.file_count() as f64)
        .num("corpus", "constraints", system.constraint_count() as f64)
        .num("corpus", "rows", compiled.row_count() as f64)
        .num("corpus", "vars", system.var_count() as f64)
        .num("corpus", "terms", compiled.term_count() as f64)
        .num("corpus", "lanes", compiled.lane_count() as f64)
        .num("environment", "cores", cores as f64)
        .text(
            "environment",
            "note",
            &if cores == 1 {
                "single-core host at bench time: multi-thread rows in the scaling table \
                 measure determinism overhead, not parallelism"
                    .to_string()
            } else {
                format!(
                    "{cores}-core host at bench time: multi-thread rows in the scaling \
                     table measure real parallel scaling"
                )
            },
        )
        .num("before", "solve_ms", before_ms)
        .num("before", "iterations", before.iterations as f64)
        .num("before", "ms_per_iter", before_ms / before.iterations.max(1) as f64)
        .num("after_full_budget", "compile_ms", compile_ms)
        .num("after_full_budget", "solve_ms", full_ms)
        .num("after_full_budget", "iterations", full.iterations as f64)
        .num("after_full_budget", "speedup_vs_before", before_ms / full_ms)
        .num("after_early_stop", "solve_ms", early_ms)
        .num("after_early_stop", "iterations", early.iterations as f64)
        .num("after_early_stop", "speedup_vs_before", before_ms / early_ms)
        .num("early_stop", "budget_max_iters", max_iters as f64)
        .num("early_stop", "iterations_full", full.iterations as f64)
        .num("early_stop", "iterations_early", early.iterations as f64)
        .num("early_stop", "epochs_saved_vs_budget", early.epochs_saved as f64)
        .text("early_stop", "stop_reason_full", full.stop.as_str())
        .text("early_stop", "stop_reason_early", early.stop.as_str())
        .flag("early_stop", "spec_identical_full_vs_early", spec_full == spec_early);
    for (t, ms, sol) in &sweep {
        let section = format!("scaling_threads_{t}");
        r.num(&section, "solve_ms", *ms)
            .num(&section, "speedup_vs_1_thread", base_1t_ms / ms)
            .num(&section, "iterations", sol.iterations as f64);
    }
    r.flag("identity", "spec_identical_before_vs_after", spec_before == spec_full)
        .flag("identity", "spec_identical_full_vs_early_stop", spec_full == spec_early)
        .flag("identity", "scores_bitwise_across_threads_sweep", scores_bitwise);
    println!("{}", r.to_json());
    ExitCode::SUCCESS
}
