//! Measures the incremental daemon's delta latency against a cold batch
//! build, and gates its determinism guarantee.
//!
//! Over the standard 607-file bench corpus, one [`ServeEngine`] serves a
//! sequence of deltas per round:
//!
//! - `cold`: the initial full build (fresh engine, fresh cache) — the
//!   price `seldon learn` pays on every invocation;
//! - `noop`: an empty delta (served from the resident checkpoint);
//! - `unchanged`: a one-file comment edit (re-parse + fingerprint, no
//!   rebuild);
//! - `edit`: a one-file structural edit (incremental rebuild: fragment
//!   reuse for the other 606 files, warm-started solve).
//!
//! The delta speedup gate asserts the `unchanged` one-file edit beats
//! the cold build by at least 20×. `--determinism` instead verifies the
//! served spec is byte-identical to a cold batch `run_full` over the
//! same corpus state at 1 and 4 solver threads (exit on divergence),
//! which is what CI runs. Emits one JSON object on stdout;
//! `BENCH_serve.json` records a release-build run.

use seldon_cache::ArtifactCache;
use seldon_core::{run_full, AnalyzeOptions, FaultPolicy, SeldonOptions, WarmStartOptions};
use seldon_corpus::{generate_corpus, Corpus, CorpusOptions, Project, SourceFile, Universe};
use seldon_serve::{Delta, EngineConfig, ServeEngine};
use seldon_solver::SolveOptions;
use seldon_specs::TaintSpec;
use seldon_telemetry::BenchRecord;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

const ROUNDS: usize = 5;

fn median_ms(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// The 607-file bench corpus, flattened to sorted `(path, content)`
/// pairs (project-qualified paths, the order `seldon learn` analyzes).
fn bench_files() -> (Vec<(PathBuf, String)>, TaintSpec) {
    let universe = Universe::new();
    let corpus = generate_corpus(
        &universe,
        &CorpusOptions {
            projects: 150,
            files_per_project: (3, 5),
            rng_seed: 0xC0FFEE,
            ..Default::default()
        },
    );
    let mut files: Vec<(PathBuf, String)> = corpus
        .projects
        .iter()
        .flat_map(|p| {
            p.files
                .iter()
                .map(|f| (PathBuf::from(format!("{}/{}", p.name, f.path)), f.content.clone()))
        })
        .collect();
    files.sort_by(|a, b| a.0.cmp(&b.0));
    (files, universe.seed_spec())
}

fn batch_corpus(files: &[(PathBuf, String)]) -> Corpus {
    Corpus {
        projects: vec![Project {
            name: "cli".into(),
            files: files
                .iter()
                .map(|(p, c)| SourceFile { path: p.display().to_string(), content: c.clone() })
                .collect(),
        }],
        ..Default::default()
    }
}

fn seldon_opts(threads: usize) -> SeldonOptions {
    SeldonOptions {
        solve: SolveOptions { threads, ..Default::default() },
        warm_start: Some(WarmStartOptions::default()),
        ..Default::default()
    }
}

fn fresh_engine(files: &[(PathBuf, String)], seed: &TaintSpec, threads: usize, tag: &str) -> (ServeEngine, f64, PathBuf) {
    let dir =
        std::env::temp_dir().join(format!("seldon-serve-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = Arc::new(ArtifactCache::open(&dir).expect("cache opens").0);
    let cfg = EngineConfig {
        seed: seed.clone(),
        analyze: AnalyzeOptions {
            policy: FaultPolicy::Recover,
            threads: 4,
            cache: Some(cache),
            ..Default::default()
        },
        seldon: seldon_opts(threads),
        dynamic_cutoff: false,
    };
    let mut engine = ServeEngine::new(cfg);
    let t = Instant::now();
    engine
        .apply_delta(&Delta { add: files.to_vec(), ..Default::default() })
        .expect("initial build");
    let cold_ms = t.elapsed().as_secs_f64() * 1e3;
    (engine, cold_ms, dir)
}

/// A comment-only edit: cache key changes, graph fingerprint does not.
const COMMENT_EDIT: &str = "# serve-bench incremental edit\n";

/// A structural edit: adds events, forcing an incremental rebuild.
const STRUCTURAL_EDIT: &str = "
@app.route('/handler_bench_added', methods=['GET', 'POST'])
def handler_bench_added():
    z0 = bottle_request.query.get('bench')
    z1 = flask.make_response(z0)
    return z1
";

/// Byte-identity gate: the engine's served spec after each delta kind
/// must equal a cold batch `run_full` over the same corpus state.
fn determinism_gate(files: &[(PathBuf, String)], seed: &TaintSpec, threads: usize) {
    let batch = |state: &[(PathBuf, String)]| {
        run_full(
            &batch_corpus(state),
            seed,
            "learn",
            &AnalyzeOptions { policy: FaultPolicy::Recover, threads: 4, ..Default::default() },
            &seldon_opts(threads),
        )
        .expect("batch run")
        .run
        .extraction
        .spec
        .to_text()
    };
    let (mut engine, _, dir) = fresh_engine(files, seed, threads, &format!("det-{threads}"));
    assert_eq!(engine.spec().unwrap(), batch(files), "initial build diverged ({threads} threads)");

    let mut edited = files.to_vec();
    edited[0].1.push_str(COMMENT_EDIT);
    let out = engine
        .apply_delta(&Delta { change: vec![edited[0].clone()], ..Default::default() })
        .expect("comment delta");
    assert_eq!(out.solve, "unchanged", "comment edit must take the unchanged path");
    assert_eq!(out.spec, batch(&edited), "comment edit diverged ({threads} threads)");

    edited[1].1.push_str(STRUCTURAL_EDIT);
    let out = engine
        .apply_delta(&Delta { change: vec![edited[1].clone()], ..Default::default() })
        .expect("structural delta");
    assert_eq!(out.spec, batch(&edited), "structural edit diverged ({threads} threads)");
    let _ = std::fs::remove_dir_all(&dir);
}

fn main() {
    let determinism_only = std::env::args().any(|a| a == "--determinism");
    let (files, seed) = bench_files();
    assert!(files.len() >= 500, "bench corpus too small: {} files", files.len());

    if determinism_only {
        for threads in [1, 4] {
            determinism_gate(&files, &seed, threads);
        }
        println!(
            "determinism gate passed: served specs over {} files are byte-identical \
             to cold batch runs at 1 and 4 solver threads",
            files.len()
        );
        return;
    }

    let mut cold_ms = Vec::with_capacity(ROUNDS);
    let mut noop_ms = Vec::with_capacity(ROUNDS);
    let mut unchanged_ms = Vec::with_capacity(ROUNDS);
    let mut edit_ms = Vec::with_capacity(ROUNDS);
    let mut fragments_reused = 0usize;
    for round in 0..ROUNDS {
        let (mut engine, cold, dir) = fresh_engine(&files, &seed, 4, &format!("r{round}"));
        cold_ms.push(cold);

        let t = Instant::now();
        let out = engine.apply_delta(&Delta::default()).expect("noop delta");
        noop_ms.push(t.elapsed().as_secs_f64() * 1e3);
        assert_eq!(out.solve, "noop");

        let mut commented = files[0].clone();
        commented.1.push_str(COMMENT_EDIT);
        let t = Instant::now();
        let out = engine
            .apply_delta(&Delta { change: vec![commented], ..Default::default() })
            .expect("comment delta");
        unchanged_ms.push(t.elapsed().as_secs_f64() * 1e3);
        assert_eq!(out.solve, "unchanged", "comment edit must skip the rebuild");

        let mut structural = files[1].clone();
        structural.1.push_str(STRUCTURAL_EDIT);
        let t = Instant::now();
        let out = engine
            .apply_delta(&Delta { change: vec![structural], ..Default::default() })
            .expect("structural delta");
        edit_ms.push(t.elapsed().as_secs_f64() * 1e3);
        assert!(
            matches!(out.solve, "scores" | "warm" | "cold"),
            "structural edit must rebuild, got {}",
            out.solve
        );
        assert_eq!(
            out.fragments_reused,
            files.len() - 1,
            "every untouched file's fragment is reused"
        );
        fragments_reused += out.fragments_reused;
        let _ = std::fs::remove_dir_all(&dir);
    }

    let cold = median_ms(cold_ms);
    let noop = median_ms(noop_ms);
    let unchanged = median_ms(unchanged_ms);
    let edit = median_ms(edit_ms);
    let speedup = cold / unchanged;
    let mut r = BenchRecord::new(
        "serve",
        "serve_bench",
        format!(
            "medians of {ROUNDS} rounds, release build; ServeEngine delta latency in ms \
             over the 607-file corpus; unchanged = 1-file comment edit, edit = 1-file \
             structural edit with fragment reuse and warm-started solve"
        ),
    );
    r.num("corpus", "files", files.len() as f64)
        .num("serve", "cold_ms", cold)
        .num("serve", "noop_ms", noop)
        .num("serve", "unchanged_ms", unchanged)
        .num("serve", "edit_ms", edit)
        .num("serve", "delta_speedup", speedup)
        .num("serve", "edit_speedup", cold / edit)
        .num("serve", "fragments_reused", fragments_reused as f64);
    println!("{}", r.to_json());
    assert!(
        speedup >= 20.0,
        "a 1-file unchanged delta must be at least 20x faster than a cold build \
         (got {speedup:.2}x: cold {cold:.2}ms, delta {unchanged:.2}ms)"
    );
}
