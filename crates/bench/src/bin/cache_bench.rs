//! Measures the artifact cache's warm-start payoff and gates its
//! crash-safety determinism guarantee.
//!
//! Over the standard 607-file bench corpus, three end-to-end `run_full`
//! configurations share one cache directory:
//!
//! - `cold`: empty cache — every artifact is parsed, stored, and a solver
//!   checkpoint written;
//! - `warm`: one file receives a trailing comment (its artifact misses,
//!   everything else hits, and the unchanged graph still takes the
//!   full-checkpoint path that skips generation, solving, and extraction);
//! - `faulted`: 20% of cache files damaged by
//!   [`seldon_cache::inject_cache_faults`] before a warm re-run.
//!
//! All three must produce byte-identical specifications; the warm run
//! must beat the cold run by at least 5× wall-clock. `--determinism`
//! runs only the byte-identity gate (exit 1 on divergence) for CI, where
//! wall-clock ratios are too noisy to assert. Emits one JSON object on
//! stdout; `BENCH_cache.json` records a release-build run.

use seldon_cache::{inject_cache_faults, ArtifactCache};
use seldon_core::{run_full, AnalyzeOptions, CheckpointOutcome, FaultPolicy, SeldonOptions};
use seldon_corpus::{generate_corpus, Corpus, CorpusOptions, Universe};
use seldon_specs::TaintSpec;
use seldon_telemetry::BenchRecord;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

const ROUNDS: usize = 5;
const FAULT_RATE: f64 = 0.2;

fn median_ms(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn bench_corpus() -> (Corpus, TaintSpec) {
    let universe = Universe::new();
    let corpus = generate_corpus(
        &universe,
        &CorpusOptions {
            projects: 150,
            files_per_project: (3, 5),
            rng_seed: 0xC0FFEE,
            ..Default::default()
        },
    );
    (corpus, universe.seed_spec())
}

/// One timed end-to-end run over `dir`'s cache; returns the learned spec
/// text, the wall-clock milliseconds, and checkpoint/fault observations.
fn timed_run(
    corpus: &Corpus,
    seed: &TaintSpec,
    dir: &Path,
) -> (String, f64, CheckpointOutcome, usize) {
    let (cache, _) = ArtifactCache::open(dir).expect("cache opens");
    let opts = AnalyzeOptions {
        policy: FaultPolicy::Recover,
        threads: 4,
        cache: Some(Arc::new(cache)),
        ..Default::default()
    };
    let t = Instant::now();
    let full = run_full(corpus, seed, "learn", &opts, &SeldonOptions::default())
        .expect("bench corpus analyzes");
    let ms = t.elapsed().as_secs_f64() * 1e3;
    assert!(!full.report.is_degraded(), "cache faults must not degrade the run");
    (
        full.run.extraction.spec.to_text(),
        ms,
        full.checkpoint.outcome,
        full.report.cache_faults.len(),
    )
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("seldon-cache-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The incremental edit: a trailing comment on the first file. Its cache
/// key changes (content bytes differ) but its propagation graph does not,
/// so the warm run re-parses exactly one file and replays the checkpoint.
fn touch_one_file(corpus: &Corpus) -> Corpus {
    let mut edited = corpus.clone();
    edited.projects[0].files[0].content.push_str("# cache-bench incremental edit\n");
    edited
}

fn main() {
    let determinism_only = std::env::args().any(|a| a == "--determinism");
    let (corpus, seed) = bench_corpus();
    let files = corpus.file_count();
    assert!(files >= 500, "bench corpus too small: {files} files");
    let edited = touch_one_file(&corpus);

    let mut cold_ms = Vec::with_capacity(ROUNDS);
    let mut warm_ms = Vec::with_capacity(ROUNDS);
    let mut faulted_ms = Vec::with_capacity(ROUNDS);
    let mut faults_contained = 0usize;
    let rounds = if determinism_only { 1 } else { ROUNDS };
    for round in 0..rounds {
        let dir = fresh_dir(&format!("r{round}"));

        let (cold_spec, cold, outcome, _) = timed_run(&corpus, &seed, &dir);
        assert_eq!(outcome, CheckpointOutcome::MissCold, "round {round} starts cold");
        cold_ms.push(cold);

        let (warm_spec, warm, outcome, _) = timed_run(&edited, &seed, &dir);
        assert_eq!(
            outcome,
            CheckpointOutcome::HitFull,
            "a comment-only edit leaves the graph (and checkpoint key) unchanged"
        );
        assert_eq!(warm_spec, cold_spec, "round {round}: warm spec diverged");
        warm_ms.push(warm);

        let injected = inject_cache_faults(&dir, FAULT_RATE, 0xBE2C ^ round as u64);
        assert!(!injected.is_empty(), "20% of {files} entries damages something");
        let (faulted_spec, faulted, _, faults) = timed_run(&edited, &seed, &dir);
        assert_eq!(
            faulted_spec, cold_spec,
            "round {round}: spec diverged under {} injected cache faults",
            injected.len()
        );
        assert!(faults > 0, "injected damage is detected and reported");
        faults_contained += faults;
        faulted_ms.push(faulted);

        let _ = std::fs::remove_dir_all(&dir);
    }

    if determinism_only {
        println!(
            "determinism gate passed: cold, warm, and {FAULT_RATE}-faulted warm runs \
             over {files} files produced byte-identical specs ({faults_contained} fault(s) contained)"
        );
        return;
    }

    let cold = median_ms(cold_ms);
    let warm = median_ms(warm_ms);
    let faulted = median_ms(faulted_ms);
    let speedup = cold / warm;
    let mut r = BenchRecord::new(
        "cache",
        "cache_bench",
        format!(
            "medians of {ROUNDS} rounds, release build; end-to-end run_full in ms; \
             warm = 1-file comment edit over a populated cache"
        ),
    );
    r.num("corpus", "files", files as f64)
        .num("cache", "cold_ms", cold)
        .num("cache", "warm_ms", warm)
        .num("cache", "faulted_warm_ms", faulted)
        .num("cache", "warm_speedup", speedup)
        .num("cache", "fault_rate", FAULT_RATE)
        .num("cache", "faults_contained", faults_contained as f64);
    println!("{}", r.to_json());
    assert!(
        speedup >= 5.0,
        "warm re-run must be at least 5x faster than cold (got {speedup:.2}x: \
         cold {cold:.2}ms, warm {warm:.2}ms)"
    );
}
