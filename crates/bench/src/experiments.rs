//! The experiment suite: one function per table/figure of the paper's
//! evaluation (§7). Each returns a rendered [`Table`] so the `tables`
//! binary and EXPERIMENTS.md stay in sync.

use crate::table::{dur, pct, Table};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use seldon_core::{
    analyze_corpus, analyze_project, classify_all, evaluate_spec, run_seldon, AnalyzedCorpus,
    GroundTruth, ReportClass, SeldonOptions,
};
use seldon_corpus::{generate_corpus, Corpus, CorpusOptions, Universe};
use seldon_merlin::{run_merlin, MerlinOptions};
use seldon_solver::ExtractOptions;
use seldon_specs::{Role, TaintSpec};
use seldon_taint::TaintAnalyzer;
use std::time::Instant;

/// Experiment-wide configuration.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Number of corpus projects for the main experiments.
    pub projects: usize,
    /// Worker threads for graph extraction.
    pub threads: usize,
    /// Corpus RNG seed.
    pub rng_seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig { projects: 400, threads: 8, rng_seed: 0xC0FFEE }
    }
}

/// Shared state between experiments: corpus, graph, ground truth, and one
/// full Seldon run.
pub struct Workbench {
    /// The API universe.
    pub universe: Universe,
    /// The generated corpus.
    pub corpus: Corpus,
    /// Parsed corpus with the global propagation graph.
    pub analyzed: AnalyzedCorpus,
    /// Exact ground truth.
    pub truth: GroundTruth,
    /// The seed specification.
    pub seed: TaintSpec,
    /// One full Seldon run over the corpus.
    pub run: seldon_core::SeldonRun,
}

impl Workbench {
    /// Builds the shared state (generates, parses, learns).
    pub fn new(cfg: &ExperimentConfig) -> Self {
        let universe = Universe::new();
        let corpus = generate_corpus(
            &universe,
            &CorpusOptions { projects: cfg.projects, rng_seed: cfg.rng_seed, ..Default::default() },
        );
        let analyzed = analyze_corpus(&corpus, cfg.threads).expect("corpus parses");
        let truth = GroundTruth::new(&universe, &corpus);
        let seed = universe.seed_spec();
        let run = run_seldon(&analyzed.graph, &seed, &SeldonOptions::default());
        Workbench { universe, corpus, analyzed, truth, seed, run }
    }
}

/// Tab. 1: statistics of the analyzed corpus.
pub fn table1(wb: &Workbench) -> Table {
    let avg_backoff = {
        let total: usize = wb.run.system.event_reps.iter().map(|(_, r)| r.len()).sum();
        total as f64 / wb.run.system.event_reps.len().max(1) as f64
    };
    let mut t = Table::new(
        "Table 1: Statistics on the applications in our evaluation",
        &["Statistic", "Value", "Paper"],
    );
    t.row(&[
        "# Candidates".into(),
        wb.run.candidate_count().to_string(),
        "210 864".into(),
    ]);
    t.row(&[
        "Average # backoff options per event".into(),
        format!("{avg_backoff:.2}"),
        "1.73".into(),
    ]);
    t.row(&[
        "# Constraints".into(),
        wb.run.system.constraint_count().to_string(),
        "504 982".into(),
    ]);
    t.row(&["# Source files".into(), wb.corpus.file_count().to_string(), "44 250".into()]);
    t.note("Paper column: absolute values from the GitHub corpus; ours is the synthetic corpus (shape, not magnitude, is comparable).");
    t
}

fn merlin_row(
    t: &mut Table,
    label: &str,
    graph: &seldon_propgraph::PropagationGraph,
    lines: usize,
    seed: &TaintSpec,
    collapsed: bool,
) {
    let res = run_merlin(
        graph,
        seed,
        &MerlinOptions { collapsed, max_iters: 60, ..Default::default() },
    );
    let (s, a, k) = res.candidates;
    t.row(&[
        label.into(),
        lines.to_string(),
        if collapsed { "Collapsed" } else { "Uncollapsed" }.into(),
        format!("{s}/{a}/{k}"),
        res.factors.to_string(),
        dur(res.inference_time),
    ]);
}

/// Tab. 2: Merlin scalability on a small and a large application.
pub fn table2(wb: &Workbench) -> Table {
    let mut t = Table::new(
        "Table 2: Statistics on specification learning with Merlin",
        &["Repository", "Lines", "Graph type", "Candidates (src/san/sink)", "Factors", "Inference time"],
    );
    let small = analyze_project(&wb.corpus, 0).expect("project 0");
    let small_lines: usize = wb.corpus.projects[0]
        .files
        .iter()
        .map(|f| f.content.lines().count())
        .sum();
    // A "large" application: union of the first 12 projects.
    let mut large = seldon_propgraph::PropagationGraph::new();
    let mut large_lines = 0usize;
    for p in 0..12.min(wb.corpus.projects.len()) {
        let a = analyze_project(&wb.corpus, p).expect("project");
        large.union(&a.graph);
        large_lines += wb.corpus.projects[p]
            .files
            .iter()
            .map(|f| f.content.lines().count())
            .sum::<usize>();
    }
    merlin_row(&mut t, "small app", &small.graph, small_lines, &wb.seed, true);
    merlin_row(&mut t, "small app", &small.graph, small_lines, &wb.seed, false);
    merlin_row(&mut t, "large app", &large, large_lines, &wb.seed, true);
    merlin_row(&mut t, "large app", &large, large_lines, &wb.seed, false);
    t.note("Paper: Flask API (2 128 lines, minutes) vs Flask-Admin (23 103 lines, > 10 h timeout).");
    t.note("Shape check: Merlin's factor count and inference time grow super-linearly with application size.");
    t
}

fn merlin_precision_rows(
    t: &mut Table,
    wb: &Workbench,
    preds: &[(String, Role, f64)],
    graph_kind: &str,
) {
    for role in Role::ALL {
        let of_role: Vec<&(String, Role, f64)> =
            preds.iter().filter(|(_, r, _)| *r == role).collect();
        let correct = of_role
            .iter()
            .filter(|(rep, r, _)| wb.truth.role_of(rep) == Some(*r))
            .count();
        let n = of_role.len();
        let prec = if n == 0 { 0.0 } else { correct as f64 / n as f64 };
        t.row(&[
            graph_kind.into(),
            format!("{role}s"),
            n.to_string(),
            pct(prec),
        ]);
    }
}

/// Tab. 3: Merlin precision at 95% confidence.
pub fn table3(wb: &Workbench) -> Table {
    let mut t = Table::new(
        "Table 3: Merlin on a small app, roles selected at 95% confidence",
        &["Graph", "Role", "Number", "Precision"],
    );
    let small = analyze_project(&wb.corpus, 0).expect("project 0");
    for collapsed in [true, false] {
        let res = run_merlin(
            &small.graph,
            &wb.seed,
            &MerlinOptions { collapsed, max_iters: 60, ..Default::default() },
        );
        let preds = res.predictions(0.95, &wb.seed);
        merlin_precision_rows(&mut t, wb, &preds, if collapsed { "Collapsed" } else { "Uncollapsed" });
    }
    t.note("Paper: 27% (collapsed) / 23% (uncollapsed) overall precision — Merlin is overconfident but imprecise.");
    t
}

/// Tab. 4: Merlin precision of the top-5 predictions per role.
pub fn table4(wb: &Workbench) -> Table {
    let mut t = Table::new(
        "Table 4: Merlin on a small app, top-5 predictions per role",
        &["Graph", "Role", "Number", "Precision"],
    );
    let small = analyze_project(&wb.corpus, 0).expect("project 0");
    for collapsed in [true, false] {
        let res = run_merlin(
            &small.graph,
            &wb.seed,
            &MerlinOptions { collapsed, max_iters: 60, ..Default::default() },
        );
        let kind = if collapsed { "Collapsed" } else { "Uncollapsed" };
        for role in Role::ALL {
            let top = res.top_n(5, role, &wb.seed);
            let correct = top
                .iter()
                .filter(|(rep, _)| wb.truth.role_of(rep) == Some(role))
                .count();
            let prec = if top.is_empty() { 0.0 } else { correct as f64 / top.len() as f64 };
            t.row(&[kind.into(), format!("{role}s"), top.len().to_string(), pct(prec)]);
        }
    }
    t.note("Paper: 20% overall for both graph types.");
    t
}

/// Tab. 5: count and estimated precision of Seldon's predictions.
pub fn table5(wb: &Workbench) -> Table {
    let mut t = Table::new(
        "Table 5: Count and precision of candidates predicted by Seldon",
        &["Role", "# Predicted / # Candidates", "Fraction", "Precision", "Paper precision"],
    );
    let eval = evaluate_spec(&wb.run.extraction.spec, &wb.truth);
    let candidates = wb.run.candidate_count();
    let paper = [("Sources", "72.0%"), ("Sanitizers", "58.0%"), ("Sinks", "56.0%")];
    for (i, role) in Role::ALL.into_iter().enumerate() {
        let e = eval.by_role.get(&role).copied().unwrap_or_default();
        t.row(&[
            format!("{role}s"),
            format!("{} / {}", e.predicted, candidates),
            pct(e.predicted as f64 / candidates.max(1) as f64),
            pct(e.precision()),
            paper[i].1.into(),
        ]);
    }
    t.row(&[
        "Any".into(),
        format!("{} / {}", eval.predicted(), candidates),
        pct(eval.predicted() as f64 / candidates.max(1) as f64),
        pct(eval.precision()),
        "66.6%".into(),
    ]);
    t
}

/// Fig. 10: Seldon inference time as a function of the number of files.
pub fn fig10(cfg: &ExperimentConfig) -> Table {
    let mut t = Table::new(
        "Figure 10: Seldon inference time vs number of analyzed files",
        &["Projects", "Files", "Constraints", "Graph time", "Gen+solve time", "ns/file"],
    );
    let universe = Universe::new();
    let mut last: Option<(usize, f64)> = None;
    let mut ratios = Vec::new();
    for scale in [1usize, 2, 4, 8] {
        let projects = (cfg.projects / 8).max(10) * scale;
        let corpus = generate_corpus(
            &universe,
            &CorpusOptions { projects, rng_seed: cfg.rng_seed, ..Default::default() },
        );
        let analyzed = analyze_corpus(&corpus, cfg.threads).expect("parses");
        let started = Instant::now();
        let run = run_seldon(&analyzed.graph, &universe.seed_spec(), &SeldonOptions::default());
        let infer = started.elapsed();
        let files = corpus.file_count();
        let per_file = infer.as_nanos() as f64 / files as f64;
        if let Some((_, prev)) = last {
            ratios.push(per_file / prev);
        }
        last = Some((files, per_file));
        t.row(&[
            projects.to_string(),
            files.to_string(),
            run.system.constraint_count().to_string(),
            dur(analyzed.build_time),
            dur(infer),
            format!("{per_file:.0}"),
        ]);
    }
    let max_ratio = ratios.iter().cloned().fold(0.0f64, f64::max);
    t.note(format!(
        "Per-file cost ratio between consecutive doublings: max {max_ratio:.2} (≈ constant ⇒ linear scaling, as in the paper's Fig. 10)."
    ));
    t
}

/// Fig. 11: sampled candidate scores and cumulative precision per role.
pub fn fig11(wb: &Workbench) -> Table {
    let mut t = Table::new(
        "Figure 11: predicted-score vs cumulative precision (top candidates per role)",
        &["Role", "Rank", "Score", "Candidate", "Correct", "Cumulative precision"],
    );
    // Sample below the selection threshold too (the paper examines all
    // candidates with score above 0.1, sorted), so the precision decay at
    // low scores is visible.
    let sampling = seldon_solver::extract(
        &wb.run.system,
        &wb.run.solution,
        &ExtractOptions { thresholds: [0.08; 3], ..Default::default() },
    );
    for role in Role::ALL {
        let mut scored: Vec<(&(seldon_constraints::RepId, Role), &f64)> = sampling
            .scores
            .iter()
            .filter(|((_, r), _)| *r == role)
            .collect();
        // Tie-break on the resolved text, not the symbol handle, so ranking
        // stays lexicographic regardless of interning order.
        scored.sort_by(|a, b| b.1.total_cmp(a.1).then_with(|| a.0 .0.as_str().cmp(b.0 .0.as_str())));
        let mut correct = 0usize;
        for (rank, ((rep, _), score)) in scored.iter().take(50).enumerate() {
            let ok = wb.truth.role_of(rep.as_str()) == Some(role);
            if ok {
                correct += 1;
            }
            t.row(&[
                format!("{role}"),
                (rank + 1).to_string(),
                format!("{score:.3}"),
                rep.as_str().to_string(),
                if ok { "yes" } else { "no" }.into(),
                pct(correct as f64 / (rank + 1) as f64),
            ]);
        }
    }
    t.note("Paper Fig. 11: most scores sit around 0.5; precision falls as score falls.");
    t
}

/// Report classification for one spec (shared by Tab. 6 / Tab. 7).
fn classify_with_spec(
    wb: &Workbench,
    spec: &TaintSpec,
) -> (Vec<seldon_taint::Violation>, Vec<ReportClass>, seldon_core::ReportSummary) {
    let analyzer = TaintAnalyzer::new(&wb.analyzed.graph, spec);
    let violations = analyzer.find_violations();
    let (classes, summary) = classify_all(&violations, &wb.analyzed, &wb.corpus, &wb.truth);
    (violations, classes, summary)
}

/// A spec combining the seed with Seldon's learned entries.
pub fn combined_spec(wb: &Workbench) -> TaintSpec {
    let mut spec = wb.seed.clone();
    spec.merge(&wb.run.extraction.spec);
    spec
}

/// Tab. 6: classification of 25 sampled reports, seed vs inferred spec.
pub fn table6(wb: &Workbench) -> Table {
    let mut t = Table::new(
        "Table 6: classification of 25 sampled reports (seed vs inferred spec)",
        &["Reason", "Seed spec", "Inferred spec", "Paper (seed)", "Paper (inferred)"],
    );
    let sample_classes = |spec: &TaintSpec| -> Vec<ReportClass> {
        let (violations, classes, _) = classify_with_spec(wb, spec);
        let mut idx: Vec<usize> = (0..violations.len()).collect();
        let mut rng = SmallRng::seed_from_u64(25);
        idx.shuffle(&mut rng);
        idx.into_iter().take(25).map(|i| classes[i]).collect()
    };
    let seed_sample = sample_classes(&wb.seed);
    let inferred_sample = sample_classes(&combined_spec(wb));
    let paper = [
        ("True vulnerabilities", "24%", "28%"),
        ("Vulnerable flow, but no bug", "28%", "12%"),
        ("Incorrect sink", "0%", "24%"),
        ("Incorrect source", "0%", "8%"),
        ("Incorrect source and sink", "0%", "8%"),
        ("Missing sanitizer", "40%", "8%"),
        ("Flows into wrong parameter", "8%", "12%"),
    ];
    for (i, class) in ReportClass::ALL.into_iter().enumerate() {
        let f = |sample: &[ReportClass]| {
            let n = sample.iter().filter(|c| **c == class).count();
            pct(n as f64 / sample.len().max(1) as f64)
        };
        t.row(&[
            class.to_string(),
            f(&seed_sample),
            f(&inferred_sample),
            paper[i].1.into(),
            paper[i].2.into(),
        ]);
    }
    t.note(format!(
        "Sample sizes: seed {} of its reports, inferred {} (25 each when available).",
        seed_sample.len(),
        inferred_sample.len()
    ));
    t
}

/// Tab. 7: total reports, projects affected, and estimated vulnerabilities.
pub fn table7(wb: &Workbench) -> Table {
    let mut t = Table::new(
        "Table 7: total reports and estimated vulnerabilities",
        &["Metric", "Seed spec", "Inferred spec", "Paper (seed)", "Paper (inferred)"],
    );
    let (seed_v, _, seed_sum) = classify_with_spec(wb, &wb.seed);
    let (inf_v, _, inf_sum) = classify_with_spec(wb, &combined_spec(wb));
    t.row(&[
        "Number of reports".into(),
        seed_v.len().to_string(),
        inf_v.len().to_string(),
        "662".into(),
        "21 318".into(),
    ]);
    t.row(&[
        "Number of projects affected".into(),
        seed_sum.projects_affected.to_string(),
        inf_sum.projects_affected.to_string(),
        "192".into(),
        "2 409".into(),
    ]);
    t.row(&[
        "Estimated true vulnerabilities".into(),
        seed_sum.estimate_true_vulnerabilities(seed_v.len()).to_string(),
        inf_sum.estimate_true_vulnerabilities(inf_v.len()).to_string(),
        "159".into(),
        "5 969".into(),
    ]);
    let seed_only = seed_v.len().max(1);
    t.note(format!(
        "Report multiplier from inferred specs: {:.1}x (paper: 32x reports, ~37x estimated vulnerabilities).",
        inf_v.len() as f64 / seed_only as f64
    ));
    t
}

/// Q5: learning per project vs learning on the whole corpus.
pub fn q5(wb: &Workbench) -> Table {
    let mut t = Table::new(
        "Q5: single-project vs big-code learning (3 random projects)",
        &["Project", "Individual precision", "Projected-global precision", "New true roles from global"],
    );
    let mut rng = SmallRng::seed_from_u64(5);
    let mut picks: Vec<usize> = (0..wb.corpus.projects.len()).collect();
    picks.shuffle(&mut rng);
    let mut ind_sum = 0.0;
    let mut glob_sum = 0.0;
    let mut new_roles_total = 0usize;
    let n = 3.min(picks.len());
    for &p in picks.iter().take(n) {
        let analyzed = analyze_project(&wb.corpus, p).expect("project");
        // Individual learning needs a lower frequency cutoff: a single
        // project cannot reach the global cutoff of 5 occurrences.
        let opts = SeldonOptions {
            gen: seldon_constraints::GenOptions { rep_cutoff: 2, ..Default::default() },
            ..Default::default()
        };
        let run = run_seldon(&analyzed.graph, &wb.seed, &opts);
        let ind_eval = evaluate_spec(&run.extraction.spec, &wb.truth);

        // The global spec projected to representations occurring in the
        // project's graph.
        let mut projected = TaintSpec::new();
        let project_reps: std::collections::HashSet<&str> = analyzed
            .graph
            .events()
            .flat_map(|(_, e)| e.reps.iter().map(|r| r.as_str()))
            .collect();
        for (rep, roles) in wb.run.extraction.spec.iter() {
            if project_reps.contains(rep) {
                projected.add_set(rep, roles);
            }
        }
        let glob_eval = evaluate_spec(&projected, &wb.truth);
        let new_true: usize = projected
            .iter()
            .flat_map(|(rep, roles)| {
                roles
                    .iter()
                    .filter(|r| {
                        wb.truth.is_correct(rep, *r)
                            && !run.extraction.spec.has_role(rep, *r)
                    })
                    .collect::<Vec<_>>()
            })
            .count();
        ind_sum += ind_eval.precision();
        glob_sum += glob_eval.precision();
        new_roles_total += new_true;
        t.row(&[
            wb.corpus.projects[p].name.clone(),
            pct(ind_eval.precision()),
            pct(glob_eval.precision()),
            new_true.to_string(),
        ]);
    }
    t.row(&[
        "average".into(),
        pct(ind_sum / n as f64),
        pct(glob_sum / n as f64),
        new_roles_total.to_string(),
    ]);
    t.note("Paper: 45% individual → 65% with the projection of the global spec, plus 18 new true roles.");
    t
}

/// Q6: impact of the seed specification size.
pub fn q6(wb: &Workbench) -> Table {
    let mut t = Table::new(
        "Q6: impact of the seed specification",
        &["Seed", "Entries", "# Learned", "# Learned beyond seed APIs", "Precision"],
    );
    let universe = &wb.universe;
    let mut run_with = |label: &str, seed: &TaintSpec| {
        let run = run_seldon(&wb.analyzed.graph, seed, &SeldonOptions::default());
        let eval = evaluate_spec(&run.extraction.spec, &wb.truth);
        // Entries that are not (re-learned) seed APIs: genuinely new
        // knowledge, comparable across seed sizes.
        let beyond: usize = run
            .extraction
            .spec
            .iter()
            .filter(|(rep, _)| !universe.is_seed_rep(rep))
            .map(|(_, roles)| roles.len())
            .sum();
        t.row(&[
            label.into(),
            seed.role_count().to_string(),
            eval.predicted().to_string(),
            beyond.to_string(),
            pct(eval.precision()),
        ]);
        eval
    };
    let full = run_with("full seed", &wb.seed);
    let half = run_with("half seed (every other entry)", &wb.universe.half_seed_spec());
    let empty = run_with("empty seed", &TaintSpec::new());
    let drop = (full.precision() - half.precision()) * 100.0;
    t.note(format!(
        "Half seed precision drop: {drop:.1} points (paper: 14 points). Empty seed learns {} specs (paper: 0).",
        empty.predicted()
    ));
    t
}

/// Ablations over the constants C and λ (§4.2, §4.4 claims).
pub fn ablations(wb: &Workbench) -> Table {
    let mut t = Table::new(
        "Ablations: implication constant C and L1 weight λ",
        &["Setting", "# Learned", "Precision"],
    );
    for (label, c, lambda) in [
        ("C=0.75, λ=0.1 (paper)", 0.75, 0.1),
        ("C=1.00, λ=0.1", 1.0, 0.1),
        ("C=0.75, λ=0.01", 0.75, 0.01),
        ("C=0.75, λ=1.0", 0.75, 1.0),
    ] {
        let opts = SeldonOptions {
            gen: seldon_constraints::GenOptions { c, ..Default::default() },
            solve: seldon_solver::SolveOptions { lambda, ..Default::default() },
            extract: ExtractOptions::default(),
            ..Default::default()
        };
        let run = run_seldon(&wb.analyzed.graph, &wb.seed, &opts);
        let eval = evaluate_spec(&run.extraction.spec, &wb.truth);
        t.row(&[label.into(), eval.predicted().to_string(), pct(eval.precision())]);
    }
    t.note("Paper: C=0.75 performs significantly better than C=1; dividing λ by 10 roughly doubles the number of inferred specifications.");
    t
}

/// Extension (paper §3.3 future work): parameter-sensitive sinks remove
/// the "flows into wrong parameter" false positives without losing true
/// vulnerabilities.
pub fn extension_param(wb: &Workbench) -> Table {
    use seldon_taint::TaintOptions;
    let mut t = Table::new(
        "Extension: parameter-sensitive sinks (§3.3 future work, implemented)",
        &["Analyzer", "Reports", "True vulns", "Wrong parameter", "Missing sanitizer"],
    );
    let mut spec = wb.universe.seed_spec_with_signatures();
    spec.merge(&wb.run.extraction.spec);
    for (label, sensitive) in [("baseline (paper)", false), ("param-sensitive", true)] {
        let analyzer = TaintAnalyzer::with_options(
            &wb.analyzed.graph,
            &spec,
            TaintOptions { param_sensitive: sensitive },
        );
        let violations = analyzer.find_violations();
        let (_, summary) = classify_all(&violations, &wb.analyzed, &wb.corpus, &wb.truth);
        t.row(&[
            label.into(),
            violations.len().to_string(),
            summary
                .counts
                .get(&ReportClass::TrueVulnerability)
                .copied()
                .unwrap_or(0)
                .to_string(),
            summary
                .counts
                .get(&ReportClass::WrongParameter)
                .copied()
                .unwrap_or(0)
                .to_string(),
            summary
                .counts
                .get(&ReportClass::MissingSanitizer)
                .copied()
                .unwrap_or(0)
                .to_string(),
        ]);
    }
    t.note("Signatures declare the dangerous argument positions of three sinks; taint reaching only harmless parameters (subprocess.call(env=…), send_file(download_name=…)) is no longer reported.");
    t
}

/// Solver convergence: objective milestones of the projected-Adam run
/// (the paper reports < 5 h for 800 k files; here the interest is the
/// shape — a fast drop and a long plateau).
pub fn convergence(wb: &Workbench) -> Table {
    let mut t = Table::new(
        "Solver convergence: objective over projected-Adam iterations",
        &["Iteration", "Objective", "Fraction of initial"],
    );
    let h = &wb.run.solution.history;
    if h.is_empty() {
        return t;
    }
    let first = h[0].max(1e-12);
    let mut marks: Vec<usize> = vec![0, 1, 2, 5, 10, 20, 50, 100, 200, 400];
    marks.push(h.len() - 1);
    marks.dedup();
    for &i in marks.iter().filter(|&&i| i < h.len()) {
        t.row(&[
            i.to_string(),
            format!("{:.2}", h[i]),
            pct(h[i] / first),
        ]);
    }
    t.note(format!(
        "Converged after {} iterations (early-stop window 50; final violation {:.2}).",
        wb.run.solution.iterations, wb.run.solution.violation
    ));
    t
}

/// Constraint-template ablation: learn with each Fig. 4 rule disabled in
/// turn, measuring which template contributes which role.
pub fn template_ablation(wb: &Workbench) -> Table {
    let mut t = Table::new(
        "Ablation: Fig. 4 constraint templates",
        &["Templates", "# Constraints", "Sources", "Sanitizers", "Sinks", "Precision"],
    );
    let configs: [(&str, [bool; 3]); 5] = [
        ("4a + 4b + 4c (paper)", [true, true, true]),
        ("without 4a", [false, true, true]),
        ("without 4b", [true, false, true]),
        ("without 4c", [true, true, false]),
        ("only 4c", [false, false, true]),
    ];
    for (label, templates) in configs {
        let opts = SeldonOptions {
            gen: seldon_constraints::GenOptions { templates, ..Default::default() },
            ..Default::default()
        };
        let run = run_seldon(&wb.analyzed.graph, &wb.seed, &opts);
        let eval = evaluate_spec(&run.extraction.spec, &wb.truth);
        let per = |role: Role| {
            eval.by_role
                .get(&role)
                .map(|e| format!("{}", e.predicted))
                .unwrap_or_else(|| "0".into())
        };
        t.row(&[
            label.into(),
            run.system.constraint_count().to_string(),
            per(Role::Source),
            per(Role::Sanitizer),
            per(Role::Sink),
            pct(eval.precision()),
        ]);
    }
    t.note("4a drives source learning, 4b drives sinks, 4c drives sanitizers — disabling a template collapses its role's predictions.");
    t
}

/// Backoff ablation (§4.3): learning with the full backoff chain vs only
/// the most specific representation per event.
pub fn backoff_ablation(wb: &Workbench) -> Table {
    let mut t = Table::new(
        "Ablation: representation backoff (§4.3)",
        &["Backoff", "Candidates", "# Learned", "Param-anchored entries", "Precision"],
    );
    for (label, max_backoff) in
        [("full chain (paper)", usize::MAX), ("two options", 2), ("most specific only", 1)]
    {
        let opts = SeldonOptions {
            gen: seldon_constraints::GenOptions { max_backoff, ..Default::default() },
            ..Default::default()
        };
        let run = run_seldon(&wb.analyzed.graph, &wb.seed, &opts);
        let eval = evaluate_spec(&run.extraction.spec, &wb.truth);
        // Entries of the Django-style family, which only exists through
        // backoff: a view parameter anchors every representation, so the
        // shareable forms are suffixes.
        let param_family = run
            .extraction
            .spec
            .iter()
            .filter(|(rep, _)| rep.contains("(param ") || rep.starts_with("request."))
            .count();
        t.row(&[
            label.into(),
            run.candidate_count().to_string(),
            eval.predicted().to_string(),
            param_family.to_string(),
            pct(eval.precision()),
        ]);
    }
    t.note("Import-resolved APIs are learnable even without backoff (their most specific representation is already shared corpus-wide). The Django-style family is not: view-parameter-anchored events are unique per handler, so without suffix backoff they fall under the frequency cutoff and the whole `request.*` family vanishes from the learned spec — §4.3's motivation, isolated.");
    t
}

/// Solver validation: projected Adam vs the exact LP optimum (simplex) on
/// small single-project systems, measuring the optimality gap.
pub fn solver_gap(wb: &Workbench) -> Table {
    let mut t = Table::new(
        "Solver validation: projected Adam vs exact LP (two-phase simplex)",
        &["Project", "Vars", "Constraints", "Exact objective", "Adam objective", "Gap"],
    );
    let mut shown = 0usize;
    for p in 0..wb.corpus.projects.len() {
        if shown >= 4 {
            break;
        }
        let analyzed = analyze_project(&wb.corpus, p).expect("project");
        let gen = seldon_constraints::GenOptions { rep_cutoff: 2, ..Default::default() };
        let sys = seldon_constraints::generate(&analyzed.graph, &wb.seed, &gen);
        if sys.var_count() == 0 || sys.constraint_count() == 0 {
            continue;
        }
        let Some(exact) = seldon_solver::solve_exact(&sys, 0.1, 3000) else { continue };
        let approx = seldon_solver::solve(
            &sys,
            &seldon_solver::SolveOptions { max_iters: 3000, ..Default::default() },
        );
        let gap = approx.objective - exact.objective;
        t.row(&[
            wb.corpus.projects[p].name.clone(),
            sys.var_count().to_string(),
            sys.constraint_count().to_string(),
            format!("{:.4}", exact.objective),
            format!("{:.4}", approx.objective),
            format!("{:+.4}", gap),
        ]);
        shown += 1;
    }
    t.note("The paper solves the relaxation approximately (TensorFlow Adam); the simplex gives the exact optimum. Small gaps validate the approximate solver.");
    t
}

/// Runs every experiment and concatenates the rendered tables.
pub fn run_all(cfg: &ExperimentConfig) -> String {
    let wb = Workbench::new(cfg);
    let mut out = String::new();
    for table in [
        table1(&wb),
        table2(&wb),
        table3(&wb),
        table4(&wb),
        table5(&wb),
        fig10(cfg),
        fig11(&wb),
        table6(&wb),
        table7(&wb),
        q5(&wb),
        q6(&wb),
        ablations(&wb),
        extension_param(&wb),
        template_ablation(&wb),
        backoff_ablation(&wb),
        convergence(&wb),
        solver_gap(&wb),
    ] {
        out.push_str(&table.render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> ExperimentConfig {
        ExperimentConfig { projects: 30, threads: 2, rng_seed: 7 }
    }

    #[test]
    fn table1_reports_candidates() {
        let wb = Workbench::new(&small_cfg());
        let t = table1(&wb);
        assert_eq!(t.rows.len(), 4);
        let candidates: usize = t.rows[0][1].parse().unwrap();
        assert!(candidates > 100);
    }

    #[test]
    fn table5_has_all_roles() {
        let wb = Workbench::new(&small_cfg());
        let t = table5(&wb);
        assert_eq!(t.rows.len(), 4);
        assert!(t.render().contains("sources"));
    }

    #[test]
    fn q6_empty_seed_learns_nothing() {
        let wb = Workbench::new(&small_cfg());
        let t = q6(&wb);
        // last row is the empty seed
        let learned: usize = t.rows[2][2].parse().unwrap();
        assert_eq!(learned, 0);
    }

    #[test]
    fn table7_multiplier_exceeds_one() {
        let wb = Workbench::new(&small_cfg());
        let t = table7(&wb);
        let seed_reports: usize = t.rows[0][1].parse().unwrap();
        let inferred_reports: usize = t.rows[0][2].parse().unwrap();
        assert!(
            inferred_reports > seed_reports,
            "inferred spec must flag more: {inferred_reports} vs {seed_reports}"
        );
    }

    #[test]
    fn tables_render_nonempty() {
        let wb = Workbench::new(&small_cfg());
        for t in [table3(&wb), table4(&wb), table6(&wb), fig11(&wb)] {
            assert!(!t.render().is_empty());
            assert!(!t.rows.is_empty(), "{} has no rows", t.title);
        }
    }
}
