//! Heap accounting: a counting [`GlobalAlloc`] shim plus best-effort
//! peak-RSS sampling.
//!
//! The shim wraps the system allocator and maintains two process-global
//! relaxed atomics: the **current** number of live heap bytes and the
//! monotone **high-water mark**. Installing it here (the telemetry crate
//! is a dependency of every workspace binary) makes the counters
//! available program-wide without per-crate opt-in. The accounting adds
//! one relaxed `fetch_add` per allocation and a load-then-`fetch_max`
//! only when a new peak is reached — small against the cost of the
//! underlying `malloc`, and identical on the telemetry-on and
//! telemetry-off paths, so the ≤2% no-op overhead budget measured by
//! `telemetry_bench` is unaffected.
//!
//! Caveats (also documented in DESIGN.md §3h): the counters see only
//! Rust heap allocations routed through the global allocator — stacks,
//! memory-mapped files, and allocator slack are invisible, which is why
//! [`MemoryGauge::peak_rss_bytes`] additionally samples the kernel's
//! `VmHWM` on Linux. The peak is monotone and never reset, so a span's
//! recorded peak is "high-water mark by span close", not a span-local
//! maximum.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

static CURRENT: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

#[inline]
fn on_alloc(size: usize) {
    let now = CURRENT.fetch_add(size as u64, Relaxed) + size as u64;
    // Racy check-then-max keeps the common (non-peak) path to one load;
    // fetch_max makes the slow path correct under contention.
    if now > PEAK.load(Relaxed) {
        PEAK.fetch_max(now, Relaxed);
    }
}

#[inline]
fn on_dealloc(size: usize) {
    CURRENT.fetch_sub(size as u64, Relaxed);
}

/// The counting allocator shim; installed as the `#[global_allocator]`
/// for every binary that (transitively) links this crate.
pub struct CountingAlloc;

// SAFETY: delegates every operation to `System` unchanged; the byte
// accounting has no effect on the returned pointers or layouts.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        on_dealloc(layout.size());
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        p
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A point-in-time heap reading from the counting allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemSnapshot {
    /// Live heap bytes right now.
    pub current_bytes: u64,
    /// Monotone high-water mark of live heap bytes since process start.
    pub peak_bytes: u64,
}

/// Process-wide memory readings backed by [`CountingAlloc`] plus
/// best-effort kernel RSS sampling.
#[derive(Debug, Clone, Copy, Default)]
pub struct MemoryGauge;

impl MemoryGauge {
    /// Live heap bytes allocated through the global allocator.
    pub fn current_bytes() -> u64 {
        CURRENT.load(Relaxed)
    }

    /// Monotone high-water mark of live heap bytes since process start.
    pub fn peak_bytes() -> u64 {
        PEAK.load(Relaxed)
    }

    /// Both counters in one call (still two relaxed loads; the pair is
    /// not atomic, which is fine for reporting).
    pub fn snapshot() -> MemSnapshot {
        MemSnapshot { current_bytes: Self::current_bytes(), peak_bytes: Self::peak_bytes() }
    }

    /// The kernel's peak resident-set size (`VmHWM`) in bytes, when the
    /// platform exposes it (`/proc/self/status` on Linux); `None`
    /// elsewhere or on read failure.
    pub fn peak_rss_bytes() -> Option<u64> {
        #[cfg(target_os = "linux")]
        {
            let status = std::fs::read_to_string("/proc/self/status").ok()?;
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
                    return Some(kb * 1024);
                }
            }
            None
        }
        #[cfg(not(target_os = "linux"))]
        {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_move_the_counters() {
        // Other test threads allocate concurrently, so only assert on
        // properties that hold under interference: the block is live at
        // the `during` reading, and the peak is a monotone global.
        let before_peak = MemoryGauge::peak_bytes();
        let block = vec![0u8; 16 << 20];
        let during = MemoryGauge::snapshot();
        assert!(
            during.current_bytes >= 16 << 20,
            "a live 16 MiB block must be visible in current ({during:?})"
        );
        assert!(during.peak_bytes >= 16 << 20, "peak must cover the live block");
        assert!(during.peak_bytes >= before_peak, "peak is monotone");
        drop(block);
        assert!(MemoryGauge::peak_bytes() >= during.peak_bytes, "peak survives dealloc");
    }

    #[test]
    fn peak_rss_is_plausible_when_available() {
        if let Some(rss) = MemoryGauge::peak_rss_bytes() {
            // A running test binary surely has more than 1 MiB resident
            // and (sanity bound) less than 1 TiB.
            assert!(rss > 1 << 20, "VmHWM {rss} too small");
            assert!(rss < 1 << 40, "VmHWM {rss} too large");
        }
    }
}
