//! Shared emitter for the `BENCH_*.json` bench history.
//!
//! Bench binaries used to hand-format their JSON with `println!`, which
//! meant every bin had its own ad-hoc schema. A [`BenchRecord`] routes
//! bench output through the same [`crate::json`] writer the
//! [`crate::RunManifest`] uses and stamps it with the shared
//! [`SCHEMA_VERSION`], so bench history entries and run manifests are
//! produced by one serializer and validated the same way.
//!
//! A record is a small header (`benchmark`, `binary`, `method`) plus
//! named sections of scalar key/value pairs, kept in insertion order:
//!
//! ```
//! use seldon_telemetry::BenchRecord;
//!
//! let mut r = BenchRecord::new("solver", "solver_bench", "medians of 5");
//! r.num("corpus", "files", 607.0).num("after", "solve_ms", 123.4);
//! let back = BenchRecord::from_json(&r.to_json()).unwrap();
//! assert_eq!(back, r);
//! ```

use crate::json::{self, Json};
use crate::manifest::{ManifestError, SCHEMA_VERSION};

/// Oldest `bench_schema_version` still readable. The section shape has
/// been stable since v2, so committed `BENCH_*.json` baselines keep
/// parsing (and keep serving as regression baselines for `bench_diff`)
/// across manifest schema bumps; records are always *emitted* at
/// [`SCHEMA_VERSION`].
pub const MIN_BENCH_SCHEMA_VERSION: u64 = 2;

/// One bench-history entry: a header plus ordered sections of scalars.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// What is being measured (e.g. `"solver"`).
    pub benchmark: String,
    /// The emitting bench binary (e.g. `"solver_bench"`).
    pub binary: String,
    /// How the numbers were taken (rounds, statistic, build flags).
    pub method: String,
    sections: Vec<(String, Vec<(String, Json)>)>,
}

impl BenchRecord {
    /// Creates an empty record with the given header.
    pub fn new(
        benchmark: impl Into<String>,
        binary: impl Into<String>,
        method: impl Into<String>,
    ) -> BenchRecord {
        BenchRecord {
            benchmark: benchmark.into(),
            binary: binary.into(),
            method: method.into(),
            sections: Vec::new(),
        }
    }

    fn slot(&mut self, section: &str) -> &mut Vec<(String, Json)> {
        if let Some(i) = self.sections.iter().position(|(name, _)| name == section) {
            return &mut self.sections[i].1;
        }
        self.sections.push((section.to_string(), Vec::new()));
        &mut self.sections.last_mut().unwrap().1
    }

    fn put(&mut self, section: &str, key: &str, value: Json) -> &mut BenchRecord {
        let slot = self.slot(section);
        match slot.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => slot.push((key.to_string(), value)),
        }
        self
    }

    /// Sets a numeric value under `section.key` (creating the section on
    /// first use; overwriting the key if already set).
    pub fn num(&mut self, section: &str, key: &str, value: f64) -> &mut BenchRecord {
        self.put(section, key, Json::num(value))
    }

    /// Sets a string value under `section.key`.
    pub fn text(&mut self, section: &str, key: &str, value: &str) -> &mut BenchRecord {
        self.put(section, key, Json::str(value))
    }

    /// Sets a boolean value under `section.key`.
    pub fn flag(&mut self, section: &str, key: &str, value: bool) -> &mut BenchRecord {
        self.put(section, key, Json::Bool(value))
    }

    /// All sections with their key/value pairs, in insertion order —
    /// used by the run-diff engine to walk two records key by key.
    pub fn sections(&self) -> &[(String, Vec<(String, Json)>)] {
        &self.sections
    }

    /// Reads back a value set earlier, as raw [`Json`].
    pub fn get(&self, section: &str, key: &str) -> Option<&Json> {
        self.sections
            .iter()
            .find(|(name, _)| name == section)
            .and_then(|(_, kv)| kv.iter().find(|(k, _)| k == key))
            .map(|(_, v)| v)
    }

    /// Serializes to pretty JSON — the `BENCH_*.json` file format.
    pub fn to_json(&self) -> String {
        let mut fields = vec![
            ("bench_schema_version".to_string(), Json::num(SCHEMA_VERSION as f64)),
            ("benchmark".to_string(), Json::str(&self.benchmark)),
            ("binary".to_string(), Json::str(&self.binary)),
            ("method".to_string(), Json::str(&self.method)),
        ];
        for (name, kv) in &self.sections {
            fields.push((name.clone(), Json::Obj(kv.clone())));
        }
        Json::Obj(fields).pretty()
    }

    /// Parses and schema-validates a record from its JSON form. Every
    /// top-level key beyond the header becomes a section; section values
    /// must be scalars (number, string, or bool).
    ///
    /// # Errors
    ///
    /// Returns [`ManifestError::Json`] on malformed JSON and
    /// [`ManifestError::Schema`] on a missing header field, a version
    /// mismatch, or a non-scalar section value.
    pub fn from_json(text: &str) -> Result<BenchRecord, ManifestError> {
        let v = json::parse(text)?;
        let Json::Obj(fields) = &v else {
            return Err(ManifestError::Schema("bench record must be an object".into()));
        };
        let version = v
            .get("bench_schema_version")
            .and_then(Json::as_u64)
            .ok_or_else(|| ManifestError::Schema("missing bench_schema_version".into()))?;
        if !(MIN_BENCH_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&version) {
            return Err(ManifestError::Schema(format!(
                "bench_schema_version {version} outside supported \
                 {MIN_BENCH_SCHEMA_VERSION}..={SCHEMA_VERSION}"
            )));
        }
        let header = |key: &str| {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| ManifestError::Schema(format!("missing header field `{key}`")))
        };
        let mut record =
            BenchRecord::new(header("benchmark")?, header("binary")?, header("method")?);
        for (name, value) in fields {
            if matches!(
                name.as_str(),
                "bench_schema_version" | "benchmark" | "binary" | "method"
            ) {
                continue;
            }
            let Json::Obj(kv) = value else {
                return Err(ManifestError::Schema(format!("section `{name}` must be an object")));
            };
            for (k, scalar) in kv {
                if !matches!(scalar, Json::Num(_) | Json::Str(_) | Json::Bool(_)) {
                    return Err(ManifestError::Schema(format!(
                        "section value `{name}.{k}` must be a scalar"
                    )));
                }
                record.put(name, k, scalar.clone());
            }
        }
        Ok(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_order_and_values() {
        let mut r = BenchRecord::new("solver", "solver_bench", "medians of 5, release");
        r.num("corpus", "files", 607.0)
            .num("corpus", "constraints", 26145.0)
            .num("before", "solve_ms", 812.5)
            .num("after", "solve_ms", 301.25)
            .text("after", "kernel", "csr")
            .flag("identity", "spec_identical", true);
        let text = r.to_json();
        let back = BenchRecord::from_json(&text).expect("round trip");
        assert_eq!(back, r);
        assert_eq!(back.get("after", "kernel").and_then(Json::as_str), Some("csr"));
        assert_eq!(back.get("identity", "spec_identical").and_then(Json::as_bool), Some(true));
        assert_eq!(back.get("missing", "key"), None);
    }

    #[test]
    fn version_and_header_are_validated() {
        let r = BenchRecord::new("x", "y", "z");
        let text = r.to_json();
        let wrong_version = text.replace(
            &format!("\"bench_schema_version\": {SCHEMA_VERSION}"),
            "\"bench_schema_version\": 9999",
        );
        assert!(matches!(
            BenchRecord::from_json(&wrong_version),
            Err(ManifestError::Schema(_))
        ));
        // Old-but-supported versions still parse (committed baselines).
        let old_version = text.replace(
            &format!("\"bench_schema_version\": {SCHEMA_VERSION}"),
            &format!("\"bench_schema_version\": {MIN_BENCH_SCHEMA_VERSION}"),
        );
        assert!(BenchRecord::from_json(&old_version).is_ok());
        let too_old = text.replace(
            &format!("\"bench_schema_version\": {SCHEMA_VERSION}"),
            "\"bench_schema_version\": 1",
        );
        assert!(matches!(BenchRecord::from_json(&too_old), Err(ManifestError::Schema(_))));
        let no_binary = text.replace("\"binary\"", "\"binaryyy\"");
        assert!(matches!(BenchRecord::from_json(&no_binary), Err(ManifestError::Schema(_))));
        assert!(matches!(BenchRecord::from_json("[1]"), Err(ManifestError::Schema(_))));
        assert!(matches!(BenchRecord::from_json("{nope"), Err(ManifestError::Json(_))));
    }

    #[test]
    fn overwriting_a_key_keeps_one_entry() {
        let mut r = BenchRecord::new("a", "b", "c");
        r.num("s", "k", 1.0).num("s", "k", 2.0);
        assert_eq!(r.get("s", "k").and_then(Json::as_f64), Some(2.0));
        let back = BenchRecord::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }
}
