//! Run-to-run comparison: the engine behind `seldon diff-runs` and the
//! `bench_diff` bin.
//!
//! Two kinds of fields get two kinds of treatment:
//!
//! * **Identity fields** (counts, solver outcomes, learned-spec shape)
//!   are compared exactly — the pipeline is deterministic, so any
//!   mismatch between two runs of the same input is a real behavioral
//!   change and counts as a regression.
//! * **Cost fields** (durations, bytes) are compared with a relative
//!   tolerance plus an absolute slack floor, so scheduler noise on small
//!   numbers does not trip the gate. A candidate beyond tolerance above
//!   the baseline is a regression; beyond tolerance below, an
//!   improvement.
//!
//! Machine-state readings (memory peaks, cache hit counts that depend on
//! what was on disk) are reported as informational notes and never gate.

use crate::bench::BenchRecord;
use crate::manifest::RunManifest;

/// Comparison thresholds.
#[derive(Debug, Clone, Copy)]
pub struct DiffOptions {
    /// Relative tolerance (percent) for cost fields; the CI gate uses
    /// the default ±15%.
    pub tolerance_pct: f64,
    /// Absolute slack (microseconds) under which stage-duration drift
    /// never gates, regardless of the relative change.
    pub timing_slack_us: f64,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions { tolerance_pct: 15.0, timing_slack_us: 25_000.0 }
    }
}

/// Outcome of one comparison: classified lines plus tallies.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Human-readable lines, one per observed difference.
    pub lines: Vec<String>,
    /// Gating differences (identity mismatches, cost beyond tolerance).
    pub regressions: usize,
    /// Cost fields beyond tolerance in the good direction.
    pub improvements: usize,
    /// Non-gating differences (machine state, metadata).
    pub notes: usize,
}

impl DiffReport {
    fn regress(&mut self, msg: String) {
        self.regressions += 1;
        self.lines.push(format!("REGRESSION  {msg}"));
    }

    fn improve(&mut self, msg: String) {
        self.improvements += 1;
        self.lines.push(format!("improvement {msg}"));
    }

    fn note(&mut self, msg: String) {
        self.notes += 1;
        self.lines.push(format!("note        {msg}"));
    }

    /// Whether the candidate regressed against the baseline.
    pub fn regressed(&self) -> bool {
        self.regressions > 0
    }

    /// Renders the full report with a one-line verdict at the end.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            out.push_str(line);
            out.push('\n');
        }
        if self.lines.is_empty() {
            out.push_str("no differences\n");
        }
        out.push_str(&format!(
            "verdict: {} regression(s), {} improvement(s), {} note(s)\n",
            self.regressions, self.improvements, self.notes
        ));
        out
    }

    /// Exact comparison of an identity field; mismatch is a regression.
    fn identity<T: PartialEq + std::fmt::Display>(&mut self, path: &str, a: T, b: T) {
        if a != b {
            self.regress(format!("{path}: {a} -> {b} (identity field changed)"));
        }
    }

    /// Tolerance comparison of a cost field (larger is worse).
    fn cost(&mut self, path: &str, a: f64, b: f64, slack: f64, opts: &DiffOptions) {
        let tol = opts.tolerance_pct / 100.0;
        if (b - a).abs() <= slack {
            return;
        }
        if b > a * (1.0 + tol) {
            self.regress(format!("{path}: {a} -> {b} (+{:.1}% > {:.0}%)", pct(a, b), opts.tolerance_pct));
        } else if b < a * (1.0 - tol) {
            self.improve(format!("{path}: {a} -> {b} ({:.1}%)", pct(a, b)));
        }
    }
}

fn pct(a: f64, b: f64) -> f64 {
    if a == 0.0 {
        100.0
    } else {
        (b - a) / a * 100.0
    }
}

/// Compares two run manifests: deterministic pipeline outputs exactly,
/// stage durations with tolerance, machine-state readings as notes.
pub fn diff_manifests(a: &RunManifest, b: &RunManifest, opts: &DiffOptions) -> DiffReport {
    let mut r = DiffReport::default();
    if a.schema_version != b.schema_version {
        r.note(format!("schema_version: {} -> {}", a.schema_version, b.schema_version));
    }
    if a.command != b.command {
        r.note(format!("command: {} -> {}", a.command, b.command));
    }

    r.identity("corpus.files", a.corpus.files, b.corpus.files);
    r.identity("corpus.projects", a.corpus.projects, b.corpus.projects);
    r.identity("corpus.events", a.corpus.events, b.corpus.events);
    r.identity("corpus.edges", a.corpus.edges, b.corpus.edges);
    r.identity("corpus.symbols", a.corpus.symbols, b.corpus.symbols);

    r.identity("outcomes.ok", a.outcomes.ok, b.outcomes.ok);
    r.identity("outcomes.recovered", a.outcomes.recovered, b.outcomes.recovered);
    r.identity("outcomes.skipped", a.outcomes.skipped, b.outcomes.skipped);
    r.identity("outcomes.over_budget", a.outcomes.over_budget, b.outcomes.over_budget);
    r.identity("outcomes.panicked", a.outcomes.panicked, b.outcomes.panicked);

    // Stage durations: compare top-level stages that exist on both sides;
    // presence differences (e.g. the optional cache span) are notes.
    for sa in a.stages.iter().filter(|s| s.depth == 0) {
        match b.stages.iter().find(|s| s.depth == 0 && s.name == sa.name) {
            Some(sb) => {
                let path = format!("stages.{}.dur_us", sa.name);
                r.cost(&path, sa.dur_us as f64, sb.dur_us as f64, opts.timing_slack_us, opts);
                if sa.mem_peak_bytes != sb.mem_peak_bytes {
                    r.note(format!(
                        "stages.{}.mem_peak_bytes: {} -> {} (machine state)",
                        sa.name, sa.mem_peak_bytes, sb.mem_peak_bytes
                    ));
                }
            }
            None => r.note(format!("stage `{}` only in baseline", sa.name)),
        }
    }
    for sb in b.stages.iter().filter(|s| s.depth == 0) {
        if !a.stages.iter().any(|s| s.depth == 0 && s.name == sb.name) {
            r.note(format!("stage `{}` only in candidate", sb.name));
        }
    }

    r.identity("constraints.total", a.constraints.total, b.constraints.total);
    r.identity("constraints.vars", a.constraints.vars, b.constraints.vars);
    r.identity("constraints.pinned", a.constraints.pinned, b.constraints.pinned);
    for i in 0..3 {
        r.identity(
            &format!("constraints.by_template[{i}]"),
            a.constraints.by_template[i],
            b.constraints.by_template[i],
        );
    }

    r.identity("solver.iterations", a.solver.iterations, b.solver.iterations);
    r.identity("solver.restarts", a.solver.restarts, b.solver.restarts);
    r.identity("solver.diverged", a.solver.diverged, b.solver.diverged);
    r.identity("solver.final_lr", a.solver.final_lr, b.solver.final_lr);
    r.identity("solver.objective", a.solver.objective, b.solver.objective);
    r.identity("solver.violation", a.solver.violation, b.solver.violation);
    if a.solver.curve.len() != b.solver.curve.len() {
        r.note(format!(
            "solver.curve: {} -> {} samples",
            a.solver.curve.len(),
            b.solver.curve.len()
        ));
    }

    for i in 0..3 {
        r.identity(
            &format!("extraction.thresholds[{i}]"),
            a.extraction.thresholds[i],
            b.extraction.thresholds[i],
        );
        r.identity(
            &format!("extraction.learned[{i}]"),
            a.extraction.learned[i],
            b.extraction.learned[i],
        );
    }
    r.identity("extraction.decay", a.extraction.decay, b.extraction.decay);
    if a.extraction.backoff_hits != b.extraction.backoff_hits {
        r.regress(format!(
            "extraction.backoff_hits: {:?} -> {:?} (identity field changed)",
            a.extraction.backoff_hits, b.extraction.backoff_hits
        ));
    }

    r.identity("taint.violations", a.taint.violations, b.taint.violations);

    // Cache counters depend on what was already on disk, not on the
    // pipeline: informational only.
    if (a.cache.hits, a.cache.misses, &a.cache.checkpoint)
        != (b.cache.hits, b.cache.misses, &b.cache.checkpoint)
    {
        r.note(format!(
            "cache: {}h/{}m ({}) -> {}h/{}m ({})",
            a.cache.hits, a.cache.misses, a.cache.checkpoint,
            b.cache.hits, b.cache.misses, b.cache.checkpoint
        ));
    }

    // Parse-histogram totals are deterministic (how many files each
    // frontend parsed); the bucket spread is wall-clock.
    for ha in &a.parse_histograms {
        match b.parse_histograms.iter().find(|h| h.frontend == ha.frontend) {
            Some(hb) => r.identity(
                &format!("parse_histograms.{}.total", ha.frontend),
                ha.total(),
                hb.total(),
            ),
            None => r.regress(format!("parse_histograms: frontend `{}` disappeared", ha.frontend)),
        }
    }

    if a.memory.peak_bytes != b.memory.peak_bytes {
        r.note(format!(
            "memory.peak_bytes: {} -> {} (machine state)",
            a.memory.peak_bytes, b.memory.peak_bytes
        ));
    }

    // Metrics: non-volatile values are pipeline outputs and must match;
    // volatile ones are costs/machine state.
    use crate::metrics::MetricValue;
    for ma in a.metrics.metrics() {
        let Some(mb) = b.metrics.get(&ma.name) else {
            r.note(format!("metric `{}` only in baseline", ma.name));
            continue;
        };
        let path = format!("metrics.{}", ma.name);
        match (&ma.value, &mb.value) {
            (MetricValue::Counter(x), MetricValue::Counter(y))
            | (MetricValue::Gauge(x), MetricValue::Gauge(y)) => {
                if !ma.volatile {
                    r.identity(&path, *x, *y);
                } else if let Some(slack) = bench_slack(&ma.name) {
                    // Unit-suffixed volatile scalars are costs (timings,
                    // byte volumes) and gate with tolerance + slack.
                    r.cost(&path, *x, *y, slack, opts);
                } else if x != y {
                    // Unsuffixed volatile scalars (cache temperature,
                    // rates) are machine state: informational only.
                    r.note(format!("{path}: {x} -> {y} (volatile)"));
                }
            }
            (MetricValue::Histogram(x), MetricValue::Histogram(y)) => {
                r.identity(&format!("{path}.total"), x.total(), y.total());
                if !ma.volatile && x.counts != y.counts {
                    r.regress(format!("{path}: bucket counts changed (identity histogram)"));
                }
            }
            _ => r.regress(format!("{path}: metric kind changed")),
        }
    }
    for mb in b.metrics.metrics() {
        if a.metrics.get(&mb.name).is_none() {
            r.note(format!("metric `{}` only in candidate", mb.name));
        }
    }

    if a.score_dump != b.score_dump {
        r.regress(format!(
            "score_dump: {} -> {} entries or changed content (identity field)",
            a.score_dump.len(),
            b.score_dump.len()
        ));
    }

    r
}

/// Absolute gating slack for a bench cost key, by unit suffix: drift
/// smaller than this never gates, however large in relative terms.
fn bench_slack(key: &str) -> Option<f64> {
    if key.ends_with("_ns") {
        Some(10_000_000.0) // 10ms in ns
    } else if key.ends_with("_us") {
        Some(10_000.0) // 10ms in µs
    } else if key.ends_with("_ms") {
        Some(10.0)
    } else if key.ends_with("_s") {
        Some(0.01)
    } else if key.ends_with("_bytes") {
        Some((1 << 20) as f64) // 1 MiB
    } else {
        None
    }
}

/// Whether a bench section's numbers depend on the host's parallelism
/// rather than the code under test: per-thread-count scaling rows vary
/// with the core count of whatever machine ran the bench, so they are
/// recorded for the report but never gate.
fn is_machine_scaling_section(section: &str) -> bool {
    section.starts_with("scaling_threads_")
}

/// Compares two bench records key by key: unit-suffixed cost keys gate
/// with tolerance + slack, everything else is informational. Scaling-table
/// sections (`scaling_threads_*`) are machine state and never gate.
pub fn diff_bench(a: &BenchRecord, b: &BenchRecord, opts: &DiffOptions) -> DiffReport {
    let mut r = DiffReport::default();
    if a.benchmark != b.benchmark {
        r.note(format!("benchmark: {} -> {}", a.benchmark, b.benchmark));
    }
    for (section, kv) in a.sections() {
        for (key, va) in kv {
            let path = format!("{section}.{key}");
            let Some(vb) = b.get(section, key) else {
                r.note(format!("{path}: only in baseline"));
                continue;
            };
            if is_machine_scaling_section(section) {
                if va != vb {
                    r.note(format!(
                        "{path}: {} -> {} (machine scaling)",
                        va.compact(),
                        vb.compact()
                    ));
                }
                continue;
            }
            match (va.as_f64(), vb.as_f64(), bench_slack(key)) {
                (Some(x), Some(y), Some(slack)) if x.is_finite() && y.is_finite() => {
                    r.cost(&path, x, y, slack, opts);
                }
                _ => {
                    if va != vb {
                        r.note(format!("{path}: {} -> {}", va.compact(), vb.compact()));
                    }
                }
            }
        }
    }
    for (section, kv) in b.sections() {
        for (key, _) in kv {
            if a.get(section, key).is_none() {
                r.note(format!("{section}.{key}: only in candidate"));
            }
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::{ScoreDumpEntry, StageSpan};

    fn base_manifest() -> RunManifest {
        let mut m = RunManifest::new("learn");
        m.corpus.files = 6;
        m.taint.violations = 2;
        m.stages.push(StageSpan {
            name: "solve".into(),
            parent: None,
            depth: 0,
            start_us: 0,
            dur_us: 1_000_000,
            mem_now_bytes: 10,
            mem_peak_bytes: 20,
            counters: vec![],
        });
        m.metrics.inc_counter("files_analyzed", "files", false, 6.0);
        m
    }

    #[test]
    fn identical_manifests_produce_no_regressions() {
        let m = base_manifest();
        let r = diff_manifests(&m, &m.clone(), &DiffOptions::default());
        assert!(!r.regressed(), "{}", r.render());
        assert_eq!(r.improvements, 0);
    }

    #[test]
    fn identity_change_regresses() {
        let a = base_manifest();
        let mut b = base_manifest();
        b.taint.violations = 5;
        let r = diff_manifests(&a, &b, &DiffOptions::default());
        assert!(r.regressed());
        assert!(r.render().contains("taint.violations"));
    }

    #[test]
    fn timing_gates_with_tolerance_and_slack() {
        let a = base_manifest();
        // +30% on a 1s stage: regression.
        let mut slow = base_manifest();
        slow.stages[0].dur_us = 1_300_000;
        assert!(diff_manifests(&a, &slow, &DiffOptions::default()).regressed());
        // -30%: improvement, not a regression.
        let mut fast = base_manifest();
        fast.stages[0].dur_us = 700_000;
        let r = diff_manifests(&a, &fast, &DiffOptions::default());
        assert!(!r.regressed());
        assert_eq!(r.improvements, 1);
        // +30% on a 10ms stage: inside the 25ms slack, no gate.
        let mut a_small = base_manifest();
        a_small.stages[0].dur_us = 10_000;
        let mut b_small = base_manifest();
        b_small.stages[0].dur_us = 13_000;
        assert!(!diff_manifests(&a_small, &b_small, &DiffOptions::default()).regressed());
    }

    #[test]
    fn memory_and_cache_changes_are_notes() {
        let a = base_manifest();
        let mut b = base_manifest();
        b.memory.peak_bytes = 123_456_789;
        b.cache.hits = 42;
        b.stages[0].mem_peak_bytes = 999;
        let r = diff_manifests(&a, &b, &DiffOptions::default());
        assert!(!r.regressed(), "{}", r.render());
        assert!(r.notes >= 2);
    }

    #[test]
    fn volatile_metrics_gate_only_with_unit_suffix() {
        let mut a = base_manifest();
        a.metrics.set_gauge("solver_epoch_us", "epoch", true, 100_000.0);
        a.metrics.set_gauge("cache_hit_rate", "rate", true, 0.0);
        // Unsuffixed volatile scalar drifts: note only.
        let mut warm = a.clone();
        warm.metrics.set_gauge("cache_hit_rate", "rate", true, 1.0);
        let r = diff_manifests(&a, &warm, &DiffOptions::default());
        assert!(!r.regressed(), "{}", r.render());
        assert!(r.render().contains("cache_hit_rate"), "{}", r.render());
        // Unit-suffixed volatile scalar beyond tolerance + slack: gates.
        let mut slow = a.clone();
        slow.metrics.set_gauge("solver_epoch_us", "epoch", true, 150_000.0);
        assert!(diff_manifests(&a, &slow, &DiffOptions::default()).regressed());
        // Same relative drift inside the 10ms unit slack: no gate.
        let mut b_small = a.clone();
        b_small.metrics.set_gauge("solver_epoch_us", "epoch", true, 109_000.0);
        assert!(!diff_manifests(&a, &b_small, &DiffOptions::default()).regressed());
    }

    #[test]
    fn score_dump_change_regresses() {
        let a = base_manifest();
        let mut b = base_manifest();
        b.score_dump.push(ScoreDumpEntry {
            rep: "x".into(),
            role: "sink".into(),
            score: 0.5,
            backoff_level: 1,
        });
        assert!(diff_manifests(&a, &b, &DiffOptions::default()).regressed());
    }

    #[test]
    fn bench_cost_keys_gate_and_identity_keys_note() {
        let mut a = BenchRecord::new("solver", "solver_bench", "m");
        a.num("corpus", "files", 607.0).num("after", "solve_ms", 100.0);
        // Slower beyond tolerance and slack: regression.
        let mut slow = a.clone();
        slow.num("after", "solve_ms", 130.0);
        let r = diff_bench(&a, &slow, &DiffOptions::default());
        assert!(r.regressed(), "{}", r.render());
        // A count change is a note, not a gate.
        let mut counted = a.clone();
        counted.num("corpus", "files", 608.0);
        let r = diff_bench(&a, &counted, &DiffOptions::default());
        assert!(!r.regressed());
        assert_eq!(r.notes, 1);
        // Within slack: 100ms -> 109ms is 9ms drift, under the 10ms floor.
        let mut close = a.clone();
        close.num("after", "solve_ms", 109.0);
        assert!(!diff_bench(&a, &close, &DiffOptions::default()).regressed());
        // Faster beyond tolerance: improvement.
        let mut fast = a.clone();
        fast.num("after", "solve_ms", 50.0);
        let r = diff_bench(&a, &fast, &DiffOptions::default());
        assert!(!r.regressed());
        assert_eq!(r.improvements, 1);
    }

    /// Per-thread-count scaling rows depend on the bench host's core
    /// count, so they report as notes and never gate — a record captured
    /// on a single-core box must not fail CI on a multi-core runner.
    #[test]
    fn scaling_table_sections_never_gate() {
        let mut a = BenchRecord::new("solver", "solver_bench", "m");
        a.num("after", "solve_ms", 100.0)
            .num("scaling_threads_8", "solve_ms", 170.0)
            .num("scaling_threads_8", "speedup_vs_1_thread", 0.7);
        // 3x slower on the scaling row, and a candidate-only row: notes.
        let mut other_host = a.clone();
        other_host
            .num("scaling_threads_8", "solve_ms", 510.0)
            .num("scaling_threads_8", "speedup_vs_1_thread", 3.4)
            .num("scaling_threads_16", "solve_ms", 40.0);
        let r = diff_bench(&a, &other_host, &DiffOptions::default());
        assert!(!r.regressed(), "{}", r.render());
        assert!(r.render().contains("machine scaling"), "{}", r.render());
        assert!(r.render().contains("scaling_threads_16.solve_ms: only in candidate"));
        // The same drift outside a scaling section still gates.
        let mut slow = a.clone();
        slow.num("after", "solve_ms", 300.0);
        assert!(diff_bench(&a, &slow, &DiffOptions::default()).regressed());
    }
}
